//! # fx-bench
//!
//! The experiment harness: `cargo run -p fx-bench --bin experiments`
//! regenerates every lower-bound table and upper-bound curve of the paper
//! (experiments E1–E12 of `DESIGN.md`); the Criterion benches under
//! `benches/` cover the timing claims of Theorem 8.8.

#![warn(missing_docs)]

use fx_engine::Evaluator;
use fx_xml::Event;
use std::time::Instant;

/// Measures throughput (events/second) of a filter over a pre-materialized
/// stream, repeated until at least `min_duration` elapses.
pub fn throughput<F: Evaluator>(
    filter: &mut F,
    events: &[Event],
    min_duration: std::time::Duration,
) -> f64 {
    let start = Instant::now();
    let mut processed = 0u64;
    while start.elapsed() < min_duration {
        for e in events {
            filter.process(e);
        }
        processed += events.len() as u64;
    }
    processed as f64 / start.elapsed().as_secs_f64()
}

/// Renders a ratio like "12.5x" with a sensible precision.
pub fn ratio(a: u64, b: u64) -> String {
    if b == 0 {
        return "∞".to_string();
    }
    let r = a as f64 / b as f64;
    if r >= 10.0 {
        format!("{r:.0}x")
    } else {
        format!("{r:.1}x")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_formatting() {
        assert_eq!(ratio(100, 10), "10x");
        assert_eq!(ratio(15, 10), "1.5x");
        assert_eq!(ratio(1, 0), "∞");
    }

    #[test]
    fn throughput_is_positive() {
        let q = fx_xpath::parse_query("/a[b]").unwrap();
        let mut f = fx_core::StreamFilter::new(&q).unwrap();
        let events = fx_xml::parse("<a><b/></a>").unwrap();
        let t = throughput(&mut f, &events, std::time::Duration::from_millis(10));
        assert!(t > 0.0);
    }
}
