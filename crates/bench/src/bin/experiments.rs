//! The experiment harness: regenerates every table and figure of the
//! paper's results (experiments E1–E12 of DESIGN.md).
//!
//! Usage:
//!   cargo run --release -p fx-bench --bin experiments           # all
//!   cargo run --release -p fx-bench --bin experiments -- e2 e9  # subset

use fx_analysis::{frontier_size, redundancy_free};
use fx_automata::{BufferingFilter, LazyDfaFilter, NfaFilter};
use fx_bench::{ratio, throughput};
use fx_core::{MultiFilter, StreamFilter};
use fx_lowerbounds::{
    depth_bound, disj_segments, frontier_bound, probe, probe_fooling_set, sets_intersect,
};
use fx_workloads as wl;
use fx_xml::Event;
use fx_xpath::{parse_query, to_xpath, Query};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).map(|a| a.to_lowercase()).collect();
    let want = |name: &str| args.is_empty() || args.iter().any(|a| a == name);

    println!("frontier-xpath experiment harness");
    println!("(paper: Bar-Yossef, Fontoura, Josifovski — PODS 2004 / JCSS 2007)\n");

    if want("e1") {
        e1_frontier_simple();
    }
    if want("e2") {
        e2_recursion();
    }
    if want("e3") {
        e3_depth();
    }
    if want("e4") {
        e4_frontier_general();
    }
    if want("e5") {
        e5_recursion_general();
    }
    if want("e6") {
        e6_depth_general();
    }
    if want("e7") {
        e7_example_run();
    }
    if want("e8") {
        e8_space_sweeps();
    }
    if want("e9") {
        e9_dfa_blowup();
    }
    if want("e10") {
        e10_throughput();
    }
    if want("e11") {
        e11_multi_query();
    }
    if want("e12") {
        e12_full_eval_overhead();
    }
}

fn header(id: &str, title: &str) {
    println!("================================================================");
    println!("{id}: {title}");
    println!("================================================================");
}

// ---------------------------------------------------------------------------

fn e1_frontier_simple() {
    header(
        "E1",
        "Theorem 4.2 — query frontier size (fixed query, Figs. 3-4)",
    );
    let q = parse_query("/a[c[.//e and f] and b > 5]").unwrap();
    let fb = frontier_bound(&q, None).unwrap();
    let report = fb.fooling.verify(&q).unwrap();
    let probe_report = probe_fooling_set(|| StreamFilter::new(&q).unwrap(), &fb.fooling);
    println!(
        "query                      FS(Q)  |S|  diag  cross  LB bits  filter states  filter bits"
    );
    println!(
        "{:<26} {:>5}  {:>3}  {:>4}  {:>5}  {:>7}  {:>13}  {:>11}",
        "/a[c[.//e and f] and b>5]",
        frontier_size(&q),
        report.size,
        report.diagonal_checked,
        report.cross_checked,
        report.bits,
        probe_report.classes,
        probe_report.bits
    );
    println!("shape check: filter is forced into exactly 2^FS(Q) states — the bound is tight.\n");
}

fn e2_recursion() {
    header(
        "E2",
        "Theorem 4.5 — recursion depth, DISJ reduction (Fig. 5)",
    );
    let q = parse_query("//a[b and c]").unwrap();
    let seg = disj_segments(&q).unwrap();
    println!(
        "{:>4}  {:>10}  {:>8}  {:>13}  {:>12}",
        "r", "LB states", "LB bits", "probe states", "filter bits"
    );
    for r in [2usize, 4, 6, 8] {
        let all: Vec<Vec<bool>> = (0..1usize << r)
            .map(|m| (0..r).map(|i| m >> i & 1 == 1).collect())
            .collect();
        let prefixes: Vec<Vec<Event>> = all.iter().map(|s| seg.alpha(s)).collect();
        let suffixes: Vec<Vec<Event>> = all.iter().map(|t| seg.beta(t)).collect();
        let report = probe(|| StreamFilter::new(&q).unwrap(), &prefixes, &suffixes);
        let mut f = StreamFilter::new(&q).unwrap();
        f.process_all(&seg.document(&vec![true; r], &vec![false; r]));
        println!(
            "{r:>4}  {:>10}  {:>8}  {:>13}  {:>12}",
            1usize << r,
            r,
            report.classes,
            f.stats().max_bits
        );
    }
    // The filter-memory side for large r (linear growth).
    println!("\nfilter memory on D_s,t (Θ(r) rows):");
    println!("{:>6}  {:>8}  {:>12}", "r", "rows", "bits");
    for r in [16usize, 64, 256, 1024, 4096] {
        let mut f = StreamFilter::new(&q).unwrap();
        f.process_all(&seg.document(&vec![true; r], &vec![false; r]));
        println!(
            "{r:>6}  {:>8}  {:>12}",
            f.stats().max_rows,
            f.stats().max_bits
        );
    }
    println!("shape check: probe states = 2^r exactly; filter bits grow linearly in r.\n");
}

fn e3_depth() {
    header("E3", "Theorem 4.6 — document depth (Fig. 6)");
    let q = parse_query("/a/b").unwrap();
    let db = depth_bound(&q).unwrap();
    println!(
        "{:>6}  {:>10}  {:>8}  {:>13}  {:>12}",
        "d", "LB states", "LB bits", "probe states", "filter bits"
    );
    for d in [4usize, 16, 64, 256, 1024, 4096] {
        let fooling = db.fooling_set(d.min(256)); // verification is O(t²)
        let report = fooling.verify(&q).unwrap();
        let probe_t = d.min(64);
        let prefixes: Vec<Vec<Event>> = (0..probe_t).map(|i| db.alpha_i(i)).collect();
        let suffixes: Vec<Vec<Event>> = (0..probe_t)
            .map(|i| {
                let mut s = db.beta_i(i);
                s.extend(db.gamma_i(i));
                s
            })
            .collect();
        let probed = probe(|| StreamFilter::new(&q).unwrap(), &prefixes, &suffixes);
        let mut f = StreamFilter::new(&q).unwrap();
        f.process_all(&db.document(d - 1));
        println!(
            "{d:>6}  {:>10}  {:>8}  {:>13}  {:>12}",
            report.size,
            report.bits,
            probed.classes,
            f.stats().max_bits
        );
    }
    println!(
        "shape check: filter bits grow by ~2 per 4x depth (logarithmic), matching Ω(log d).\n"
    );
}

fn e4_frontier_general() {
    header(
        "E4",
        "Theorem 7.1 — general frontier bound on random redundancy-free queries",
    );
    let mut rng = SmallRng::seed_from_u64(7001);
    let cfg = wl::RandomQueryConfig {
        max_nodes: 10,
        ..Default::default()
    };
    println!(
        "{:<44}  {:>5}  {:>4}  {:>8}  {:>8}",
        "query", "FS(Q)", "|S|", "verified", "LB bits"
    );
    for _ in 0..10 {
        let q = wl::random_redundancy_free(&mut rng, &cfg);
        assert!(redundancy_free(&q).is_empty());
        let fb = frontier_bound(&q, Some(64)).unwrap();
        let report = fb
            .fooling
            .verify(&q)
            .expect("Theorem 7.1 construction verifies");
        let mut src = to_xpath(&q);
        src.truncate(44);
        println!(
            "{src:<44}  {:>5}  {:>4}  {:>8}  {:>8}",
            frontier_size(&q),
            report.size,
            "ok",
            report.bits
        );
    }
    println!("shape check: every fooling set verifies; LB bits = FS(Q) when uncapped.\n");
}

fn e5_recursion_general() {
    header(
        "E5",
        "Theorem 7.4 — general recursion bound on Recursive-XPath queries (Figs. 10-15)",
    );
    let mut rng = SmallRng::seed_from_u64(7002);
    println!(
        "{:<30}  {:>4}  {:>7}  {:>9}",
        "query", "r", "checks", "verified"
    );
    for src in [
        "//a[b and c]",
        "//d[f and a[b and c]]",
        "//x//a[b and c and d]",
        "//a[b > 7 and c]",
        "/r//q[m and n]",
    ] {
        let q = parse_query(src).unwrap();
        let seg = disj_segments(&q).unwrap();
        let r = 5;
        let mut checks = 0;
        for _ in 0..40 {
            let s: Vec<bool> = (0..r).map(|_| rng.gen_bool(0.5)).collect();
            let t: Vec<bool> = (0..r).map(|_| rng.gen_bool(0.5)).collect();
            let events = seg.document(&s, &t);
            let doc = fx_dom::Document::from_sax(&events).unwrap();
            assert_eq!(
                fx_eval::bool_eval(&q, &doc).unwrap(),
                sets_intersect(&s, &t),
                "{src}"
            );
            checks += 1;
        }
        println!("{src:<30}  {r:>4}  {checks:>7}  {:>9}", "ok");
    }
    println!("shape check: D_s,t matches Q iff the sets intersect — for every query.\n");
}

fn e6_depth_general() {
    header("E6", "Theorem 7.14 — general depth bound (Figs. 16-19)");
    println!(
        "{:<36}  {:>4}  {:>9}  {:>8}",
        "query", "|S|", "verified", "LB bits"
    );
    for src in [
        "//a/b",
        "/r/a/b[c]",
        "/a[c[.//e and f] and b > 5]",
        "//d[f and a[b and c]]",
    ] {
        let q = parse_query(src).unwrap();
        let db = depth_bound(&q).unwrap();
        let report = db
            .fooling_set(16)
            .verify(&q)
            .expect("Theorem 7.14 construction verifies");
        println!(
            "{src:<36}  {:>4}  {:>9}  {:>8}",
            report.size, "ok", report.bits
        );
    }
    println!("shape check: every D_i matches, every D_i,j crossing fails.\n");
}

fn e7_example_run() {
    header("E7", "Section 8.4 — the Fig. 22 example run");
    let q = parse_query("/a[c[.//e and f] and b]").unwrap();
    let events = fx_xml::parse("<a><c><d/><e/><f/></c><b/><c/></a>").unwrap();
    let (steps, verdict) = fx_core::trace(&q, &events).unwrap();
    print!("{}", fx_core::render(&steps));
    println!("verdict: {verdict}");
    println!("shape check: ≤3 tuples throughout (= FS(Q)); <d> ignored; second <c> ignored.\n");
}

fn e8_space_sweeps() {
    header("E8", "Theorem 8.8 — the filter's space, factor by factor");

    println!("-- |Q| sweep (star queries /root[c0 and … and ck-1], flat documents) --");
    println!(
        "{:>5}  {:>6}  {:>6}  {:>10}",
        "k=|F|", "FS(Q)", "rows", "bits"
    );
    for k in [2usize, 4, 8, 16, 32] {
        let q = wl::star(k);
        let names: Vec<String> = (0..k).map(|i| format!("c{i}")).collect();
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let d = wl::wide("root", &name_refs, k * 2);
        let mut f = StreamFilter::new(&q).unwrap();
        f.process_all(&d.to_events());
        println!(
            "{k:>5}  {:>6}  {:>6}  {:>10}",
            frontier_size(&q),
            f.stats().max_rows,
            f.stats().max_bits
        );
    }

    println!("\n-- FS(Q) vs |Q|: balanced twigs (FS ≪ |Q|) --");
    println!(
        "{:>6}  {:>5}  {:>6}  {:>6}  {:>10}",
        "depth", "|Q|", "FS(Q)", "rows", "bits"
    );
    for depth in [1usize, 2, 3, 4, 5] {
        let q = wl::balanced_twig(depth);
        let cd = fx_analysis::canonical_document(&q).unwrap();
        let mut f = StreamFilter::new(&q).unwrap();
        f.process_all(&cd.doc.to_events());
        println!(
            "{depth:>6}  {:>5}  {:>6}  {:>6}  {:>10}",
            q.len(),
            frontier_size(&q),
            f.stats().max_rows,
            f.stats().max_bits
        );
    }

    println!("\n-- r sweep (//a[b and c] on nested documents) --");
    let q = parse_query("//a[b and c]").unwrap();
    println!(
        "{:>6}  {:>6}  {:>12}  {:>14}",
        "r", "rows", "bits", "bound (8.8)"
    );
    for r in [1usize, 4, 16, 64, 256] {
        let d = wl::nested("a", r, "<b/><c/>");
        let mut f = StreamFilter::new(&q).unwrap();
        f.process_all(&d.to_events());
        println!(
            "{r:>6}  {:>6}  {:>12}  {:>14}",
            f.stats().max_rows,
            f.stats().max_bits,
            f.stats().theorem_bound_bits(r)
        );
    }

    println!("\n-- d sweep (/a/b on depth documents) --");
    let q = parse_query("/a/b").unwrap();
    println!("{:>6}  {:>6}  {:>12}", "d", "rows", "bits");
    for d in [4usize, 64, 1024, 16384] {
        let doc = wl::depth_document(d - 1);
        let mut f = StreamFilter::new(&q).unwrap();
        f.process_all(&doc.to_events());
        println!(
            "{d:>6}  {:>6}  {:>12}",
            f.stats().max_rows,
            f.stats().max_bits
        );
    }

    println!("\n-- w sweep (/r[f = \"nope\" and ok] on long-text documents) --");
    let q = parse_query("/r[f = \"nope\" and ok]").unwrap();
    println!("{:>8}  {:>12}  {:>14}", "w", "buffer bytes", "bits");
    for w in [16usize, 256, 4096, 65536] {
        let doc = wl::long_text("r", "f", w);
        let mut f = StreamFilter::new(&q).unwrap();
        f.process_all(&doc.to_events());
        println!(
            "{w:>8}  {:>12}  {:>14}",
            f.stats().max_buffer_bytes,
            f.stats().max_bits
        );
    }
    println!("shape check: rows track FS/|Q|·r; bits add log d; buffer tracks w linearly.\n");
}

fn e9_dfa_blowup() {
    header("E9", "automata blowup (§1.2): //a/*^k/b, alphabet {a,b}");
    println!(
        "{:>3}  {:>10}  {:>14}  {:>10}  {:>14}  {:>9}",
        "k", "DFA states", "DFA bits", "NFA bits", "frontier bits", "DFA/front"
    );
    for k in [2usize, 4, 6, 8, 10, 12] {
        let stars = "/*".repeat(k);
        let q = parse_query(&format!("//a{stars}/b")).unwrap();
        let mut dfa = LazyDfaFilter::new(&q).unwrap();
        let states = dfa.materialize(&["a", "b"]);
        let doc = wl::nested("a", k + 2, "<b/>");
        let events = doc.to_events();
        let mut nfa = NfaFilter::new(&q).unwrap();
        nfa.run_stream(&events);
        let mut frontier = StreamFilter::new(&q).unwrap();
        frontier.run_stream(&events);
        dfa.run_stream(&events);
        println!(
            "{k:>3}  {states:>10}  {:>14}  {:>10}  {:>14}  {:>9}",
            dfa.peak_memory_bits(),
            nfa.peak_memory_bits(),
            frontier.peak_memory_bits(),
            ratio(dfa.peak_memory_bits(), frontier.peak_memory_bits())
        );
    }
    println!("shape check: DFA grows ~2^k; NFA and frontier grow linearly; crossover at k=2.\n");
}

fn e10_throughput() {
    header("E10", "throughput (Õ(|D|·|Q|·r) time, Thm 8.8)");
    let mut rng = SmallRng::seed_from_u64(8010);
    let doc = wl::auction_site(
        &mut rng,
        &wl::XmarkConfig {
            items: 60,
            auctions: 40,
            people: 30,
            category_depth: 5,
        },
    );
    let events = doc.to_events();
    println!("document: XMark-lite, {} events", events.len());
    let budget = Duration::from_millis(300);

    println!("\n-- twig query //item[price > 300] --");
    let q = parse_query("//item[price > 300]").unwrap();
    let mut frontier = StreamFilter::new(&q).unwrap();
    let mut buf = BufferingFilter::new(&q);
    println!("{:<16} {:>14}  {:>12}", "engine", "events/sec", "peak bits");
    println!(
        "{:<16} {:>14.0}  {:>12}",
        "frontier",
        throughput(&mut frontier, &events, budget),
        frontier.peak_memory_bits()
    );
    println!(
        "{:<16} {:>14.0}  {:>12}",
        "buffer-all",
        throughput(&mut buf, &events, budget),
        buf.peak_memory_bits()
    );

    println!("\n-- linear query /site/regions/asia/item --");
    let q = parse_query("/site/regions/asia/item").unwrap();
    let mut frontier = StreamFilter::new(&q).unwrap();
    let mut nfa = NfaFilter::new(&q).unwrap();
    let mut dfa = LazyDfaFilter::new(&q).unwrap();
    println!("{:<16} {:>14}  {:>12}", "engine", "events/sec", "peak bits");
    println!(
        "{:<16} {:>14.0}  {:>12}",
        "frontier",
        throughput(&mut frontier, &events, budget),
        frontier.peak_memory_bits()
    );
    println!(
        "{:<16} {:>14.0}  {:>12}",
        "nfa",
        throughput(&mut nfa, &events, budget),
        nfa.peak_memory_bits()
    );
    println!(
        "{:<16} {:>14.0}  {:>12}",
        "lazy-dfa",
        throughput(&mut dfa, &events, budget),
        dfa.peak_memory_bits()
    );

    println!("\n-- recursive documents: time scales with r --");
    let q = parse_query("//a[b and c]").unwrap();
    println!("{:>6}  {:>14}", "r", "events/sec");
    for r in [1usize, 16, 128] {
        let d = wl::nested("a", r, "<b/><c/>");
        let ev = d.to_events();
        let mut f = StreamFilter::new(&q).unwrap();
        println!("{r:>6}  {:>14.0}", throughput(&mut f, &ev, budget));
    }
    println!();
}

fn e12_full_eval_overhead() {
    header(
        "E12",
        "full evaluation vs filtering — the [5] buffering cost, measured",
    );
    // Worst case for full evaluation: n output candidates whose ancestor
    // predicate resolves only at the very end of the document.
    let q = parse_query("/a[x]/b").unwrap();
    println!(
        "{:>8}  {:>12}  {:>12}  {:>14}  {:>10}",
        "cands", "filter bits", "report bits", "peak pendings", "selected"
    );
    for n in [10usize, 100, 1000, 10000] {
        let xml = format!("<a>{}<x/></a>", "<b/>".repeat(n));
        let events = fx_xml::parse(&xml).unwrap();
        let mut filt = StreamFilter::new(&q).unwrap();
        filt.process_all(&events);
        let mut rep = StreamFilter::new_reporting(&q).unwrap();
        rep.process_all(&events);
        let selected = rep.matched_positions().unwrap().len();
        let pend = rep.peak_pending_positions();
        let report_bits = rep.stats().max_bits + (pend as u64) * 64;
        println!(
            "{n:>8}  {:>12}  {report_bits:>12}  {pend:>14}  {selected:>10}",
            filt.stats().max_bits
        );
    }
    println!(
        "shape check: filtering stays O(1); full evaluation buffers Θ(#unresolved candidates)"
    );
    println!("— exactly the separation the paper's follow-up [5] proves necessary.\n");
}

fn e11_multi_query() {
    header("E11", "multi-query dissemination scalability");
    let mut rng = SmallRng::seed_from_u64(8011);
    let doc = wl::auction_site(&mut rng, &wl::XmarkConfig::default());
    let events = doc.to_events();
    println!(
        "{:>7}  {:>14}  {:>14}  {:>14}",
        "queries", "events/sec", "total bits", "bits/query"
    );
    for n in [1usize, 8, 64, 256, 1024] {
        let cfg = wl::RandomQueryConfig {
            max_nodes: 6,
            ..Default::default()
        };
        let queries: Vec<Query> = (0..n)
            .map(|_| wl::random_redundancy_free(&mut rng, &cfg))
            .collect();
        let mut bank = MultiFilter::new(&queries).unwrap();
        let start = std::time::Instant::now();
        let mut processed = 0u64;
        while start.elapsed() < Duration::from_millis(200) {
            for e in &events {
                bank.process(e);
            }
            processed += events.len() as u64;
        }
        let eps = processed as f64 / start.elapsed().as_secs_f64();
        let bits = bank.total_max_bits();
        println!("{n:>7}  {eps:>14.0}  {bits:>14}  {:>14}", bits / n as u64);
    }
    println!("shape check: per-query state is flat; throughput degrades ~linearly in #queries.\n");
}
