//! The `scale/*` series: multi-core scale-out throughput at 1/2/4/8
//! threads, aggregate MB/s over the full parse→filter pipeline.
//!
//! * `scale/doc-sharded/{N}` — a corpus of many small XMark documents
//!   fanned across N worker threads via `Engine::run_sharded` (each
//!   worker a full cloned session with a frozen-snapshot parser). The
//!   embarrassingly-parallel axis: MB/s should scale near-linearly
//!   until memory bandwidth bites.
//! * `scale/bank-sharded/{K}` — one large document against a 1024-query
//!   shared-prefix bank partitioned into K shard banks fed from a
//!   single parse through the broadcast `BatchRing`. Scales the
//!   per-event bank work, not the parse (which stays serial), so the
//!   ceiling is lower — Amdahl applies to the parse fraction.
//!
//! Measured numbers are appended to `BENCH_throughput.json` at the repo
//! root. `tests/sharded_differential.rs` proves the outputs are
//! thread-count-invariant; this file prices them.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fx_engine::{Engine, IndexPolicy};
use fx_workloads as wl;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn xmark_corpus(docs: usize, scale: usize) -> Vec<String> {
    (0..docs)
        .map(|i| {
            let mut rng = SmallRng::seed_from_u64(42 + i as u64);
            wl::auction_site(
                &mut rng,
                &wl::XmarkConfig {
                    items: 10 * scale,
                    auctions: 6 * scale,
                    people: 5 * scale,
                    category_depth: 4,
                },
            )
            .to_xml()
        })
        .collect()
}

/// Document sharding: N threads over a 64-document XMark corpus.
fn bench_doc_sharded(c: &mut Criterion) {
    let corpus = xmark_corpus(64, 2);
    let bytes: u64 = corpus.iter().map(|d| d.len() as u64).sum();
    let engine = Engine::builder()
        .query_str("//item[price > 300]")
        .query_str("/site/people/person[name]")
        .query_str("//keyword")
        .build()
        .unwrap();

    let mut group = c.benchmark_group("scale/doc-sharded");
    group.throughput(Throughput::Bytes(bytes));
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let verdicts = engine.run_sharded(&corpus, threads).unwrap();
                    verdicts.iter().filter(|v| v.any()).count()
                });
            },
        );
    }
    group.finish();
}

/// Bank sharding: one ~1 MB shared-prefix document against a
/// 1024-query bank split into K shard banks.
fn bench_bank_sharded(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(0xBEC + 1024);
    let bank = wl::random_shared_prefix_bank(
        &mut rng,
        &wl::SharedPrefixBankConfig {
            families: 64,
            queries_per_family: 16,
            prefix_depth: 3,
            cross_family_tails: false,
        },
    );
    let xml = bank.document_repeated(&[0, 1], 4, 8, 32);
    let engine = Engine::builder()
        .queries(bank.queries.iter().cloned())
        .index(IndexPolicy::SharedPrefix)
        .build()
        .unwrap();

    let mut group = c.benchmark_group("scale/bank-sharded");
    group.throughput(Throughput::Bytes(xml.len() as u64));
    for shards in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(shards),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let out = engine.run_bank_sharded(xml.as_bytes(), shards).unwrap();
                    out.matched().iter().filter(|&&m| m).count()
                });
            },
        );
    }
    group.finish();
}

/// The acceptance gate: on a ≥4-way machine, document sharding at 4
/// threads must deliver at least 3× the single-thread throughput on
/// the embarrassingly-parallel corpus. Skipped in smoke (`--test`)
/// mode and on narrower machines (CI containers are often 1–2 wide),
/// where the ratio measures the scheduler, not the architecture.
fn speedup_gate(_c: &mut Criterion) {
    let smoke = std::env::args().any(|a| a == "--test");
    let width = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if smoke || width < 4 {
        eprintln!("scale/speedup-gate: skipped (smoke={smoke}, parallelism={width})");
        return;
    }
    let corpus = xmark_corpus(64, 2);
    let engine = Engine::builder()
        .query_str("//item[price > 300]")
        .query_str("/site/people/person[name]")
        .query_str("//keyword")
        .build()
        .unwrap();
    let time = |threads: usize| {
        engine.run_sharded(&corpus, threads).unwrap(); // warm
        (0..5)
            .map(|_| {
                let t = std::time::Instant::now();
                engine.run_sharded(&corpus, threads).unwrap();
                t.elapsed()
            })
            .min()
            .unwrap()
    };
    let t1 = time(1);
    let t4 = time(4);
    let speedup = t1.as_secs_f64() / t4.as_secs_f64();
    eprintln!("scale/speedup-gate: 1→4 threads speedup {speedup:.2}× (parallelism {width})");
    assert!(
        speedup >= 3.0,
        "document sharding must reach ≥3× at 4 threads on a {width}-wide \
         machine; measured {speedup:.2}× ({t1:?} → {t4:?})"
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_doc_sharded, bench_bank_sharded, speedup_gate
}
criterion_main!(benches);
