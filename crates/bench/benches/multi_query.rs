//! Experiment E11: multi-query dissemination — throughput vs. the number
//! of concurrently registered queries, for the naive per-query bank and
//! the shared-prefix indexed bank.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fx_core::{CompiledResidual, IndexedBank, MultiFilter};
use fx_engine::{Engine, IndexPolicy};
use fx_workloads as wl;
use fx_xpath::Query;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_bank_sizes(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(1101);
    let doc = wl::auction_site(&mut rng, &wl::XmarkConfig::default());
    let events = doc.to_events();
    let mut group = c.benchmark_group("multi_query");
    for n in [1usize, 16, 128] {
        let cfg = wl::RandomQueryConfig {
            max_nodes: 6,
            ..Default::default()
        };
        let queries: Vec<Query> = (0..n)
            .map(|_| wl::random_redundancy_free(&mut rng, &cfg))
            .collect();
        group.throughput(Throughput::Elements((events.len() * n) as u64));
        // The bare bank (with verdict-decided short-circuiting)…
        group.bench_with_input(BenchmarkId::new("multifilter", n), &queries, |b, qs| {
            let mut bank = MultiFilter::new(qs).unwrap();
            b.iter(|| {
                for e in &events {
                    bank.process(e);
                }
                // Iterator form: the fan-out count without allocating a
                // Vec<usize> per document on the hot path.
                bank.matching().count()
            });
        });
        // …vs the canonical engine session (which runs the same
        // short-circuiting bank under the hood, plus session bookkeeping).
        group.bench_with_input(BenchmarkId::new("engine-session", n), &queries, |b, qs| {
            let engine = Engine::builder()
                .queries(qs.iter().cloned())
                .build()
                .unwrap();
            let mut session = engine.session();
            b.iter(|| {
                for e in &events {
                    session.push(e);
                }
                session.finish().unwrap().matching().count()
            });
        });
        // …and the selection bank: same documents, but every confirmed
        // match is routed to a (counting) sink — the full-fledged
        // dissemination path.
        group.bench_with_input(BenchmarkId::new("engine-select", n), &queries, |b, qs| {
            let engine = Engine::builder()
                .queries(qs.iter().cloned())
                .mode(fx_engine::Mode::Select)
                .build()
                .unwrap();
            let mut session = engine.session();
            b.iter(|| {
                let mut delivered = 0usize;
                for e in &events {
                    session.push_to(e, &mut |_m: fx_engine::Match| delivered += 1);
                }
                session.finish().unwrap();
                delivered
            });
        });
    }
    group.finish();
}

/// The indexed series: overlapping query families (16 queries per
/// shared prefix) against documents that activate only a couple of
/// families. The naive bank pays Θ(n) per event; the indexed bank pays
/// for the shared trie plus the activated families only, so per-event
/// work grows sublinearly as the bank goes 1 → 16 → 128 → 1024.
fn bench_shared_prefix_index(c: &mut Criterion) {
    let mut group = c.benchmark_group("multi_query_indexed");
    for n in [1usize, 16, 128, 1024] {
        let mut rng = SmallRng::seed_from_u64(0xBEC + n as u64);
        let families = (n / 16).max(1);
        let bank = wl::random_shared_prefix_bank(
            &mut rng,
            &wl::SharedPrefixBankConfig {
                families,
                queries_per_family: n.min(16),
                prefix_depth: 3,
                cross_family_tails: false,
            },
        );
        assert_eq!(bank.len(), n);
        let active: Vec<usize> = (0..families.min(2)).collect();
        let xml = bank.document(&active, 4, 8);
        let events = fx_xml::parse(&xml).unwrap();
        group.throughput(Throughput::Elements((events.len() * n) as u64));
        group.bench_with_input(BenchmarkId::new("naive", n), &bank.queries, |b, qs| {
            let mut mf = MultiFilter::new(qs).unwrap();
            b.iter(|| {
                for e in &events {
                    mf.process(e);
                }
                mf.matching().count()
            });
        });
        group.bench_with_input(BenchmarkId::new("indexed", n), &bank.queries, |b, qs| {
            let mut ib = IndexedBank::new(qs).unwrap();
            b.iter(|| {
                for e in &events {
                    ib.process(e);
                }
                ib.matching().count()
            });
        });
        group.bench_with_input(
            BenchmarkId::new("engine-indexed", n),
            &bank.queries,
            |b, qs| {
                let engine = Engine::builder()
                    .queries(qs.iter().cloned())
                    .index(IndexPolicy::SharedPrefix)
                    .build()
                    .unwrap();
                let mut session = engine.session();
                b.iter(|| {
                    for e in &events {
                        session.push(e);
                    }
                    session.finish().unwrap().matching().count()
                });
            },
        );
        // End-to-end: the same indexed session driven straight from
        // bytes through `run_reader`, i.e. parse + intern + index in one
        // loop (the zero-copy interned path — no owned `Event` is ever
        // materialized). The pre-parsed series above stays for
        // comparability; the gap between the two is the parse cost.
        group.bench_with_input(
            BenchmarkId::new("engine-indexed-reader", n),
            &bank.queries,
            |b, qs| {
                let engine = Engine::builder()
                    .queries(qs.iter().cloned())
                    .index(IndexPolicy::SharedPrefix)
                    .build()
                    .unwrap();
                let mut session = engine.session();
                b.iter(|| {
                    session
                        .run_reader(xml.as_bytes())
                        .unwrap()
                        .matching()
                        .count()
                });
            },
        );
    }
    group.finish();
}

/// The space + activation-rate series for the shared-prefix family: the
/// same workload as [`bench_shared_prefix_index`], but reporting the
/// paper's *memory* axis — total peak logical bits, indexed vs naive —
/// plus how often the index actually spawns per-query state. Printed
/// once (criterion times throughput; this series is about bits, which
/// don't need repetition). The 1024-query row is asserted: the indexed
/// bank's total must sit below the naive bank's, or the index has
/// stopped earning its keep on its own workload.
fn report_space_series(_c: &mut Criterion) {
    println!(
        "space: multi_query_indexed — total peak bits, indexed vs naive \
         (shared-prefix family, 2 active families)"
    );
    for n in [16usize, 128, 1024] {
        let mut rng = SmallRng::seed_from_u64(0xBEC + n as u64);
        let families = (n / 16).max(1);
        let bank = wl::random_shared_prefix_bank(
            &mut rng,
            &wl::SharedPrefixBankConfig {
                families,
                queries_per_family: n.min(16),
                prefix_depth: 3,
                cross_family_tails: false,
            },
        );
        let active: Vec<usize> = (0..families.min(2)).collect();
        let xml = bank.document(&active, 4, 8);
        let events = fx_xml::parse(&xml).unwrap();
        let builds_before = CompiledResidual::total_builds();
        let mut ib = IndexedBank::new(&bank.queries).unwrap();
        let builds = CompiledResidual::total_builds() - builds_before;
        let mut mf = MultiFilter::new(&bank.queries).unwrap();
        for e in &events {
            ib.process(e);
            mf.process(e);
        }
        let stats = ib.space_stats();
        println!(
            "space: n={n:<4} naive_bits={:<7} indexed_bits={:<7} \
             (trie {} + residuals {})  activations/event={:.4}  \
             residual_builds={builds} for {} groups",
            mf.total_max_bits(),
            stats.total_bits,
            stats.shared_trie_bits,
            stats.residual_bits,
            stats.activation_rate(),
            stats.groups,
        );
        assert_eq!(
            builds, stats.residual_pool as u64,
            "one compiled-residual build per canonical form"
        );
        if n == 1024 {
            assert!(
                stats.total_bits < mf.total_max_bits(),
                "indexed total ({}) must undercut naive total ({}) at n=1024",
                stats.total_bits,
                mf.total_max_bits()
            );
        }
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15).measurement_time(std::time::Duration::from_secs(3));
    targets = report_space_series, bench_bank_sizes, bench_shared_prefix_index
}
criterion_main!(benches);
