//! Experiment E11: multi-query dissemination — throughput vs. the number
//! of concurrently registered queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fx_core::MultiFilter;
use fx_engine::Engine;
use fx_workloads as wl;
use fx_xpath::Query;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_bank_sizes(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(1101);
    let doc = wl::auction_site(&mut rng, &wl::XmarkConfig::default());
    let events = doc.to_events();
    let mut group = c.benchmark_group("multi_query");
    for n in [1usize, 16, 128] {
        let cfg = wl::RandomQueryConfig {
            max_nodes: 6,
            ..Default::default()
        };
        let queries: Vec<Query> = (0..n)
            .map(|_| wl::random_redundancy_free(&mut rng, &cfg))
            .collect();
        group.throughput(Throughput::Elements((events.len() * n) as u64));
        // The bare bank (with verdict-decided short-circuiting)…
        group.bench_with_input(BenchmarkId::new("multifilter", n), &queries, |b, qs| {
            let mut bank = MultiFilter::new(qs).unwrap();
            b.iter(|| {
                for e in &events {
                    bank.process(e);
                }
                // Iterator form: the fan-out count without allocating a
                // Vec<usize> per document on the hot path.
                bank.matching().count()
            });
        });
        // …vs the canonical engine session (which runs the same
        // short-circuiting bank under the hood, plus session bookkeeping).
        group.bench_with_input(BenchmarkId::new("engine-session", n), &queries, |b, qs| {
            let engine = Engine::builder()
                .queries(qs.iter().cloned())
                .build()
                .unwrap();
            let mut session = engine.session();
            b.iter(|| {
                for e in &events {
                    session.push(e);
                }
                session.finish().unwrap().matching().count()
            });
        });
        // …and the selection bank: same documents, but every confirmed
        // match is routed to a (counting) sink — the full-fledged
        // dissemination path.
        group.bench_with_input(BenchmarkId::new("engine-select", n), &queries, |b, qs| {
            let engine = Engine::builder()
                .queries(qs.iter().cloned())
                .mode(fx_engine::Mode::Select)
                .build()
                .unwrap();
            let mut session = engine.session();
            b.iter(|| {
                let mut delivered = 0usize;
                for e in &events {
                    session.push_to(e, &mut |_m: fx_engine::Match| delivered += 1);
                }
                session.finish().unwrap();
                delivered
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_bank_sizes
}
criterion_main!(benches);
