//! Substrate benchmarks: XML event parsing and XPath query parsing (not
//! in the paper, but they dominate end-to-end latency and guard the
//! substrate against regressions).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fx_workloads as wl;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_xml_parse(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(7);
    let doc = wl::auction_site(
        &mut rng,
        &wl::XmarkConfig {
            items: 40,
            auctions: 30,
            people: 20,
            category_depth: 4,
        },
    );
    let xml = doc.to_xml();
    let mut group = c.benchmark_group("parsing/xml");
    group.throughput(Throughput::Bytes(xml.len() as u64));
    group.bench_function("parse", |b| b.iter(|| fx_xml::parse(&xml).unwrap()));
    let events = doc.to_events();
    group.bench_function("write", |b| b.iter(|| fx_xml::to_xml(&events).unwrap()));
    group.bench_function("build_dom", |b| {
        b.iter(|| fx_dom::from_events(&events).unwrap())
    });
    group.finish();
}

fn bench_query_parse(c: &mut Criterion) {
    let sources = [
        "/a/b",
        "//item[price > 300]",
        "/a[c[.//e and f] and b > 5]/b",
        "/a[*/b > 5 and c/b//d > 12 and .//d < 30]",
        "/a[matches(b, \"^A.*B$\") and starts-with(c, \"x\") and d + 2 * 3 = 8]",
    ];
    let mut group = c.benchmark_group("parsing/xpath");
    group.bench_function("parse_5_queries", |b| {
        b.iter(|| {
            sources
                .iter()
                .map(|s| fx_xpath::parse_query(s).unwrap().len())
                .sum::<usize>()
        })
    });
    let q = fx_xpath::parse_query(sources[3]).unwrap();
    group.bench_function("analyze_redundancy_free", |b| {
        b.iter(|| fx_analysis::redundancy_free(&q).len())
    });
    group.bench_function("canonical_document", |b| {
        b.iter(|| fx_analysis::canonical_document(&q).unwrap().doc.len())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_xml_parse, bench_query_parse
}
criterion_main!(benches);
