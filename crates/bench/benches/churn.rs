//! Experiment E12: query churn on a live bank. Three series:
//!
//! - `churn/sub-unsub-pair`: one subscribe + unsubscribe of a
//!   known-form query against a warm bank of n standing queries — the
//!   steady-state churn op the dissemination server performs at
//!   document boundaries. O(|query|) trie work, zero compiles.
//! - `churn/incremental-build` vs `churn/batch-build`: growing a bank
//!   one `subscribe` at a time versus the batch constructor, so the
//!   incremental path's overhead stays visible.
//! - `churn/server-publish`: the end-to-end dissemination server — one
//!   published document per iteration through the interned reader path,
//!   fanned out to n live subscriptions, with a sub/unsub pair landed
//!   between documents.
//!
//! The parity series (printed once, asserted) pins the steady-state
//! guarantee behind all three: churn on a warm bank never recompiles a
//! residual, and the churned bank's verdicts equal a from-scratch
//! build's.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fx_core::IndexedBank;
use fx_server::{DisseminationServer, ServerConfig};
use fx_workloads as wl;
use fx_xpath::Query;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn family_bank(n: usize) -> (Vec<Query>, String) {
    let mut rng = SmallRng::seed_from_u64(0xC0DE + n as u64);
    let families = (n / 16).max(1);
    let bank = wl::random_shared_prefix_bank(
        &mut rng,
        &wl::SharedPrefixBankConfig {
            families,
            queries_per_family: n.min(16),
            prefix_depth: 3,
            cross_family_tails: false,
        },
    );
    let active: Vec<usize> = (0..families.min(2)).collect();
    let xml = bank.document(&active, 4, 8);
    (bank.queries, xml)
}

fn bench_churn_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("churn");
    for n in [16usize, 128, 1024] {
        let (queries, _) = family_bank(n);
        // One churn pair against a warm bank: the form is already
        // pooled, so this is pure trie + bookkeeping work.
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::new("sub-unsub-pair", n), &queries, |b, qs| {
            let mut bank = IndexedBank::new(qs).unwrap();
            let probe = qs[qs.len() / 2].clone();
            let builds = bank.residual_builds();
            b.iter(|| {
                let id = bank.subscribe(&probe).unwrap();
                bank.unsubscribe(id)
            });
            assert_eq!(
                bank.residual_builds(),
                builds,
                "steady-state churn must not recompile residuals"
            );
        });
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(
            BenchmarkId::new("incremental-build", n),
            &queries,
            |b, qs| {
                b.iter(|| {
                    let mut bank = IndexedBank::new(&[]).unwrap();
                    for q in qs {
                        bank.subscribe(q).unwrap();
                    }
                    bank.len()
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("batch-build", n), &queries, |b, qs| {
            b.iter(|| IndexedBank::new(qs).unwrap().len());
        });
    }
    group.finish();
}

fn bench_server_publish(c: &mut Criterion) {
    let mut group = c.benchmark_group("churn");
    for n in [16usize, 128] {
        let (queries, xml) = family_bank(n);
        group.throughput(Throughput::Bytes(xml.len() as u64));
        group.bench_with_input(BenchmarkId::new("server-publish", n), &queries, |b, qs| {
            let server = DisseminationServer::start(ServerConfig::default());
            let handle = server.handle();
            let subs: Vec<_> = qs
                .iter()
                .map(|q| handle.subscribe(q.clone()).unwrap())
                .collect();
            let probe = qs[0].clone();
            let builds_warm = handle.stats().unwrap().residual_builds;
            b.iter(|| {
                handle.publish_str(&xml).unwrap();
                // Land a churn pair behind the document, then use
                // the stats barrier to wait until the worker has
                // fully processed both.
                let sub = handle.subscribe(probe.clone()).unwrap();
                handle.unsubscribe(sub.id()).unwrap();
                handle.stats().unwrap().documents
            });
            let stats = server.shutdown();
            assert_eq!(stats.parse_errors, 0);
            assert_eq!(
                stats.residual_builds, builds_warm,
                "server churn must not recompile residuals"
            );
            drop(subs);
        });
    }
    group.finish();
}

/// Steady-state parity, printed once and asserted: heavy churn on a
/// warm bank compiles nothing, and the survivor bank's verdicts match a
/// from-scratch build over the same queries.
fn report_churn_parity(_c: &mut Criterion) {
    println!("churn: steady-state parity — churned bank vs from-scratch bank");
    for n in [16usize, 128, 1024] {
        let (queries, xml) = family_bank(n);
        let events = fx_xml::parse(&xml).unwrap();
        let mut bank = IndexedBank::new(&queries).unwrap();
        let builds = bank.residual_builds();
        // 4 churn waves: duplicate half the bank, retire the duplicates,
        // compact, stream a document in between.
        for _ in 0..4 {
            let ids: Vec<_> = queries
                .iter()
                .take(n / 2)
                .map(|q| bank.subscribe(q).unwrap())
                .collect();
            for e in &events {
                bank.process(e);
            }
            for id in ids {
                assert!(bank.unsubscribe(id));
            }
            bank.compact();
        }
        for e in &events {
            bank.process(e);
        }
        let mut fresh = IndexedBank::new(&queries).unwrap();
        for e in &events {
            fresh.process(e);
        }
        let survivors = bank.matching_queries();
        assert_eq!(
            survivors,
            fresh.matching_queries(),
            "churned bank diverged from a from-scratch build at n={n}"
        );
        assert_eq!(
            bank.residual_builds(),
            builds,
            "churn recompiled a residual at n={n}"
        );
        println!(
            "churn: n={n:<4} matching={:<4} residual_builds={builds} (flat across 4 waves) \
             compactions={}",
            survivors.len(),
            bank.compactions(),
        );
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15).measurement_time(std::time::Duration::from_secs(3));
    targets = report_churn_parity, bench_churn_ops, bench_server_publish
}
criterion_main!(benches);
