//! Experiments E1–E3 as benchmarks: the cost of building and verifying
//! the lower-bound constructions, and of probing the filter's state space
//! (these also serve as regression guards for the constructions' sizes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fx_core::StreamFilter;
use fx_lowerbounds::{depth_bound, disj_segments, frontier_bound, probe_fooling_set};
use fx_xpath::parse_query;

fn bench_frontier_construction(c: &mut Criterion) {
    let q = parse_query("/a[c[.//e and f] and b > 5]").unwrap();
    let mut group = c.benchmark_group("lower_bounds/frontier_simple");
    group.bench_function("build", |b| {
        b.iter(|| frontier_bound(&q, None).unwrap());
    });
    let fb = frontier_bound(&q, None).unwrap();
    group.bench_function("verify", |b| {
        b.iter(|| fb.fooling.verify(&q).unwrap());
    });
    group.bench_function("probe", |b| {
        b.iter(|| probe_fooling_set(|| StreamFilter::new(&q).unwrap(), &fb.fooling));
    });
    group.finish();
}

fn bench_disj_documents(c: &mut Criterion) {
    let q = parse_query("//a[b and c]").unwrap();
    let seg = disj_segments(&q).unwrap();
    let mut group = c.benchmark_group("lower_bounds/recursion");
    for r in [16usize, 256, 4096] {
        let s = vec![true; r];
        let t = vec![false; r];
        group.bench_with_input(BenchmarkId::new("build_and_filter", r), &r, |b, _| {
            b.iter(|| {
                let events = seg.document(&s, &t);
                let mut f = StreamFilter::new(&q).unwrap();
                f.process_all(&events);
                f.result()
            });
        });
    }
    group.finish();
}

fn bench_depth_documents(c: &mut Criterion) {
    let q = parse_query("/a/b").unwrap();
    let db = depth_bound(&q).unwrap();
    let mut group = c.benchmark_group("lower_bounds/depth");
    for d in [64usize, 1024, 16384] {
        group.bench_with_input(BenchmarkId::new("build_and_filter", d), &d, |b, _| {
            b.iter(|| {
                let events = db.document(d - 1);
                let mut f = StreamFilter::new(&q).unwrap();
                f.process_all(&events);
                f.result()
            });
        });
    }
    group.finish();
}

fn bench_dfa_blowup(c: &mut Criterion) {
    // E9's cost side: materializing the exponential DFA vs compiling the
    // frontier filter.
    let mut group = c.benchmark_group("baselines/dfa_blowup");
    for k in [4usize, 8] {
        let stars = "/*".repeat(k);
        let q = parse_query(&format!("//a{stars}/b")).unwrap();
        group.bench_with_input(BenchmarkId::new("materialize_dfa", k), &k, |b, _| {
            b.iter(|| {
                let mut dfa = fx_automata::LazyDfaFilter::new(&q).unwrap();
                dfa.materialize(&["a", "b"])
            });
        });
        group.bench_with_input(BenchmarkId::new("compile_frontier", k), &k, |b, _| {
            b.iter(|| StreamFilter::new(&q).unwrap());
        });
    }
    group.finish();
}

/// E12 ablation: the runtime cost of full evaluation (position
/// reporting) over pure filtering, on a pending-heavy document.
fn bench_reporting_ablation(c: &mut Criterion) {
    let q = parse_query("/a[x]/b").unwrap();
    let xml = format!("<a>{}<x/></a>", "<b/>".repeat(500));
    let events = fx_xml::parse(&xml).unwrap();
    let mut group = c.benchmark_group("ablation/full_eval");
    group.bench_function("filter_only", |b| {
        let mut f = StreamFilter::new(&q).unwrap();
        b.iter(|| {
            f.process_all(&events);
            f.result()
        });
    });
    group.bench_function("with_positions", |b| {
        let mut f = StreamFilter::new_reporting(&q).unwrap();
        b.iter(|| {
            f.process_all(&events);
            f.matched_positions().map(|p| p.len())
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_frontier_construction, bench_disj_documents, bench_depth_documents, bench_dfa_blowup, bench_reporting_ablation
}
criterion_main!(benches);
