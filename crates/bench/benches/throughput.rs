//! Experiment E10: filtering throughput — the Õ(|D|·|Q|·r) time claim of
//! Theorem 8.8, the engine comparison on linear and twig queries, and
//! the **byte-throughput (MB/s) series** over the full parse→filter
//! pipeline: parse-only, parse + one filter, and parse + a 1024-query
//! indexed bank, each on the owned-`Event` surface vs the
//! symbol-interned zero-copy surface (`feed_interned` → `SymEvent`),
//! plus `html/*` and `json/*` MB/s series for the non-XML frontends.
//! The measured numbers live in `BENCH_throughput.json` at the repo
//! root, the perf trajectory later PRs measure against.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fx_automata::{BufferingFilter, LazyDfaFilter, NfaFilter};
use fx_core::{CompiledQuery, IndexedBank, StreamFilter};
use fx_engine::Engine;
use fx_workloads as wl;
use fx_xml::StreamingParser;
use fx_xpath::parse_query;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;

fn xmark_events(scale: usize) -> Vec<fx_xml::Event> {
    let mut rng = SmallRng::seed_from_u64(42);
    wl::auction_site(
        &mut rng,
        &wl::XmarkConfig {
            items: 10 * scale,
            auctions: 6 * scale,
            people: 5 * scale,
            category_depth: 4,
        },
    )
    .to_events()
}

/// Engines on a twig query over XMark-lite documents of growing size.
fn bench_twig_engines(c: &mut Criterion) {
    let q = parse_query("//item[price > 300]").unwrap();
    let mut group = c.benchmark_group("throughput/twig");
    for scale in [1usize, 4, 16] {
        let events = xmark_events(scale);
        group.throughput(Throughput::Elements(events.len() as u64));
        group.bench_with_input(BenchmarkId::new("frontier", scale), &events, |b, ev| {
            let mut f = StreamFilter::new(&q).unwrap();
            b.iter(|| {
                f.process_all(ev);
                f.result()
            });
        });
        group.bench_with_input(BenchmarkId::new("buffer-all", scale), &events, |b, ev| {
            let mut f = BufferingFilter::new(&q);
            b.iter(|| f.run_stream(ev));
        });
        // The new canonical surface: a reused engine session fed event
        // by event, to keep its overhead over bare StreamFilter honest.
        group.bench_with_input(
            BenchmarkId::new("engine-session", scale),
            &events,
            |b, ev| {
                let engine = Engine::builder().query(q.clone()).build().unwrap();
                let mut session = engine.session();
                b.iter(|| {
                    for e in ev {
                        session.push(e);
                    }
                    session.finish().unwrap().any()
                });
            },
        );
    }
    group.finish();
}

/// Engines on a linear query (where all four compete).
fn bench_linear_engines(c: &mut Criterion) {
    let q = parse_query("/site/regions/asia/item").unwrap();
    let events = xmark_events(4);
    let mut group = c.benchmark_group("throughput/linear");
    group.throughput(Throughput::Elements(events.len() as u64));
    group.bench_function("frontier", |b| {
        let mut f = StreamFilter::new(&q).unwrap();
        b.iter(|| {
            f.process_all(&events);
            f.result()
        });
    });
    group.bench_function("nfa", |b| {
        let mut f = NfaFilter::new(&q).unwrap();
        b.iter(|| f.run_stream(&events));
    });
    group.bench_function("lazy-dfa", |b| {
        let mut f = LazyDfaFilter::new(&q).unwrap();
        b.iter(|| f.run_stream(&events));
    });
    group.finish();
}

/// Time scaling with recursion depth r (the r factor of Thm 8.8).
fn bench_recursion_scaling(c: &mut Criterion) {
    let q = parse_query("//a[b and c]").unwrap();
    let mut group = c.benchmark_group("throughput/recursion");
    for r in [1usize, 16, 64] {
        let events = wl::nested("a", r, "<b/><c/>").to_events();
        group.throughput(Throughput::Elements(events.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(r), &events, |b, ev| {
            let mut f = StreamFilter::new(&q).unwrap();
            b.iter(|| {
                f.process_all(ev);
                f.result()
            });
        });
    }
    group.finish();
}

/// Time scaling with query size |Q|.
fn bench_query_size_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("throughput/query_size");
    let events = xmark_events(2);
    for k in [2usize, 8, 32] {
        let q = wl::star(k);
        group.throughput(Throughput::Elements(events.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(k), &events, |b, ev| {
            let mut f = StreamFilter::new(&q).unwrap();
            b.iter(|| {
                f.process_all(ev);
                f.result()
            });
        });
    }
    group.finish();
}

/// The xmark document as a byte stream, for the MB/s series.
fn xmark_xml(scale: usize) -> String {
    let mut rng = SmallRng::seed_from_u64(42);
    wl::auction_site(
        &mut rng,
        &wl::XmarkConfig {
            items: 10 * scale,
            auctions: 6 * scale,
            people: 5 * scale,
            category_depth: 4,
        },
    )
    .to_xml()
}

/// MB/s over the full pipeline, owned vs interned surfaces.
///
/// * `parse-only` — tokenize + event assembly, events dropped.
/// * `parse+filter` — one `//item[price > 300]` frontier filter.
/// * `parse+indexed-1024` — a 1024-query shared-prefix bank.
///
/// The owned rows materialize an `Event` per token (name `String`,
/// attribute `Vec`); the interned rows run the zero-copy path (names
/// interned to `Sym`s, payloads borrowed from parser scratch — no
/// per-event allocation in steady state).
fn bench_byte_throughput(c: &mut Criterion) {
    let xml = xmark_xml(4);
    let mut group = c.benchmark_group("bytes");
    group.throughput(Throughput::Bytes(xml.len() as u64));

    group.bench_with_input(BenchmarkId::new("parse-only", "owned"), &xml, |b, xml| {
        b.iter(|| {
            let mut p = StreamingParser::new();
            let mut n = 0usize;
            p.feed(xml, &mut |_e| n += 1).unwrap();
            p.finish(&mut |_e| n += 1).unwrap();
            n
        });
    });
    group.bench_with_input(
        BenchmarkId::new("parse-only", "interned"),
        &xml,
        |b, xml| {
            // One shared table across iterations: steady state, as a
            // long-running session would run.
            let symbols = Arc::new(fx_xml::Symbols::new());
            b.iter(|| {
                let mut p = StreamingParser::with_symbols(Arc::clone(&symbols));
                let mut n = 0usize;
                p.feed_interned(xml, &mut |_e, _s| n += 1).unwrap();
                p.finish_interned(&mut |_e, _s| n += 1).unwrap();
                n
            });
        },
    );

    // The batch-native surface: the parser's recycled `EventBatch` fed
    // straight from the byte stream (`drive_batched`), the consumer
    // crossed once per ~1024 events instead of once per event. The
    // parser persists across iterations (`reset` keeps every buffer
    // warm) — the steady state a long-lived session runs in.
    group.bench_with_input(
        BenchmarkId::new("batched-parse-only", "interned"),
        &xml,
        |b, xml| {
            let symbols = Arc::new(fx_xml::Symbols::new());
            let mut p = StreamingParser::with_symbols(Arc::clone(&symbols));
            b.iter(|| {
                let mut n = 0usize;
                p.reset();
                p.drive_batched(xml.as_bytes(), &mut |batch| n += batch.len())
                    .unwrap();
                n
            });
        },
    );

    let q = parse_query("//item[price > 300]").unwrap();
    group.bench_with_input(BenchmarkId::new("parse+filter", "owned"), &xml, |b, xml| {
        let mut f = StreamFilter::new(&q).unwrap();
        b.iter(|| {
            let mut p = StreamingParser::new();
            p.feed(xml, &mut |e| f.process(&e)).unwrap();
            p.finish(&mut |e| f.process(&e)).unwrap();
            f.result()
        });
    });
    group.bench_with_input(
        BenchmarkId::new("parse+filter", "interned"),
        &xml,
        |b, xml| {
            let symbols = Arc::new(fx_xml::Symbols::new());
            let compiled = CompiledQuery::compile_with(&q, Arc::clone(&symbols)).unwrap();
            let mut f = StreamFilter::from_compiled(compiled);
            b.iter(|| {
                let mut p = StreamingParser::with_symbols(Arc::clone(&symbols));
                p.feed_interned(xml, &mut |e, s| f.process_sym(e, s))
                    .unwrap();
                p.finish_interned(&mut |e, s| f.process_sym(e, s)).unwrap();
                f.result()
            });
        },
    );

    // Same pipeline through the batch boundary: `drive_batched` fills
    // the parser's recycled batch, the filter walks it per call
    // (`process_batch` + one drain), nothing allocates per event.
    group.bench_with_input(
        BenchmarkId::new("batched-parse+filter", "interned"),
        &xml,
        |b, xml| {
            let symbols = Arc::new(fx_xml::Symbols::new());
            let compiled = CompiledQuery::compile_with(&q, Arc::clone(&symbols)).unwrap();
            let mut f = StreamFilter::from_compiled(compiled);
            let mut p = StreamingParser::with_symbols(Arc::clone(&symbols));
            let mut scratch = fx_xml::AttrBuf::new();
            b.iter(|| {
                p.reset();
                p.drive_batched(xml.as_bytes(), &mut |batch| {
                    f.process_batch(batch, &mut scratch)
                })
                .unwrap();
                f.result()
            });
        },
    );

    // The 1024-query indexed bank over its own shared-prefix workload
    // (two active families), parsed from bytes each iteration.
    let mut rng = SmallRng::seed_from_u64(0xBEC + 1024);
    let bank_queries = wl::random_shared_prefix_bank(
        &mut rng,
        &wl::SharedPrefixBankConfig {
            families: 64,
            queries_per_family: 16,
            prefix_depth: 3,
            cross_family_tails: false,
        },
    );
    let bank_xml = bank_queries.document_repeated(&[0, 1], 4, 8, 8);
    group.throughput(Throughput::Bytes(bank_xml.len() as u64));
    group.bench_with_input(
        BenchmarkId::new("parse+indexed-1024", "owned"),
        &bank_xml,
        |b, xml| {
            let mut ib = IndexedBank::new(&bank_queries.queries).unwrap();
            b.iter(|| {
                let mut p = StreamingParser::new();
                p.feed(xml, &mut |e| ib.process(&e)).unwrap();
                p.finish(&mut |e| ib.process(&e)).unwrap();
                ib.matching().count()
            });
        },
    );
    group.bench_with_input(
        BenchmarkId::new("parse+indexed-1024", "interned"),
        &bank_xml,
        |b, xml| {
            let mut ib = IndexedBank::new(&bank_queries.queries).unwrap();
            let symbols = Arc::clone(ib.symbols());
            b.iter(|| {
                let mut p = StreamingParser::with_symbols(Arc::clone(&symbols));
                let sink = &mut |_m: fx_core::Match| {};
                p.feed_interned(xml, &mut |e, s| ib.process_sym_to(e, s, sink))
                    .unwrap();
                p.finish_interned(&mut |e, s| ib.process_sym_to(e, s, sink))
                    .unwrap();
                ib.matching().count()
            });
        },
    );
    group.bench_with_input(
        BenchmarkId::new("batched-parse+indexed-1024", "interned"),
        &bank_xml,
        |b, xml| {
            let mut ib = IndexedBank::new(&bank_queries.queries).unwrap();
            let symbols = Arc::clone(ib.symbols());
            let mut p = StreamingParser::with_symbols(symbols);
            b.iter(|| {
                p.reset();
                let sink = &mut |_m: fx_core::Match| {};
                p.drive_batched(xml.as_bytes(), &mut |batch| {
                    ib.process_batch_to(batch, sink)
                })
                .unwrap();
                ib.matching().count()
            });
        },
    );
    group.finish();
}

/// MB/s for the non-XML frontends over their generated corpora: the
/// soup tokenizer and the JSON lexer alone (interned events dropped),
/// and end-to-end through a filtering engine session (`run_source`,
/// lookup-only table shared with the compiled query).
///
/// Corpora are many small documents rather than one large one — the
/// shape these frontends are for (scraped pages, record streams) — so
/// the rows also price per-document reset and verdict turnaround.
fn bench_frontend_throughput(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(7);
    let soup_cfg = wl::HtmlSoupConfig {
        max_depth: 7,
        max_children: 6,
        quirkiness: 0.5,
    };
    let html_docs: Vec<String> = wl::html_soup_corpus(&mut rng, &soup_cfg, 64)
        .into_iter()
        .map(|d| d.html)
        .collect();
    let html_bytes: u64 = html_docs.iter().map(|d| d.len() as u64).sum();

    let mut group = c.benchmark_group("html");
    group.throughput(Throughput::Bytes(html_bytes));
    group.bench_with_input(
        BenchmarkId::new("tokenize", "interned"),
        &html_docs,
        |b, docs| {
            let symbols = Arc::new(fx_xml::Symbols::new());
            let mut p = fx_html::HtmlParser::with_symbols(Arc::clone(&symbols));
            b.iter(|| {
                let mut n = 0usize;
                for d in docs {
                    p.reset();
                    p.feed_interned(d, &mut |_e, _s| n += 1).unwrap();
                    p.finish_interned(&mut |_e, _s| n += 1).unwrap();
                }
                n
            });
        },
    );
    group.bench_with_input(
        BenchmarkId::new("filter", "engine"),
        &html_docs,
        |b, docs| {
            let engine = Engine::builder().query_str("//li[p]").build().unwrap();
            let mut session = engine.session();
            let mut src = engine.html_source();
            b.iter(|| {
                let mut matched = 0usize;
                for d in docs {
                    matched += session.run_source(&mut src, d.as_bytes()).unwrap().any() as usize;
                }
                matched
            });
        },
    );
    group.finish();

    let record_cfg = wl::JsonRecordsConfig {
        max_depth: 5,
        max_members: 5,
        max_items: 4,
        messiness: 0.3,
    };
    let json_docs: Vec<String> = wl::json_records(&mut rng, &record_cfg, 128)
        .into_iter()
        .map(|r| r.json)
        .collect();
    let json_bytes: u64 = json_docs.iter().map(|d| d.len() as u64).sum();

    let mut group = c.benchmark_group("json");
    group.throughput(Throughput::Bytes(json_bytes));
    group.bench_with_input(
        BenchmarkId::new("tokenize", "interned"),
        &json_docs,
        |b, docs| {
            let symbols = Arc::new(fx_xml::Symbols::new());
            let mut p = fx_json::JsonParser::with_symbols(Arc::clone(&symbols));
            b.iter(|| {
                let mut n = 0usize;
                for d in docs {
                    p.reset();
                    p.feed_interned(d, &mut |_e, _s| n += 1).unwrap();
                    p.finish_interned(&mut |_e, _s| n += 1).unwrap();
                }
                n
            });
        },
    );
    group.bench_with_input(
        BenchmarkId::new("filter", "engine"),
        &json_docs,
        |b, docs| {
            let engine = Engine::builder().query_str("//user[name]").build().unwrap();
            let mut session = engine.session();
            let mut src = engine.json_source();
            b.iter(|| {
                let mut matched = 0usize;
                for d in docs {
                    matched += session.run_source(&mut src, d.as_bytes()).unwrap().any() as usize;
                }
                matched
            });
        },
    );
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_byte_throughput, bench_frontend_throughput, bench_twig_engines, bench_linear_engines, bench_recursion_scaling, bench_query_size_scaling
}
criterion_main!(benches);
