//! Experiment E10: filtering throughput — the Õ(|D|·|Q|·r) time claim of
//! Theorem 8.8, and the engine comparison on linear and twig queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fx_automata::{BufferingFilter, LazyDfaFilter, NfaFilter};
use fx_core::StreamFilter;
use fx_engine::Engine;
use fx_workloads as wl;
use fx_xpath::parse_query;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn xmark_events(scale: usize) -> Vec<fx_xml::Event> {
    let mut rng = SmallRng::seed_from_u64(42);
    wl::auction_site(
        &mut rng,
        &wl::XmarkConfig {
            items: 10 * scale,
            auctions: 6 * scale,
            people: 5 * scale,
            category_depth: 4,
        },
    )
    .to_events()
}

/// Engines on a twig query over XMark-lite documents of growing size.
fn bench_twig_engines(c: &mut Criterion) {
    let q = parse_query("//item[price > 300]").unwrap();
    let mut group = c.benchmark_group("throughput/twig");
    for scale in [1usize, 4, 16] {
        let events = xmark_events(scale);
        group.throughput(Throughput::Elements(events.len() as u64));
        group.bench_with_input(BenchmarkId::new("frontier", scale), &events, |b, ev| {
            let mut f = StreamFilter::new(&q).unwrap();
            b.iter(|| {
                f.process_all(ev);
                f.result()
            });
        });
        group.bench_with_input(BenchmarkId::new("buffer-all", scale), &events, |b, ev| {
            let mut f = BufferingFilter::new(&q);
            b.iter(|| f.run_stream(ev));
        });
        // The new canonical surface: a reused engine session fed event
        // by event, to keep its overhead over bare StreamFilter honest.
        group.bench_with_input(
            BenchmarkId::new("engine-session", scale),
            &events,
            |b, ev| {
                let engine = Engine::builder().query(q.clone()).build().unwrap();
                let mut session = engine.session();
                b.iter(|| {
                    for e in ev {
                        session.push(e);
                    }
                    session.finish().unwrap().any()
                });
            },
        );
    }
    group.finish();
}

/// Engines on a linear query (where all four compete).
fn bench_linear_engines(c: &mut Criterion) {
    let q = parse_query("/site/regions/asia/item").unwrap();
    let events = xmark_events(4);
    let mut group = c.benchmark_group("throughput/linear");
    group.throughput(Throughput::Elements(events.len() as u64));
    group.bench_function("frontier", |b| {
        let mut f = StreamFilter::new(&q).unwrap();
        b.iter(|| {
            f.process_all(&events);
            f.result()
        });
    });
    group.bench_function("nfa", |b| {
        let mut f = NfaFilter::new(&q).unwrap();
        b.iter(|| f.run_stream(&events));
    });
    group.bench_function("lazy-dfa", |b| {
        let mut f = LazyDfaFilter::new(&q).unwrap();
        b.iter(|| f.run_stream(&events));
    });
    group.finish();
}

/// Time scaling with recursion depth r (the r factor of Thm 8.8).
fn bench_recursion_scaling(c: &mut Criterion) {
    let q = parse_query("//a[b and c]").unwrap();
    let mut group = c.benchmark_group("throughput/recursion");
    for r in [1usize, 16, 64] {
        let events = wl::nested("a", r, "<b/><c/>").to_events();
        group.throughput(Throughput::Elements(events.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(r), &events, |b, ev| {
            let mut f = StreamFilter::new(&q).unwrap();
            b.iter(|| {
                f.process_all(ev);
                f.result()
            });
        });
    }
    group.finish();
}

/// Time scaling with query size |Q|.
fn bench_query_size_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("throughput/query_size");
    let events = xmark_events(2);
    for k in [2usize, 8, 32] {
        let q = wl::star(k);
        group.throughput(Throughput::Elements(events.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(k), &events, |b, ev| {
            let mut f = StreamFilter::new(&q).unwrap();
            b.iter(|| {
                f.process_all(ev);
                f.result()
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_twig_engines, bench_linear_engines, bench_recursion_scaling, bench_query_size_scaling
}
criterion_main!(benches);
