//! Serializing documents back to SAX events and XML text.

use crate::tree::{Document, NodeId, NodeKind};
use fx_xml::{Attribute, Event};

/// Converts a document back into the canonical SAX event stream (attributes
/// ride on `StartElement` events).
pub fn to_events(doc: &Document) -> Vec<Event> {
    let mut events = vec![Event::StartDocument];
    for &child in doc.children(doc.root()) {
        emit(doc, child, &mut events);
    }
    events.push(Event::EndDocument);
    events
}

fn emit(doc: &Document, id: NodeId, out: &mut Vec<Event>) {
    match doc.kind(id) {
        NodeKind::Root => unreachable!("root is handled by to_events"),
        NodeKind::Text => out.push(Event::text(doc.strval(id))),
        NodeKind::Attribute => {
            // Attributes are emitted with their owner element's start tag.
        }
        NodeKind::Element => {
            let attributes: Vec<Attribute> = doc
                .children(id)
                .iter()
                .filter(|&&c| doc.kind(c) == NodeKind::Attribute)
                .map(|&c| Attribute::new(doc.name(c), doc.strval(c)))
                .collect();
            out.push(Event::StartElement {
                name: doc.name(id).to_string(),
                attributes,
            });
            for &child in doc.children(id) {
                if doc.kind(child) != NodeKind::Attribute {
                    emit(doc, child, out);
                }
            }
            out.push(Event::end(doc.name(id)));
        }
    }
}

/// Serializes a document to compact XML text.
pub fn to_xml(doc: &Document) -> String {
    fx_xml::to_xml(&to_events(doc)).expect("documents always serialize")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_xml;

    #[test]
    fn event_round_trip() {
        let src = "<a><c><e/><f/></c><b>6</b></a>";
        let doc = from_xml(src).unwrap();
        assert_eq!(to_xml(&doc), src);
    }

    #[test]
    fn attribute_round_trip() {
        let src = r#"<a id="1"><b k="v">x</b></a>"#;
        let doc = from_xml(src).unwrap();
        assert_eq!(to_xml(&doc), src);
    }

    #[test]
    fn events_then_rebuild_is_identity() {
        let src = "<r><a>1</a><a>2<b/></a></r>";
        let doc = from_xml(src).unwrap();
        let rebuilt = crate::builder::from_events(&to_events(&doc)).unwrap();
        assert_eq!(rebuilt, doc);
    }
}
