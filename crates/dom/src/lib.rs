//! # fx-dom
//!
//! The XPath 2.0 / XQuery 1.0 data model (§3.1.1 of the paper): documents as
//! rooted trees with `KIND`, `NAME`, and `STRVAL`, built from SAX event
//! streams, plus the document measurements (`depth`, frontier size) that the
//! paper's bounds are stated in.
//!
//! ```
//! use fx_dom::{Document, measure};
//!
//! let doc = Document::from_xml("<a><c><e/><f/></c><b>6</b></a>").unwrap();
//! assert_eq!(measure::frontier_size(&doc), 3); // Fig. 3's largest frontier
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod measure;
pub mod serialize;
pub mod tree;

pub use builder::{from_events, from_xml, BuildError};
pub use tree::{Document, Node, NodeId, NodeKind};

impl Document {
    /// Parses XML text into a document (see [`builder::from_xml`]).
    pub fn from_xml(xml: &str) -> Result<Document, BuildError> {
        builder::from_xml(xml)
    }

    /// Builds a document from SAX events (see [`builder::from_events`]).
    pub fn from_sax(events: &[fx_xml::Event]) -> Result<Document, BuildError> {
        builder::from_events(events)
    }

    /// Serializes back to SAX events.
    pub fn to_events(&self) -> Vec<fx_xml::Event> {
        serialize::to_events(self)
    }

    /// Serializes to compact XML text.
    pub fn to_xml(&self) -> String {
        serialize::to_xml(self)
    }

    /// The document depth `d` (see [`measure::depth`]).
    pub fn depth(&self) -> usize {
        measure::depth(self)
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_xml() -> impl Strategy<Value = String> {
        let leaf =
            prop::sample::select(vec!["<x/>", "<y>7</y>", "<z>text</z>"]).prop_map(String::from);
        leaf.prop_recursive(4, 32, 4, |inner| {
            (
                prop::sample::select(vec!["p", "q", "r"]),
                prop::collection::vec(inner, 0..4),
            )
                .prop_map(|(n, kids)| {
                    if kids.is_empty() {
                        format!("<{n}/>")
                    } else {
                        format!("<{n}>{}</{n}>", kids.concat())
                    }
                })
        })
    }

    proptest! {
        #[test]
        fn xml_document_round_trip(xml in arb_xml()) {
            let doc = Document::from_xml(&xml).unwrap();
            prop_assert_eq!(doc.to_xml(), xml);
        }

        #[test]
        fn events_round_trip(xml in arb_xml()) {
            let doc = Document::from_xml(&xml).unwrap();
            let rebuilt = Document::from_sax(&doc.to_events()).unwrap();
            prop_assert_eq!(rebuilt, doc);
        }

        #[test]
        fn depth_matches_stream_depth(xml in arb_xml()) {
            let doc = Document::from_xml(&xml).unwrap();
            let events = doc.to_events();
            prop_assert_eq!(doc.depth(), fx_xml::stream_depth(&events));
        }

        #[test]
        fn strval_is_concatenation_of_texts(xml in arb_xml()) {
            let doc = Document::from_xml(&xml).unwrap();
            let whole: String = doc.all_nodes()
                .filter(|&n| doc.kind(n) == NodeKind::Text)
                .map(|n| doc.strval(n))
                .collect();
            prop_assert_eq!(doc.strval(doc.root()), whole);
        }
    }
}
