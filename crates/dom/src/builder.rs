//! Building [`Document`] trees from SAX event streams and XML text.

use crate::tree::{Document, NodeId, NodeKind};
use fx_xml::{Event, ParseError, Violation};
use std::fmt;

/// An error while building a document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The XML text failed to parse.
    Parse(ParseError),
    /// The event stream was not well-formed.
    Malformed(Violation),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Parse(e) => write!(f, "{e}"),
            BuildError::Malformed(v) => write!(f, "malformed event stream: {v}"),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<ParseError> for BuildError {
    fn from(e: ParseError) -> Self {
        BuildError::Parse(e)
    }
}

impl From<Violation> for BuildError {
    fn from(v: Violation) -> Self {
        BuildError::Malformed(v)
    }
}

/// Builds a document from a well-formed event stream. Attributes become
/// [`NodeKind::Attribute`] children preceding all other children of their
/// element, matching the data-model convention.
pub fn from_events(events: &[Event]) -> Result<Document, BuildError> {
    fx_xml::check(events)?;
    let mut doc = Document::empty();
    let mut stack: Vec<NodeId> = vec![NodeId::ROOT];
    for e in events {
        match e {
            Event::StartDocument | Event::EndDocument => {}
            Event::StartElement { name, attributes } => {
                let parent = *stack.last().expect("stack never empty while well-formed");
                let elem = doc.push_node(parent, NodeKind::Element, name.clone(), "");
                for a in attributes {
                    doc.push_node(elem, NodeKind::Attribute, a.name.clone(), a.value.clone());
                }
                stack.push(elem);
            }
            Event::EndElement { .. } => {
                stack.pop();
            }
            Event::Text { content } => {
                let parent = *stack.last().expect("stack never empty while well-formed");
                doc.push_node(parent, NodeKind::Text, "", content.clone());
            }
        }
    }
    Ok(doc)
}

/// Parses XML text straight into a document.
pub fn from_xml(xml: &str) -> Result<Document, BuildError> {
    let events = fx_xml::parse(xml)?;
    from_events(&events)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_paper_document() {
        let d = from_xml("<a><c><e/><f/></c><b>6</b></a>").unwrap();
        let a = d.children(NodeId::ROOT)[0];
        assert_eq!(d.name(a), "a");
        let kids: Vec<&str> = d.children(a).iter().map(|&c| d.name(c)).collect();
        assert_eq!(kids, vec!["c", "b"]);
        let b = d.children(a)[1];
        assert_eq!(d.strval(b), "6");
    }

    #[test]
    fn attributes_become_leading_children() {
        let d = from_xml(r#"<a x="1"><b/></a>"#).unwrap();
        let a = d.children(NodeId::ROOT)[0];
        let kids = d.children(a);
        assert_eq!(d.kind(kids[0]), NodeKind::Attribute);
        assert_eq!(d.name(kids[0]), "x");
        assert_eq!(d.strval(kids[0]), "1");
        assert_eq!(d.kind(kids[1]), NodeKind::Element);
    }

    #[test]
    fn rejects_malformed_streams() {
        let events = vec![Event::StartDocument, Event::start("a"), Event::EndDocument];
        assert!(matches!(
            from_events(&events),
            Err(BuildError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_bad_xml() {
        assert!(matches!(from_xml("<a><b></a>"), Err(BuildError::Parse(_))));
    }

    #[test]
    fn text_nodes_are_leaves() {
        let d = from_xml("<a>hi<b/>yo</a>").unwrap();
        let a = d.children(NodeId::ROOT)[0];
        assert_eq!(d.children(a).len(), 3);
        let texts: Vec<String> = d
            .children(a)
            .iter()
            .filter(|&&c| d.kind(c) == NodeKind::Text)
            .map(|&c| d.strval(c))
            .collect();
        assert_eq!(texts, vec!["hi", "yo"]);
    }
}
