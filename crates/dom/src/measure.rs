//! Document measurements used by the paper's bounds: depth `d` (§4.3), the
//! document frontier size `FS(D)` (Def. 4.1), and structural statistics.

use crate::tree::{Document, NodeId, NodeKind};

/// The document depth `d`: length of the longest root-to-leaf path, counting
/// element/attribute nodes only (the root and text nodes do not contribute).
pub fn depth(doc: &Document) -> usize {
    doc.all_nodes()
        .filter(|&n| matches!(doc.kind(n), NodeKind::Element | NodeKind::Attribute))
        .map(|n| doc.level(n))
        .max()
        .unwrap_or(0)
}

/// The frontier of a document node `x` (Def. 4.1): `x` together with its
/// super-siblings — siblings of `x` and of each of its ancestors. Text nodes
/// are ignored, per the paper's remark.
pub fn frontier(doc: &Document, x: NodeId) -> Vec<NodeId> {
    let mut f = vec![x];
    let mut cur = x;
    while let Some(parent) = doc.parent(cur) {
        for sib in doc.non_text_children(parent) {
            if sib != cur {
                f.push(sib);
            }
        }
        cur = parent;
    }
    f
}

/// The frontier size `FS(D)` (Def. 4.1): the size of the largest frontier
/// over all (non-text) nodes.
pub fn frontier_size(doc: &Document) -> usize {
    doc.all_nodes()
        .filter(|&n| doc.kind(n) != NodeKind::Text)
        .map(|n| frontier(doc, n).len())
        .max()
        .unwrap_or(0)
}

/// Counts of each node kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Counts {
    /// Element nodes.
    pub elements: usize,
    /// Attribute nodes.
    pub attributes: usize,
    /// Text nodes.
    pub texts: usize,
}

/// Tallies node kinds.
pub fn counts(doc: &Document) -> Counts {
    let mut c = Counts::default();
    for n in doc.all_nodes() {
        match doc.kind(n) {
            NodeKind::Element => c.elements += 1,
            NodeKind::Attribute => c.attributes += 1,
            NodeKind::Text => c.texts += 1,
            NodeKind::Root => {}
        }
    }
    c
}

/// The longest run of same-name nested elements, a query-independent upper
/// estimate of recursion potential (the query-relative recursion depth of
/// Thm 4.5 lives in `fx-eval`/`fx-analysis`).
pub fn max_same_name_nesting(doc: &Document) -> usize {
    let mut best = 0usize;
    for n in doc.all_nodes() {
        if doc.kind(n) != NodeKind::Element {
            continue;
        }
        let name = doc.name(n);
        let run = 1 + doc
            .ancestors(n)
            .filter(|&a| doc.name(a) == name && doc.kind(a) == NodeKind::Element)
            .count();
        best = best.max(run);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_xml;

    #[test]
    fn depth_of_flat_and_nested() {
        assert_eq!(depth(&from_xml("<a/>").unwrap()), 1);
        assert_eq!(depth(&from_xml("<a><b><c/></b></a>").unwrap()), 3);
        assert_eq!(
            depth(&from_xml("<a><b/><c><d><e/></d></c></a>").unwrap()),
            4
        );
    }

    #[test]
    fn paper_frontier_example() {
        // D from Theorem 4.2: the frontier at x_e is {x_e, x_f, x_b} → FS = 3.
        let d = from_xml("<a><c><e/><f/></c><b>6</b></a>").unwrap();
        let a = d.children(d.root())[0];
        let c = d.children(a)[0];
        let e = d.children(c)[0];
        let f = frontier(&d, e);
        let names: Vec<&str> = f.iter().map(|&n| d.name(n)).collect();
        assert_eq!(names.len(), 3);
        assert!(names.contains(&"e") && names.contains(&"f") && names.contains(&"b"));
        assert_eq!(frontier_size(&d), 3);
    }

    #[test]
    fn counts_tally() {
        let d = from_xml(r#"<a x="1">t<b/>u</a>"#).unwrap();
        let c = counts(&d);
        assert_eq!(
            c,
            Counts {
                elements: 2,
                attributes: 1,
                texts: 2
            }
        );
    }

    #[test]
    fn same_name_nesting() {
        let d = from_xml("<a><a><b/><a/></a></a>").unwrap();
        assert_eq!(max_same_name_nesting(&d), 3);
        let flat = from_xml("<a><b/><c/></a>").unwrap();
        assert_eq!(max_same_name_nesting(&flat), 1);
    }
}
