//! The XPath 2.0 / XQuery 1.0 data model of §3.1.1: documents are rooted
//! trees whose nodes carry `KIND`, `NAME`, and (derived) `STRVAL`.

use std::fmt;

/// Index of a node within its [`Document`] arena. The root is always
/// `NodeId(0)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The document root.
    pub const ROOT: NodeId = NodeId(0);

    /// The arena index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// `KIND(x)` per §3.1.1: root, element, attribute, or text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// The document root (exactly one per document, unnamed).
    Root,
    /// An element node.
    Element,
    /// An attribute node (always a leaf, carries text content).
    Attribute,
    /// A text node (always a leaf, carries text content).
    Text,
}

/// A single node in the arena.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// The node kind.
    pub kind: NodeKind,
    /// `NAME(x)`. Empty for root and text nodes.
    pub name: String,
    /// Text content for [`NodeKind::Text`] and [`NodeKind::Attribute`]
    /// nodes; empty otherwise.
    pub content: String,
    /// Parent node, `None` for the root only.
    pub parent: Option<NodeId>,
    /// Children in document order (attributes first, as produced by the
    /// builder).
    pub children: Vec<NodeId>,
}

/// An XML document as a rooted tree (arena-allocated, nodes in document
/// order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    nodes: Vec<Node>,
}

impl Document {
    /// Creates a document containing only a root node.
    pub fn empty() -> Self {
        Document {
            nodes: vec![Node {
                kind: NodeKind::Root,
                name: String::new(),
                content: String::new(),
                parent: None,
                children: Vec::new(),
            }],
        }
    }

    /// Appends a node under `parent`, returning its id.
    pub fn push_node(
        &mut self,
        parent: NodeId,
        kind: NodeKind,
        name: impl Into<String>,
        content: impl Into<String>,
    ) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            kind,
            name: name.into(),
            content: content.into(),
            parent: Some(parent),
            children: Vec::new(),
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Total number of nodes (including the root).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the document holds only the root node.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// The root node id (`NodeId::ROOT`).
    pub fn root(&self) -> NodeId {
        NodeId::ROOT
    }

    /// Immutable access to a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// `KIND(x)`.
    pub fn kind(&self, id: NodeId) -> NodeKind {
        self.node(id).kind
    }

    /// `NAME(x)` — empty string for root and text nodes.
    pub fn name(&self, id: NodeId) -> &str {
        &self.node(id).name
    }

    /// The parent, if any.
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.node(id).parent
    }

    /// Children in document order.
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.node(id).children
    }

    /// Element/attribute children only (text nodes skipped) — document
    /// frontiers ignore text nodes (Def. 4.1 Remark).
    pub fn non_text_children(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.children(id)
            .iter()
            .copied()
            .filter(|&c| self.kind(c) != NodeKind::Text)
    }

    /// `STRVAL(x)`: concatenation of the text contents of the text-node
    /// descendants of `x` in document order (§3.1.1). For attribute and text
    /// nodes this is their own content.
    pub fn strval(&self, id: NodeId) -> String {
        match self.kind(id) {
            NodeKind::Text | NodeKind::Attribute => self.node(id).content.clone(),
            _ => {
                let mut out = String::new();
                for d in self.descendants(id) {
                    if self.kind(d) == NodeKind::Text {
                        out.push_str(&self.node(d).content);
                    }
                }
                out
            }
        }
    }

    /// Pre-order (document-order) traversal of the subtree rooted at `id`,
    /// including `id` itself.
    pub fn descendants(&self, id: NodeId) -> Descendants<'_> {
        Descendants {
            doc: self,
            stack: vec![id],
        }
    }

    /// All nodes in document order.
    pub fn all_nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// The sequence `PATH(x)`: nodes from the root to `x`, inclusive.
    pub fn path(&self, id: NodeId) -> Vec<NodeId> {
        let mut p = vec![id];
        let mut cur = id;
        while let Some(parent) = self.parent(cur) {
            p.push(parent);
            cur = parent;
        }
        p.reverse();
        p
    }

    /// Ancestors of `id`, nearest first (excluding `id`).
    pub fn ancestors(&self, id: NodeId) -> Ancestors<'_> {
        Ancestors {
            doc: self,
            cur: self.parent(id),
        }
    }

    /// True if `anc` is a *proper* ancestor of `id`.
    pub fn is_ancestor(&self, anc: NodeId, id: NodeId) -> bool {
        self.ancestors(id).any(|a| a == anc)
    }

    /// `DEPTH(x)` = |PATH(x)|: number of nodes on the root-to-`x` path.
    pub fn node_depth(&self, id: NodeId) -> usize {
        self.ancestors(id).count() + 1
    }

    /// The document *level* of a node: the root is level 0, its element
    /// children level 1, etc. (the `level`s tracked by the §8 algorithm).
    pub fn level(&self, id: NodeId) -> usize {
        self.ancestors(id).count()
    }
}

/// Iterator over a subtree in document order.
pub struct Descendants<'a> {
    doc: &'a Document,
    stack: Vec<NodeId>,
}

impl Iterator for Descendants<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.stack.pop()?;
        let kids = self.doc.children(id);
        self.stack.extend(kids.iter().rev());
        Some(id)
    }
}

/// Iterator over ancestors, nearest first.
pub struct Ancestors<'a> {
    doc: &'a Document,
    cur: Option<NodeId>,
}

impl Iterator for Ancestors<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.cur?;
        self.cur = self.doc.parent(id);
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Document, NodeId, NodeId, NodeId) {
        // <a><b>6</b><c/></a>
        let mut d = Document::empty();
        let a = d.push_node(NodeId::ROOT, NodeKind::Element, "a", "");
        let b = d.push_node(a, NodeKind::Element, "b", "");
        let _t = d.push_node(b, NodeKind::Text, "", "6");
        let c = d.push_node(a, NodeKind::Element, "c", "");
        (d, a, b, c)
    }

    #[test]
    fn structure_accessors() {
        let (d, a, b, c) = sample();
        assert_eq!(d.kind(NodeId::ROOT), NodeKind::Root);
        assert_eq!(d.name(a), "a");
        assert_eq!(d.parent(b), Some(a));
        assert_eq!(d.children(a).len(), 2);
        assert_eq!(d.children(a), &[b, c]);
    }

    #[test]
    fn strval_concatenates_document_order() {
        let mut d = Document::empty();
        let a = d.push_node(NodeId::ROOT, NodeKind::Element, "a", "");
        let b = d.push_node(a, NodeKind::Element, "b", "");
        d.push_node(b, NodeKind::Text, "", "hel");
        let c = d.push_node(a, NodeKind::Element, "c", "");
        d.push_node(c, NodeKind::Text, "", "lo");
        assert_eq!(d.strval(a), "hello");
        assert_eq!(d.strval(b), "hel");
        assert_eq!(d.strval(NodeId::ROOT), "hello");
    }

    #[test]
    fn path_and_depth() {
        let (d, a, b, _) = sample();
        assert_eq!(d.path(b), vec![NodeId::ROOT, a, b]);
        assert_eq!(d.node_depth(b), 3);
        assert_eq!(d.level(b), 2);
        assert_eq!(d.level(NodeId::ROOT), 0);
    }

    #[test]
    fn ancestor_checks() {
        let (d, a, b, c) = sample();
        assert!(d.is_ancestor(a, b));
        assert!(d.is_ancestor(NodeId::ROOT, b));
        assert!(!d.is_ancestor(b, a));
        assert!(!d.is_ancestor(b, c));
        assert!(!d.is_ancestor(b, b));
    }

    #[test]
    fn descendants_in_document_order() {
        let (d, a, b, c) = sample();
        let order: Vec<NodeId> = d.descendants(NodeId::ROOT).collect();
        assert_eq!(order[0], NodeId::ROOT);
        assert_eq!(order[1], a);
        assert_eq!(order[2], b);
        assert!(
            order.iter().position(|&x| x == b).unwrap()
                < order.iter().position(|&x| x == c).unwrap()
        );
    }

    #[test]
    fn non_text_children_skip_text() {
        let (d, a, _, _) = sample();
        let b = d.children(a)[0];
        assert_eq!(d.non_text_children(b).count(), 0);
        assert_eq!(d.non_text_children(a).count(), 2);
    }
}
