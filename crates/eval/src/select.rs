//! The reference (in-memory) evaluation semantics of §3.1.3: `SELECT`
//! (Def. 3.4), predicate satisfaction via `PEVAL` (Defs. 3.3/3.5),
//! `FULLEVAL` and `BOOLEVAL` (Def. 3.6).
//!
//! This evaluator is deliberately a direct transcription of the paper's
//! definitions — it is the ground truth the streaming filter is tested
//! against, so clarity beats speed.

use fx_dom::{Document, NodeId, NodeKind};
use fx_xpath::ops::eval_expr;
use fx_xpath::value::{EvalResult, Value};
use fx_xpath::{Axis, EvalError, Query, QueryNodeId};

/// Evaluates `FULLEVAL(Q, D)` (Def. 3.6): the sequence of document nodes
/// selected by `OUT(Q)` under the context `ROOT(Q) = ROOT(D)`, in document
/// order — or the empty sequence if the document root does not satisfy the
/// root's predicate.
pub fn full_eval(q: &Query, d: &Document) -> Result<Vec<NodeId>, EvalError> {
    if !satisfies_predicate(q, d, q.root(), d.root())? {
        return Ok(Vec::new());
    }
    select(q, d, q.output_node(), q.root(), d.root())
}

/// `BOOLEVAL(Q, D)`: true iff `D` matches `Q` (Def. 3.6).
pub fn bool_eval(q: &Query, d: &Document) -> Result<bool, EvalError> {
    Ok(!full_eval(q, d)?.is_empty())
}

/// `SELECT(v | u = x)` (Def. 3.4). Requires `u ∈ PATH(v)`.
pub fn select(
    q: &Query,
    d: &Document,
    v: QueryNodeId,
    u: QueryNodeId,
    x: NodeId,
) -> Result<Vec<NodeId>, EvalError> {
    debug_assert!(u == v || q.path(v).contains(&u), "u must lie on PATH(v)");
    if u == v {
        return Ok(vec![x]);
    }
    let p = q.parent(v).expect("v below u implies v has a parent");
    if p == u {
        // Direct case: children/descendants of x that pass the node test,
        // relate by the axis, and satisfy the predicate — in document order.
        let axis = q.axis(v).expect("non-root node");
        let mut out = Vec::new();
        for y in axis_candidates(d, x, axis) {
            let name_ok = q.ntest(v).expect("non-root node").passes(d.name(y));
            if name_ok && satisfies_predicate(q, d, v, y)? {
                out.push(y);
            }
        }
        return Ok(out);
    }
    // Inductive case: select the parent first, then select v relative to
    // each parent match, concatenated in order.
    let zs = select(q, d, p, u, x)?;
    let mut out = Vec::new();
    for z in zs {
        out.extend(select(q, d, v, p, z)?);
    }
    Ok(out)
}

/// The document nodes related to `x` by `axis` (Def. 3.2), in document
/// order. The child axis yields element children; the attribute axis yields
/// attribute children (the paper's "special case of child"); the descendant
/// axis yields proper element descendants.
pub fn axis_candidates(d: &Document, x: NodeId, axis: Axis) -> Vec<NodeId> {
    match axis {
        Axis::Child => d
            .children(x)
            .iter()
            .copied()
            .filter(|&c| d.kind(c) == NodeKind::Element)
            .collect(),
        Axis::Attribute => d
            .children(x)
            .iter()
            .copied()
            .filter(|&c| d.kind(c) == NodeKind::Attribute)
            .collect(),
        Axis::Descendant => d
            .descendants(x)
            .filter(|&y| y != x && d.kind(y) == NodeKind::Element)
            .collect(),
    }
}

/// Predicate satisfaction (Def. 3.3): true if the predicate is empty, or if
/// `EBV(PEVAL(r_u, x)) = true`.
pub fn satisfies_predicate(
    q: &Query,
    d: &Document,
    u: QueryNodeId,
    x: NodeId,
) -> Result<bool, EvalError> {
    let Some(pred) = q.predicate(u) else {
        return Ok(true);
    };
    let mut error = None;
    let mut resolve = |w: QueryNodeId| -> EvalResult {
        // Def. 3.5 part 2: the sequence of data values of the nodes in
        // SELECT(LEAF(w) | u = x). With no schema, DATAVAL is the string
        // value; numeric conversions happen at the operators.
        match select(q, d, q.succession_leaf(w), u, x) {
            Ok(nodes) => {
                EvalResult::Sequence(nodes.into_iter().map(|n| Value::Str(d.strval(n))).collect())
            }
            Err(e) => {
                error = Some(e);
                EvalResult::Sequence(Vec::new())
            }
        }
    };
    let result = eval_expr(pred, &mut resolve)?;
    if let Some(e) = error {
        return Err(e);
    }
    Ok(result.ebv())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fx_dom::Document;
    use fx_xpath::parse_query;

    fn matches(qs: &str, xml: &str) -> bool {
        let q = parse_query(qs).unwrap();
        let d = Document::from_xml(xml).unwrap();
        bool_eval(&q, &d).unwrap()
    }

    #[test]
    fn fig2_query_on_paper_document() {
        // D from Theorem 4.2 matches /a[c[.//e and f] and b > 5].
        assert!(matches(
            "/a[c[.//e and f] and b > 5]",
            "<a><c><e/><f/></c><b>6</b></a>"
        ));
        // b = 5 fails the predicate.
        assert!(!matches(
            "/a[c[.//e and f] and b > 5]",
            "<a><c><e/><f/></c><b>5</b></a>"
        ));
        // missing f fails.
        assert!(!matches(
            "/a[c[.//e and f] and b > 5]",
            "<a><c><e/></c><b>6</b></a>"
        ));
    }

    #[test]
    fn reordering_children_preserves_match() {
        // Claim 4.3: Q is indifferent to child order.
        let q = "/a[c[.//e and f] and b > 5]";
        assert!(matches(q, "<a><b>6</b><c><f/><e/></c></a>"));
    }

    #[test]
    fn cross_splice_document_fails() {
        // D_{T,T'} from the proof of Theorem 4.2: two f's, no e.
        assert!(!matches(
            "/a[c[.//e and f] and b > 5]",
            "<a><b>6</b><c><f/><f/></c></a>"
        ));
    }

    #[test]
    fn recursion_query_disj_documents() {
        // Theorem 4.5: D_{s,t} matches //a[b and c] iff some a has both.
        let q = "//a[b and c]";
        assert!(matches(q, "<a><b/><a><b/><a/><c/></a></a>")); // s=110, t=010 → intersect at i=2
        assert!(!matches(q, "<a><b/><a><a/><c/></a></a>")); // b and c on different a's
        assert!(matches(q, "<a><a><b/><c/></a></a>"));
    }

    #[test]
    fn depth_query() {
        // Theorem 4.6: /a/b.
        assert!(matches("/a/b", "<a><Z><Z></Z></Z><b/><Z></Z></a>"));
        assert!(!matches("/a/b", "<a><Z><b/></Z></a>"));
    }

    #[test]
    fn descendant_axis_is_proper() {
        assert!(matches("//a//b", "<a><x><b/></x></a>"));
        assert!(matches("//a//b", "<a><b/></a>"));
        assert!(!matches("//a//b", "<ab/>"));
    }

    #[test]
    fn full_eval_returns_document_order() {
        let q = parse_query("/a/b").unwrap();
        let d = Document::from_xml("<a><b>1</b><c/><b>2</b></a>").unwrap();
        let out = full_eval(&q, &d).unwrap();
        assert_eq!(out.len(), 2);
        let vals: Vec<String> = out.iter().map(|&n| d.strval(n)).collect();
        assert_eq!(vals, vec!["1", "2"]);
    }

    #[test]
    fn paper_remark_example() {
        // Q = /a[b + 2 = 5], D = <a><b>0</b><b>3</b></a>: true under the
        // paper's semantics (existential over the arithmetic product).
        assert!(matches("/a[b + 2 = 5]", "<a><b>0</b><b>3</b></a>"));
        assert!(!matches("/a[b + 2 = 5]", "<a><b>0</b><b>4</b></a>"));
    }

    #[test]
    fn wildcard_and_attribute() {
        assert!(matches("/a/*/b", "<a><x><b/></x></a>"));
        assert!(!matches("/a/*/b", "<a><b/></a>"));
        assert!(matches("/a[@id = 7]", r#"<a id="7"/>"#));
        assert!(!matches("/a[@id = 7]", r#"<a id="8"/>"#));
        assert!(matches("/a/@id", r#"<a id="7"/>"#));
        assert!(!matches("/a/@id", "<a/>"));
    }

    #[test]
    fn attribute_axis_excludes_elements_and_vice_versa() {
        assert!(!matches("/a/@b", "<a><b/></a>"));
        assert!(!matches("/a/b", r#"<a b="1"/>"#));
    }

    #[test]
    fn existential_semantics_over_multiple_children() {
        // Fig. 7: /a[b > 5] where one b passes.
        assert!(matches("/a[b > 5]", "<a><b>3</b><b>7</b></a>"));
        assert!(!matches("/a[b > 5]", "<a><b>3</b><b>5</b></a>"));
    }

    #[test]
    fn string_values_nest() {
        // STRVAL concatenates nested text (§3.1.1).
        assert!(matches("/a[b = \"xy\"]", "<a><b>x<c>y</c></b></a>"));
    }

    #[test]
    fn subsumption_example_queries() {
        // §5.5: /a[b and .//b] — left b subsumes right one.
        assert!(matches("/a[b and .//b]", "<a><b/></a>"));
        assert!(!matches("/a[b and .//b]", "<a><x><b/></x></a>")); // no direct child b
                                                                   // /a[b = 5 and .//b = 3] needs both values somewhere.
        assert!(matches(
            "/a[b = 5 and .//b = 3]",
            "<a><b>5</b><x><b>3</b></x></a>"
        ));
        assert!(!matches("/a[b = 5 and .//b = 3]", "<a><b>5</b></a>"));
    }

    #[test]
    fn not_and_or() {
        assert!(matches("/a[not(b)]", "<a><c/></a>"));
        assert!(!matches("/a[not(b)]", "<a><b/></a>"));
        assert!(matches("/a[b or c]", "<a><c/></a>"));
    }

    #[test]
    fn leaf_restricted_value_example() {
        // /a[b[c > 5]] from §5.4.
        assert!(matches("/a[b[c > 5]]", "<a><b><c>6</c></b></a>"));
        assert!(!matches("/a[b[c > 5]]", "<a><b><c>5</c></b></a>"));
        // /a[b[c] > 5] (not leaf-only-value-restricted, still evaluable):
        // the b child must have a c child AND strval(b) > 5.
        assert!(matches("/a[b[c] > 5]", "<a><b>7<c/></b></a>"));
        assert!(!matches("/a[b[c] > 5]", "<a><b>7</b></a>"));
    }
}
