//! Matchings (Definition 5.8) — the paper's primary tool for reasoning
//! about whether documents match queries — together with matching search,
//! counting (for the uniqueness arguments of §6.4.2), and the
//! `Lemma 5.10` equivalence with `BOOLEVAL`.

use crate::select::axis_candidates;
use crate::truth::{truth_contains, TruthError};
use fx_dom::{Document, NodeId};
use fx_xpath::{Query, QueryNodeId};
use std::collections::HashMap;

/// Whether the value-match property (Def. 5.8 item 4) is enforced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MatchMode {
    /// A full matching: axis, node test, and value match.
    Full,
    /// A structural matching: value match waived (Def. 5.8, last sentence).
    Structural,
}

/// A concrete matching: the mapping `φ` from query nodes to document nodes.
pub type Matching = HashMap<QueryNodeId, NodeId>;

/// Memoized matching-existence engine for one `(query, document)` pair.
pub struct Matcher<'a> {
    q: &'a Query,
    d: &'a Document,
    mode: MatchMode,
    memo: HashMap<(QueryNodeId, NodeId), bool>,
}

impl<'a> Matcher<'a> {
    /// Creates a matcher. The query must be univariate when `mode` is
    /// [`MatchMode::Full`] (truth sets are undefined otherwise — calls will
    /// return [`TruthError::NotUnivariate`]).
    pub fn new(q: &'a Query, d: &'a Document, mode: MatchMode) -> Self {
        Matcher {
            q,
            d,
            mode,
            memo: HashMap::new(),
        }
    }

    /// Does some matching of `x` with `u` exist? (A mapping `φ: Q_u → D_x`
    /// with the root/axis/node-test/value properties.)
    pub fn can_match(&mut self, u: QueryNodeId, x: NodeId) -> Result<bool, TruthError> {
        if let Some(&hit) = self.memo.get(&(u, x)) {
            return Ok(hit);
        }
        // Insert a tentative `false` to keep recursion well-founded (the
        // query is a tree, so no true cycles occur; this is belt and
        // braces).
        self.memo.insert((u, x), false);
        let ok = self.check(u, x)?;
        self.memo.insert((u, x), ok);
        Ok(ok)
    }

    fn check(&mut self, u: QueryNodeId, x: NodeId) -> Result<bool, TruthError> {
        // Node-test match (roots have no node test; the root maps to the
        // document root by construction of the callers).
        if let Some(ntest) = self.q.ntest(u) {
            if !ntest.passes(self.d.name(x)) {
                return Ok(false);
            }
        }
        // Value match.
        if self.mode == MatchMode::Full && !truth_contains(self.q, u, &self.d.strval(x))? {
            return Ok(false);
        }
        // Axis match, recursively: every child must match somewhere among
        // the axis candidates.
        for v in self.q.children(u).to_vec() {
            let axis = self.q.axis(v).expect("children have axes");
            let mut found = false;
            for y in axis_candidates(self.d, x, axis) {
                if self.can_match(v, y)? {
                    found = true;
                    break;
                }
            }
            if !found {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Constructs one concrete matching of `x` with `u`, if any exists.
    pub fn find(&mut self, u: QueryNodeId, x: NodeId) -> Result<Option<Matching>, TruthError> {
        if !self.can_match(u, x)? {
            return Ok(None);
        }
        let mut phi = Matching::new();
        self.build(u, x, &mut phi)?;
        Ok(Some(phi))
    }

    fn build(&mut self, u: QueryNodeId, x: NodeId, phi: &mut Matching) -> Result<(), TruthError> {
        phi.insert(u, x);
        for v in self.q.children(u).to_vec() {
            let axis = self.q.axis(v).expect("children have axes");
            let y = axis_candidates(self.d, x, axis)
                .into_iter()
                .find_map(|y| match self.can_match(v, y) {
                    Ok(true) => Some(Ok(y)),
                    Ok(false) => None,
                    Err(e) => Some(Err(e)),
                })
                .expect("can_match(u,x) held, so every child has a witness")?;
            self.build(v, y, phi)?;
        }
        Ok(())
    }

    /// Counts matchings of `x` with `u`, saturating at `limit`. Used to
    /// verify the *uniqueness* of the canonical matching (Lemma 6.15).
    pub fn count(&mut self, u: QueryNodeId, x: NodeId, limit: usize) -> Result<usize, TruthError> {
        if !self.can_match(u, x)? {
            return Ok(0);
        }
        // The number of matchings is the product over children of the sum
        // over axis candidates of the child's count.
        let mut total = 1usize;
        for v in self.q.children(u).to_vec() {
            let axis = self.q.axis(v).expect("children have axes");
            let mut sum = 0usize;
            for y in axis_candidates(self.d, x, axis) {
                sum = sum.saturating_add(self.count(v, y, limit)?);
                if sum >= limit {
                    sum = limit;
                    break;
                }
            }
            total = total.saturating_mul(sum).min(limit);
            if total == 0 {
                return Ok(0);
            }
        }
        Ok(total)
    }
}

/// Does a matching of `D` with `Q` exist? By Lemma 5.10 this is equivalent
/// to `BOOLEVAL(Q, D)` for redundancy-free queries.
pub fn document_matches(q: &Query, d: &Document) -> Result<bool, TruthError> {
    Matcher::new(q, d, MatchMode::Full).can_match(q.root(), d.root())
}

/// Structural variant of [`document_matches`].
pub fn document_matches_structurally(q: &Query, d: &Document) -> Result<bool, TruthError> {
    Matcher::new(q, d, MatchMode::Structural).can_match(q.root(), d.root())
}

/// Finds one matching of `D` with `Q`.
pub fn find_matching(q: &Query, d: &Document) -> Result<Option<Matching>, TruthError> {
    Matcher::new(q, d, MatchMode::Full).find(q.root(), d.root())
}

/// Counts matchings of `D` with `Q`, saturating at `limit`.
pub fn count_matchings(q: &Query, d: &Document, limit: usize) -> Result<usize, TruthError> {
    Matcher::new(q, d, MatchMode::Full).count(q.root(), d.root(), limit)
}

/// Definition 5.9: does `y` match `v` relative to the context `u = x`?
/// (Is there a matching `φ` of `x` with `u` such that `φ(v) = y`?)
pub fn matches_relative(
    q: &Query,
    d: &Document,
    v: QueryNodeId,
    y: NodeId,
    u: QueryNodeId,
    x: NodeId,
    mode: MatchMode,
) -> Result<bool, TruthError> {
    let mut m = Matcher::new(q, d, mode);
    constrained(&mut m, u, x, v, y)
}

/// Existence of a matching of `x` with `u` under the constraint `φ(v) = y`.
fn constrained(
    m: &mut Matcher<'_>,
    u: QueryNodeId,
    x: NodeId,
    v: QueryNodeId,
    y: NodeId,
) -> Result<bool, TruthError> {
    if u == v {
        return Ok(x == y && m.can_match(u, x)?);
    }
    // v must lie strictly below u; find the child of u on the path to v.
    let path = m.q.path(v);
    let Some(pos) = path.iter().position(|&n| n == u) else {
        return Ok(false);
    };
    let next = path[pos + 1];
    // Local conditions at u.
    if let Some(ntest) = m.q.ntest(u) {
        if !ntest.passes(m.d.name(x)) {
            return Ok(false);
        }
    }
    if m.mode == MatchMode::Full && !truth_contains(m.q, u, &m.d.strval(x))? {
        return Ok(false);
    }
    for w in m.q.children(u).to_vec() {
        let axis = m.q.axis(w).expect("children have axes");
        let mut found = false;
        for cand in axis_candidates(m.d, x, axis) {
            let ok = if w == next {
                constrained(m, w, cand, v, y)?
            } else {
                m.can_match(w, cand)?
            };
            if ok {
                found = true;
                break;
            }
        }
        if !found {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Definition 6.3: is `φ` leaf-preserving (every query leaf maps to a
/// document leaf, text children notwithstanding)?
pub fn is_leaf_preserving(q: &Query, d: &Document, phi: &Matching) -> bool {
    phi.iter()
        .all(|(&u, &x)| !q.is_leaf(u) || d.non_text_children(x).count() == 0)
}

/// Verifies that `phi` is a valid matching of `D` with `Q` in the given
/// mode (checks all four properties of Def. 5.8 explicitly).
pub fn verify_matching(
    q: &Query,
    d: &Document,
    phi: &Matching,
    mode: MatchMode,
) -> Result<bool, TruthError> {
    // Root match.
    if phi.get(&q.root()) != Some(&d.root()) {
        return Ok(false);
    }
    for u in q.all_nodes() {
        let Some(&x) = phi.get(&u) else {
            return Ok(false);
        };
        // Node test match.
        if let Some(ntest) = q.ntest(u) {
            if !ntest.passes(d.name(x)) {
                return Ok(false);
            }
        }
        // Axis match.
        if let Some(p) = q.parent(u) {
            let &px = phi.get(&p).expect("all query nodes checked");
            let ok = match q.axis(u).expect("non-root") {
                fx_xpath::Axis::Child => {
                    d.parent(x) == Some(px) && d.kind(x) == fx_dom::NodeKind::Element
                }
                fx_xpath::Axis::Attribute => {
                    d.parent(x) == Some(px) && d.kind(x) == fx_dom::NodeKind::Attribute
                }
                fx_xpath::Axis::Descendant => {
                    d.is_ancestor(px, x) && d.kind(x) == fx_dom::NodeKind::Element
                }
            };
            if !ok {
                return Ok(false);
            }
        }
        // Value match.
        if mode == MatchMode::Full && !truth_contains(q, u, &d.strval(x))? {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fx_dom::Document;
    use fx_xpath::parse_query;

    fn q(s: &str) -> Query {
        parse_query(s).unwrap()
    }

    fn d(s: &str) -> Document {
        Document::from_xml(s).unwrap()
    }

    #[test]
    fn fig7_two_matchings() {
        // Fig. 7: /a[b > 5] on <a><b>6</b><b>8</b></a> has two matchings.
        let query = q("/a[b > 5]");
        let doc = d("<a><b>6</b><b>8</b></a>");
        assert!(document_matches(&query, &doc).unwrap());
        assert_eq!(count_matchings(&query, &doc, 100).unwrap(), 2);
        // With only one b in the truth set, one matching remains.
        let doc2 = d("<a><b>6</b><b>3</b></a>");
        assert_eq!(count_matchings(&query, &doc2, 100).unwrap(), 1);
    }

    #[test]
    fn matching_found_is_valid() {
        let query = q("/a[c[.//e and f] and b > 5]");
        let doc = d("<a><c><e/><f/></c><b>6</b></a>");
        let phi = find_matching(&query, &doc).unwrap().unwrap();
        assert!(verify_matching(&query, &doc, &phi, MatchMode::Full).unwrap());
        assert_eq!(phi.len(), query.len());
        assert!(is_leaf_preserving(&query, &doc, &phi));
    }

    #[test]
    fn structural_vs_full() {
        // Structural matching ignores values: b=3 fails full but passes
        // structural for /a[b > 5].
        let query = q("/a[b > 5]");
        let doc = d("<a><b>3</b></a>");
        assert!(!document_matches(&query, &doc).unwrap());
        assert!(document_matches_structurally(&query, &doc).unwrap());
    }

    #[test]
    fn lemma_5_10_equivalence_on_examples() {
        // BOOLEVAL(Q, D) ⇔ a matching exists, on the paper's queries.
        let cases = [
            (
                "/a[c[.//e and f] and b > 5]",
                "<a><c><e/><f/></c><b>6</b></a>",
            ),
            (
                "/a[c[.//e and f] and b > 5]",
                "<a><b>6</b><c><f/><f/></c></a>",
            ),
            ("//a[b and c]", "<a><b/><a><b/><a/><c/></a></a>"),
            ("//a[b and c]", "<a><b/><a><a/><c/></a></a>"),
            ("/a/b", "<a><Z><Z/></Z><b/></a>"),
            ("/a/b", "<a><Z><b/></Z></a>"),
            ("/a[b = 5 and .//b = 3]", "<a><b>5</b><x><b>3</b></x></a>"),
            ("/a[b = 5 and .//b = 3]", "<a><b>5</b></a>"),
        ];
        for (qs, xml) in cases {
            let query = q(qs);
            let doc = d(xml);
            let via_matching = document_matches(&query, &doc).unwrap();
            let via_select = crate::select::bool_eval(&query, &doc).unwrap();
            assert_eq!(via_matching, via_select, "{qs} on {xml}");
        }
    }

    #[test]
    fn matches_relative_contexts() {
        // In /a[b > 5] on <a><b>6</b><b>3</b></a>, only the first b matches
        // the query's b node relative to root=root.
        let query = q("/a[b > 5]");
        let doc = d("<a><b>6</b><b>3</b></a>");
        let a_q = query.successor(query.root()).unwrap();
        let b_q = query.predicate_children(a_q)[0];
        let a_d = doc.children(doc.root())[0];
        let b1 = doc.children(a_d)[0];
        let b2 = doc.children(a_d)[1];
        assert!(matches_relative(
            &query,
            &doc,
            b_q,
            b1,
            query.root(),
            doc.root(),
            MatchMode::Full
        )
        .unwrap());
        assert!(!matches_relative(
            &query,
            &doc,
            b_q,
            b2,
            query.root(),
            doc.root(),
            MatchMode::Full
        )
        .unwrap());
        // Structurally, both match.
        assert!(matches_relative(
            &query,
            &doc,
            b_q,
            b2,
            query.root(),
            doc.root(),
            MatchMode::Structural
        )
        .unwrap());
    }

    #[test]
    fn no_matching_when_names_differ() {
        assert!(!document_matches(&q("/a/b"), &d("<a><c/></a>")).unwrap());
        assert!(!document_matches(&q("/x"), &d("<a/>")).unwrap());
    }

    #[test]
    fn descendant_matching_nested() {
        let query = q("//a[b and c]");
        assert!(document_matches(&query, &d("<r><x><a><b/><c/></a></x></r>")).unwrap());
        assert!(!document_matches(&query, &d("<r><a><b/></a><a><c/></a></r>")).unwrap());
    }

    #[test]
    fn counting_saturates_at_limit() {
        let query = q("/a[b]");
        let doc = d("<a><b/><b/><b/><b/><b/></a>");
        assert_eq!(count_matchings(&query, &doc, 3).unwrap(), 3);
        assert_eq!(count_matchings(&query, &doc, 100).unwrap(), 5);
    }
}

/// Definition 6.6 / Lemma 6.7 — hybrid matchings: pastes a matching `phi`
/// of a document node `x` with a query node `u` onto a matching `eta` of
/// `D` with `Q−u` (the query minus `u`'s subtree). When `x` relates to
/// `eta(PARENT(u))` according to `AXIS(u)`, the hybrid mapping is a full
/// matching of `D` with `Q` (Lemma 6.7); this function performs that check
/// and returns the pasted matching, or `None` when the axis condition
/// fails.
pub fn hybrid_matching(
    q: &Query,
    d: &Document,
    u: QueryNodeId,
    phi: &Matching,
    eta: &Matching,
) -> Option<Matching> {
    let parent = q.parent(u)?;
    let &x = phi.get(&u)?;
    let &px = eta.get(&parent)?;
    let related = match q.axis(u)? {
        fx_xpath::Axis::Child => d.parent(x) == Some(px),
        fx_xpath::Axis::Attribute => d.parent(x) == Some(px),
        fx_xpath::Axis::Descendant => d.is_ancestor(px, x),
    };
    if !related {
        return None;
    }
    let subtree: std::collections::HashSet<QueryNodeId> = q.preorder(u).into_iter().collect();
    let mut mu = Matching::new();
    for w in q.all_nodes() {
        let source = if subtree.contains(&w) {
            phi.get(&w)
        } else {
            eta.get(&w)
        };
        mu.insert(w, *source?);
    }
    Some(mu)
}

#[cfg(test)]
mod hybrid_tests {
    use super::*;
    use fx_dom::Document;
    use fx_xpath::parse_query;

    /// Lemma 6.7 end-to-end: paste a subtree matching onto a rest-of-query
    /// matching and verify the hybrid is a genuine matching.
    #[test]
    fn pasting_yields_a_valid_matching() {
        let q = parse_query("/a[c[e] and b]").unwrap();
        let d = Document::from_xml("<a><c><e/></c><b/><c><e/></c></a>").unwrap();
        let a_q = q.successor(q.root()).unwrap();
        let c_q = q.predicate_children(a_q)[0];
        let e_q = q.predicate_children(c_q)[0];
        let a_d = d.children(d.root())[0];
        let c2_d = d.children(a_d)[2]; // the SECOND c element
        let e2_d = d.children(c2_d)[0];

        // phi: match the c subtree onto the second c.
        let mut phi = Matching::new();
        phi.insert(c_q, c2_d);
        phi.insert(e_q, e2_d);
        // eta: the canonical full matching (restricted to Q − c).
        let eta = find_matching(&q, &d).unwrap().unwrap();

        let mu = hybrid_matching(&q, &d, c_q, &phi, &eta).unwrap();
        assert_eq!(mu[&c_q], c2_d);
        assert!(verify_matching(&q, &d, &mu, MatchMode::Full).unwrap());
    }

    #[test]
    fn axis_condition_is_enforced() {
        // phi matches c against a node that is NOT a child of eta's a:
        // the paste must be refused.
        let q = parse_query("/a[c and b]").unwrap();
        let d = Document::from_xml("<a><x><c/></x><c/><b/></a>").unwrap();
        let a_q = q.successor(q.root()).unwrap();
        let c_q = q.predicate_children(a_q)[0];
        let a_d = d.children(d.root())[0];
        let x_d = d.children(a_d)[0];
        let deep_c = d.children(x_d)[0];
        let mut phi = Matching::new();
        phi.insert(c_q, deep_c);
        let eta = find_matching(&q, &d).unwrap().unwrap();
        assert!(hybrid_matching(&q, &d, c_q, &phi, &eta).is_none());
    }
}
