//! Truth sets (Definition 5.6) as *membership oracles*.
//!
//! For univariate queries, every node `u` has a truth set `TRUTH(u) ⊆ S`:
//! - if `u` is a succession leaf whose succession root `v` occurs as the
//!   variable of a univariate atomic predicate `P`, then
//!   `TRUTH(u) = TRUTH(P)` — the string values that satisfy `P`;
//! - otherwise `TRUTH(u) = S`.
//!
//! Membership is decided by substituting the candidate value for the
//! variable and evaluating (a tautology check per value). The *symbolic*
//! representation used to sample distinguished values for canonical
//! documents lives in `fx-analysis`.

use fx_xpath::ops::eval_with_binding;
use fx_xpath::{EvalError, Expr, Query, QueryNodeId};

/// Locates the atomic predicate (a top-level conjunct of the parent's
/// predicate) in which the succession root of `u` occurs as a variable.
/// Returns `None` when `TRUTH(u) = S` (no constraining predicate). Returns
/// an error when the query is not univariate at this node (the variable
/// shares an atomic predicate with another variable), since truth sets are
/// then undefined.
pub fn constraining_predicate(
    q: &Query,
    u: QueryNodeId,
) -> Result<Option<(QueryNodeId, Expr)>, TruthError> {
    // Only succession leaves can be value-constrained (Def. 5.6 case 3).
    if q.successor(u).is_some() {
        return Ok(None);
    }
    let v = q.succession_root(u);
    let Some(parent) = q.parent(v) else {
        // v = ROOT(Q): TRUTH(u) = S (Def. 5.6 case 2).
        return Ok(None);
    };
    let Some(pred) = q.predicate(parent) else {
        return Ok(None);
    };
    for conjunct in pred.conjuncts() {
        let vars = conjunct.vars();
        if vars.contains(&v) {
            if vars.len() != 1 {
                return Err(TruthError::NotUnivariate { node: v });
            }
            if !is_atomic(conjunct) {
                return Err(TruthError::NotAtomic { node: v });
            }
            if matches!(conjunct, Expr::Var(_)) {
                // A bare existence test `[b]`: the pointer leaf evaluates to
                // a singleton sequence whose EBV is always true, so
                // TRUTH(u) = S (the predicate constrains existence, not the
                // value).
                return Ok(None);
            }
            return Ok(Some((v, conjunct.clone())));
        }
    }
    Ok(None)
}

/// An error while reasoning about truth sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TruthError {
    /// The atomic predicate mentioning this variable has other variables.
    NotUnivariate {
        /// The variable node.
        node: QueryNodeId,
    },
    /// The conjunct containing the variable is not an atomic predicate
    /// (e.g. contains a nested `or`/`not`).
    NotAtomic {
        /// The variable node.
        node: QueryNodeId,
    },
    /// Evaluating the predicate failed.
    Eval(EvalError),
}

impl std::fmt::Display for TruthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TruthError::NotUnivariate { node } => {
                write!(f, "atomic predicate of {node} is not univariate")
            }
            TruthError::NotAtomic { node } => {
                write!(
                    f,
                    "the conjunct containing {node} is not an atomic predicate"
                )
            }
            TruthError::Eval(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TruthError {}

impl From<EvalError> for TruthError {
    fn from(e: EvalError) -> Self {
        TruthError::Eval(e)
    }
}

/// Definition 5.3: an atomic predicate has no boolean-argument operators
/// anywhere, and no boolean-output operator except possibly at the root.
pub fn is_atomic(e: &Expr) -> bool {
    if e.is_boolean_operator() {
        return false;
    }
    fn interior_ok(e: &Expr) -> bool {
        if e.is_boolean_operator() || e.output_is_boolean() {
            return false;
        }
        children_ok(e)
    }
    fn children_ok(e: &Expr) -> bool {
        match e {
            Expr::Const(_) | Expr::Var(_) => true,
            Expr::Neg(a) | Expr::Not(a) => interior_ok(a),
            Expr::Comp(_, a, b) | Expr::Arith(_, a, b) | Expr::And(a, b) | Expr::Or(a, b) => {
                interior_ok(a) && interior_ok(b)
            }
            Expr::Call(_, args) => args.iter().all(interior_ok),
        }
    }
    children_ok(e)
}

/// Membership test: `value ∈ TRUTH(u)` (Def. 5.6).
pub fn truth_contains(q: &Query, u: QueryNodeId, value: &str) -> Result<bool, TruthError> {
    match constraining_predicate(q, u)? {
        None => Ok(true), // TRUTH(u) = S
        Some((var, pred)) => Ok(eval_with_binding(&pred, var, value)?),
    }
}

/// True when `TRUTH(u)` is a *proper* subset of `S` syntactically — i.e.
/// the node is value-restricted (Def. 5.7). This is a syntactic check
/// (a constraining predicate exists); semantic vacuity (a predicate true of
/// every string) is handled by the symbolic layer in `fx-analysis`.
pub fn is_value_restricted(q: &Query, u: QueryNodeId) -> Result<bool, TruthError> {
    Ok(constraining_predicate(q, u)?.is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fx_xpath::parse_query;

    #[test]
    fn truth_sets_of_paper_example() {
        // §5.3 example: in /a[b/c > 5 and d], TRUTH is S for a, b, d and
        // (5,∞) for c.
        let q = parse_query("/a[b/c > 5 and d]").unwrap();
        let a = q.successor(q.root()).unwrap();
        let b = q.predicate_children(a)[0];
        let c = q.successor(b).unwrap();
        let d = q.predicate_children(a)[1];
        assert!(truth_contains(&q, a, "anything").unwrap());
        assert!(truth_contains(&q, d, "anything").unwrap());
        // b is not a succession leaf → unrestricted.
        assert!(!is_value_restricted(&q, b).unwrap());
        assert!(is_value_restricted(&q, c).unwrap());
        assert!(truth_contains(&q, c, "6").unwrap());
        assert!(!truth_contains(&q, c, "5").unwrap());
        assert!(!truth_contains(&q, c, "hello").unwrap());
    }

    #[test]
    fn root_chain_is_unrestricted() {
        let q = parse_query("/a/b").unwrap();
        let out = q.output_node();
        assert!(!is_value_restricted(&q, out).unwrap());
        assert!(truth_contains(&q, out, "x").unwrap());
    }

    #[test]
    fn bare_existence_predicate_is_unrestricted() {
        // /a[b]: the conjunct is the pointer leaf itself, which evaluates
        // to a singleton sequence — always a non-empty sequence, so
        // TRUTH(b) = S. Even an empty <b/> matches.
        let q = parse_query("/a[b]").unwrap();
        let a = q.successor(q.root()).unwrap();
        let b = q.predicate_children(a)[0];
        assert!(!is_value_restricted(&q, b).unwrap());
        assert!(truth_contains(&q, b, "x").unwrap());
        assert!(truth_contains(&q, b, "").unwrap());
    }

    #[test]
    fn multivariate_is_an_error() {
        let q = parse_query("/a[b > c]").unwrap();
        let a = q.successor(q.root()).unwrap();
        let b = q.predicate_children(a)[0];
        assert!(matches!(
            truth_contains(&q, b, "x"),
            Err(TruthError::NotUnivariate { .. })
        ));
    }

    #[test]
    fn atomicity_checks() {
        let q = parse_query("/a[b > 5 and c + d = 7]").unwrap();
        let a = q.successor(q.root()).unwrap();
        let pred = q.predicate(a).unwrap();
        let conjuncts = pred.conjuncts();
        assert!(is_atomic(conjuncts[0]));
        assert!(is_atomic(conjuncts[1]));
        assert!(!is_atomic(pred)); // the whole `and` is not atomic

        // 1 - (a > 5): boolean output nested under arithmetic — not atomic
        // (Def. 5.3 (2), the §5.2 example).
        let q2 = parse_query("/a[1 - (b > 5) = 0]").unwrap();
        let a2 = q2.successor(q2.root()).unwrap();
        assert!(!is_atomic(q2.predicate(a2).unwrap()));
    }

    #[test]
    fn string_predicates() {
        let q = parse_query("/a[matches(b, \"^A.*B$\")]").unwrap();
        let a = q.successor(q.root()).unwrap();
        let b = q.predicate_children(a)[0];
        assert!(truth_contains(&q, b, "AxyB").unwrap());
        assert!(!truth_contains(&q, b, "xyB").unwrap());
    }
}
