//! Document homomorphisms (Definition 6.1): mappings between documents that
//! preserve parent/child structure, names, and (depending on the flavour)
//! string values. Used by the lower-bound constructions to transfer
//! matchings between documents (Lemmas 6.2/6.4, Proposition 6.17).

use fx_dom::{Document, NodeId, NodeKind};
use std::collections::HashMap;

/// Which of Def. 6.1's properties a mapping must satisfy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HomKind {
    /// Root, tree-relationship, name, and value preservation everywhere.
    Full,
    /// Value preservation waived.
    Structural,
    /// Value preservation required for leaf nodes only.
    Weak,
}

/// A node mapping between two documents.
pub type NodeMap = HashMap<NodeId, NodeId>;

/// Checks that `xi` is a homomorphism of the required kind from the subtree
/// of `d` rooted at `x` to the subtree of `d2` rooted at `x2`.
pub fn is_homomorphism(
    d: &Document,
    x: NodeId,
    d2: &Document,
    x2: NodeId,
    xi: &NodeMap,
    kind: HomKind,
) -> bool {
    // Root preservation.
    if xi.get(&x) != Some(&x2) {
        return false;
    }
    for y in d.descendants(x) {
        if d.kind(y) == NodeKind::Text {
            continue; // text nodes ride along via string values
        }
        let Some(&fy) = xi.get(&y) else { return false };
        // Tree-relationship preservation.
        if y != x {
            let Some(p) = d.parent(y) else { return false };
            let Some(&fp) = xi.get(&p) else { return false };
            if d2.parent(fy) != Some(fp) {
                return false;
            }
        }
        // Name preservation.
        if d2.name(fy) != d.name(y) {
            return false;
        }
        // Value preservation.
        let need_value = match kind {
            HomKind::Full => true,
            HomKind::Structural => false,
            HomKind::Weak => d.non_text_children(y).count() == 0,
        };
        if need_value && d2.strval(fy) != d.strval(y) {
            return false;
        }
    }
    true
}

/// Checks the additional conditions of an *internal-node-preserving* weak
/// homomorphism (Def. 6.18): internal nodes map to internal nodes, and
/// leading text children agree.
pub fn is_internal_node_preserving(d: &Document, x: NodeId, d2: &Document, xi: &NodeMap) -> bool {
    for y in d.descendants(x) {
        if d.kind(y) == NodeKind::Text || d.non_text_children(y).count() == 0 {
            continue; // only internal nodes carry extra conditions
        }
        let Some(&fy) = xi.get(&y) else { return false };
        if d2.non_text_children(fy).count() == 0 {
            return false;
        }
        let leading = |doc: &Document, n: NodeId| -> Option<String> {
            let first = doc.children(n).first()?;
            (doc.kind(*first) == NodeKind::Text).then(|| doc.strval(*first))
        };
        if leading(d, y) != leading(d2, fy) {
            return false;
        }
    }
    true
}

/// Searches for a homomorphism of the required kind from `d`'s subtree at
/// `x` into `d2`'s subtree at `x2` (backtracking; intended for the small
/// documents of tests and constructions).
pub fn find_homomorphism(
    d: &Document,
    x: NodeId,
    d2: &Document,
    x2: NodeId,
    kind: HomKind,
) -> Option<NodeMap> {
    let mut map = NodeMap::new();
    if assign(d, x, d2, x2, kind, &mut map) {
        Some(map)
    } else {
        None
    }
}

fn compatible(d: &Document, y: NodeId, d2: &Document, t: NodeId, kind: HomKind) -> bool {
    if d2.name(t) != d.name(y) || d2.kind(t) != d.kind(y) {
        return false;
    }
    let need_value = match kind {
        HomKind::Full => true,
        HomKind::Structural => false,
        HomKind::Weak => d.non_text_children(y).count() == 0,
    };
    !need_value || d2.strval(t) == d.strval(y)
}

fn assign(
    d: &Document,
    y: NodeId,
    d2: &Document,
    t: NodeId,
    kind: HomKind,
    map: &mut NodeMap,
) -> bool {
    if !compatible(d, y, d2, t, kind) {
        return false;
    }
    map.insert(y, t);
    let kids: Vec<NodeId> = d.non_text_children(y).collect();
    let targets: Vec<NodeId> = d2.non_text_children(t).collect();
    // Homomorphisms need not be injective: each child independently picks a
    // target child, with backtracking through the recursion.
    fn place(
        d: &Document,
        d2: &Document,
        kind: HomKind,
        kids: &[NodeId],
        i: usize,
        targets: &[NodeId],
        map: &mut NodeMap,
    ) -> bool {
        if i == kids.len() {
            return true;
        }
        for &t in targets {
            let snapshot: Vec<NodeId> = map.keys().copied().collect();
            if assign(d, kids[i], d2, t, kind, map) && place(d, d2, kind, kids, i + 1, targets, map)
            {
                return true;
            }
            map.retain(|k, _| snapshot.contains(k));
        }
        false
    }
    place(d, d2, kind, &kids, 0, &targets, map)
}

/// True when `xi` is an isomorphism (Def. 6.5): a full homomorphism that is
/// injective and onto the non-text nodes of the target subtree.
pub fn is_isomorphism(d: &Document, x: NodeId, d2: &Document, x2: NodeId, xi: &NodeMap) -> bool {
    if !is_homomorphism(d, x, d2, x2, xi, HomKind::Full) {
        return false;
    }
    let mut image: Vec<NodeId> = d
        .descendants(x)
        .filter(|&y| d.kind(y) != NodeKind::Text)
        .filter_map(|y| xi.get(&y).copied())
        .collect();
    image.sort_unstable();
    let before = image.len();
    image.dedup();
    if image.len() != before {
        return false; // not injective
    }
    let target_count = d2
        .descendants(x2)
        .filter(|&y| d2.kind(y) != NodeKind::Text)
        .count();
    image.len() == target_count
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(s: &str) -> Document {
        Document::from_xml(s).unwrap()
    }

    #[test]
    fn paper_weak_homomorphism_example() {
        // §6.1 example: D with duplicated c maps weakly onto D'.
        let d = doc("<a><c>world</c><c>world</c><b>hello</b></a>");
        let d2 = doc("<a><b>hello</b><c>world</c></a>");
        let xi = find_homomorphism(&d, d.root(), &d2, d2.root(), HomKind::Weak).unwrap();
        assert!(is_homomorphism(
            &d,
            d.root(),
            &d2,
            d2.root(),
            &xi,
            HomKind::Weak
        ));
        // It is NOT a full homomorphism: strval(a) differs
        // ("worldworldhello" vs "helloworld").
        assert!(find_homomorphism(&d, d.root(), &d2, d2.root(), HomKind::Full).is_none());
    }

    #[test]
    fn structural_ignores_values() {
        let d = doc("<a><b>1</b></a>");
        let d2 = doc("<a><b>2</b></a>");
        assert!(find_homomorphism(&d, d.root(), &d2, d2.root(), HomKind::Structural).is_some());
        assert!(find_homomorphism(&d, d.root(), &d2, d2.root(), HomKind::Weak).is_none());
    }

    #[test]
    fn name_mismatch_blocks() {
        let d = doc("<a><b/></a>");
        let d2 = doc("<a><c/></a>");
        assert!(find_homomorphism(&d, d.root(), &d2, d2.root(), HomKind::Structural).is_none());
    }

    #[test]
    fn identity_is_isomorphism() {
        let d = doc("<a><b>6</b><c/></a>");
        let xi: NodeMap = d.all_nodes().map(|n| (n, n)).collect();
        assert!(is_isomorphism(&d, d.root(), &d, d.root(), &xi));
    }

    #[test]
    fn collapsing_map_is_not_isomorphism() {
        let d = doc("<a><b/><b/></a>");
        let d2 = doc("<a><b/></a>");
        let xi = find_homomorphism(&d, d.root(), &d2, d2.root(), HomKind::Weak).unwrap();
        assert!(!is_isomorphism(&d, d.root(), &d2, d2.root(), &xi));
    }

    #[test]
    fn internal_node_preserving_checks_leading_text() {
        // `hello` precedes the children of a in d but not in d2.
        let d = doc("<a>hello<b/></a>");
        let d2 = doc("<a><b/>hello</a>");
        let xi: NodeMap = [(d.root(), d2.root())]
            .into_iter()
            .chain(
                d.all_nodes()
                    .filter(|&n| d.kind(n) != NodeKind::Text)
                    .skip(1)
                    .zip(
                        d2.all_nodes()
                            .filter(|&n| d2.kind(n) != NodeKind::Text)
                            .skip(1),
                    ),
            )
            .collect();
        assert!(is_homomorphism(
            &d,
            d.root(),
            &d2,
            d2.root(),
            &xi,
            HomKind::Weak
        ));
        assert!(!is_internal_node_preserving(&d, d.root(), &d2, &xi));
    }

    #[test]
    fn subtree_homomorphism() {
        let d = doc("<r><a><b/></a></r>");
        let d2 = doc("<x><y><a><b/><c/></a></y></x>");
        let a1 = {
            let r = d.children(d.root())[0];
            d.children(r)[0]
        };
        let a2 = {
            let x = d2.children(d2.root())[0];
            let y = d2.children(x)[0];
            d2.children(y)[0]
        };
        assert!(find_homomorphism(&d, a1, &d2, a2, HomKind::Structural).is_some());
    }
}
