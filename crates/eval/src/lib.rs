//! # fx-eval
//!
//! The reference (in-memory, non-streaming) XPath semantics of the paper:
//! `SELECT`/`PEVAL`/`FULLEVAL`/`BOOLEVAL` (§3.1.3), matchings (Def. 5.8)
//! with search/counting, truth-set membership oracles (Def. 5.6), and
//! document homomorphisms (§6.1). This crate is the ground truth that the
//! streaming filter (`fx-core`) is differentially tested against.
//!
//! ```
//! use fx_dom::Document;
//! use fx_xpath::parse_query;
//! use fx_eval::{bool_eval, document_matches};
//!
//! let q = parse_query("/a[c[.//e and f] and b > 5]").unwrap();
//! let d = Document::from_xml("<a><c><e/><f/></c><b>6</b></a>").unwrap();
//! assert!(bool_eval(&q, &d).unwrap());
//! // Lemma 5.10: equivalently, a matching exists.
//! assert!(document_matches(&q, &d).unwrap());
//! ```

#![warn(missing_docs)]

pub mod homomorphism;
pub mod matching;
pub mod select;
pub mod truth;

pub use homomorphism::{find_homomorphism, is_homomorphism, is_isomorphism, HomKind, NodeMap};
pub use matching::{
    count_matchings, document_matches, document_matches_structurally, find_matching,
    hybrid_matching, matches_relative, verify_matching, MatchMode, Matcher, Matching,
};
pub use select::{axis_candidates, bool_eval, full_eval, satisfies_predicate, select};
pub use truth::{constraining_predicate, is_atomic, truth_contains, TruthError};

#[cfg(test)]
mod proptests {
    use super::*;
    use fx_dom::Document;
    use fx_xpath::{parse_query, Query};
    use proptest::prelude::*;

    fn arb_conjunctive_query() -> impl Strategy<Value = Query> {
        let srcs = vec![
            "/a[b and c]",
            "//a[b and c]",
            "/a[b > 5]",
            "/a[b]/c",
            "//a//b",
            "/a/b/c",
            "/a[c[.//e and f] and b > 5]",
            "/a[b = \"x\"]",
            "//a[b]/c[d]",
            "/a[.//b and c]",
        ];
        prop::sample::select(srcs).prop_map(|s| parse_query(s).unwrap())
    }

    fn arb_doc() -> impl Strategy<Value = Document> {
        let names = prop::sample::select(vec!["a", "b", "c", "d", "e", "f"]);
        let texts = prop::sample::select(vec!["", "3", "6", "x"]);
        let leaf = (names.clone(), texts).prop_map(|(n, t)| {
            if t.is_empty() {
                format!("<{n}/>")
            } else {
                format!("<{n}>{t}</{n}>")
            }
        });
        leaf.prop_recursive(4, 40, 4, move |inner| {
            (
                prop::sample::select(vec!["a", "b", "c", "x"]),
                prop::collection::vec(inner, 1..4),
            )
                .prop_map(|(n, kids)| format!("<{n}>{}</{n}>", kids.concat()))
        })
        .prop_map(|xml| Document::from_xml(&xml).unwrap())
    }

    proptest! {
        /// Lemma 5.10: for univariate conjunctive queries, BOOLEVAL agrees
        /// with matching existence.
        #[test]
        fn lemma_5_10(q in arb_conjunctive_query(), d in arb_doc()) {
            let via_select = bool_eval(&q, &d).unwrap();
            let via_matching = document_matches(&q, &d).unwrap();
            prop_assert_eq!(via_select, via_matching);
        }

        /// A found matching always verifies.
        #[test]
        fn found_matchings_verify(q in arb_conjunctive_query(), d in arb_doc()) {
            if let Some(phi) = find_matching(&q, &d).unwrap() {
                prop_assert!(verify_matching(&q, &d, &phi, MatchMode::Full).unwrap());
            }
        }

        /// Full matchings are a subset of structural matchings.
        #[test]
        fn full_implies_structural(q in arb_conjunctive_query(), d in arb_doc()) {
            if document_matches(&q, &d).unwrap() {
                prop_assert!(document_matches_structurally(&q, &d).unwrap());
            }
        }

        /// Lemma 6.2 (spot check): structural homomorphisms transfer
        /// structural matchings — identity homomorphism case.
        #[test]
        fn identity_transfer(q in arb_conjunctive_query(), d in arb_doc()) {
            let matched = document_matches(&q, &d).unwrap();
            // Rebuilding the document (an isomorphic copy) preserves the
            // matching relation.
            let copy = Document::from_sax(&d.to_events()).unwrap();
            prop_assert_eq!(document_matches(&q, &copy).unwrap(), matched);
        }
    }
}
