//! The query tree model of §3.1.2: every node has an `AXIS`, a `NTEST`, an
//! optional `SUCCESSOR` child, and an optional `PREDICATE` expression tree
//! whose leaves point at the node's *predicate children*.

use crate::value::Value;
use std::fmt;

/// Index of a node within its [`Query`] arena. The root is `QueryNodeId(0)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryNodeId(pub u32);

impl QueryNodeId {
    /// The query root (annotated `$` in the paper's figures).
    pub const ROOT: QueryNodeId = QueryNodeId(0);

    /// Arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for QueryNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// `AXIS(u)`: child, descendant, or attribute (§3.1.2). The attribute axis is
/// handled as a special case of child throughout, per the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// `/` — child.
    Child,
    /// `//` (or `.//` in relative position) — descendant.
    Descendant,
    /// `@` — attribute.
    Attribute,
}

/// `NTEST(u)`: a name from `N` or the wildcard `*`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum NodeTest {
    /// A literal name test.
    Name(String),
    /// The wildcard `*`.
    Wildcard,
}

impl NodeTest {
    /// Definition 3.1: a name `n` passes node test `N` iff `N = n` or `N = *`.
    pub fn passes(&self, name: &str) -> bool {
        match self {
            NodeTest::Wildcard => true,
            NodeTest::Name(n) => n == name,
        }
    }

    /// True for [`NodeTest::Wildcard`].
    pub fn is_wildcard(&self) -> bool {
        matches!(self, NodeTest::Wildcard)
    }
}

impl fmt::Display for NodeTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeTest::Name(n) => f.write_str(n),
            NodeTest::Wildcard => f.write_str("*"),
        }
    }
}

/// Comparison operators (`compop` in Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CompOp {
    /// All six operators.
    pub const ALL: [CompOp; 6] = [
        CompOp::Eq,
        CompOp::Ne,
        CompOp::Lt,
        CompOp::Le,
        CompOp::Gt,
        CompOp::Ge,
    ];

    /// Whether the operator imposes a numeric ordering (everything except
    /// `=`/`!=`, which compare by type).
    pub fn is_ordering(self) -> bool {
        !matches!(self, CompOp::Eq | CompOp::Ne)
    }
}

impl fmt::Display for CompOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CompOp::Eq => "=",
            CompOp::Ne => "!=",
            CompOp::Lt => "<",
            CompOp::Le => "<=",
            CompOp::Gt => ">",
            CompOp::Ge => ">=",
        })
    }
}

/// Arithmetic operators (`arithop` in Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `div`
    Div,
    /// `idiv`
    IDiv,
    /// `mod`
    Mod,
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "div",
            ArithOp::IDiv => "idiv",
            ArithOp::Mod => "mod",
        })
    }
}

/// Basic XPath functions on atomic arguments (`funcop` in Fig. 1; a subset
/// of \[24\] — `position()` and `last()` are excluded by the grammar).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Func {
    /// `fn:contains(s, t)` — boolean.
    Contains,
    /// `fn:starts-with(s, t)` — boolean.
    StartsWith,
    /// `fn:ends-with(s, t)` — boolean.
    EndsWith,
    /// `fn:matches(s, re)` — boolean (regex subset, see `regexlite`).
    Matches,
    /// `fn:string-length(s)` — number.
    StringLength,
    /// `fn:concat(s, t, …)` — string.
    Concat,
    /// `fn:substring(s, start[, len])` — string (1-based positions).
    Substring,
    /// `fn:number(v)` — number.
    Number,
    /// `fn:string(v)` — string.
    StringFn,
    /// `fn:floor(n)` — number.
    Floor,
    /// `fn:ceiling(n)` — number.
    Ceiling,
    /// `fn:round(n)` — number.
    Round,
    /// `fn:abs(n)` — number.
    Abs,
    /// `fn:upper-case(s)` — string.
    UpperCase,
    /// `fn:lower-case(s)` — string.
    LowerCase,
    /// `fn:normalize-space(s)` — string.
    NormalizeSpace,
    /// `fn:true()` — boolean.
    True,
    /// `fn:false()` — boolean.
    False,
}

impl Func {
    /// Looks a function up by its (unprefixed) name.
    pub fn by_name(name: &str) -> Option<Func> {
        Some(match name {
            "contains" => Func::Contains,
            "starts-with" => Func::StartsWith,
            "ends-with" => Func::EndsWith,
            "matches" => Func::Matches,
            "string-length" => Func::StringLength,
            "concat" => Func::Concat,
            "substring" => Func::Substring,
            "number" => Func::Number,
            "string" => Func::StringFn,
            "floor" => Func::Floor,
            "ceiling" => Func::Ceiling,
            "round" => Func::Round,
            "abs" => Func::Abs,
            "upper-case" => Func::UpperCase,
            "lower-case" => Func::LowerCase,
            "normalize-space" => Func::NormalizeSpace,
            "true" => Func::True,
            "false" => Func::False,
            _ => return None,
        })
    }

    /// The function's canonical name.
    pub fn name(self) -> &'static str {
        match self {
            Func::Contains => "contains",
            Func::StartsWith => "starts-with",
            Func::EndsWith => "ends-with",
            Func::Matches => "matches",
            Func::StringLength => "string-length",
            Func::Concat => "concat",
            Func::Substring => "substring",
            Func::Number => "number",
            Func::StringFn => "string",
            Func::Floor => "floor",
            Func::Ceiling => "ceiling",
            Func::Round => "round",
            Func::Abs => "abs",
            Func::UpperCase => "upper-case",
            Func::LowerCase => "lower-case",
            Func::NormalizeSpace => "normalize-space",
            Func::True => "true",
            Func::False => "false",
        }
    }

    /// Whether the function's *output* is boolean (relevant to the atomic
    /// predicate classification, Def. 5.3).
    pub fn output_is_boolean(self) -> bool {
        matches!(
            self,
            Func::Contains
                | Func::StartsWith
                | Func::EndsWith
                | Func::Matches
                | Func::True
                | Func::False
        )
    }

    /// Accepted argument-count range.
    pub fn arity(self) -> (usize, usize) {
        match self {
            Func::True | Func::False => (0, 0),
            Func::Concat => (2, usize::MAX),
            Func::Substring => (2, 3),
            Func::Contains | Func::StartsWith | Func::EndsWith | Func::Matches => (2, 2),
            _ => (1, 1),
        }
    }
}

/// A predicate expression tree (§3.1.2). Internal nodes are logical,
/// comparison, arithmetic, or functional operators; leaves are constants or
/// pointers to predicate children of the owning query node.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A constant from `V`.
    Const(Value),
    /// A pointer to a predicate child of the owning query node. Evaluates to
    /// the sequence of data values selected by that child's succession leaf
    /// (Def. 3.5 part 2).
    Var(QueryNodeId),
    /// A comparison — boolean output, non-boolean arguments, existential
    /// semantics (Def. 3.5 part 4).
    Comp(CompOp, Box<Expr>, Box<Expr>),
    /// An arithmetic operator — non-boolean in and out (Def. 3.5 part 5).
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    /// Unary minus.
    Neg(Box<Expr>),
    /// Logical conjunction — boolean arguments via EBV (Def. 3.5 part 3).
    And(Box<Expr>, Box<Expr>),
    /// Logical disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
    /// A function call.
    Call(Func, Vec<Expr>),
}

impl Expr {
    /// Convenience constructor: `lhs op rhs` comparison.
    pub fn comp(op: CompOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Comp(op, Box::new(lhs), Box::new(rhs))
    }

    /// Convenience constructor: conjunction.
    pub fn and(lhs: Expr, rhs: Expr) -> Expr {
        Expr::And(Box::new(lhs), Box::new(rhs))
    }

    /// All `Var` pointers in this expression, in-order.
    pub fn vars(&self) -> Vec<QueryNodeId> {
        let mut out = Vec::new();
        self.visit(&mut |e| {
            if let Expr::Var(v) = e {
                out.push(*v);
            }
        });
        out
    }

    /// Visits every sub-expression, pre-order.
    pub fn visit(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Const(_) | Expr::Var(_) => {}
            Expr::Neg(e) | Expr::Not(e) => e.visit(f),
            Expr::Comp(_, a, b) | Expr::Arith(_, a, b) | Expr::And(a, b) | Expr::Or(a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Expr::Call(_, args) => {
                for a in args {
                    a.visit(f);
                }
            }
        }
    }

    /// Whether this node is an operator *on boolean arguments* (the logical
    /// operators) — the ops banned inside atomic predicates (Def. 5.3 (1)).
    pub fn is_boolean_operator(&self) -> bool {
        matches!(self, Expr::And(..) | Expr::Or(..) | Expr::Not(..))
    }

    /// Whether this node's *output* is boolean (Def. 5.3 (2)).
    pub fn output_is_boolean(&self) -> bool {
        match self {
            Expr::Comp(..) | Expr::And(..) | Expr::Or(..) | Expr::Not(..) => true,
            Expr::Call(f, _) => f.output_is_boolean(),
            Expr::Const(Value::Bool(_)) => true,
            _ => false,
        }
    }

    /// Splits a conjunction into its top-level conjuncts: `a and b and c`
    /// yields `[a, b, c]`; a non-`And` expression yields itself.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        match self {
            Expr::And(a, b) => {
                let mut out = a.conjuncts();
                out.extend(b.conjuncts());
                out
            }
            other => vec![other],
        }
    }
}

/// A query node (§3.1.2).
#[derive(Debug, Clone, PartialEq)]
pub struct QueryNode {
    /// `AXIS(u)` — `None` only for the root.
    pub axis: Option<Axis>,
    /// `NTEST(u)` — `None` only for the root.
    pub ntest: Option<NodeTest>,
    /// Parent node, `None` for the root.
    pub parent: Option<QueryNodeId>,
    /// All children in syntactic order (predicate children then successor,
    /// as parsed).
    pub children: Vec<QueryNodeId>,
    /// `SUCCESSOR(u)` — empty or one of the children.
    pub successor: Option<QueryNodeId>,
    /// `PREDICATE(u)` — empty or an expression tree.
    pub predicate: Option<Expr>,
}

/// An XPath query as a rooted tree (arena-allocated).
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    nodes: Vec<QueryNode>,
}

impl Query {
    /// Creates a query containing only the root node.
    pub fn new() -> Self {
        Query {
            nodes: vec![QueryNode {
                axis: None,
                ntest: None,
                parent: None,
                children: Vec::new(),
                successor: None,
                predicate: None,
            }],
        }
    }

    /// Adds a node under `parent`, returning its id. The caller decides
    /// afterwards whether it is the successor (via [`Query::set_successor`])
    /// or a predicate child (by pointing a predicate `Var` at it).
    pub fn add_node(&mut self, parent: QueryNodeId, axis: Axis, ntest: NodeTest) -> QueryNodeId {
        let id = QueryNodeId(self.nodes.len() as u32);
        self.nodes.push(QueryNode {
            axis: Some(axis),
            ntest: Some(ntest),
            parent: Some(parent),
            children: Vec::new(),
            successor: None,
            predicate: None,
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Adds a named child-axis node (test convenience).
    pub fn add_child(&mut self, parent: QueryNodeId, name: &str) -> QueryNodeId {
        self.add_node(parent, Axis::Child, NodeTest::Name(name.to_string()))
    }

    /// Adds a named descendant-axis node (test convenience).
    pub fn add_descendant(&mut self, parent: QueryNodeId, name: &str) -> QueryNodeId {
        self.add_node(parent, Axis::Descendant, NodeTest::Name(name.to_string()))
    }

    /// Marks `child` as the successor of `parent`.
    pub fn set_successor(&mut self, parent: QueryNodeId, child: QueryNodeId) {
        debug_assert_eq!(self.nodes[child.index()].parent, Some(parent));
        self.nodes[parent.index()].successor = Some(child);
    }

    /// Installs the predicate of `node`.
    pub fn set_predicate(&mut self, node: QueryNodeId, predicate: Expr) {
        self.nodes[node.index()].predicate = Some(predicate);
    }

    /// Number of nodes `|Q|` (including the root).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the query is just the root.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// The root id.
    pub fn root(&self) -> QueryNodeId {
        QueryNodeId::ROOT
    }

    /// Immutable access to a node.
    pub fn node(&self, id: QueryNodeId) -> &QueryNode {
        &self.nodes[id.index()]
    }

    /// `AXIS(u)`; `None` for the root.
    pub fn axis(&self, id: QueryNodeId) -> Option<Axis> {
        self.node(id).axis
    }

    /// `NTEST(u)`; `None` for the root.
    pub fn ntest(&self, id: QueryNodeId) -> Option<&NodeTest> {
        self.node(id).ntest.as_ref()
    }

    /// The parent, `None` for the root.
    pub fn parent(&self, id: QueryNodeId) -> Option<QueryNodeId> {
        self.node(id).parent
    }

    /// Children in syntactic order.
    pub fn children(&self, id: QueryNodeId) -> &[QueryNodeId] {
        &self.node(id).children
    }

    /// `SUCCESSOR(u)`.
    pub fn successor(&self, id: QueryNodeId) -> Option<QueryNodeId> {
        self.node(id).successor
    }

    /// `PREDICATE(u)`.
    pub fn predicate(&self, id: QueryNodeId) -> Option<&Expr> {
        self.node(id).predicate.as_ref()
    }

    /// The predicate children of `u`: children that are not the successor
    /// (§3.1.2).
    pub fn predicate_children(&self, id: QueryNodeId) -> Vec<QueryNodeId> {
        let succ = self.successor(id);
        self.children(id)
            .iter()
            .copied()
            .filter(|&c| Some(c) != succ)
            .collect()
    }

    /// `LEAF(u)`: the succession leaf reached by repeatedly following
    /// successors from `u` (§3.1.2).
    pub fn succession_leaf(&self, mut id: QueryNodeId) -> QueryNodeId {
        while let Some(s) = self.successor(id) {
            id = s;
        }
        id
    }

    /// `OUT(Q)`: the succession leaf of the root — the query output node.
    pub fn output_node(&self) -> QueryNodeId {
        self.succession_leaf(self.root())
    }

    /// The *succession root* of `u`: the first non-successor node reached by
    /// walking up while `u` is its parent's successor (§3.1.2 / Def. 5.6).
    pub fn succession_root(&self, mut id: QueryNodeId) -> QueryNodeId {
        while let Some(p) = self.parent(id) {
            if self.successor(p) == Some(id) {
                id = p;
            } else {
                break;
            }
        }
        id
    }

    /// True if `u` is a succession root (the query root or a predicate child
    /// of its parent).
    pub fn is_succession_root(&self, id: QueryNodeId) -> bool {
        match self.parent(id) {
            None => true,
            Some(p) => self.successor(p) != Some(id),
        }
    }

    /// True if the node has no children (a tree leaf).
    pub fn is_leaf(&self, id: QueryNodeId) -> bool {
        self.children(id).is_empty()
    }

    /// All node ids, root first (pre-order by construction for parsed
    /// queries; use [`Query::preorder`] when order matters).
    pub fn all_nodes(&self) -> impl Iterator<Item = QueryNodeId> {
        (0..self.nodes.len() as u32).map(QueryNodeId)
    }

    /// Pre-order traversal of the subtree rooted at `id`.
    pub fn preorder(&self, id: QueryNodeId) -> Vec<QueryNodeId> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            out.push(n);
            stack.extend(self.children(n).iter().rev());
        }
        out
    }

    /// The sequence `PATH(u)`: nodes from the root down to `u`, inclusive.
    pub fn path(&self, id: QueryNodeId) -> Vec<QueryNodeId> {
        let mut p = vec![id];
        let mut cur = id;
        while let Some(parent) = self.parent(cur) {
            p.push(parent);
            cur = parent;
        }
        p.reverse();
        p
    }

    /// `DEPTH(u) = |PATH(u)|` (§6.3).
    pub fn depth(&self, id: QueryNodeId) -> usize {
        self.path(id).len()
    }

    /// True if `anc` is a proper ancestor of `id`.
    pub fn is_ancestor(&self, anc: QueryNodeId, id: QueryNodeId) -> bool {
        let mut cur = self.parent(id);
        while let Some(p) = cur {
            if p == anc {
                return true;
            }
            cur = self.parent(p);
        }
        false
    }

    /// The length `h` of the longest chain of wildcard-test nodes along a
    /// single path (used by the canonical-document construction, §6.4.1).
    pub fn longest_wildcard_chain(&self) -> usize {
        let mut best = 0usize;
        for id in self.all_nodes() {
            if !matches!(self.ntest(id), Some(NodeTest::Wildcard)) {
                continue;
            }
            let mut len = 1usize;
            let mut cur = self.parent(id);
            while let Some(p) = cur {
                if matches!(self.ntest(p), Some(NodeTest::Wildcard)) {
                    len += 1;
                    cur = self.parent(p);
                } else {
                    break;
                }
            }
            best = best.max(len);
        }
        best
    }

    /// Structural sanity check of the §3.1.2 invariants: the successor is a
    /// child; every predicate child is pointed to by exactly one predicate
    /// leaf; `Var` pointers target children of the owning node.
    pub fn validate(&self) -> Result<(), String> {
        for id in self.all_nodes() {
            let node = self.node(id);
            if let Some(s) = node.successor {
                if self.parent(s) != Some(id) {
                    return Err(format!("successor of {id} is not its child"));
                }
            }
            let vars: Vec<QueryNodeId> = node
                .predicate
                .as_ref()
                .map(|p| p.vars())
                .unwrap_or_default();
            for &v in &vars {
                if self.parent(v) != Some(id) {
                    return Err(format!("predicate of {id} points at non-child {v}"));
                }
                if Some(v) == node.successor {
                    return Err(format!("predicate of {id} points at the successor {v}"));
                }
            }
            let mut sorted = vars.clone();
            sorted.sort_unstable();
            let before = sorted.len();
            sorted.dedup();
            if sorted.len() != before {
                return Err(format!(
                    "two predicate leaves of {id} point at the same child"
                ));
            }
            for pc in self.predicate_children(id) {
                if !vars.contains(&pc) {
                    return Err(format!(
                        "child {pc} of {id} is neither successor nor pointed to by the predicate"
                    ));
                }
            }
        }
        Ok(())
    }
}

impl Default for Query {
    fn default() -> Self {
        Query::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the Fig. 2 query tree `/a[c[.//e and f] and b > 5]/b` by hand.
    fn fig2() -> (Query, QueryNodeId, QueryNodeId, QueryNodeId) {
        let mut q = Query::new();
        let a = q.add_child(QueryNodeId::ROOT, "a");
        q.set_successor(QueryNodeId::ROOT, a);
        let c = q.add_child(a, "c");
        let b1 = q.add_child(a, "b");
        let b2 = q.add_child(a, "b");
        q.set_successor(a, b2);
        let e = q.add_descendant(c, "e");
        let f = q.add_child(c, "f");
        q.set_predicate(c, Expr::and(Expr::Var(e), Expr::Var(f)));
        q.set_predicate(
            a,
            Expr::and(
                Expr::Var(c),
                Expr::comp(CompOp::Gt, Expr::Var(b1), Expr::Const(Value::Number(5.0))),
            ),
        );
        (q, a, b2, c)
    }

    #[test]
    fn fig2_structure() {
        let (q, a, b2, c) = fig2();
        assert!(q.validate().is_ok());
        assert_eq!(q.len(), 7);
        assert_eq!(q.successor(QueryNodeId::ROOT), Some(a));
        assert_eq!(q.successor(a), Some(b2));
        assert_eq!(q.output_node(), b2);
        assert_eq!(q.predicate_children(a).len(), 2);
        assert_eq!(q.predicate_children(c).len(), 2);
    }

    #[test]
    fn succession_roots_and_leaves() {
        let (q, a, b2, c) = fig2();
        // The root and predicate children are succession roots.
        assert!(q.is_succession_root(QueryNodeId::ROOT));
        assert!(q.is_succession_root(c));
        assert!(!q.is_succession_root(a));
        assert!(!q.is_succession_root(b2));
        assert_eq!(q.succession_leaf(QueryNodeId::ROOT), b2);
        assert_eq!(q.succession_root(b2), QueryNodeId::ROOT);
        assert_eq!(q.succession_root(a), QueryNodeId::ROOT);
        assert_eq!(q.succession_root(c), c);
    }

    #[test]
    fn validate_rejects_dangling_predicate_child() {
        let mut q = Query::new();
        let a = q.add_child(QueryNodeId::ROOT, "a");
        q.set_successor(QueryNodeId::ROOT, a);
        let _orphan = q.add_child(a, "x"); // neither successor nor in predicate
        assert!(q.validate().is_err());
    }

    #[test]
    fn validate_rejects_double_pointer() {
        let mut q = Query::new();
        let a = q.add_child(QueryNodeId::ROOT, "a");
        q.set_successor(QueryNodeId::ROOT, a);
        let b = q.add_child(a, "b");
        q.set_predicate(a, Expr::and(Expr::Var(b), Expr::Var(b)));
        assert!(q.validate().is_err());
    }

    #[test]
    fn wildcard_chain_length() {
        let mut q = Query::new();
        let s1 = q.add_node(QueryNodeId::ROOT, Axis::Child, NodeTest::Wildcard);
        q.set_successor(QueryNodeId::ROOT, s1);
        let s2 = q.add_node(s1, Axis::Child, NodeTest::Wildcard);
        q.set_successor(s1, s2);
        let a = q.add_child(s2, "a");
        q.set_successor(s2, a);
        assert_eq!(q.longest_wildcard_chain(), 2);
    }

    #[test]
    fn expr_classifications() {
        let cmp = Expr::comp(
            CompOp::Gt,
            Expr::Var(QueryNodeId(1)),
            Expr::Const(Value::Number(5.0)),
        );
        assert!(cmp.output_is_boolean());
        assert!(!cmp.is_boolean_operator());
        let conj = Expr::and(cmp.clone(), cmp.clone());
        assert!(conj.is_boolean_operator());
        assert_eq!(conj.conjuncts().len(), 2);
        let nested = Expr::and(conj, cmp);
        assert_eq!(nested.conjuncts().len(), 3);
    }

    #[test]
    fn depth_and_path() {
        let (q, a, _, c) = fig2();
        assert_eq!(q.depth(QueryNodeId::ROOT), 1);
        assert_eq!(q.depth(a), 2);
        assert_eq!(q.depth(c), 3);
        assert_eq!(q.path(c), vec![QueryNodeId::ROOT, a, c]);
        assert!(q.is_ancestor(a, c));
        assert!(!q.is_ancestor(c, a));
    }
}
