//! The atomic value model `V` of §3.1.1 and the Effective Boolean Value
//! function of §3.1.3.

use std::cmp::Ordering;
use std::fmt;

/// An atomic XPath value: number, string, or boolean.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A double-precision number (XPath's `xs:double`).
    Number(f64),
    /// A string from `S`.
    Str(String),
    /// A boolean.
    Bool(bool),
}

impl Value {
    /// Constructs a string value.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// Casts to a number (`fn:number` semantics): booleans map to 0/1,
    /// non-numeric strings to NaN.
    pub fn to_number(&self) -> f64 {
        match self {
            Value::Number(n) => *n,
            Value::Bool(b) => {
                if *b {
                    1.0
                } else {
                    0.0
                }
            }
            Value::Str(s) => parse_number(s),
        }
    }

    /// Casts to a string (`fn:string` semantics).
    pub fn to_str(&self) -> String {
        match self {
            Value::Str(s) => s.clone(),
            Value::Number(n) => format_number(*n),
            Value::Bool(b) => b.to_string(),
        }
    }

    /// The Effective Boolean Value of a *single* value: booleans are
    /// themselves, numbers are true iff non-zero and non-NaN, strings are
    /// true iff non-empty.
    pub fn ebv(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            Value::Number(n) => *n != 0.0 && !n.is_nan(),
            Value::Str(s) => !s.is_empty(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_str())
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Number(n)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

/// Parses a string as an XPath number; whitespace-trimmed, NaN on failure.
pub fn parse_number(s: &str) -> f64 {
    s.trim().parse::<f64>().unwrap_or(f64::NAN)
}

/// Formats a number the XPath way: integers without a trailing `.0`.
pub fn format_number(n: f64) -> String {
    if n.is_nan() {
        "NaN".to_string()
    } else if n.is_infinite() {
        if n > 0.0 {
            "Infinity".to_string()
        } else {
            "-Infinity".to_string()
        }
    } else if n == n.trunc() && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

/// The result of evaluating a predicate-tree node (Def. 3.5): either an
/// atomic value or a sequence of atomic values.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalResult {
    /// A single atomic value.
    Atomic(Value),
    /// A (possibly empty) sequence of atomic values.
    Sequence(Vec<Value>),
}

impl EvalResult {
    /// The Effective Boolean Value (§3.1.3): a sequence is true iff
    /// non-empty; an atomic value uses [`Value::ebv`].
    pub fn ebv(&self) -> bool {
        match self {
            EvalResult::Atomic(v) => v.ebv(),
            EvalResult::Sequence(s) => !s.is_empty(),
        }
    }

    /// Flattens to the sequence `P_i` used in Def. 3.5 parts 4–5: an atomic
    /// value becomes a singleton sequence.
    pub fn into_sequence(self) -> Vec<Value> {
        match self {
            EvalResult::Atomic(v) => vec![v],
            EvalResult::Sequence(s) => s,
        }
    }

    /// Borrowing variant of [`EvalResult::into_sequence`].
    pub fn as_sequence(&self) -> Vec<Value> {
        self.clone().into_sequence()
    }
}

impl From<Value> for EvalResult {
    fn from(v: Value) -> Self {
        EvalResult::Atomic(v)
    }
}

/// Numeric-aware comparison used by the comparison operators: both operands
/// are compared as numbers when the operator is an ordering operator, or
/// when both parse as numbers; otherwise as strings. Returns `None` when a
/// numeric comparison involves NaN.
pub fn compare_values(a: &Value, b: &Value, force_numeric: bool) -> Option<Ordering> {
    let both_numeric = force_numeric
        || matches!((a, b), (Value::Number(_), _) | (_, Value::Number(_)))
        || (!a.to_number().is_nan() && !b.to_number().is_nan());
    if both_numeric {
        a.to_number().partial_cmp(&b.to_number())
    } else {
        Some(a.to_str().cmp(&b.to_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn number_casts() {
        assert_eq!(Value::str("42").to_number(), 42.0);
        assert_eq!(Value::str(" 3.5 ").to_number(), 3.5);
        assert!(Value::str("abc").to_number().is_nan());
        assert_eq!(Value::Bool(true).to_number(), 1.0);
    }

    #[test]
    fn string_casts() {
        assert_eq!(Value::Number(6.0).to_str(), "6");
        assert_eq!(Value::Number(2.5).to_str(), "2.5");
        assert_eq!(Value::Bool(false).to_str(), "false");
    }

    #[test]
    fn ebv_rules() {
        assert!(Value::Bool(true).ebv());
        assert!(!Value::Number(0.0).ebv());
        assert!(!Value::Number(f64::NAN).ebv());
        assert!(Value::Number(-1.0).ebv());
        assert!(!Value::str("").ebv());
        assert!(Value::str("x").ebv());
    }

    #[test]
    fn sequence_ebv_is_nonemptiness() {
        // "When the operand of EBV is a sequence, it returns true if the
        // sequence is not empty" (§3.1.3) — even for a singleton false-y
        // value.
        assert!(!EvalResult::Sequence(vec![]).ebv());
        assert!(EvalResult::Sequence(vec![Value::str("")]).ebv());
        assert!(EvalResult::Sequence(vec![Value::Number(0.0)]).ebv());
    }

    #[test]
    fn comparisons_prefer_numeric() {
        use Ordering::*;
        assert_eq!(
            compare_values(&Value::str("10"), &Value::str("9"), false),
            Some(Greater)
        );
        assert_eq!(
            compare_values(&Value::str("abc"), &Value::str("abd"), false),
            Some(Less)
        );
        assert_eq!(
            compare_values(&Value::Number(5.0), &Value::str("5"), false),
            Some(Equal)
        );
        assert_eq!(
            compare_values(&Value::str("abc"), &Value::str("1"), true),
            None
        );
    }

    #[test]
    fn number_formatting() {
        assert_eq!(format_number(6.0), "6");
        assert_eq!(format_number(-3.0), "-3");
        assert_eq!(format_number(0.5), "0.5");
        assert_eq!(format_number(f64::NAN), "NaN");
        assert_eq!(format_number(f64::INFINITY), "Infinity");
    }
}
