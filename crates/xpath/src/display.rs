//! Rendering query trees back to Forward XPath text, such that
//! `parse_query(to_xpath(q)) == q` for parser-produced queries.

use crate::ast::{Axis, Expr, Query, QueryNodeId};
use crate::value::Value;
use std::fmt::Write;

/// Renders a query to XPath text.
pub fn to_xpath(q: &Query) -> String {
    let mut out = String::new();
    let mut current = q.root();
    while let Some(next) = q.successor(current) {
        write_step(q, next, &mut out, false);
        current = next;
    }
    out
}

/// Renders the *relative path* rooted at a succession root `first` (a
/// predicate child): its succession chain with predicates.
fn write_rel_path(q: &Query, first: QueryNodeId, out: &mut String) {
    write_step(q, first, out, true);
    let mut current = first;
    while let Some(next) = q.successor(current) {
        write_step(q, next, out, false);
        current = next;
    }
}

fn write_step(q: &Query, node: QueryNodeId, out: &mut String, relative_first: bool) {
    let axis = q.axis(node).expect("non-root nodes have an axis");
    let axis_str = match (axis, relative_first) {
        (Axis::Child, true) => "",
        (Axis::Child, false) => "/",
        (Axis::Descendant, true) => ".//",
        (Axis::Descendant, false) => "//",
        (Axis::Attribute, true) => "@",
        (Axis::Attribute, false) => "/@",
    };
    out.push_str(axis_str);
    let _ = write!(
        out,
        "{}",
        q.ntest(node).expect("non-root nodes have a node test")
    );
    if let Some(pred) = q.predicate(node) {
        out.push('[');
        write_expr(q, pred, out, 0);
        out.push(']');
    }
}

/// Precedence levels: or=1, and=2, comparison=3, additive=4,
/// multiplicative=5, unary=6, primary=7.
fn write_expr(q: &Query, e: &Expr, out: &mut String, parent_level: u8) {
    let level = expr_level(e);
    let parens = level < parent_level;
    if parens {
        out.push('(');
    }
    match e {
        Expr::Const(Value::Number(n)) => {
            let _ = write!(out, "{}", crate::value::format_number(*n));
        }
        Expr::Const(Value::Str(s)) => {
            // Prefer double quotes; fall back to single.
            if s.contains('"') {
                let _ = write!(out, "'{s}'");
            } else {
                let _ = write!(out, "\"{s}\"");
            }
        }
        Expr::Const(Value::Bool(b)) => {
            let _ = write!(out, "{}()", if *b { "true" } else { "false" });
        }
        Expr::Var(v) => write_rel_path(q, *v, out),
        Expr::Comp(op, a, b) => {
            write_expr(q, a, out, 4);
            let _ = write!(out, " {op} ");
            write_expr(q, b, out, 4);
        }
        Expr::Arith(op, a, b) => {
            let (lvl, next) = match op {
                crate::ast::ArithOp::Add | crate::ast::ArithOp::Sub => (4, 5),
                _ => (5, 6),
            };
            write_expr(q, a, out, lvl);
            let _ = write!(out, " {op} ");
            write_expr(q, b, out, next);
        }
        Expr::Neg(a) => {
            out.push('-');
            write_expr(q, a, out, 6);
        }
        Expr::And(a, b) => {
            write_expr(q, a, out, 2);
            out.push_str(" and ");
            write_expr(q, b, out, 3);
        }
        Expr::Or(a, b) => {
            write_expr(q, a, out, 1);
            out.push_str(" or ");
            write_expr(q, b, out, 2);
        }
        Expr::Not(a) => {
            out.push_str("not(");
            write_expr(q, a, out, 0);
            out.push(')');
        }
        Expr::Call(f, args) => {
            let _ = write!(out, "{}(", f.name());
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(q, a, out, 0);
            }
            out.push(')');
        }
    }
    if parens {
        out.push(')');
    }
}

fn expr_level(e: &Expr) -> u8 {
    match e {
        Expr::Or(..) => 1,
        Expr::And(..) => 2,
        Expr::Comp(..) => 3,
        Expr::Arith(op, ..) => match op {
            crate::ast::ArithOp::Add | crate::ast::ArithOp::Sub => 4,
            _ => 5,
        },
        Expr::Neg(..) => 6,
        _ => 7,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    fn round_trip(src: &str) {
        let q = parse_query(src).unwrap();
        let rendered = to_xpath(&q);
        let q2 = parse_query(&rendered).unwrap_or_else(|e| panic!("re-parse of {rendered:?}: {e}"));
        assert_eq!(q2, q, "round trip failed: {src:?} -> {rendered:?}");
    }

    #[test]
    fn renders_fig2_query() {
        let q = parse_query("/a[c[.//e and f] and b > 5]/b").unwrap();
        assert_eq!(to_xpath(&q), "/a[c[.//e and f] and b > 5]/b");
    }

    #[test]
    fn round_trips_paper_queries() {
        for src in [
            "/a[c[.//e and f] and b > 5]/b",
            "//a[b and c]",
            "/a/b",
            "/a[*/b > 5 and c/b//d > 12 and .//d < 30]",
            "//d[f and a[b and c]]",
            "/a[b and .//b]",
            "/a[b = 5 and .//b = 3]",
            "/a[b[c] > 5]",
            "/a[b[c > 5]]",
            "/a[b/c > 5 and d]",
            "/a[b > 5 and b > 6]",
            "/a/@id",
            "/a[@id = 7]/b",
            "/a[matches(b, \"^A.*B$\") and matches(b, \"AB\")]",
            "/a[not(b) or c]",
            "/a[b + 2 = 5]",
            "/a[b + 2 * 3 = 8 and -b < 2]",
            "/a[(b + 2) * 3 = 8]",
            "//a//b[c]//d",
            "/a[string-length(b) = 3]",
            "/a[concat(b, \"x\", c) = \"1x2\"]",
        ] {
            round_trip(src);
        }
    }

    #[test]
    fn parenthesization_is_minimal_but_correct() {
        let q = parse_query("/a[(b or c) and d]").unwrap();
        let s = to_xpath(&q);
        assert_eq!(s, "/a[(b or c) and d]");
        round_trip("/a[(b or c) and d]");
    }
}
