//! Parser for the Forward XPath grammar of Fig. 1.
//!
//! ```text
//! Path      := Step | Path Step
//! Step      := Axis NodeTest ('[' Predicate ']')?
//! Axis      := '/' | '//' | '@'
//! RelPath   := RelStep | RelPath Step
//! RelStep   := RelAxis NodeTest ('[' Predicate ']')?
//! RelAxis   := './/' | '@'                 (plus the implied child axis)
//! NodeTest  := name | '*'
//! Predicate := Expression | Expression compop Expression
//!            | Predicate 'and' Predicate | Predicate 'or' Predicate
//!            | 'not(' Predicate ')'
//! Expression := const | RelPath | Expression arithop Expression
//!            | '-' Expression | funcop '(' args ')'
//! ```
//!
//! Notes mirroring the paper: a bare name inside a predicate is a relative
//! path with an implied child axis (every example in the paper uses this,
//! e.g. `/a[c[.//e and f] and b > 5]`); `position()`/`last()` are rejected;
//! the attribute axis may be written `@n` or `/@n`.

use crate::ast::{ArithOp, Axis, CompOp, Expr, Func, NodeTest, Query, QueryNodeId};
use crate::value::Value;
use std::fmt;

/// A parse error with a byte position into the query text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryParseError {
    /// Description of the problem.
    pub message: String,
    /// Byte offset of the offending token.
    pub at: usize,
}

impl fmt::Display for QueryParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XPath parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for QueryParseError {}

/// Parses a Forward XPath query string into a [`Query`] tree.
pub fn parse_query(input: &str) -> Result<Query, QueryParseError> {
    let tokens = lex(input)?;
    let mut p = P {
        tokens: &tokens,
        pos: 0,
        query: Query::new(),
    };
    p.parse_path()?;
    p.expect_eof()?;
    let query = p.query;
    query.validate().map_err(|m| QueryParseError {
        message: format!("internal invariant violated: {m}"),
        at: 0,
    })?;
    Ok(query)
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Slash,
    DSlash,
    At,
    DotDSlash,
    LBracket,
    RBracket,
    LParen,
    RParen,
    Comma,
    Star,
    Plus,
    Minus,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Name(String),
    Number(f64),
    Str(String),
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Slash => write!(f, "/"),
            Tok::DSlash => write!(f, "//"),
            Tok::At => write!(f, "@"),
            Tok::DotDSlash => write!(f, ".//"),
            Tok::LBracket => write!(f, "["),
            Tok::RBracket => write!(f, "]"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::Comma => write!(f, ","),
            Tok::Star => write!(f, "*"),
            Tok::Plus => write!(f, "+"),
            Tok::Minus => write!(f, "-"),
            Tok::Eq => write!(f, "="),
            Tok::Ne => write!(f, "!="),
            Tok::Lt => write!(f, "<"),
            Tok::Le => write!(f, "<="),
            Tok::Gt => write!(f, ">"),
            Tok::Ge => write!(f, ">="),
            Tok::Name(n) => write!(f, "{n}"),
            Tok::Number(n) => write!(f, "{n}"),
            Tok::Str(s) => write!(f, "{s:?}"),
        }
    }
}

fn lex(input: &str) -> Result<Vec<(Tok, usize)>, QueryParseError> {
    let bytes = input.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        let at = i;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                i += 1;
                continue;
            }
            b'/' => {
                if bytes.get(i + 1) == Some(&b'/') {
                    toks.push((Tok::DSlash, at));
                    i += 2;
                } else {
                    toks.push((Tok::Slash, at));
                    i += 1;
                }
            }
            b'.' => {
                if input[i..].starts_with(".//") {
                    toks.push((Tok::DotDSlash, at));
                    i += 3;
                } else if bytes.get(i + 1).is_some_and(u8::is_ascii_digit) {
                    // A decimal like `.5`.
                    let (n, len) = lex_number(&input[i..]).ok_or_else(|| QueryParseError {
                        message: "bad number".into(),
                        at,
                    })?;
                    toks.push((Tok::Number(n), at));
                    i += len;
                } else {
                    return Err(QueryParseError {
                        message: "unexpected `.` (only `.//` and decimals are supported)".into(),
                        at,
                    });
                }
            }
            b'@' => {
                toks.push((Tok::At, at));
                i += 1;
            }
            b'[' => {
                toks.push((Tok::LBracket, at));
                i += 1;
            }
            b']' => {
                toks.push((Tok::RBracket, at));
                i += 1;
            }
            b'(' => {
                toks.push((Tok::LParen, at));
                i += 1;
            }
            b')' => {
                toks.push((Tok::RParen, at));
                i += 1;
            }
            b',' => {
                toks.push((Tok::Comma, at));
                i += 1;
            }
            b'*' => {
                toks.push((Tok::Star, at));
                i += 1;
            }
            b'+' => {
                toks.push((Tok::Plus, at));
                i += 1;
            }
            b'-' => {
                toks.push((Tok::Minus, at));
                i += 1;
            }
            b'=' => {
                toks.push((Tok::Eq, at));
                i += 1;
            }
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push((Tok::Ne, at));
                    i += 2;
                } else {
                    return Err(QueryParseError {
                        message: "expected `!=`".into(),
                        at,
                    });
                }
            }
            b'<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push((Tok::Le, at));
                    i += 2;
                } else {
                    toks.push((Tok::Lt, at));
                    i += 1;
                }
            }
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push((Tok::Ge, at));
                    i += 2;
                } else {
                    toks.push((Tok::Gt, at));
                    i += 1;
                }
            }
            b'"' | b'\'' => {
                let quote = b;
                let mut j = i + 1;
                while j < bytes.len() && bytes[j] != quote {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(QueryParseError {
                        message: "unterminated string literal".into(),
                        at,
                    });
                }
                toks.push((Tok::Str(input[i + 1..j].to_string()), at));
                i = j + 1;
            }
            b'0'..=b'9' => {
                let (n, len) = lex_number(&input[i..]).ok_or_else(|| QueryParseError {
                    message: "bad number".into(),
                    at,
                })?;
                toks.push((Tok::Number(n), at));
                i += len;
            }
            _ => {
                // Name: XML name characters. `-` is a name character, so
                // subtraction requires surrounding whitespace (documented).
                let start = i;
                while i < bytes.len() {
                    let c = bytes[i];
                    let ok =
                        c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b':') || c >= 0x80;
                    if !ok {
                        break;
                    }
                    i += 1;
                }
                if i == start {
                    return Err(QueryParseError {
                        message: format!(
                            "unexpected character `{}`",
                            &input[i..].chars().next().unwrap()
                        ),
                        at,
                    });
                }
                toks.push((Tok::Name(input[start..i].to_string()), at));
            }
        }
    }
    Ok(toks)
}

fn lex_number(s: &str) -> Option<(f64, usize)> {
    let bytes = s.as_bytes();
    let mut len = 0usize;
    let mut seen_dot = false;
    while len < bytes.len() {
        match bytes[len] {
            b'0'..=b'9' => len += 1,
            b'.' if !seen_dot && bytes.get(len + 1).is_some_and(u8::is_ascii_digit) => {
                seen_dot = true;
                len += 1;
            }
            _ => break,
        }
    }
    if len == 0 {
        return None;
    }
    s[..len].parse().ok().map(|n| (n, len))
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct P<'a> {
    tokens: &'a [(Tok, usize)],
    pos: usize,
    query: Query,
}

impl P<'_> {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn at(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|&(_, a)| a)
            .unwrap_or_else(|| self.tokens.last().map(|&(_, a)| a + 1).unwrap_or(0))
    }

    fn next(&mut self) -> Option<&Tok> {
        let t = self.tokens.get(self.pos).map(|(t, _)| t);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> QueryParseError {
        QueryParseError {
            message: message.into(),
            at: self.at(),
        }
    }

    fn expect(&mut self, tok: Tok) -> Result<(), QueryParseError> {
        if self.peek() == Some(&tok) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!(
                "expected `{tok}`, found {}",
                self.peek()
                    .map(|t| format!("`{t}`"))
                    .unwrap_or_else(|| "end of input".into())
            )))
        }
    }

    fn expect_eof(&self) -> Result<(), QueryParseError> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            Err(self.err(format!("unexpected `{}`", self.peek().unwrap())))
        }
    }

    /// `Path := Step+` where each step's axis is `/`, `//`, `@`, or `/@`.
    fn parse_path(&mut self) -> Result<(), QueryParseError> {
        let mut current = QueryNodeId::ROOT;
        let mut first = true;
        loop {
            let axis = match self.peek() {
                Some(Tok::Slash) => {
                    self.pos += 1;
                    if self.peek() == Some(&Tok::At) {
                        self.pos += 1;
                        Axis::Attribute
                    } else {
                        Axis::Child
                    }
                }
                Some(Tok::DSlash) => {
                    self.pos += 1;
                    Axis::Descendant
                }
                Some(Tok::At) => {
                    self.pos += 1;
                    Axis::Attribute
                }
                _ if first => return Err(self.err("a query must begin with `/`, `//`, or `@`")),
                _ => break,
            };
            first = false;
            current = self.parse_step(current, axis)?;
        }
        Ok(())
    }

    /// Parses `NodeTest ('[' Predicate ']')?` under `parent` with `axis`,
    /// marks the node as successor of `parent`, and returns it.
    fn parse_step(
        &mut self,
        parent: QueryNodeId,
        axis: Axis,
    ) -> Result<QueryNodeId, QueryParseError> {
        let ntest = self.parse_node_test()?;
        let node = self.query.add_node(parent, axis, ntest);
        self.query.set_successor(parent, node);
        if self.peek() == Some(&Tok::LBracket) {
            self.pos += 1;
            let pred = self.parse_or(node)?;
            self.expect(Tok::RBracket)?;
            self.query.set_predicate(node, pred);
        }
        Ok(node)
    }

    fn parse_node_test(&mut self) -> Result<NodeTest, QueryParseError> {
        match self.next().cloned() {
            Some(Tok::Star) => Ok(NodeTest::Wildcard),
            Some(Tok::Name(n)) => {
                if n == "position" || n == "last" {
                    return Err(
                        self.err(format!("`{n}()` is excluded from Forward XPath (Fig. 1)"))
                    );
                }
                Ok(NodeTest::Name(n))
            }
            other => Err(self.err(format!(
                "expected a node test, found {}",
                other
                    .map(|t| format!("`{t}`"))
                    .unwrap_or_else(|| "end of input".into())
            ))),
        }
    }

    // -- Predicates -------------------------------------------------------

    fn parse_or(&mut self, owner: QueryNodeId) -> Result<Expr, QueryParseError> {
        let mut lhs = self.parse_and(owner)?;
        while let Some(Tok::Name(n)) = self.peek() {
            if n != "or" {
                break;
            }
            self.pos += 1;
            let rhs = self.parse_and(owner)?;
            lhs = Expr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_and(&mut self, owner: QueryNodeId) -> Result<Expr, QueryParseError> {
        let mut lhs = self.parse_comparison(owner)?;
        while let Some(Tok::Name(n)) = self.peek() {
            if n != "and" {
                break;
            }
            self.pos += 1;
            let rhs = self.parse_comparison(owner)?;
            lhs = Expr::and(lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_comparison(&mut self, owner: QueryNodeId) -> Result<Expr, QueryParseError> {
        let lhs = self.parse_additive(owner)?;
        let op = match self.peek() {
            Some(Tok::Eq) => CompOp::Eq,
            Some(Tok::Ne) => CompOp::Ne,
            Some(Tok::Lt) => CompOp::Lt,
            Some(Tok::Le) => CompOp::Le,
            Some(Tok::Gt) => CompOp::Gt,
            Some(Tok::Ge) => CompOp::Ge,
            _ => return Ok(lhs),
        };
        self.pos += 1;
        let rhs = self.parse_additive(owner)?;
        Ok(Expr::comp(op, lhs, rhs))
    }

    fn parse_additive(&mut self, owner: QueryNodeId) -> Result<Expr, QueryParseError> {
        let mut lhs = self.parse_multiplicative(owner)?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => ArithOp::Add,
                Some(Tok::Minus) => ArithOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.parse_multiplicative(owner)?;
            lhs = Expr::Arith(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_multiplicative(&mut self, owner: QueryNodeId) -> Result<Expr, QueryParseError> {
        let mut lhs = self.parse_unary(owner)?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => ArithOp::Mul,
                Some(Tok::Name(n)) if n == "div" => ArithOp::Div,
                Some(Tok::Name(n)) if n == "idiv" => ArithOp::IDiv,
                Some(Tok::Name(n)) if n == "mod" => ArithOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.parse_unary(owner)?;
            lhs = Expr::Arith(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self, owner: QueryNodeId) -> Result<Expr, QueryParseError> {
        if self.peek() == Some(&Tok::Minus) {
            self.pos += 1;
            let inner = self.parse_unary(owner)?;
            return Ok(Expr::Neg(Box::new(inner)));
        }
        self.parse_primary(owner)
    }

    fn parse_primary(&mut self, owner: QueryNodeId) -> Result<Expr, QueryParseError> {
        match self.peek().cloned() {
            Some(Tok::Number(n)) => {
                self.pos += 1;
                Ok(Expr::Const(Value::Number(n)))
            }
            Some(Tok::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Const(Value::Str(s)))
            }
            Some(Tok::LParen) => {
                self.pos += 1;
                let inner = self.parse_or(owner)?;
                self.expect(Tok::RParen)?;
                Ok(inner)
            }
            Some(Tok::DotDSlash) => {
                self.pos += 1;
                let var = self.parse_rel_path(owner, Axis::Descendant)?;
                Ok(Expr::Var(var))
            }
            Some(Tok::At) => {
                self.pos += 1;
                let var = self.parse_rel_path(owner, Axis::Attribute)?;
                Ok(Expr::Var(var))
            }
            Some(Tok::Star) => {
                // A relative path starting with a wildcard child step, as in
                // `/a[*/b > 5]` (the §6.4.1 example query).
                let var = self.parse_rel_path(owner, Axis::Child)?;
                Ok(Expr::Var(var))
            }
            Some(Tok::Name(name)) => {
                if name == "not"
                    && self.tokens.get(self.pos + 1).map(|(t, _)| t) == Some(&Tok::LParen)
                {
                    self.pos += 2;
                    let inner = self.parse_or(owner)?;
                    self.expect(Tok::RParen)?;
                    return Ok(Expr::Not(Box::new(inner)));
                }
                let fname = name.strip_prefix("fn:").unwrap_or(&name);
                if self.tokens.get(self.pos + 1).map(|(t, _)| t) == Some(&Tok::LParen) {
                    if fname == "position" || fname == "last" {
                        return Err(self.err(format!(
                            "`{fname}()` is excluded from Forward XPath (Fig. 1)"
                        )));
                    }
                    if let Some(func) = Func::by_name(fname) {
                        self.pos += 2;
                        let mut args = Vec::new();
                        if self.peek() != Some(&Tok::RParen) {
                            args.push(self.parse_additive(owner)?);
                            while self.peek() == Some(&Tok::Comma) {
                                self.pos += 1;
                                args.push(self.parse_additive(owner)?);
                            }
                        }
                        self.expect(Tok::RParen)?;
                        let (lo, hi) = func.arity();
                        if args.len() < lo || args.len() > hi {
                            return Err(self.err(format!(
                                "{}() takes {} argument(s), got {}",
                                func.name(),
                                if lo == hi {
                                    lo.to_string()
                                } else {
                                    format!("{lo}..")
                                },
                                args.len()
                            )));
                        }
                        return Ok(Expr::Call(func, args));
                    }
                    return Err(self.err(format!("unknown function `{name}`")));
                }
                // A relative path starting with an implied child step.
                let var = self.parse_rel_path(owner, Axis::Child)?;
                Ok(Expr::Var(var))
            }
            other => Err(self.err(format!(
                "expected an expression, found {}",
                other
                    .map(|t| format!("`{t}`"))
                    .unwrap_or_else(|| "end of input".into())
            ))),
        }
    }

    /// `RelPath`: builds a chain of nodes under `owner` (the first step as a
    /// predicate child, the rest as successors) and returns the first node.
    fn parse_rel_path(
        &mut self,
        owner: QueryNodeId,
        first_axis: Axis,
    ) -> Result<QueryNodeId, QueryParseError> {
        let ntest = self.parse_node_test()?;
        let first = self.query.add_node(owner, first_axis, ntest);
        if self.peek() == Some(&Tok::LBracket) {
            self.pos += 1;
            let pred = self.parse_or(first)?;
            self.expect(Tok::RBracket)?;
            self.query.set_predicate(first, pred);
        }
        let mut current = first;
        loop {
            let axis = match self.peek() {
                Some(Tok::Slash) => {
                    self.pos += 1;
                    if self.peek() == Some(&Tok::At) {
                        self.pos += 1;
                        Axis::Attribute
                    } else {
                        Axis::Child
                    }
                }
                Some(Tok::DSlash) => {
                    self.pos += 1;
                    Axis::Descendant
                }
                _ => break,
            };
            current = self.parse_step(current, axis)?;
        }
        Ok(first)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_shape() {
        let q = parse_query("/a[c[.//e and f] and b > 5]/b").unwrap();
        assert_eq!(q.len(), 7);
        let a = q.successor(q.root()).unwrap();
        assert_eq!(q.ntest(a), Some(&NodeTest::Name("a".into())));
        assert_eq!(q.axis(a), Some(Axis::Child));
        let out = q.output_node();
        assert_eq!(q.ntest(out), Some(&NodeTest::Name("b".into())));
        assert_eq!(q.parent(out), Some(a));
        // a has 3 children: c, b (predicate), b (successor).
        assert_eq!(q.children(a).len(), 3);
        assert_eq!(q.predicate_children(a).len(), 2);
        // c's predicate children: e (descendant axis), f (child axis).
        let c = q.predicate_children(a)[0];
        assert_eq!(q.ntest(c), Some(&NodeTest::Name("c".into())));
        let pc = q.predicate_children(c);
        assert_eq!(pc.len(), 2);
        assert_eq!(q.axis(pc[0]), Some(Axis::Descendant));
        assert_eq!(q.axis(pc[1]), Some(Axis::Child));
    }

    #[test]
    fn parses_descendant_root_query() {
        // Theorem 4.5's query: //a[b and c]
        let q = parse_query("//a[b and c]").unwrap();
        let a = q.successor(q.root()).unwrap();
        assert_eq!(q.axis(a), Some(Axis::Descendant));
        assert_eq!(q.predicate_children(a).len(), 2);
        assert_eq!(q.output_node(), a);
    }

    #[test]
    fn parses_simple_child_path() {
        // Theorem 4.6's query: /a/b
        let q = parse_query("/a/b").unwrap();
        assert_eq!(q.len(), 3);
        let a = q.successor(q.root()).unwrap();
        let b = q.successor(a).unwrap();
        assert_eq!(q.output_node(), b);
        assert_eq!(q.axis(b), Some(Axis::Child));
    }

    #[test]
    fn parses_canonical_example_query() {
        // §6.4.1: /a[*/b > 5 and c/b//d > 12 and .//d < 30]
        let q = parse_query("/a[*/b > 5 and c/b//d > 12 and .//d < 30]").unwrap();
        let a = q.successor(q.root()).unwrap();
        let pred = q.predicate(a).unwrap();
        assert_eq!(pred.conjuncts().len(), 3);
        // Predicate children of a: the wildcard, c, and the .//d node.
        let pc = q.predicate_children(a);
        assert_eq!(pc.len(), 3);
        assert!(q.ntest(pc[0]).unwrap().is_wildcard());
        assert_eq!(q.axis(pc[2]), Some(Axis::Descendant));
        assert_eq!(q.longest_wildcard_chain(), 1);
    }

    #[test]
    fn parses_attribute_axes() {
        for src in ["/a/@id", "/a@id"] {
            let q = parse_query(src).unwrap();
            let a = q.successor(q.root()).unwrap();
            let id = q.successor(a).unwrap();
            assert_eq!(q.axis(id), Some(Axis::Attribute), "{src}");
        }
        let q = parse_query("/a[@id = 7]").unwrap();
        let a = q.successor(q.root()).unwrap();
        let id = q.predicate_children(a)[0];
        assert_eq!(q.axis(id), Some(Axis::Attribute));
    }

    #[test]
    fn parses_functions() {
        let q =
            parse_query("/a[fn:matches(b,\"^A.*B$\") and matches(b,'AB') and starts-with(c, 'x')]")
                .unwrap();
        let a = q.successor(q.root()).unwrap();
        assert_eq!(q.predicate_children(a).len(), 3);
    }

    #[test]
    fn parses_arithmetic_precedence() {
        let q = parse_query("/a[b + 2 * 3 = 8]").unwrap();
        let a = q.successor(q.root()).unwrap();
        match q.predicate(a).unwrap() {
            Expr::Comp(CompOp::Eq, lhs, _) => match lhs.as_ref() {
                Expr::Arith(ArithOp::Add, _, rhs) => {
                    assert!(matches!(rhs.as_ref(), Expr::Arith(ArithOp::Mul, _, _)));
                }
                other => panic!("expected Add at top, got {other:?}"),
            },
            other => panic!("expected comparison, got {other:?}"),
        }
    }

    #[test]
    fn parses_not_and_or() {
        let q = parse_query("/a[not(b) or c and d]").unwrap();
        let a = q.successor(q.root()).unwrap();
        match q.predicate(a).unwrap() {
            Expr::Or(lhs, rhs) => {
                assert!(matches!(lhs.as_ref(), Expr::Not(_)));
                assert!(matches!(rhs.as_ref(), Expr::And(..)));
            }
            other => panic!("expected or, got {other:?}"),
        }
    }

    #[test]
    fn parses_nested_relpath_predicates() {
        let q = parse_query("/a[b[c > 5]]").unwrap();
        let a = q.successor(q.root()).unwrap();
        let b = q.predicate_children(a)[0];
        let c = q.predicate_children(b)[0];
        assert_eq!(q.ntest(c), Some(&NodeTest::Name("c".into())));
    }

    #[test]
    fn parses_multi_step_relpath() {
        // c/b//d from the canonical example: chain under the predicate child.
        let q = parse_query("/a[c/b//d > 12]").unwrap();
        let a = q.successor(q.root()).unwrap();
        let c = q.predicate_children(a)[0];
        let b = q.successor(c).unwrap();
        let d = q.successor(b).unwrap();
        assert_eq!(q.axis(d), Some(Axis::Descendant));
        assert_eq!(q.succession_leaf(c), d);
    }

    #[test]
    fn unary_minus_and_negative_constants() {
        let q = parse_query("/a[b > -5]").unwrap();
        let a = q.successor(q.root()).unwrap();
        match q.predicate(a).unwrap() {
            Expr::Comp(CompOp::Gt, _, rhs) => assert!(matches!(rhs.as_ref(), Expr::Neg(_))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_position_and_last() {
        assert!(parse_query("/a[position() = 1]").is_err());
        assert!(parse_query("/a[last() = 1]").is_err());
        assert!(parse_query("/a/position").is_err());
    }

    #[test]
    fn rejects_malformed_queries() {
        assert!(parse_query("").is_err());
        assert!(parse_query("a/b").is_err()); // must start with axis
        assert!(parse_query("/a[").is_err());
        assert!(parse_query("/a[b").is_err());
        assert!(parse_query("/a]").is_err());
        assert!(parse_query("/a[b >]").is_err());
        assert!(parse_query("/a[unknownfn(b)]").is_err());
        assert!(parse_query("/a[contains(b)]").is_err()); // arity
        assert!(parse_query("//").is_err());
    }

    #[test]
    fn numbers_and_strings() {
        let q = parse_query("/a[b = 3.5 and c = \"hi\" and d = 'lo']").unwrap();
        let a = q.successor(q.root()).unwrap();
        assert_eq!(q.predicate(a).unwrap().conjuncts().len(), 3);
    }

    #[test]
    fn wildcard_steps_in_main_path() {
        let q = parse_query("/a/*/b").unwrap();
        let a = q.successor(q.root()).unwrap();
        let star = q.successor(a).unwrap();
        assert!(q.ntest(star).unwrap().is_wildcard());
    }

    #[test]
    fn whole_subtree_is_validated() {
        let q = parse_query("/a[c[.//e and f] and b > 5]/b").unwrap();
        assert!(q.validate().is_ok());
    }
}
