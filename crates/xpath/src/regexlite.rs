//! A small self-contained regular-expression engine backing `fn:matches`.
//!
//! Supported syntax: literals, `.`, `*`, `+`, `?`, anchors `^`/`$`,
//! character classes `[a-z0-9]` / `[^…]`, grouping `(…)`, alternation `|`,
//! and `\`-escapes (including `\d`, `\w`, `\s`). `fn:matches` semantics:
//! the pattern matches if it matches *some substring* unless anchored.
//!
//! The engine is a plain backtracking matcher — patterns in queries are tiny
//! (the paper's examples are `"^A.*B$"`, `"AB"`, `"A.+B"`), so simplicity
//! and zero dependencies win over automaton construction here.

use std::fmt;

/// A compile error for a pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegexError {
    /// Description of the problem.
    pub message: String,
    /// Byte offset in the pattern.
    pub at: usize,
}

impl fmt::Display for RegexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "regex error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for RegexError {}

/// A compiled pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct Regex {
    alt: Alt,
    pattern: String,
}

type Alt = Vec<Vec<Node>>;

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Char(char),
    Any,
    Class {
        negated: bool,
        ranges: Vec<(char, char)>,
    },
    Start,
    End,
    Group(Alt),
    Repeat {
        node: Box<Node>,
        min: u32,
        max: Option<u32>,
    },
}

impl Regex {
    /// Compiles a pattern.
    pub fn new(pattern: &str) -> Result<Regex, RegexError> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut p = Parser {
            chars: &chars,
            pos: 0,
        };
        let alt = p.parse_alt()?;
        if p.pos != chars.len() {
            return Err(RegexError {
                message: "unbalanced `)`".into(),
                at: p.pos,
            });
        }
        Ok(Regex {
            alt,
            pattern: pattern.to_string(),
        })
    }

    /// The original pattern text.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// `fn:matches` semantics: true iff the pattern matches at some position.
    pub fn is_match(&self, text: &str) -> bool {
        let chars: Vec<char> = text.chars().collect();
        for start in 0..=chars.len() {
            if match_alt(&self.alt, &chars, start, chars.len(), &mut |_| true) {
                return true;
            }
        }
        false
    }

    /// True iff the pattern matches the *entire* string.
    pub fn is_full_match(&self, text: &str) -> bool {
        let chars: Vec<char> = text.chars().collect();
        let total = chars.len();
        match_alt(&self.alt, &chars, 0, total, &mut |end| end == total)
    }
}

struct Parser<'a> {
    chars: &'a [char],
    pos: usize,
}

impl Parser<'_> {
    fn parse_alt(&mut self) -> Result<Alt, RegexError> {
        let mut branches = vec![self.parse_seq()?];
        while self.peek() == Some('|') {
            self.pos += 1;
            branches.push(self.parse_seq()?);
        }
        Ok(branches)
    }

    fn parse_seq(&mut self) -> Result<Vec<Node>, RegexError> {
        let mut seq = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            let atom = self.parse_atom()?;
            let node = self.parse_quantifier(atom)?;
            seq.push(node);
        }
        Ok(seq)
    }

    fn parse_quantifier(&mut self, atom: Node) -> Result<Node, RegexError> {
        let node = match self.peek() {
            Some('*') => Node::Repeat {
                node: Box::new(atom),
                min: 0,
                max: None,
            },
            Some('+') => Node::Repeat {
                node: Box::new(atom),
                min: 1,
                max: None,
            },
            Some('?') => Node::Repeat {
                node: Box::new(atom),
                min: 0,
                max: Some(1),
            },
            _ => return Ok(atom),
        };
        self.pos += 1;
        if matches!(self.peek(), Some('*' | '+' | '?')) {
            return Err(RegexError {
                message: "double quantifier".into(),
                at: self.pos,
            });
        }
        Ok(node)
    }

    fn parse_atom(&mut self) -> Result<Node, RegexError> {
        let at = self.pos;
        let c = self.chars[self.pos];
        self.pos += 1;
        Ok(match c {
            '.' => Node::Any,
            '^' => Node::Start,
            '$' => Node::End,
            '(' => {
                let inner = self.parse_alt()?;
                if self.peek() != Some(')') {
                    return Err(RegexError {
                        message: "unterminated group".into(),
                        at,
                    });
                }
                self.pos += 1;
                Node::Group(inner)
            }
            '[' => self.parse_class(at)?,
            '\\' => self.parse_escape(at)?,
            '*' | '+' | '?' => {
                return Err(RegexError {
                    message: "quantifier with nothing to repeat".into(),
                    at,
                })
            }
            other => Node::Char(other),
        })
    }

    fn parse_escape(&mut self, at: usize) -> Result<Node, RegexError> {
        let c = *self.chars.get(self.pos).ok_or_else(|| RegexError {
            message: "dangling escape".into(),
            at,
        })?;
        self.pos += 1;
        Ok(match c {
            'd' => Node::Class {
                negated: false,
                ranges: vec![('0', '9')],
            },
            'D' => Node::Class {
                negated: true,
                ranges: vec![('0', '9')],
            },
            'w' => Node::Class {
                negated: false,
                ranges: vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')],
            },
            's' => Node::Class {
                negated: false,
                ranges: vec![(' ', ' '), ('\t', '\t'), ('\n', '\n'), ('\r', '\r')],
            },
            'n' => Node::Char('\n'),
            't' => Node::Char('\t'),
            'r' => Node::Char('\r'),
            other => Node::Char(other),
        })
    }

    fn parse_class(&mut self, at: usize) -> Result<Node, RegexError> {
        let negated = self.peek() == Some('^');
        if negated {
            self.pos += 1;
        }
        let mut ranges = Vec::new();
        loop {
            let c = *self.chars.get(self.pos).ok_or_else(|| RegexError {
                message: "unterminated character class".into(),
                at,
            })?;
            if c == ']' && !ranges.is_empty() {
                self.pos += 1;
                break;
            }
            self.pos += 1;
            let lo = if c == '\\' {
                let esc = *self.chars.get(self.pos).ok_or_else(|| RegexError {
                    message: "dangling escape in class".into(),
                    at,
                })?;
                self.pos += 1;
                esc
            } else {
                c
            };
            if self.peek() == Some('-') && self.chars.get(self.pos + 1).copied() != Some(']') {
                self.pos += 1;
                let hi = *self.chars.get(self.pos).ok_or_else(|| RegexError {
                    message: "unterminated range".into(),
                    at,
                })?;
                self.pos += 1;
                if hi < lo {
                    return Err(RegexError {
                        message: "inverted range".into(),
                        at,
                    });
                }
                ranges.push((lo, hi));
            } else {
                ranges.push((lo, lo));
            }
        }
        Ok(Node::Class { negated, ranges })
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }
}

/// Matches `alt` starting exactly at `pos`, calling `k` with the end
/// position of each candidate match; succeeds if `k` accepts one.
fn match_alt(
    alt: &Alt,
    text: &[char],
    pos: usize,
    total: usize,
    k: &mut dyn FnMut(usize) -> bool,
) -> bool {
    alt.iter().any(|seq| match_seq(seq, 0, text, pos, total, k))
}

fn match_seq(
    seq: &[Node],
    i: usize,
    text: &[char],
    pos: usize,
    total: usize,
    k: &mut dyn FnMut(usize) -> bool,
) -> bool {
    if i == seq.len() {
        return k(pos);
    }
    match &seq[i] {
        Node::Start => pos == 0 && match_seq(seq, i + 1, text, pos, total, k),
        Node::End => pos == total && match_seq(seq, i + 1, text, pos, total, k),
        Node::Char(c) => text.get(pos) == Some(c) && match_seq(seq, i + 1, text, pos + 1, total, k),
        Node::Any => pos < total && match_seq(seq, i + 1, text, pos + 1, total, k),
        Node::Class { negated, ranges } => {
            let Some(&c) = text.get(pos) else {
                return false;
            };
            let inside = ranges.iter().any(|&(lo, hi)| lo <= c && c <= hi);
            (inside != *negated) && match_seq(seq, i + 1, text, pos + 1, total, k)
        }
        Node::Group(inner) => match_alt(inner, text, pos, total, &mut |end| {
            match_seq(seq, i + 1, text, end, total, k)
        }),
        Node::Repeat { node, min, max } => {
            match_repeat(node, *min, *max, seq, i, text, pos, total, k)
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn match_repeat(
    node: &Node,
    min: u32,
    max: Option<u32>,
    seq: &[Node],
    i: usize,
    text: &[char],
    pos: usize,
    total: usize,
    k: &mut dyn FnMut(usize) -> bool,
) -> bool {
    // Greedy with backtracking: collect all reachable end positions after
    // consuming 0, 1, 2, … copies, then try continuations longest-first.
    let mut frontier = vec![pos];
    let mut ends: Vec<(u32, usize)> = vec![(0, pos)];
    let mut count = 0u32;
    while max.is_none_or(|m| count < m) {
        let mut next = Vec::new();
        for &p in &frontier {
            let single = std::slice::from_ref(node);
            match_seq(single, 0, text, p, total, &mut |end| {
                if end > p && !next.contains(&end) {
                    next.push(end);
                }
                false // enumerate all ends
            });
        }
        if next.is_empty() {
            break;
        }
        count += 1;
        for &e in &next {
            ends.push((count, e));
        }
        frontier = next;
    }
    // Longest-first (greedy) continuation.
    for &(n, end) in ends.iter().rev() {
        if n >= min && match_seq(seq, i + 1, text, end, total, k) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pat: &str, text: &str) -> bool {
        Regex::new(pat).unwrap().is_match(text)
    }

    #[test]
    fn paper_examples() {
        // The three patterns from the §5.5 sunflower example.
        assert!(m("^A.*B$", "AB"));
        assert!(m("^A.*B$", "AxyzB"));
        assert!(!m("^A.*B$", "AxyzBC"));
        assert!(m("AB", "xxAByy"));
        assert!(!m("AB", "A-B"));
        assert!(m("A.+B", "xAyBz"));
        assert!(!m("A.+B", "AB")); // `.+` needs at least one char
    }

    #[test]
    fn literal_and_dot() {
        assert!(m("abc", "xxabcx"));
        assert!(!m("abc", "ab"));
        assert!(m("a.c", "abc"));
        assert!(m("a.c", "azc"));
        assert!(!m("a.c", "ac"));
    }

    #[test]
    fn anchors() {
        assert!(m("^ab", "abc"));
        assert!(!m("^bc", "abc"));
        assert!(m("bc$", "abc"));
        assert!(!m("ab$", "abc"));
        assert!(m("^abc$", "abc"));
        assert!(!m("^abc$", "abcd"));
    }

    #[test]
    fn quantifiers() {
        assert!(m("ab*c", "ac"));
        assert!(m("ab*c", "abbbc"));
        assert!(m("ab+c", "abc"));
        assert!(!m("ab+c", "ac"));
        assert!(m("ab?c", "ac"));
        assert!(m("ab?c", "abc"));
        assert!(!m("ab?c", "abbc"));
    }

    #[test]
    fn classes() {
        assert!(m("[0-9]+", "abc42"));
        assert!(!m("^[0-9]+$", "abc42"));
        assert!(m("[^0-9]", "a"));
        assert!(!m("[^0-9]", "7"));
        assert!(m(r"\d\d", "year 07"));
        assert!(m(r"\w+", "hello_world"));
        assert!(m("[a\\-z]", "-"));
    }

    #[test]
    fn alternation_and_groups() {
        assert!(m("cat|dog", "hotdog"));
        assert!(!m("^(cat|dog)$", "catdog"));
        assert!(m("^(ab)+$", "ababab"));
        assert!(!m("^(ab)+$", "ababa"));
        assert!(m("a(b|c)*d", "abcbcd"));
    }

    #[test]
    fn full_match() {
        let re = Regex::new("a+").unwrap();
        assert!(re.is_full_match("aaa"));
        assert!(!re.is_full_match("aab"));
        assert!(re.is_match("aab"));
    }

    #[test]
    fn greedy_backtracking() {
        // `.*B` must backtrack past the last B.
        assert!(m("^A.*B$", "AxxBxxB"));
        assert!(m("a.*b.*c", "a-b-c-b"));
    }

    #[test]
    fn compile_errors() {
        assert!(Regex::new("*a").is_err());
        assert!(Regex::new("a**").is_err());
        assert!(Regex::new("(ab").is_err());
        assert!(Regex::new("ab)").is_err());
        assert!(Regex::new("[abc").is_err());
        assert!(Regex::new("[z-a]").is_err());
        assert!(Regex::new("a\\").is_err());
    }

    #[test]
    fn empty_pattern_matches_everywhere() {
        assert!(m("", ""));
        assert!(m("", "anything"));
        assert!(m("^$", ""));
        assert!(!m("^$", "x"));
    }
}
