//! The predicate evaluation function `PEVAL` of Definition 3.5, generic over
//! how `Var` leaves resolve (the document-driven resolution lives in
//! `fx-eval`; the streaming filter substitutes a single buffered string).

use crate::ast::{ArithOp, CompOp, Expr, Func, QueryNodeId};
use crate::regexlite::Regex;
use crate::value::{compare_values, EvalResult, Value};
use std::cmp::Ordering;
use std::fmt;

/// Cap on the size of the cartesian products formed by Def. 3.5 part 5, to
/// keep adversarial inputs from exhausting memory.
pub const MAX_PRODUCT: usize = 1 << 20;

/// An evaluation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// Wrong number of arguments for a function.
    Arity {
        /// The function that was called.
        func: Func,
        /// The number of arguments supplied.
        got: usize,
    },
    /// `fn:matches` received an invalid pattern.
    BadPattern(String),
    /// A cartesian product exceeded [`MAX_PRODUCT`].
    ProductTooLarge,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Arity { func, got } => {
                write!(f, "function {}() called with {got} arguments", func.name())
            }
            EvalError::BadPattern(p) => write!(f, "invalid fn:matches pattern: {p}"),
            EvalError::ProductTooLarge => write!(f, "predicate sequence product too large"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Evaluates `expr` with `resolve` supplying the value of each `Var` leaf
/// (Def. 3.5 part 2). Implements the paper's evaluation rules, including the
/// existential semantics of part 4 and the sequence-product semantics of
/// part 5.
pub fn eval_expr(
    expr: &Expr,
    resolve: &mut dyn FnMut(QueryNodeId) -> EvalResult,
) -> Result<EvalResult, EvalError> {
    match expr {
        Expr::Const(v) => Ok(EvalResult::Atomic(v.clone())),
        Expr::Var(v) => Ok(resolve(*v)),
        // Part 3: operators on boolean arguments; arguments cast via EBV.
        Expr::And(a, b) => {
            let lhs = eval_expr(a, resolve)?.ebv();
            let rhs = eval_expr(b, resolve)?.ebv();
            Ok(EvalResult::Atomic(Value::Bool(lhs && rhs)))
        }
        Expr::Or(a, b) => {
            let lhs = eval_expr(a, resolve)?.ebv();
            let rhs = eval_expr(b, resolve)?.ebv();
            Ok(EvalResult::Atomic(Value::Bool(lhs || rhs)))
        }
        Expr::Not(a) => Ok(EvalResult::Atomic(Value::Bool(
            !eval_expr(a, resolve)?.ebv(),
        ))),
        // Part 4: boolean output, non-boolean arguments — existential.
        Expr::Comp(op, a, b) => {
            let pa = eval_expr(a, resolve)?.into_sequence();
            let pb = eval_expr(b, resolve)?.into_sequence();
            check_product(&[pa.len(), pb.len()])?;
            let found = pa.iter().any(|x| pb.iter().any(|y| apply_comp(*op, x, y)));
            Ok(EvalResult::Atomic(Value::Bool(found)))
        }
        Expr::Call(f, args) if f.output_is_boolean() => {
            let (lo, hi) = f.arity();
            if args.len() < lo || args.len() > hi {
                return Err(EvalError::Arity {
                    func: *f,
                    got: args.len(),
                });
            }
            let seqs: Vec<Vec<Value>> = args
                .iter()
                .map(|a| eval_expr(a, resolve).map(EvalResult::into_sequence))
                .collect::<Result<_, _>>()?;
            check_product(&seqs.iter().map(Vec::len).collect::<Vec<_>>())?;
            let found = cartesian_any(&seqs, &mut |tuple| apply_func(*f, tuple).map(|v| v.ebv()))?;
            Ok(EvalResult::Atomic(Value::Bool(found)))
        }
        // Part 5: non-boolean output — the full product sequence, in
        // lexicographic order of argument indices.
        Expr::Arith(op, a, b) => {
            let pa = eval_expr(a, resolve)?.into_sequence();
            let pb = eval_expr(b, resolve)?.into_sequence();
            check_product(&[pa.len(), pb.len()])?;
            let mut out = Vec::with_capacity(pa.len() * pb.len());
            for x in &pa {
                for y in &pb {
                    out.push(apply_arith(*op, x, y));
                }
            }
            Ok(singleton_or_sequence(out))
        }
        Expr::Neg(a) => {
            let pa = eval_expr(a, resolve)?.into_sequence();
            let out: Vec<Value> = pa.iter().map(|x| Value::Number(-x.to_number())).collect();
            Ok(singleton_or_sequence(out))
        }
        Expr::Call(f, args) => {
            let (lo, hi) = f.arity();
            if args.len() < lo || args.len() > hi {
                return Err(EvalError::Arity {
                    func: *f,
                    got: args.len(),
                });
            }
            let seqs: Vec<Vec<Value>> = args
                .iter()
                .map(|a| eval_expr(a, resolve).map(EvalResult::into_sequence))
                .collect::<Result<_, _>>()?;
            check_product(&seqs.iter().map(Vec::len).collect::<Vec<_>>())?;
            let mut out = Vec::new();
            cartesian_each(&seqs, &mut |tuple| {
                out.push(apply_func(*f, tuple)?);
                Ok(())
            })?;
            Ok(singleton_or_sequence(out))
        }
    }
}

/// Wraps a product result: a single value stays atomic (so that, e.g.,
/// `2 + 3` is an atomic `5`), anything else is a sequence.
fn singleton_or_sequence(mut values: Vec<Value>) -> EvalResult {
    if values.len() == 1 {
        EvalResult::Atomic(values.pop().expect("len checked"))
    } else {
        EvalResult::Sequence(values)
    }
}

fn check_product(lens: &[usize]) -> Result<(), EvalError> {
    let mut total = 1usize;
    for &l in lens {
        total = total.saturating_mul(l.max(1));
        if total > MAX_PRODUCT {
            return Err(EvalError::ProductTooLarge);
        }
    }
    Ok(())
}

/// Iterates the cartesian product, short-circuiting on the first `true`.
fn cartesian_any(
    seqs: &[Vec<Value>],
    f: &mut dyn FnMut(&[Value]) -> Result<bool, EvalError>,
) -> Result<bool, EvalError> {
    let mut hit = false;
    cartesian_each(seqs, &mut |tuple| {
        if !hit && f(tuple)? {
            hit = true;
        }
        Ok(())
    })?;
    Ok(hit)
}

fn cartesian_each(
    seqs: &[Vec<Value>],
    f: &mut dyn FnMut(&[Value]) -> Result<(), EvalError>,
) -> Result<(), EvalError> {
    if seqs.iter().any(Vec::is_empty) {
        return Ok(());
    }
    let mut idx = vec![0usize; seqs.len()];
    let mut tuple: Vec<Value> = seqs.iter().map(|s| s[0].clone()).collect();
    loop {
        f(&tuple)?;
        // Lexicographic increment, last index fastest.
        let mut i = seqs.len();
        loop {
            if i == 0 {
                return Ok(());
            }
            i -= 1;
            idx[i] += 1;
            if idx[i] < seqs[i].len() {
                tuple[i] = seqs[i][idx[i]].clone();
                break;
            }
            idx[i] = 0;
            tuple[i] = seqs[i][0].clone();
        }
    }
}

/// Applies a comparison operator to two atomic values with the standard
/// conversions. Ordering operators compare numerically; `=`/`!=` compare
/// numerically when either side is a number (or both parse as numbers),
/// otherwise as strings. Comparisons involving NaN are false.
pub fn apply_comp(op: CompOp, a: &Value, b: &Value) -> bool {
    let ord = compare_values(a, b, op.is_ordering());
    match (op, ord) {
        (_, None) => false,
        (CompOp::Eq, Some(o)) => o == Ordering::Equal,
        (CompOp::Ne, Some(o)) => o != Ordering::Equal,
        (CompOp::Lt, Some(o)) => o == Ordering::Less,
        (CompOp::Le, Some(o)) => o != Ordering::Greater,
        (CompOp::Gt, Some(o)) => o == Ordering::Greater,
        (CompOp::Ge, Some(o)) => o != Ordering::Less,
    }
}

/// Applies an arithmetic operator (always numeric; NaN propagates).
pub fn apply_arith(op: ArithOp, a: &Value, b: &Value) -> Value {
    let x = a.to_number();
    let y = b.to_number();
    Value::Number(match op {
        ArithOp::Add => x + y,
        ArithOp::Sub => x - y,
        ArithOp::Mul => x * y,
        ArithOp::Div => x / y,
        ArithOp::IDiv => (x / y).trunc(),
        ArithOp::Mod => {
            // XPath `mod`: result has the sign of the dividend.
            let r = x % y;
            if r.is_nan() {
                f64::NAN
            } else {
                r
            }
        }
    })
}

/// Applies a function to already-atomized arguments.
pub fn apply_func(f: Func, args: &[Value]) -> Result<Value, EvalError> {
    let s = |i: usize| args[i].to_str();
    let n = |i: usize| args[i].to_number();
    Ok(match f {
        Func::Contains => Value::Bool(s(0).contains(&s(1))),
        Func::StartsWith => Value::Bool(s(0).starts_with(&s(1))),
        Func::EndsWith => Value::Bool(s(0).ends_with(&s(1))),
        Func::Matches => {
            let re = Regex::new(&s(1)).map_err(|e| EvalError::BadPattern(e.to_string()))?;
            Value::Bool(re.is_match(&s(0)))
        }
        Func::StringLength => Value::Number(s(0).chars().count() as f64),
        Func::Concat => Value::Str(args.iter().map(Value::to_str).collect()),
        Func::Substring => {
            // 1-based `start`, optional `len`, per F&O (rounded).
            let text: Vec<char> = s(0).chars().collect();
            let start = n(1).round();
            let end = if args.len() == 3 {
                start + n(2).round()
            } else {
                f64::INFINITY
            };
            let mut out = String::new();
            for (i, c) in text.iter().enumerate() {
                let pos = (i + 1) as f64;
                if pos >= start && pos < end {
                    out.push(*c);
                }
            }
            Value::Str(out)
        }
        Func::Number => Value::Number(args[0].to_number()),
        Func::StringFn => Value::Str(args[0].to_str()),
        Func::Floor => Value::Number(n(0).floor()),
        Func::Ceiling => Value::Number(n(0).ceil()),
        Func::Round => Value::Number((n(0) + 0.5).floor()),
        Func::Abs => Value::Number(n(0).abs()),
        Func::UpperCase => Value::Str(s(0).to_uppercase()),
        Func::LowerCase => Value::Str(s(0).to_lowercase()),
        Func::NormalizeSpace => Value::Str(s(0).split_whitespace().collect::<Vec<_>>().join(" ")),
        Func::True => Value::Bool(true),
        Func::False => Value::Bool(false),
    })
}

/// Evaluates a *univariate* predicate expression with its single variable
/// bound to one string value, returning the EBV. This is exactly the
/// `evalPredicate` subroutine of the §8 algorithm: membership of
/// `STRVAL(x)` in `TRUTH(u)`.
///
/// The variable is bound as a *singleton sequence*, matching Def. 3.5
/// part 2 (a pointer leaf always evaluates to a sequence). This matters for
/// bare existence predicates like `[b]`: the EBV of the singleton sequence
/// is true even when the candidate's string value is empty.
pub fn eval_with_binding(expr: &Expr, var: QueryNodeId, value: &str) -> Result<bool, EvalError> {
    let mut resolve = |v: QueryNodeId| {
        debug_assert_eq!(
            v, var,
            "univariate predicate resolved an unexpected variable"
        );
        EvalResult::Sequence(vec![Value::str(value)])
    };
    Ok(eval_expr(expr, &mut resolve)?.ebv())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value as V;

    fn var() -> QueryNodeId {
        QueryNodeId(1)
    }

    fn eval_bound(expr: &Expr, value: &str) -> bool {
        eval_with_binding(expr, var(), value).unwrap()
    }

    #[test]
    fn comparison_with_conversion() {
        let gt5 = Expr::comp(CompOp::Gt, Expr::Var(var()), Expr::Const(V::Number(5.0)));
        assert!(eval_bound(&gt5, "6"));
        assert!(!eval_bound(&gt5, "5"));
        assert!(!eval_bound(&gt5, "hello")); // NaN comparisons are false
    }

    #[test]
    fn string_equality() {
        let eq = Expr::comp(CompOp::Eq, Expr::Var(var()), Expr::Const(V::str("A")));
        assert!(eval_bound(&eq, "A"));
        assert!(!eval_bound(&eq, "B"));
    }

    #[test]
    fn paper_remark_example_existential_plus() {
        // Q = /a[b + 2 = 5], D = <a><b>0</b><b>3</b></a>.
        // Under the paper's semantics the predicate is true because the
        // existential rule applies to the whole comparison.
        let expr = Expr::comp(
            CompOp::Eq,
            Expr::Arith(
                ArithOp::Add,
                Box::new(Expr::Var(var())),
                Box::new(Expr::Const(V::Number(2.0))),
            ),
            Expr::Const(V::Number(5.0)),
        );
        let mut resolve = |_| EvalResult::Sequence(vec![V::str("0"), V::str("3")]);
        let out = eval_expr(&expr, &mut resolve).unwrap();
        assert_eq!(out, EvalResult::Atomic(V::Bool(true)));
    }

    #[test]
    fn arithmetic_product_is_lexicographic() {
        // (1,2) + (10,20) = (11,21,12,22) per Def. 3.5 part 5.
        let expr = Expr::Arith(
            ArithOp::Add,
            Box::new(Expr::Var(QueryNodeId(1))),
            Box::new(Expr::Var(QueryNodeId(2))),
        );
        let mut resolve = |v: QueryNodeId| {
            if v == QueryNodeId(1) {
                EvalResult::Sequence(vec![V::Number(1.0), V::Number(2.0)])
            } else {
                EvalResult::Sequence(vec![V::Number(10.0), V::Number(20.0)])
            }
        };
        let out = eval_expr(&expr, &mut resolve).unwrap();
        assert_eq!(
            out,
            EvalResult::Sequence(vec![
                V::Number(11.0),
                V::Number(21.0),
                V::Number(12.0),
                V::Number(22.0)
            ])
        );
    }

    #[test]
    fn logical_ops_use_ebv() {
        let t = Expr::Const(V::str("x"));
        let f = Expr::Const(V::str(""));
        assert!(eval_bound(&Expr::and(t.clone(), t.clone()), ""));
        assert!(!eval_bound(&Expr::and(t.clone(), f.clone()), ""));
        assert!(eval_bound(
            &Expr::Or(Box::new(f.clone()), Box::new(t.clone())),
            ""
        ));
        assert!(eval_bound(&Expr::Not(Box::new(f)), ""));
    }

    #[test]
    fn empty_sequence_comparison_is_false() {
        let expr = Expr::comp(CompOp::Eq, Expr::Var(var()), Expr::Const(V::Number(1.0)));
        let mut resolve = |_| EvalResult::Sequence(vec![]);
        assert_eq!(
            eval_expr(&expr, &mut resolve).unwrap(),
            EvalResult::Atomic(V::Bool(false))
        );
    }

    #[test]
    fn boolean_functions_existential() {
        let expr = Expr::Call(
            Func::StartsWith,
            vec![Expr::Var(var()), Expr::Const(V::str("ab"))],
        );
        let mut resolve = |_| EvalResult::Sequence(vec![V::str("xy"), V::str("abz")]);
        assert_eq!(
            eval_expr(&expr, &mut resolve).unwrap(),
            EvalResult::Atomic(V::Bool(true))
        );
    }

    #[test]
    fn string_functions() {
        assert_eq!(
            apply_func(Func::Concat, &[V::str("a"), V::str("b"), V::str("c")]).unwrap(),
            V::str("abc")
        );
        assert_eq!(
            apply_func(Func::StringLength, &[V::str("héllo")]).unwrap(),
            V::Number(5.0)
        );
        assert_eq!(
            apply_func(
                Func::Substring,
                &[V::str("hello"), V::Number(2.0), V::Number(3.0)]
            )
            .unwrap(),
            V::str("ell")
        );
        assert_eq!(
            apply_func(Func::Substring, &[V::str("hello"), V::Number(3.0)]).unwrap(),
            V::str("llo")
        );
        assert_eq!(
            apply_func(Func::NormalizeSpace, &[V::str("  a  b ")]).unwrap(),
            V::str("a b")
        );
        assert_eq!(
            apply_func(Func::UpperCase, &[V::str("ab")]).unwrap(),
            V::str("AB")
        );
    }

    #[test]
    fn numeric_functions() {
        assert_eq!(
            apply_func(Func::Floor, &[V::Number(2.7)]).unwrap(),
            V::Number(2.0)
        );
        assert_eq!(
            apply_func(Func::Ceiling, &[V::Number(2.1)]).unwrap(),
            V::Number(3.0)
        );
        assert_eq!(
            apply_func(Func::Round, &[V::Number(2.5)]).unwrap(),
            V::Number(3.0)
        );
        assert_eq!(
            apply_func(Func::Round, &[V::Number(-2.5)]).unwrap(),
            V::Number(-2.0)
        );
        assert_eq!(
            apply_func(Func::Abs, &[V::Number(-3.0)]).unwrap(),
            V::Number(3.0)
        );
    }

    #[test]
    fn arith_ops() {
        assert_eq!(
            apply_arith(ArithOp::Add, &V::str("2"), &V::Number(3.0)),
            V::Number(5.0)
        );
        assert_eq!(
            apply_arith(ArithOp::IDiv, &V::Number(7.0), &V::Number(2.0)),
            V::Number(3.0)
        );
        assert_eq!(
            apply_arith(ArithOp::Mod, &V::Number(7.0), &V::Number(2.0)),
            V::Number(1.0)
        );
        assert_eq!(
            apply_arith(ArithOp::Mod, &V::Number(-7.0), &V::Number(2.0)),
            V::Number(-1.0)
        );
        assert!(apply_arith(ArithOp::Div, &V::str("x"), &V::Number(2.0))
            .to_number()
            .is_nan());
    }

    #[test]
    fn matches_function() {
        let expr = Expr::Call(
            Func::Matches,
            vec![Expr::Var(var()), Expr::Const(V::str("^A.*B$"))],
        );
        assert!(eval_bound(&expr, "AxB"));
        assert!(!eval_bound(&expr, "AxC"));
        let bad = Expr::Call(
            Func::Matches,
            vec![Expr::Var(var()), Expr::Const(V::str("("))],
        );
        assert!(matches!(
            eval_with_binding(&bad, var(), "x"),
            Err(EvalError::BadPattern(_))
        ));
    }

    #[test]
    fn arity_errors() {
        let e = Expr::Call(Func::Contains, vec![Expr::Const(V::str("a"))]);
        assert!(matches!(
            eval_with_binding(&e, var(), ""),
            Err(EvalError::Arity { .. })
        ));
    }
}
