//! # fx-xpath
//!
//! Forward XPath (Fig. 1 of the paper): the query-tree data model of §3.1.2,
//! a lexer/parser for the grammar, the atomic value model and Effective
//! Boolean Value of §3.1.1/§3.1.3, the predicate-evaluation operator
//! semantics of Definition 3.5, and a small regex engine for `fn:matches`.
//!
//! ```
//! use fx_xpath::parse_query;
//!
//! let q = parse_query("/a[c[.//e and f] and b > 5]/b").unwrap(); // Fig. 2
//! assert_eq!(q.len(), 7);
//! assert_eq!(fx_xpath::to_xpath(&q), "/a[c[.//e and f] and b > 5]/b");
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod display;
pub mod ops;
pub mod parser;
pub mod regexlite;
pub mod value;

pub use ast::{ArithOp, Axis, CompOp, Expr, Func, NodeTest, Query, QueryNode, QueryNodeId};
pub use display::to_xpath;
pub use ops::{apply_arith, apply_comp, apply_func, eval_expr, eval_with_binding, EvalError};
pub use parser::{parse_query, QueryParseError};
pub use regexlite::{Regex, RegexError};
pub use value::{EvalResult, Value};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Random syntactically valid queries, round-tripped through the
    /// printer and parser.
    fn arb_query_src() -> impl Strategy<Value = String> {
        let name = prop::sample::select(vec!["a", "b", "c", "d", "e"]);
        let axis = prop::sample::select(vec!["/", "//"]);
        let pred = prop::sample::select(vec![
            "[b]",
            "[b > 5]",
            "[b and c]",
            "[.//e and f]",
            "[b = \"x\"]",
            "[contains(b, \"q\")]",
            "",
        ]);
        prop::collection::vec((axis, name, pred), 1..5).prop_map(|steps| {
            steps
                .into_iter()
                .map(|(a, n, p)| format!("{a}{n}{p}"))
                .collect::<String>()
        })
    }

    proptest! {
        #[test]
        fn parse_print_round_trip(src in arb_query_src()) {
            let q = parse_query(&src).unwrap();
            let printed = to_xpath(&q);
            let q2 = parse_query(&printed).unwrap();
            prop_assert_eq!(q2, q);
        }

        #[test]
        fn validate_holds_for_all_parsed(src in arb_query_src()) {
            let q = parse_query(&src).unwrap();
            prop_assert!(q.validate().is_ok());
        }

        #[test]
        fn node_test_passage(name in "[a-z]{1,4}") {
            prop_assert!(NodeTest::Wildcard.passes(&name));
            prop_assert!(NodeTest::Name(name.clone()).passes(&name));
            let longer = format!("{name}x");
            prop_assert!(!NodeTest::Name(longer).passes(&name));
        }
    }
}
