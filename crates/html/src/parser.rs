//! The lenient streaming HTML-soup tokenizer.
//!
//! [`HtmlParser`] mirrors `fx_xml::StreamingParser`'s shape — feed
//! string chunks at arbitrary boundaries, interned [`SymEvent`]s come
//! out, scratch buffers make the steady state allocation-free — but
//! where the XML parser *rejects* malformed input, this one follows
//! the recovery rules listed in the crate docs and never reports a
//! structural error. The only failures it can surface are I/O and
//! invalid UTF-8 from [`HtmlParser::drive_reader`].

use fx_xml::scan;
use fx_xml::{
    AttrBuf, Event, EventBatch, EventSource, ParseError, Span, Sym, SymCache, SymEvent, Symbols,
    Utf8Carry, BATCH_BYTES, BATCH_EVENTS,
};
use std::io::Read;
use std::sync::Arc;

use crate::entities::decode_html_entities_into;

/// True for the HTML void elements: their start tag is the whole
/// element, so the parser emits start+end immediately and ignores any
/// stray `</br>`-style end tag.
fn is_void(name: &str) -> bool {
    matches!(
        name,
        "area"
            | "base"
            | "br"
            | "col"
            | "embed"
            | "hr"
            | "img"
            | "input"
            | "link"
            | "meta"
            | "param"
            | "source"
            | "track"
            | "wbr"
    )
}

/// How the element's content is tokenized once its start tag is seen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RawKind {
    /// Verbatim to the matching end tag: `<script>`, `<style>`.
    Raw,
    /// Character references decode, tags do not: `<title>`, `<textarea>`.
    Escapable,
}

fn raw_kind(name: &str) -> Option<RawKind> {
    match name {
        "script" | "style" => Some(RawKind::Raw),
        "title" | "textarea" => Some(RawKind::Escapable),
        _ => None,
    }
}

/// True when a start tag named `incoming` implicitly closes an open
/// element named `open` sitting on top of the stack — the `<p>`/`<li>`
/// family of HTML end-tag-omission rules (applied repeatedly, so
/// `<td>` inside `<td><p>` closes both).
fn start_tag_closes(incoming: &str, open: &str) -> bool {
    match incoming {
        "li" => open == "li",
        "dt" | "dd" => matches!(open, "dt" | "dd"),
        "tr" => matches!(open, "tr" | "td" | "th"),
        "td" | "th" => matches!(open, "td" | "th"),
        "thead" | "tbody" | "tfoot" => {
            matches!(open, "thead" | "tbody" | "tfoot" | "tr" | "td" | "th")
        }
        "option" => open == "option",
        "optgroup" => matches!(open, "option" | "optgroup"),
        // Block-level start tags close an open paragraph.
        "address" | "article" | "aside" | "blockquote" | "details" | "div" | "dl" | "fieldset"
        | "figcaption" | "figure" | "footer" | "form" | "h1" | "h2" | "h3" | "h4" | "h5" | "h6"
        | "header" | "hr" | "main" | "menu" | "nav" | "ol" | "p" | "pre" | "section" | "table"
        | "ul" => open == "p",
        _ => false,
    }
}

/// A resumable, never-failing push parser for HTML soup. See the crate
/// docs for the exact recovery rules. Feed it string chunks; interned
/// events come out the moment they are complete, with cumulative byte
/// [`Span`]s. Memory is bounded by the largest single token (a tag, a
/// text run, or one raw-text element's content), never by document
/// size.
#[derive(Debug, Clone)]
pub struct HtmlParser {
    buf: String,
    /// Consumed prefix of `buf` (compacted once per feed).
    pos: usize,
    symbols: Arc<Symbols>,
    /// False in [`HtmlParser::lookup_only`] mode: document names
    /// resolve read-only and unknown ones collapse to [`Sym::UNKNOWN`].
    intern_names: bool,
    name_cache: SymCache,
    /// Open elements: `(sym, folded name)`, name strings pooled.
    stack: Vec<(Sym, String)>,
    depth: usize,
    started: bool,
    finished: bool,
    consumed: usize,
    keep_whitespace: bool,
    /// `Some` while inside a raw-text element (`<script>`, `<title>`, …).
    raw: Option<RawKind>,
    /// The folded name whose `</name` closes the current raw-text run.
    raw_closer: String,
    /// Reused copy of the tag being handled.
    tag_scratch: String,
    /// Reused case-folded tag-name buffer.
    name_scratch: String,
    /// Reused case-folded attribute-name buffer.
    attr_scratch: String,
    /// Reused entity-decoded text buffer; `Text` events borrow it.
    text_scratch: String,
    /// Reused attribute slots; `StartElement` events borrow them.
    attrs: AttrBuf,
    /// Incomplete UTF-8 scalar split across byte-chunk feeds
    /// ([`HtmlParser::feed_interned_bytes`]).
    utf8_carry: Utf8Carry,
    /// Reused read buffer for [`HtmlParser::drive_reader`].
    io_chunk: Vec<u8>,
    /// Reused event batch for [`HtmlParser::drive_batched`].
    ev_batch: EventBatch,
}

impl Default for HtmlParser {
    fn default() -> Self {
        HtmlParser::new()
    }
}

impl HtmlParser {
    /// A parser with a fresh private [`Symbols`] table, dropping
    /// whitespace-only text (matching `fx_xml::parse`).
    pub fn new() -> HtmlParser {
        HtmlParser::with_symbols(Arc::new(Symbols::new()))
    }

    /// A parser interning names into `symbols` — the table downstream
    /// compiled queries resolve their node tests in.
    pub fn with_symbols(symbols: Arc<Symbols>) -> HtmlParser {
        HtmlParser {
            buf: String::new(),
            pos: 0,
            symbols,
            intern_names: true,
            name_cache: SymCache::new(),
            stack: Vec::new(),
            depth: 0,
            started: false,
            finished: false,
            consumed: 0,
            keep_whitespace: false,
            raw: None,
            raw_closer: String::new(),
            tag_scratch: String::new(),
            name_scratch: String::new(),
            attr_scratch: String::new(),
            text_scratch: String::new(),
            attrs: AttrBuf::new(),
            utf8_carry: Utf8Carry::new(),
            io_chunk: Vec::new(),
            ev_batch: EventBatch::new(),
        }
    }

    /// Keeps whitespace-only text nodes.
    pub fn keep_whitespace(mut self) -> HtmlParser {
        self.keep_whitespace = true;
        self
    }

    /// Switches to *lookup-only* name resolution: document names
    /// resolve against the shared table read-only, unknown ones
    /// collapse to [`Sym::UNKNOWN`], and the table stays bounded by the
    /// compiled query vocabulary on unbounded inputs — exactly like
    /// `fx_xml::StreamingParser::lookup_only`. The owned-event helpers
    /// ([`HtmlParser::feed`], [`parse_html`]) must not be used in this
    /// mode.
    pub fn lookup_only(mut self) -> HtmlParser {
        self.intern_names = false;
        self
    }

    /// The symbol table this parser resolves names against.
    pub fn symbols(&self) -> &Arc<Symbols> {
        &self.symbols
    }

    /// Resets per-document state, keeping the table handle, the name
    /// memo, and every scratch buffer's capacity warm.
    pub fn reset(&mut self) {
        self.buf.clear();
        self.pos = 0;
        self.depth = 0;
        self.started = false;
        self.finished = false;
        self.consumed = 0;
        self.raw = None;
        self.utf8_carry.clear();
    }

    /// Drops memoized name verdicts (see
    /// `fx_xml::StreamingParser::invalidate_name_memo`).
    pub fn invalidate_name_memo(&mut self) {
        self.name_cache.clear();
    }

    fn resolve_name(cache: &mut SymCache, symbols: &Symbols, intern: bool, name: &str) -> Sym {
        cache.lookup_or_intern(symbols, name, intern)
    }

    /// Pushes an open element, reusing a retired slot's name capacity.
    fn stack_push(&mut self, sym: Sym, name: &str) {
        if self.depth == self.stack.len() {
            self.stack.push((sym, name.to_string()));
        } else {
            let slot = &mut self.stack[self.depth];
            slot.0 = sym;
            slot.1.clear();
            slot.1.push_str(name);
        }
        self.depth += 1;
    }

    /// Feeds a chunk, emitting every event that becomes complete, in
    /// interned zero-copy form. Structural oddities recover silently;
    /// the `Result` exists for [`EventSource`] parity and is always
    /// `Ok` here.
    pub fn feed_interned<F: FnMut(SymEvent<'_>, Span) + ?Sized>(
        &mut self,
        chunk: &str,
        emit: &mut F,
    ) -> Result<(), ParseError> {
        self.compact();
        self.buf.push_str(chunk);
        self.drain(false, emit);
        Ok(())
    }

    /// [`HtmlParser::feed_interned`] on raw bytes: validates UTF-8 once
    /// per chunk and carries a scalar split across chunk boundaries, so
    /// any read boundary — including mid-multibyte-character — is safe.
    /// The only possible error is invalid UTF-8.
    pub fn feed_interned_bytes<F: FnMut(SymEvent<'_>, Span) + ?Sized>(
        &mut self,
        chunk: &[u8],
        emit: &mut F,
    ) -> Result<(), ParseError> {
        self.compact();
        let HtmlParser {
            buf, utf8_carry, ..
        } = self;
        utf8_carry.feed(chunk, &mut |text| {
            buf.push_str(text);
            Ok(())
        })?;
        self.drain(false, emit);
        Ok(())
    }

    /// Signals end of input: emits trailing text, closes every open
    /// element (implied end tags at EOF), and frames the stream with
    /// `StartDocument`/`EndDocument` even when the input held no
    /// elements at all.
    pub fn finish_interned<F: FnMut(SymEvent<'_>, Span) + ?Sized>(
        &mut self,
        emit: &mut F,
    ) -> Result<(), ParseError> {
        if self.finished {
            return Err(ParseError {
                message: "finish called twice".to_string(),
                line: 0,
                column: self.consumed + 1,
            });
        }
        self.utf8_carry.finish()?;
        self.drain(true, emit);
        if !self.started {
            self.started = true;
            emit(SymEvent::StartDocument, Span::point(0));
        }
        while self.depth > 0 {
            let sym = self.stack[self.depth - 1].0;
            self.depth -= 1;
            emit(
                SymEvent::EndElement { name: sym },
                Span::point(self.consumed as u64),
            );
        }
        self.finished = true;
        emit(SymEvent::EndDocument, Span::point(self.consumed as u64));
        Ok(())
    }

    /// [`HtmlParser::feed_interned`] on the owned-event surface
    /// (interning mode only; panics in lookup-only mode, where unknown
    /// names cannot be resolved back to strings).
    pub fn feed(&mut self, chunk: &str, emit: &mut dyn FnMut(Event)) {
        assert!(
            self.intern_names,
            "the owned-event surface requires interning mode"
        );
        let symbols = Arc::clone(&self.symbols);
        self.feed_interned(chunk, &mut |ev, _| emit(ev.to_owned(&symbols)))
            .expect("html feed never fails");
    }

    /// [`HtmlParser::finish_interned`] on the owned-event surface.
    pub fn finish(&mut self, emit: &mut dyn FnMut(Event)) {
        assert!(
            self.intern_names,
            "the owned-event surface requires interning mode"
        );
        let symbols = Arc::clone(&self.symbols);
        self.finish_interned(&mut |ev, _| emit(ev.to_owned(&symbols)))
            .expect("html finish never fails on first call");
    }

    /// Streams a whole document from `reader` through the interned
    /// surface: fixed-size chunks, split UTF-8 scalars carried across
    /// boundaries. The only possible errors are I/O and invalid UTF-8.
    pub fn drive_reader<R: Read, F: FnMut(SymEvent<'_>, Span) + ?Sized>(
        &mut self,
        mut reader: R,
        emit: &mut F,
    ) -> Result<(), ParseError> {
        let mut chunk = std::mem::take(&mut self.io_chunk);
        let result = fx_xml::drive_byte_chunks(&mut reader, &mut chunk, &mut |bytes| {
            self.feed_interned_bytes(bytes, emit)
        })
        .and_then(|()| self.finish_interned(emit));
        self.io_chunk = chunk;
        result
    }

    /// Streams a whole document from `reader` as recycled
    /// [`EventBatch`]es — the soup frontend's native
    /// [`EventSource::drive_batched`]: batches cut on
    /// [`BATCH_EVENTS`] events or [`BATCH_BYTES`] payload bytes, the
    /// batch borrow valid only for the `consume` call.
    pub fn drive_batched<R: Read>(
        &mut self,
        mut reader: R,
        consume: &mut dyn FnMut(&EventBatch),
    ) -> Result<(), ParseError> {
        let mut batch = std::mem::take(&mut self.ev_batch);
        batch.clear();
        let mut chunk = std::mem::take(&mut self.io_chunk);
        let result = fx_xml::drive_byte_chunks(&mut reader, &mut chunk, &mut |bytes| {
            self.feed_interned_bytes(bytes, &mut |ev, span| batch.push(&ev, span))?;
            if batch.len() >= BATCH_EVENTS || batch.payload_bytes() >= BATCH_BYTES {
                consume(&batch);
                batch.clear();
            }
            Ok(())
        })
        .and_then(|()| self.finish_interned(&mut |ev, span| batch.push(&ev, span)));
        if result.is_ok() && !batch.is_empty() {
            consume(&batch);
        }
        batch.clear();
        self.io_chunk = chunk;
        self.ev_batch = batch;
        result
    }

    fn pending(&self) -> &str {
        &self.buf[self.pos..]
    }

    fn compact(&mut self) {
        if self.pos == 0 {
            return;
        }
        if self.pos == self.buf.len() {
            self.buf.clear();
        } else {
            self.buf.drain(..self.pos);
        }
        self.pos = 0;
    }

    fn drain<F: FnMut(SymEvent<'_>, Span) + ?Sized>(&mut self, at_eof: bool, emit: &mut F) {
        loop {
            if self.raw.is_some() {
                if !self.drain_raw(at_eof, emit) {
                    return; // waiting for more input
                }
                continue;
            }
            // Text up to the next real tag opener. A `<` not followed
            // by an ASCII letter, `!`, `/`, or `?` is literal text.
            let b = self.pending().as_bytes();
            let mut i = 0;
            let tag_at = loop {
                match scan::memchr(b'<', &b[i..]) {
                    None => break None,
                    Some(j) => {
                        let at = i + j;
                        match b.get(at + 1) {
                            None if at_eof => break None, // trailing literal `<`
                            // Undecidable `<` at the buffer end: keep the
                            // whole text run buffered (never split it).
                            None => return,
                            Some(&c)
                                if c.is_ascii_alphabetic() || matches!(c, b'!' | b'/' | b'?') =>
                            {
                                break Some(at)
                            }
                            Some(_) => i = at + 1, // literal `<`
                        }
                    }
                }
            };
            match tag_at {
                None => {
                    // All pending input is text; it is complete only at
                    // EOF (text nodes are never split mid-run).
                    if at_eof && !self.pending().is_empty() {
                        let len = self.pending().len();
                        self.take_text(len, true, emit);
                    }
                    return;
                }
                Some(at) => {
                    if at > 0 {
                        self.take_text(at, true, emit);
                    }
                }
            }
            // A tag begins at the cursor.
            let Some(tag_len) = self.tag_length() else {
                if at_eof {
                    // EOF inside a tag: HTML drops the partial token.
                    let len = self.pending().len();
                    self.pos += len;
                    self.consumed += len;
                }
                return;
            };
            let mut tag = std::mem::take(&mut self.tag_scratch);
            tag.clear();
            tag.push_str(&self.buf[self.pos..self.pos + tag_len]);
            self.pos += tag_len;
            self.consumed += tag_len;
            let span = Span::new((self.consumed - tag_len) as u64, self.consumed as u64);
            self.handle_tag(&tag, span, emit);
            self.tag_scratch = tag;
        }
    }

    /// Emits the next `len` bytes of pending input as one text node
    /// (entity-decoded when `decode`), dropping it when whitespace-only
    /// (unless [`HtmlParser::keep_whitespace`]) or outside any element.
    fn take_text<F: FnMut(SymEvent<'_>, Span) + ?Sized>(
        &mut self,
        len: usize,
        decode: bool,
        emit: &mut F,
    ) {
        self.text_scratch.clear();
        let raw = &self.buf[self.pos..self.pos + len];
        if decode {
            decode_html_entities_into(raw, &mut self.text_scratch);
        } else {
            self.text_scratch.push_str(raw);
        }
        self.pos += len;
        self.consumed += len;
        let span = Span::new((self.consumed - len) as u64, self.consumed as u64);
        if self.depth == 0 {
            return; // top-level text outside any element: dropped
        }
        if self.keep_whitespace || !self.text_scratch.chars().all(char::is_whitespace) {
            emit(
                SymEvent::Text {
                    content: &self.text_scratch,
                },
                span,
            );
        }
    }

    /// Length of the complete tag at the cursor, or `None` while more
    /// input could still complete it.
    fn tag_length(&self) -> Option<usize> {
        let b = self.pending();
        debug_assert!(b.starts_with('<'));
        if b.len() < 4 && "<!--".starts_with(b) {
            return None; // could still become a comment opener
        }
        if let Some(rest) = b.strip_prefix("<!--") {
            return rest.find("-->").map(|i| 4 + i + 3);
        }
        if b.starts_with("<!") || b.starts_with("<?") || b.starts_with("</") {
            // Doctype, bogus comment, or end tag: plain scan to `>`.
            return b.find('>').map(|i| i + 1);
        }
        // A start tag: `>` ends it, except inside a quoted attribute
        // value (a quote counts as opening one only right after `=`,
        // matching the HTML attribute-value states).
        let mut quote: Option<u8> = None;
        let mut after_eq = false;
        for (i, c) in b.bytes().enumerate().skip(1) {
            match quote {
                Some(q) => {
                    if c == q {
                        quote = None;
                    }
                }
                None => match c {
                    b'>' => return Some(i + 1),
                    b'"' | b'\'' if after_eq => quote = Some(c),
                    b'=' => after_eq = true,
                    c if c.is_ascii_whitespace() => {}
                    _ => after_eq = false,
                },
            }
        }
        None
    }

    fn handle_tag<F: FnMut(SymEvent<'_>, Span) + ?Sized>(
        &mut self,
        tag: &str,
        span: Span,
        emit: &mut F,
    ) {
        if tag.starts_with("<!") || tag.starts_with("<?") {
            return; // comments, doctype, processing-instruction soup
        }
        if let Some(rest) = tag.strip_prefix("</") {
            self.handle_end_tag(rest, span, emit);
        } else {
            self.handle_start_tag(tag, span, emit);
        }
    }

    fn handle_end_tag<F: FnMut(SymEvent<'_>, Span) + ?Sized>(
        &mut self,
        rest: &str,
        span: Span,
        emit: &mut F,
    ) {
        self.name_scratch.clear();
        for c in rest.chars() {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == ':' {
                self.name_scratch.push(c.to_ascii_lowercase());
            } else {
                break;
            }
        }
        if self.name_scratch.is_empty() || is_void(&self.name_scratch) {
            return; // `</>`, `</ x>`, `</br>`: dropped
        }
        // Close up to the nearest matching open element; a stray end
        // tag with no match is dropped.
        let Some(target) = (0..self.depth)
            .rev()
            .find(|&i| self.stack[i].1 == self.name_scratch)
        else {
            return;
        };
        while self.depth > target + 1 {
            let sym = self.stack[self.depth - 1].0;
            self.depth -= 1;
            emit(SymEvent::EndElement { name: sym }, Span::point(span.start));
        }
        let sym = self.stack[target].0;
        self.depth = target;
        emit(SymEvent::EndElement { name: sym }, span);
    }

    fn handle_start_tag<F: FnMut(SymEvent<'_>, Span) + ?Sized>(
        &mut self,
        tag: &str,
        span: Span,
        emit: &mut F,
    ) {
        // `<name attrs>` — a trailing `/` is ignored on non-void
        // elements, as in HTML (`<div/>` opens a div).
        let inner = tag
            .trim_start_matches('<')
            .trim_end_matches('>')
            .trim_end_matches('/');
        self.name_scratch.clear();
        let mut name_end = inner.len();
        for (i, c) in inner.char_indices() {
            if c.is_ascii_whitespace() || c == '/' {
                name_end = i;
                break;
            }
            self.name_scratch.push(c.to_ascii_lowercase());
        }
        if self.name_scratch.is_empty() {
            return;
        }
        // Implied end tags: `<li>` closes `<li>`, blocks close `<p>`, …
        loop {
            if self.depth == 0 {
                break;
            }
            let top = &self.stack[self.depth - 1].1;
            if !start_tag_closes(&self.name_scratch, top) {
                break;
            }
            let sym = self.stack[self.depth - 1].0;
            self.depth -= 1;
            emit(SymEvent::EndElement { name: sym }, Span::point(span.start));
        }
        let mut fold = std::mem::take(&mut self.attr_scratch);
        parse_attrs_lenient(
            &inner[name_end..],
            &self.symbols,
            &mut self.name_cache,
            self.intern_names,
            &mut fold,
            &mut self.attrs,
        );
        self.attr_scratch = fold;
        let name = std::mem::take(&mut self.name_scratch);
        let sym = Self::resolve_name(
            &mut self.name_cache,
            &self.symbols,
            self.intern_names,
            &name,
        );
        if !self.started {
            self.started = true;
            emit(SymEvent::StartDocument, Span::point(0));
        }
        emit(
            SymEvent::StartElement {
                name: sym,
                attributes: self.attrs.as_slice(),
            },
            span,
        );
        if is_void(&name) {
            // The start tag is the whole element; both events share it.
            emit(SymEvent::EndElement { name: sym }, span);
        } else {
            self.stack_push(sym, &name);
            if let Some(kind) = raw_kind(&name) {
                self.raw = Some(kind);
                self.raw_closer.clear();
                self.raw_closer.push_str(&name);
            }
        }
        self.name_scratch = name;
    }

    /// Drains raw-text content (`<script>`, `<title>`, …): everything
    /// to the matching case-insensitive `</name` is one text node.
    /// Returns false when waiting for more input.
    fn drain_raw<F: FnMut(SymEvent<'_>, Span) + ?Sized>(
        &mut self,
        at_eof: bool,
        emit: &mut F,
    ) -> bool {
        let kind = self.raw.expect("drain_raw called in raw mode");
        let decode = kind == RawKind::Escapable;
        let b = self.pending().as_bytes();
        // The closer pattern: `<`, `/`, then the (folded) element name.
        let closer_len = 2 + self.raw_closer.len();
        let mut i = 0;
        let closer = loop {
            match scan::memchr(b'<', &b[i..]) {
                None => break None,
                Some(j) => {
                    let at = i + j;
                    let avail = &b[at..];
                    // How much of the pattern the available bytes match,
                    // case-insensitively.
                    let mut matched = 0;
                    for (k, &a) in avail.iter().enumerate().take(closer_len) {
                        let expect = match k {
                            0 => b'<',
                            1 => b'/',
                            _ => self.raw_closer.as_bytes()[k - 2],
                        };
                        if a.to_ascii_lowercase() != expect {
                            break;
                        }
                        matched = k + 1;
                    }
                    if matched < avail.len().min(closer_len) {
                        i = at + 1; // definite mismatch: still text
                        continue;
                    }
                    if avail.len() <= closer_len {
                        // A potential closer runs off the buffer end: at
                        // EOF it is plain text, otherwise wait (the text
                        // run stays buffered so it is never split).
                        if at_eof {
                            break None;
                        }
                        return false;
                    }
                    // Full `</name` — the next byte decides.
                    match avail[closer_len] {
                        b'>' | b'/' => break Some(at),
                        c if c.is_ascii_whitespace() => break Some(at),
                        _ => i = at + 1, // e.g. `</scripts`: still text
                    }
                }
            }
        };
        match closer {
            None => {
                if at_eof {
                    // EOF inside raw text: the content is text and
                    // `finish_interned` emits the implied end tags.
                    let len = self.pending().len();
                    if len > 0 {
                        self.take_text(len, decode, emit);
                    }
                    self.raw = None;
                    return true;
                }
                false
            }
            Some(at) => {
                // Need the closer's `>` to consume the end tag.
                let Some(gt) = scan::memchr(b'>', &b[at + closer_len..]) else {
                    if at_eof {
                        // Partial end tag at EOF: drop it.
                        if at > 0 {
                            self.take_text(at, decode, emit);
                        }
                        let rest = self.pending().len() - at;
                        self.pos += rest;
                        self.consumed += rest;
                        self.raw = None;
                        return true;
                    }
                    return false;
                };
                if at > 0 {
                    self.take_text(at, decode, emit);
                }
                let tag_len = closer_len + gt + 1;
                self.pos += tag_len;
                self.consumed += tag_len;
                let span = Span::new((self.consumed - tag_len) as u64, self.consumed as u64);
                let sym = self.stack[self.depth - 1].0;
                self.depth -= 1;
                emit(SymEvent::EndElement { name: sym }, span);
                self.raw = None;
                true
            }
        }
    }
}

/// Lenient attribute parsing: names case-fold, values may be
/// double-quoted, single-quoted, unquoted, or absent (empty string),
/// duplicates keep the first occurrence, character references decode
/// leniently. Allocation-free in steady state.
fn parse_attrs_lenient(
    s: &str,
    symbols: &Symbols,
    cache: &mut SymCache,
    intern: bool,
    fold: &mut String,
    out: &mut AttrBuf,
) {
    out.clear();
    let mut rest = s.trim_start_matches(|c: char| c.is_ascii_whitespace() || c == '/');
    while !rest.is_empty() {
        // Attribute name: up to whitespace, `=`, `/`, or end.
        fold.clear();
        let mut name_end = rest.len();
        for (i, c) in rest.char_indices() {
            if c.is_ascii_whitespace() || c == '=' || c == '/' {
                name_end = i;
                break;
            }
            fold.push(c.to_ascii_lowercase());
        }
        rest = rest[name_end..].trim_start();
        let mut value: Option<&str> = None;
        if let Some(after_eq) = rest.strip_prefix('=') {
            let after_eq = after_eq.trim_start();
            let (raw, next) = match after_eq.as_bytes().first() {
                Some(&q @ (b'"' | b'\'')) => match after_eq[1..].find(q as char) {
                    Some(close) => (&after_eq[1..1 + close], &after_eq[close + 2..]),
                    None => (&after_eq[1..], ""), // unterminated: rest of tag
                },
                _ => {
                    let end = after_eq
                        .find(|c: char| c.is_ascii_whitespace())
                        .unwrap_or(after_eq.len());
                    (&after_eq[..end], &after_eq[end..])
                }
            };
            value = Some(raw);
            rest = next;
        }
        rest = rest.trim_start_matches(|c: char| c.is_ascii_whitespace() || c == '/');
        if fold.is_empty() {
            continue; // stray `=` or quote junk: skip
        }
        if out.has_name_str(fold) {
            continue; // duplicate attribute: first wins
        }
        let sym = cache.lookup_or_intern(symbols, fold, intern);
        let slot = out.push_named(sym, fold);
        if let Some(raw) = value {
            decode_html_entities_into(raw, slot);
        }
    }
}

impl EventSource for HtmlParser {
    fn symbols(&self) -> &Arc<Symbols> {
        HtmlParser::symbols(self)
    }

    fn reset(&mut self) {
        HtmlParser::reset(self);
    }

    fn invalidate_name_memo(&mut self) {
        HtmlParser::invalidate_name_memo(self);
    }

    fn drive_batched(
        &mut self,
        reader: &mut dyn Read,
        consume: &mut dyn FnMut(&EventBatch),
    ) -> Result<(), ParseError> {
        HtmlParser::drive_batched(self, reader, consume)
    }
}

/// Parses a whole HTML string into owned events — the convenience form
/// for tests and DOM building. Never fails: every input produces a
/// `StartDocument … EndDocument` framed stream under the crate's
/// recovery rules.
pub fn parse_html(html: &str) -> Vec<Event> {
    let mut parser = HtmlParser::new();
    let mut events = Vec::new();
    parser.feed(html, &mut |e| events.push(e));
    parser.finish(&mut |e| events.push(e));
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use fx_xml::Attribute;

    fn ev_start(name: &str) -> Event {
        Event::start(name)
    }

    #[test]
    fn plain_tree_round_trips() {
        assert_eq!(
            parse_html("<div><span>hi</span></div>"),
            vec![
                Event::StartDocument,
                ev_start("div"),
                ev_start("span"),
                Event::text("hi"),
                Event::end("span"),
                Event::end("div"),
                Event::EndDocument,
            ]
        );
    }

    #[test]
    fn names_case_fold() {
        assert_eq!(
            parse_html("<DIV CLASS=\"x\">t</div>"),
            vec![
                Event::StartDocument,
                Event::start_with_attrs("div", vec![Attribute::new("class", "x")]),
                Event::text("t"),
                Event::end("div"),
                Event::EndDocument,
            ]
        );
    }

    #[test]
    fn void_elements_self_close() {
        assert_eq!(
            parse_html("<div>a<br>b<img src=x></div>"),
            vec![
                Event::StartDocument,
                ev_start("div"),
                Event::text("a"),
                ev_start("br"),
                Event::end("br"),
                Event::text("b"),
                Event::start_with_attrs("img", vec![Attribute::new("src", "x")]),
                Event::end("img"),
                Event::end("div"),
                Event::EndDocument,
            ]
        );
        // A stray `</br>` is dropped rather than unbalancing the tree.
        assert_eq!(
            parse_html("<div><br></br></div>"),
            parse_html("<div><br></div>")
        );
    }

    #[test]
    fn implied_end_tags() {
        // <li> closes <li>; the parent's end tag closes the last one.
        assert_eq!(
            parse_html("<ul><li>a<li>b</ul>"),
            parse_html("<ul><li>a</li><li>b</li></ul>")
        );
        // A block start closes an open <p>.
        assert_eq!(
            parse_html("<body><p>x<div>y</div></body>"),
            parse_html("<body><p>x</p><div>y</div></body>")
        );
        // Table soup.
        assert_eq!(
            parse_html("<table><tr><td>1<td>2<tr><td>3</table>"),
            parse_html("<table><tr><td>1</td><td>2</td></tr><tr><td>3</td></tr></table>")
        );
    }

    #[test]
    fn eof_closes_open_elements() {
        assert_eq!(
            parse_html("<div><p>tail"),
            vec![
                Event::StartDocument,
                ev_start("div"),
                ev_start("p"),
                Event::text("tail"),
                Event::end("p"),
                Event::end("div"),
                Event::EndDocument,
            ]
        );
    }

    #[test]
    fn attribute_quirks() {
        assert_eq!(
            parse_html("<a href=/x download data-n='7' href=dup>y</a>"),
            vec![
                Event::StartDocument,
                Event::start_with_attrs(
                    "a",
                    vec![
                        Attribute::new("href", "/x"),
                        Attribute::new("download", ""),
                        Attribute::new("data-n", "7"),
                    ]
                ),
                Event::text("y"),
                Event::end("a"),
                Event::EndDocument,
            ]
        );
    }

    #[test]
    fn stray_markup_recovers() {
        // Literal `<` in text, unknown end tag, bogus comment.
        assert_eq!(
            parse_html("<p>1 < 2 &amp; 3 </q> <!-- c --> ok</p>"),
            vec![
                Event::StartDocument,
                ev_start("p"),
                Event::text("1 < 2 & 3 "),
                Event::text(" ok"),
                Event::end("p"),
                Event::EndDocument,
            ]
        );
        // Unknown entity passes through.
        assert_eq!(
            parse_html("<p>&bogus; &amp;</p>"),
            vec![
                Event::StartDocument,
                ev_start("p"),
                Event::text("&bogus; &"),
                Event::end("p"),
                Event::EndDocument,
            ]
        );
    }

    #[test]
    fn raw_text_elements() {
        assert_eq!(
            parse_html("<div><script>if (a<b && c>d) x();</script></div>"),
            vec![
                Event::StartDocument,
                ev_start("div"),
                ev_start("script"),
                Event::text("if (a<b && c>d) x();"),
                Event::end("script"),
                Event::end("div"),
                Event::EndDocument,
            ]
        );
        // Escapable raw text decodes entities but not tags.
        assert_eq!(
            parse_html("<title>a &amp; <b></title>"),
            vec![
                Event::StartDocument,
                ev_start("title"),
                Event::text("a & <b>"),
                Event::end("title"),
                Event::EndDocument,
            ]
        );
        // The closer is case-insensitive.
        assert_eq!(
            parse_html("<style>p{}</STYLE>"),
            vec![
                Event::StartDocument,
                ev_start("style"),
                Event::text("p{}"),
                Event::end("style"),
                Event::EndDocument,
            ]
        );
    }

    #[test]
    fn doctype_comments_and_top_level_text_drop() {
        assert_eq!(
            parse_html("<!DOCTYPE html><!-- x -->stray<div>a</div>"),
            vec![
                Event::StartDocument,
                ev_start("div"),
                Event::text("a"),
                Event::end("div"),
                Event::EndDocument,
            ]
        );
    }

    #[test]
    fn trailing_slash_is_ignored_on_non_void() {
        assert_eq!(parse_html("<div/>x"), parse_html("<div>x"));
    }

    #[test]
    fn empty_input_still_frames_the_stream() {
        assert_eq!(
            parse_html(""),
            vec![Event::StartDocument, Event::EndDocument]
        );
    }

    #[test]
    fn chunked_parsing_matches_batch() {
        let docs = [
            "<div><span>hi</span> <br> tail</div>",
            "<ul><li>one<li>two &amp; three</ul>",
            "<table><tr><td>a<td>b</table>",
            "<div><script>a<b</script>ok</div>",
            "<title>x &lt; y</title>",
            "<p>1 < 2</p>",
            "<a href='q'>z</a>",
        ];
        for doc in docs {
            let batch = parse_html(doc);
            for chunk_size in 1..=doc.len().min(7) {
                let mut parser = HtmlParser::new();
                let mut events = Vec::new();
                let mut emit = |e: Event| events.push(e);
                let bytes = doc.as_bytes();
                let mut i = 0;
                while i < bytes.len() {
                    let end = (i + chunk_size).min(bytes.len());
                    parser.feed(std::str::from_utf8(&bytes[i..end]).unwrap(), &mut emit);
                    i = end;
                }
                parser.finish(&mut emit);
                assert_eq!(events, batch, "chunk size {chunk_size} on {doc}");
            }
        }
    }

    #[test]
    fn spans_are_cumulative_source_ranges() {
        let html = "<div>abc</div>";
        let mut parser = HtmlParser::new();
        let mut spans = Vec::new();
        parser
            .feed_interned(html, &mut |_, s| spans.push(s))
            .unwrap();
        parser.finish_interned(&mut |_, s| spans.push(s)).unwrap();
        // StartDocument, <div>, text, </div>, EndDocument.
        assert_eq!(spans[1], Span::new(0, 5));
        assert_eq!(spans[2], Span::new(5, 8));
        assert_eq!(spans[3], Span::new(8, 14));
    }

    #[test]
    fn lookup_only_bounds_the_table() {
        let symbols = Arc::new(Symbols::new());
        symbols.intern("div");
        let before = symbols.len();
        let mut parser = HtmlParser::with_symbols(Arc::clone(&symbols)).lookup_only();
        let mut saw_unknown = false;
        parser
            .feed_interned("<div><mystery>x</mystery></div>", &mut |ev, _| {
                if let SymEvent::StartElement { name, .. } = ev {
                    saw_unknown |= name == Sym::UNKNOWN;
                }
            })
            .unwrap();
        parser.finish_interned(&mut |_, _| {}).unwrap();
        assert!(saw_unknown);
        assert_eq!(symbols.len(), before, "lookup-only must not grow the table");
    }

    #[test]
    fn reset_allows_reuse() {
        let mut parser = HtmlParser::new();
        let mut n = 0;
        parser.feed("<a>x</a>", &mut |_| n += 1);
        parser.finish(&mut |_| n += 1);
        parser.reset();
        let mut events = Vec::new();
        parser.feed("<b>y</b>", &mut |e| events.push(e));
        parser.finish(&mut |e| events.push(e));
        assert_eq!(events, parse_html("<b>y</b>"));
    }
}
