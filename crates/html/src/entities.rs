//! Lenient HTML character-reference decoding.
//!
//! Unlike `fx_xml::decode_entities_into`, which rejects unknown
//! entities (XML has exactly five), HTML decoding must *never fail*:
//! real pages are full of bare `&` and misspelled references. The rules
//! here are the lenient subset the soup parser guarantees:
//!
//! * `&#123;` / `&#x1F;` decode as code points; values outside Unicode
//!   (or surrogates) become U+FFFD REPLACEMENT CHARACTER.
//! * A known named reference followed by `;` decodes (the common
//!   HTML 4 set: `&amp;`, `&lt;`, `&nbsp;`, `&mdash;`, …).
//! * Everything else — unknown names, missing semicolons, a bare `&` —
//!   passes through literally, byte for byte.

/// The replacement text for a known named reference (no `&`/`;`).
fn named(name: &str) -> Option<&'static str> {
    Some(match name {
        "amp" | "AMP" => "&",
        "lt" | "LT" => "<",
        "gt" | "GT" => ">",
        "quot" | "QUOT" => "\"",
        "apos" => "'",
        "nbsp" => "\u{a0}",
        "copy" => "\u{a9}",
        "reg" => "\u{ae}",
        "deg" => "\u{b0}",
        "plusmn" => "\u{b1}",
        "middot" => "\u{b7}",
        "frac12" => "\u{bd}",
        "laquo" => "\u{ab}",
        "raquo" => "\u{bb}",
        "sect" => "\u{a7}",
        "para" => "\u{b6}",
        "szlig" => "\u{df}",
        "agrave" => "\u{e0}",
        "ccedil" => "\u{e7}",
        "egrave" => "\u{e8}",
        "eacute" => "\u{e9}",
        "auml" => "\u{e4}",
        "ouml" => "\u{f6}",
        "uuml" => "\u{fc}",
        "times" => "\u{d7}",
        "divide" => "\u{f7}",
        "cent" => "\u{a2}",
        "pound" => "\u{a3}",
        "yen" => "\u{a5}",
        "euro" => "\u{20ac}",
        "ndash" => "\u{2013}",
        "mdash" => "\u{2014}",
        "lsquo" => "\u{2018}",
        "rsquo" => "\u{2019}",
        "ldquo" => "\u{201c}",
        "rdquo" => "\u{201d}",
        "bull" => "\u{2022}",
        "hellip" => "\u{2026}",
        "trade" => "\u{2122}",
        _ => return None,
    })
}

/// Decodes one reference starting just *after* a `&`, appending the
/// replacement to `out` and returning how many bytes of `tail` it
/// consumed — or `None` when `tail` does not start a decodable
/// reference (the caller then emits the `&` literally).
fn decode_one(tail: &str, out: &mut String) -> Option<usize> {
    if let Some(num) = tail.strip_prefix('#') {
        let (digits, radix, prefix) = match num.strip_prefix(['x', 'X']) {
            Some(hex) => (hex, 16u32, 2),
            None => (num, 10u32, 1),
        };
        // Accumulate every leading digit (any length — saturation
        // pushes an overflowing value out of Unicode range, which maps
        // to U+FFFD below rather than erroring or passing through).
        let bytes = digits.as_bytes();
        let mut n = 0;
        let mut code: u32 = 0;
        while let Some(d) = bytes.get(n).and_then(|&b| (b as char).to_digit(radix)) {
            code = code.saturating_mul(radix).saturating_add(d);
            n += 1;
        }
        if n == 0 || bytes.get(n) != Some(&b';') {
            return None;
        }
        // HTML never fails on a well-formed numeric reference: zero,
        // surrogates, and out-of-range values all become U+FFFD.
        let c = match code {
            0 | 0xD800..=0xDFFF => '\u{fffd}',
            c => char::from_u32(c).unwrap_or('\u{fffd}'),
        };
        out.push(c);
        return Some(prefix + n + 1);
    }
    let semi = tail.as_bytes().iter().take(32).position(|&b| b == b';')?;
    if semi == 0 {
        return None;
    }
    out.push_str(named(&tail[..semi])?);
    Some(semi + 1)
}

/// Appends `input` to `out` with HTML character references decoded
/// leniently (see the module docs). Never fails; undecodable `&`
/// sequences pass through literally.
pub fn decode_html_entities_into(input: &str, out: &mut String) {
    let mut rest = input;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        let tail = &rest[amp + 1..];
        match decode_one(tail, out) {
            Some(used) => rest = &tail[used..],
            None => {
                out.push('&');
                rest = tail;
            }
        }
    }
    out.push_str(rest);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decode(s: &str) -> String {
        let mut out = String::new();
        decode_html_entities_into(s, &mut out);
        out
    }

    #[test]
    fn known_named_references_decode() {
        assert_eq!(decode("a &amp; b"), "a & b");
        assert_eq!(decode("&lt;tag&gt;"), "<tag>");
        assert_eq!(decode("1&nbsp;2"), "1\u{a0}2");
        assert_eq!(decode("&hellip;"), "\u{2026}");
    }

    #[test]
    fn numeric_references_decode() {
        assert_eq!(decode("&#65;"), "A");
        assert_eq!(decode("&#x41;"), "A");
        assert_eq!(decode("&#x1F600;"), "\u{1f600}");
        // Surrogates and out-of-range become U+FFFD, never an error.
        assert_eq!(decode("&#xD800;"), "\u{fffd}");
        assert_eq!(decode("&#x110000;"), "\u{fffd}");
    }

    #[test]
    fn numeric_reference_edge_cases_become_replacement() {
        // NUL, surrogates (either spelling), out-of-range, and
        // arbitrarily long overflowing digit strings all decode to
        // U+FFFD — never a raw control character, never a pass-through.
        assert_eq!(decode("&#0;"), "\u{fffd}");
        assert_eq!(decode("&#xD800;"), "\u{fffd}");
        assert_eq!(decode("&#xDFFF;"), "\u{fffd}");
        assert_eq!(decode("&#55296;"), "\u{fffd}");
        assert_eq!(decode("&#x110000;"), "\u{fffd}");
        assert_eq!(decode("&#1114112;"), "\u{fffd}");
        assert_eq!(decode("&#99999999999999999999;"), "\u{fffd}");
        assert_eq!(decode("&#xFFFFFFFFFFFFFFFF;"), "\u{fffd}");
        // The largest valid scalar still decodes.
        assert_eq!(decode("&#x10FFFF;"), "\u{10ffff}");
    }

    #[test]
    fn undecodable_sequences_pass_through() {
        assert_eq!(decode("fish & chips"), "fish & chips");
        assert_eq!(decode("&notareference;"), "&notareference;");
        assert_eq!(decode("&amp"), "&amp"); // no semicolon
        assert_eq!(decode("&#;&#xG;&"), "&#;&#xG;&");
        assert_eq!(decode("100% &= fine"), "100% &= fine");
    }
}
