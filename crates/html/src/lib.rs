//! # fx-html — a lenient streaming HTML-soup frontend
//!
//! The frontier core consumes interned `SymEvent`s, not XML text, and
//! the paper's `O(FS(Q)·log d)` memory bound (Bar-Yossef, Fontoura,
//! Josifovski; PODS 2004) is stated over event streams of nesting
//! depth `d` — so any tokenizer that emits the same event surface
//! inherits the space guarantee. This crate is that tokenizer for
//! real-world HTML: [`HtmlParser`] implements `fx_xml::EventSource`,
//! **never reports a structural error**, and recovers from tag soup by
//! the rules below, so scraped pages can be queried with the same
//! engine, sessions, and memory bounds as well-formed XML.
//!
//! # Recovery rules
//!
//! * **Names case-fold**: element and attribute names are ASCII
//!   lower-cased (`<DIV Class=x>` ≡ `<div class=x>`).
//! * **Void elements** (`<br>`, `<img>`, `<input>`, `<hr>`, `<meta>`,
//!   `<link>`, …) are complete at their start tag: the parser emits
//!   start+end immediately and drops stray `</br>`-style end tags.
//! * **Implied end tags**: a new `<li>` closes an open `li`; `<dt>`/
//!   `<dd>`, table parts (`<tr>`, `<td>`, `<th>`, `<thead>`-family)
//!   and `<option>`/`<optgroup>` close their open siblings; block
//!   starts (`<div>`, `<ul>`, `<h1>`…, `<table>`, `<p>`, …) close an
//!   open `<p>`. End-of-input closes everything still open.
//! * **End-tag matching is forgiving**: `</x>` closes up to the
//!   nearest open `x` (elements above it get implied ends); with no
//!   open `x` it is dropped. `</>` and `</ junk>` are dropped.
//! * **Raw text**: `<script>`/`<style>` content is verbatim text to
//!   the matching case-insensitive closer; `<title>`/`<textarea>`
//!   likewise but with character references decoded.
//! * **Attribute quirks**: unquoted, single-quoted, and valueless
//!   attributes all parse; duplicates keep the first value; an
//!   unterminated quote swallows the rest of the tag.
//! * **Lenient character references**: the common named set plus
//!   numeric forms decode; anything else (including a bare `&`) passes
//!   through literally (see [`entities`]).
//! * **Markup soup**: a `<` not followed by a letter, `!`, `/`, or `?`
//!   is literal text; comments, doctypes, and `<?…>` are dropped; a
//!   trailing `/` on a non-void start tag is ignored (`<div/>` opens a
//!   `div`); end-of-input inside a tag drops the partial token.
//! * **No implicit wrappers**: unlike a full HTML5 tree builder, the
//!   parser does not synthesize `<html>`/`<body>`; multiple top-level
//!   elements stream as siblings and top-level text outside any
//!   element is dropped.
//!
//! The only errors [`HtmlParser`] can surface are I/O and invalid
//! UTF-8 from `drive_reader`.
//!
//! ```
//! use fx_html::parse_html;
//! use fx_xml::Event;
//!
//! // Unclosed <li>, uppercase tag, void <br>: all recover.
//! let events = parse_html("<UL><li>a<br><li>b</ul>");
//! assert_eq!(events, parse_html("<ul><li>a<br></br></li><li>b</li></ul>"));
//! assert!(events.contains(&Event::start("br")));
//! ```

#![warn(missing_docs)]

pub mod entities;
pub mod parser;

pub use entities::decode_html_entities_into;
pub use parser::{parse_html, HtmlParser};
