//! Seeded corpora for the non-XML event frontends: HTML soup documents
//! and streaming-JSON records, each paired with a canonical **witness**
//! — the well-formed XML spelling of the tree the frontend is required
//! to recover. The differential suites parse the messy form through
//! `fx-html`/`fx-json` and the witness through the XML stack, then
//! demand identical DOMs, verdicts, and match sets (this crate itself
//! depends on neither frontend, so the witnesses are ground truth, not
//! an echo of the implementation under test).
//!
//! The HTML generator only emits quirks the soup parser's documented
//! recovery rules provably undo — folded case, void elements, the
//! `</li>`/`</p>` omission pairs, attribute quirk spellings, dropped
//! comments/doctypes, stray end tags, lenient entities, raw-text
//! `<script>`/`<style>` — so every generated pair is equivalent *by
//! construction*, mirroring how [`crate::SharedPrefixBank::document`]
//! builds documents whose match sets are known a priori.

use rand::seq::SliceRandom;
use rand::Rng;

/// One HTML-soup document paired with its DOM witness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoupDoc {
    /// The messy HTML: case soup, omitted end tags, bare voids,
    /// attribute quirks, comments, stray markup.
    pub html: String,
    /// The equivalent well-formed XML — what a lenient parse of `html`
    /// must reconstruct.
    pub xml: String,
}

/// Configuration for [`html_soup_document`] / [`html_soup_corpus`].
#[derive(Debug, Clone)]
pub struct HtmlSoupConfig {
    /// Maximum element nesting depth below the root.
    pub max_depth: usize,
    /// Maximum children per container element.
    pub max_children: usize,
    /// Probability in `[0, 1]` of applying each individual quirk
    /// (end-tag omission, case soup, comment injection, …). `0.0`
    /// renders the witness tree as plain lowercase HTML.
    pub quirkiness: f64,
}

impl Default for HtmlSoupConfig {
    fn default() -> Self {
        HtmlSoupConfig {
            max_depth: 5,
            max_children: 4,
            quirkiness: 0.5,
        }
    }
}

/// The generated tree: rendering needs sibling lookahead (an omitted
/// `</p>` is only recoverable before a block start), so generation and
/// rendering are separate passes over this structure.
enum Node {
    Elem {
        name: &'static str,
        attrs: Vec<(&'static str, String)>,
        children: Vec<Node>,
    },
    /// A text run: the HTML spelling (may use lenient entities, bare
    /// `&`) and the XML spelling of the same decoded content.
    Text {
        html: &'static str,
        xml: &'static str,
    },
    /// A void element (`<br>`, `<img>`, …).
    Void {
        name: &'static str,
        attrs: Vec<(&'static str, String)>,
    },
    /// A raw-text element: `<script>`/`<style>` content is verbatim in
    /// HTML and escaped in the witness.
    Raw {
        name: &'static str,
        content: &'static str,
    },
}

/// Text runs as `(html spelling, xml spelling)` — never
/// whitespace-only, so whitespace-dropping policies cannot diverge.
const TEXTS: &[(&str, &str)] = &[
    ("alpha", "alpha"),
    ("beta 42", "beta 42"),
    ("fish & chips", "fish &amp; chips"),
    ("a &amp; b", "a &amp; b"),
    ("dash &mdash; here", "dash \u{2014} here"),
    ("n&#111;te", "note"),
    ("1 < 2 sometimes", "1 &lt; 2 sometimes"),
];

const RAW_SCRIPTS: &[&str] = &["if (a < b) { go(); }", "x && !y", "a = b>>2;"];
const RAW_STYLES: &[&str] = &[".cls > a { color: red }", "b { margin: 0 }"];

const ATTR_VALUES: &[&str] = &["x1", "main", "42", "left", "k9"];

fn gen_attrs<R: Rng>(rng: &mut R) -> Vec<(&'static str, String)> {
    let mut attrs = Vec::new();
    if rng.gen_bool(0.5) {
        attrs.push(("class", ATTR_VALUES.choose(rng).unwrap().to_string()));
    }
    if rng.gen_bool(0.3) {
        attrs.push(("id", ATTR_VALUES.choose(rng).unwrap().to_string()));
    }
    if rng.gen_bool(0.2) {
        // Valueless in HTML with some probability; the witness always
        // spells the empty value out.
        attrs.push(("data-k", String::new()));
    }
    attrs
}

/// What kinds of children a position may hold.
#[derive(Clone, Copy, PartialEq)]
enum Ctx {
    /// Block containers: `div`, `section`, `li`, the root.
    Block,
    /// `ul` — `li` children only.
    List,
    /// `p` and the inline elements — phrasing content only.
    Inline,
    /// Leaf inline (`span`, `em`, `a`) — text only.
    Leaf,
}

fn gen_children<R: Rng>(rng: &mut R, cfg: &HtmlSoupConfig, ctx: Ctx, depth: usize) -> Vec<Node> {
    let n = rng.gen_range(if ctx == Ctx::List {
        1..=cfg.max_children.max(1)
    } else {
        0..=cfg.max_children
    });
    let mut out: Vec<Node> = Vec::new();
    for _ in 0..n {
        let deep = depth >= cfg.max_depth;
        let node = match ctx {
            Ctx::List => Node::Elem {
                name: "li",
                attrs: gen_attrs(rng),
                children: if deep {
                    Vec::new()
                } else {
                    gen_children(rng, cfg, Ctx::Block, depth + 1)
                },
            },
            Ctx::Leaf => text_node(rng),
            Ctx::Inline => match if deep {
                rng.gen_range(0..3)
            } else {
                rng.gen_range(0..5)
            } {
                0 => text_node(rng),
                1 => Node::Void {
                    name: "br",
                    attrs: Vec::new(),
                },
                2 => Node::Void {
                    name: "img",
                    attrs: gen_attrs(rng),
                },
                _ => Node::Elem {
                    name: ["span", "em", "a"].choose(rng).unwrap(),
                    attrs: gen_attrs(rng),
                    children: gen_children(rng, cfg, Ctx::Leaf, depth + 1),
                },
            },
            Ctx::Block => match if deep {
                rng.gen_range(0..4)
            } else {
                rng.gen_range(0..10)
            } {
                0 | 1 => text_node(rng),
                2 => Node::Void {
                    name: "br",
                    attrs: Vec::new(),
                },
                3 => Node::Void {
                    name: "input",
                    attrs: gen_attrs(rng),
                },
                4 => Node::Elem {
                    name: ["div", "section"].choose(rng).unwrap(),
                    attrs: gen_attrs(rng),
                    children: gen_children(rng, cfg, Ctx::Block, depth + 1),
                },
                5 => Node::Elem {
                    name: "ul",
                    attrs: gen_attrs(rng),
                    children: gen_children(rng, cfg, Ctx::List, depth + 1),
                },
                6 | 7 => Node::Elem {
                    name: "p",
                    attrs: gen_attrs(rng),
                    children: gen_children(rng, cfg, Ctx::Inline, depth + 1),
                },
                8 => Node::Raw {
                    name: "script",
                    content: RAW_SCRIPTS.choose(rng).unwrap(),
                },
                _ => Node::Raw {
                    name: "style",
                    content: RAW_STYLES.choose(rng).unwrap(),
                },
            },
        };
        // Two adjacent text children would be one DOM text node on one
        // side of the differential and two on the other: skip.
        if matches!(node, Node::Text { .. }) && matches!(out.last(), Some(Node::Text { .. })) {
            continue;
        }
        out.push(node);
    }
    out
}

fn text_node<R: Rng>(rng: &mut R) -> Node {
    let &(html, xml) = TEXTS.choose(rng).unwrap();
    Node::Text { html, xml }
}

fn xml_escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
}

/// True when a start tag of `name` implicitly closes an open `p` — the
/// omission opportunities the renderer may exploit. Kept to names the
/// generator actually emits.
fn closes_p(name: &str) -> bool {
    matches!(name, "div" | "section" | "ul" | "p")
}

struct SoupRenderer<'a, R: Rng> {
    rng: &'a mut R,
    quirk: f64,
    html: String,
    xml: String,
}

impl<R: Rng> SoupRenderer<'_, R> {
    fn quirky(&mut self) -> bool {
        let q = self.quirk;
        q > 0.0 && self.rng.gen_bool(q)
    }

    /// Renders a name into the HTML side, possibly case-souped.
    fn html_name(&mut self, name: &str) {
        if self.quirky() {
            let upper = name.to_ascii_uppercase();
            self.html.push_str(&upper);
        } else {
            self.html.push_str(name);
        }
    }

    fn attrs(&mut self, attrs: &[(&'static str, String)]) {
        for (name, value) in attrs {
            // Witness: canonical double-quoted lowercase.
            self.xml.push(' ');
            self.xml.push_str(name);
            self.xml.push_str("=\"");
            xml_escape_into(value, &mut self.xml);
            self.xml.push('"');
            // HTML: one of the quirk spellings.
            self.html.push(' ');
            self.html_name(name);
            if value.is_empty() && self.quirky() {
                continue; // valueless boolean attribute
            }
            self.html.push('=');
            let plain = !value.is_empty() && value.chars().all(|c| c.is_ascii_alphanumeric());
            match if plain { self.rng.gen_range(0..3) } else { 0 } {
                1 => self.html.push_str(value), // unquoted
                2 => {
                    self.html.push('\'');
                    self.html.push_str(value);
                    self.html.push('\'');
                }
                _ => {
                    self.html.push('"');
                    self.html.push_str(value);
                    self.html.push('"');
                }
            }
        }
        // A duplicate of the first attribute with a junk value: the
        // parser keeps the first occurrence, so the witness is
        // unchanged.
        if let Some((name, _)) = attrs.first() {
            if self.quirky() {
                self.html.push(' ');
                self.html.push_str(name);
                self.html.push_str("=dup");
            }
        }
    }

    /// Markup the parser drops entirely: comments, stray end tags.
    /// Safe at any child boundary (text runs are flushed by the tag
    /// either way, and the generator never makes adjacent text nodes).
    fn noise(&mut self) {
        if self.quirky() {
            match self.rng.gen_range(0..3) {
                0 => self.html.push_str("<!-- soup -->"),
                1 => self.html.push_str("</zzz>"),
                _ => self.html.push_str("</br>"),
            }
        }
    }

    /// Renders `node`. `parent_closes` is true when the parent element
    /// will emit an explicit end tag (so a last-child `</li>`/`</p>`
    /// may be omitted and recovered by the forgiving end-tag match);
    /// `next` is the following sibling, if any.
    fn node(&mut self, node: &Node, parent_closes: bool, next: Option<&Node>) {
        match node {
            Node::Text { html, xml } => {
                self.html.push_str(html);
                self.xml.push_str(xml);
            }
            Node::Void { name, attrs } => {
                self.html.push('<');
                self.html_name(name);
                self.xml.push('<');
                self.xml.push_str(name);
                self.attrs(attrs);
                self.html.push('>');
                self.xml.push_str("/>");
            }
            Node::Raw { name, content } => {
                self.html.push('<');
                self.html_name(name);
                self.html.push('>');
                self.html.push_str(content);
                self.html.push_str("</");
                self.html_name(name);
                self.html.push('>');
                self.xml.push('<');
                self.xml.push_str(name);
                self.xml.push('>');
                xml_escape_into(content, &mut self.xml);
                self.xml.push_str("</");
                self.xml.push_str(name);
                self.xml.push('>');
            }
            Node::Elem {
                name,
                attrs,
                children,
            } => {
                self.elem(name, attrs, children, parent_closes, next);
            }
        }
    }

    fn elem(
        &mut self,
        name: &str,
        attrs: &[(&'static str, String)],
        children: &[Node],
        parent_closes: bool,
        next: Option<&Node>,
    ) {
        // Decide end-tag omission up front: children need to know
        // whether an explicit end tag will clean the stack behind them.
        let next_elem_name = match next {
            Some(Node::Elem { name, .. }) => Some(*name),
            _ => None,
        };
        let omittable = match name {
            // `<li>` closes an open `li`; `</ul>` recovers a trailing one.
            "li" => next_elem_name == Some("li") || (next.is_none() && parent_closes),
            // Block starts close an open `p`; so does the parent's
            // explicit end tag.
            "p" => next_elem_name.is_some_and(closes_p) || (next.is_none() && parent_closes),
            _ => false,
        };
        let omit_end = omittable && self.quirky();

        self.html.push('<');
        self.html_name(name);
        self.xml.push('<');
        self.xml.push_str(name);
        self.attrs(attrs);
        if children.is_empty() && self.quirky() {
            // A trailing slash on a non-void start tag is ignored: the
            // element still opens and still needs its end tag.
            self.html.push_str("/>");
        } else {
            self.html.push('>');
        }
        self.xml.push('>');

        for (i, child) in children.iter().enumerate() {
            if matches!(
                child,
                Node::Elem { .. } | Node::Void { .. } | Node::Raw { .. }
            ) {
                self.noise();
            }
            self.node(child, !omit_end, children.get(i + 1));
        }

        self.xml.push_str("</");
        self.xml.push_str(name);
        self.xml.push('>');
        if !omit_end {
            self.html.push_str("</");
            self.html_name(name);
            self.html.push('>');
        }
    }
}

/// Generates one HTML-soup document with its DOM witness. The soup and
/// the witness render the *same* generated tree, so they are
/// equivalent by construction under the `fx-html` recovery rules.
pub fn html_soup_document<R: Rng>(rng: &mut R, cfg: &HtmlSoupConfig) -> SoupDoc {
    let children = gen_children(rng, cfg, Ctx::Block, 1);
    let root = Node::Elem {
        name: "html",
        attrs: Vec::new(),
        children,
    };
    let mut r = SoupRenderer {
        rng,
        quirk: cfg.quirkiness.clamp(0.0, 1.0),
        html: String::new(),
        xml: String::new(),
    };
    if r.quirky() {
        r.html.push_str("<!DOCTYPE html>");
    }
    r.node(&root, true, None);
    SoupDoc {
        html: r.html,
        xml: r.xml,
    }
}

/// A corpus of [`html_soup_document`]s from one seeded RNG.
pub fn html_soup_corpus<R: Rng>(rng: &mut R, cfg: &HtmlSoupConfig, n: usize) -> Vec<SoupDoc> {
    (0..n).map(|_| html_soup_document(rng, cfg)).collect()
}

/// Forward XPath queries over the soup vocabulary — names the
/// generator emits plus misses — for differential verdict checks.
pub fn soup_queries() -> Vec<String> {
    [
        "//li",
        "//ul/li",
        "/html//p",
        "//div[p]",
        "//section//span",
        "//li[p and ul]",
        "//p[em]/span",
        "/html/div",
        "//script",
        "//table", // never generated: must stay unmatched
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

/// One JSON record paired with the XML spelling of its element mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonRecord {
    /// The JSON text (random inter-token whitespace, occasional
    /// trailing commas — accepted by the lenient reader).
    pub json: String,
    /// The `fx-json` element mapping of the same value, as well-formed
    /// XML: one `<json>` root, members as elements, member-value
    /// arrays spliced, nested arrays wrapped with `item` children.
    pub xml: String,
}

/// Configuration for [`json_record`] / [`json_records`].
#[derive(Debug, Clone)]
pub struct JsonRecordsConfig {
    /// Maximum value nesting depth.
    pub max_depth: usize,
    /// Maximum members per object.
    pub max_members: usize,
    /// Maximum items per array.
    pub max_items: usize,
    /// Probability in `[0, 1]` of inter-token whitespace and trailing
    /// commas.
    pub messiness: f64,
}

impl Default for JsonRecordsConfig {
    fn default() -> Self {
        JsonRecordsConfig {
            max_depth: 4,
            max_members: 4,
            max_items: 3,
            messiness: 0.4,
        }
    }
}

/// A JSON value with both spellings of every scalar decided at
/// generation time.
enum JsonValue {
    Null,
    Bool(bool),
    /// Literal spelling, identical on both sides (`fx-json` passes
    /// number tokens through verbatim).
    Number(&'static str),
    /// `(json string-body, xml text)` — escapes on the left, decoded
    /// (and XML-escaped) on the right.
    String(&'static str, &'static str),
    Array(Vec<JsonValue>),
    Object(Vec<(&'static str, JsonValue)>),
}

const JSON_NUMBERS: &[&str] = &["0", "42", "-7", "3.5", "1e3", "0.25", "-0.5e-2"];

/// `(escaped body, decoded XML text)` pairs; no whitespace-only
/// decodings.
const JSON_STRINGS: &[(&str, &str)] = &[
    ("ada", "ada"),
    ("", ""),
    ("two\\nlines", "two\nlines"),
    ("say \\\"hi\\\"", "say \"hi\""),
    ("back\\\\slash", "back\\slash"),
    ("uni\\u0041", "uniA"),
    ("amp & less <", "amp &amp; less &lt;"),
];

const JSON_KEYS: &[&str] = &[
    "id", "name", "tags", "user", "total", "items", "meta", "note", "price", "active",
];

fn gen_json_value<R: Rng>(rng: &mut R, cfg: &JsonRecordsConfig, depth: usize) -> JsonValue {
    let scalar = depth >= cfg.max_depth;
    match if scalar {
        rng.gen_range(0..4)
    } else {
        rng.gen_range(0..6)
    } {
        0 => JsonValue::Number(JSON_NUMBERS.choose(rng).unwrap()),
        1 => {
            let &(j, x) = JSON_STRINGS.choose(rng).unwrap();
            JsonValue::String(j, x)
        }
        2 => JsonValue::Bool(rng.gen_bool(0.5)),
        3 => JsonValue::Null,
        4 => JsonValue::Array(
            (0..rng.gen_range(0..=cfg.max_items))
                .map(|_| gen_json_value(rng, cfg, depth + 1))
                .collect(),
        ),
        _ => gen_json_object(rng, cfg, depth),
    }
}

fn gen_json_object<R: Rng>(rng: &mut R, cfg: &JsonRecordsConfig, depth: usize) -> JsonValue {
    let n = rng.gen_range(0..=cfg.max_members).min(JSON_KEYS.len());
    let mut keys: Vec<&'static str> = JSON_KEYS.to_vec();
    // Partial Fisher–Yates: distinct keys per object (the vendored
    // rand has no `shuffle`).
    for i in 0..n {
        let j = rng.gen_range(i..keys.len());
        keys.swap(i, j);
    }
    JsonValue::Object(
        keys.into_iter()
            .take(n)
            .map(|k| (k, gen_json_value(rng, cfg, depth + 1)))
            .collect(),
    )
}

struct JsonRenderer<'a, R: Rng> {
    rng: &'a mut R,
    messy: f64,
    json: String,
    xml: String,
}

impl<R: Rng> JsonRenderer<'_, R> {
    fn ws(&mut self) {
        if self.messy > 0.0 && self.rng.gen_bool(self.messy) {
            self.json
                .push_str([" ", "\n", "  ", "\t"].choose(self.rng).unwrap());
        }
    }

    /// Renders the JSON spelling of `v` (the XML side is driven
    /// separately by structure, because member arrays splice).
    fn json_value(&mut self, v: &JsonValue) {
        self.ws();
        match v {
            JsonValue::Null => self.json.push_str("null"),
            JsonValue::Bool(b) => self.json.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(n) => self.json.push_str(n),
            JsonValue::String(j, _) => {
                self.json.push('"');
                self.json.push_str(j);
                self.json.push('"');
            }
            JsonValue::Array(items) => {
                self.json.push('[');
                for (i, it) in items.iter().enumerate() {
                    if i > 0 {
                        self.json.push(',');
                    }
                    self.json_value(it);
                }
                if !items.is_empty() && self.messy > 0.0 && self.rng.gen_bool(self.messy / 2.0) {
                    self.json.push(','); // trailing comma — tolerated
                }
                self.ws();
                self.json.push(']');
            }
            JsonValue::Object(members) => {
                self.json.push('{');
                for (i, (k, mv)) in members.iter().enumerate() {
                    if i > 0 {
                        self.json.push(',');
                    }
                    self.ws();
                    self.json.push('"');
                    self.json.push_str(k);
                    self.json.push_str("\":");
                    self.json_value(mv);
                }
                if !members.is_empty() && self.messy > 0.0 && self.rng.gen_bool(self.messy / 2.0) {
                    self.json.push(','); // trailing comma — tolerated
                }
                self.ws();
                self.json.push('}');
            }
        }
    }

    /// Renders the element mapping of `v` in slot `name` (an array here
    /// *wraps*: it is in item position).
    fn xml_slot(&mut self, name: &str, v: &JsonValue) {
        let empty = match v {
            JsonValue::Null => true,
            JsonValue::String(_, x) => x.is_empty(),
            JsonValue::Array(items) => items.is_empty(),
            JsonValue::Object(members) => members.is_empty(),
            _ => false,
        };
        if empty {
            self.xml.push('<');
            self.xml.push_str(name);
            self.xml.push_str("/>");
            return;
        }
        self.xml.push('<');
        self.xml.push_str(name);
        self.xml.push('>');
        match v {
            JsonValue::Bool(b) => self.xml.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(n) => self.xml.push_str(n),
            JsonValue::String(_, x) => self.xml.push_str(x),
            JsonValue::Array(items) => {
                for it in items {
                    self.xml_slot("item", it);
                }
            }
            JsonValue::Object(members) => {
                for (k, mv) in members {
                    self.xml_member(k, mv);
                }
            }
            JsonValue::Null => unreachable!("null is empty"),
        }
        self.xml.push_str("</");
        self.xml.push_str(name);
        self.xml.push('>');
    }

    /// Renders member `"k": v` — an array value splices into repeated
    /// `<k>` elements.
    fn xml_member(&mut self, k: &str, v: &JsonValue) {
        match v {
            JsonValue::Array(items) => {
                for it in items {
                    self.xml_slot(k, it);
                }
            }
            _ => self.xml_slot(k, v),
        }
    }
}

/// Generates one JSON record with the XML witness of its element
/// mapping.
pub fn json_record<R: Rng>(rng: &mut R, cfg: &JsonRecordsConfig) -> JsonRecord {
    // Root is usually an object (the record shape), sometimes an array
    // or a bare scalar.
    let value = match rng.gen_range(0..6) {
        0 => gen_json_value(rng, cfg, cfg.max_depth),
        1 => JsonValue::Array(
            (0..rng.gen_range(0..=cfg.max_items))
                .map(|_| gen_json_value(rng, cfg, 1))
                .collect(),
        ),
        _ => gen_json_object(rng, cfg, 0),
    };
    let mut r = JsonRenderer {
        rng,
        messy: cfg.messiness.clamp(0.0, 1.0),
        json: String::new(),
        xml: String::new(),
    };
    r.json_value(&value);
    r.ws();
    r.xml_slot("json", &value);
    JsonRecord {
        json: r.json,
        xml: r.xml,
    }
}

/// A corpus of [`json_record`]s from one seeded RNG.
pub fn json_records<R: Rng>(rng: &mut R, cfg: &JsonRecordsConfig, n: usize) -> Vec<JsonRecord> {
    (0..n).map(|_| json_record(rng, cfg)).collect()
}

/// Forward XPath queries over the record vocabulary, for differential
/// verdict checks.
pub fn json_queries() -> Vec<String> {
    [
        "/json",
        "/json/user",
        "//name",
        "//tags",
        "//user[name]",
        "/json/items/item",
        "//meta[id and name]",
        "//price",
        "//absent", // never generated: must stay unmatched
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fx_dom::Document;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn soup_corpus_is_deterministic_per_seed() {
        let cfg = HtmlSoupConfig::default();
        let a = html_soup_corpus(&mut SmallRng::seed_from_u64(3), &cfg, 8);
        let b = html_soup_corpus(&mut SmallRng::seed_from_u64(3), &cfg, 8);
        let c = html_soup_corpus(&mut SmallRng::seed_from_u64(4), &cfg, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn soup_witnesses_are_well_formed_single_rooted_xml() {
        let cfg = HtmlSoupConfig::default();
        for doc in html_soup_corpus(&mut SmallRng::seed_from_u64(11), &cfg, 32) {
            let parsed = Document::from_xml(&doc.xml);
            assert!(
                parsed.is_ok(),
                "witness must parse: {}\n{:?}",
                doc.xml,
                parsed.err()
            );
        }
    }

    #[test]
    fn soup_actually_contains_quirks() {
        let cfg = HtmlSoupConfig {
            quirkiness: 1.0,
            ..HtmlSoupConfig::default()
        };
        let corpus = html_soup_corpus(&mut SmallRng::seed_from_u64(5), &cfg, 16);
        let all: String = corpus.iter().map(|d| d.html.as_str()).collect();
        assert!(all.contains("<!-- soup -->"), "comments injected");
        assert!(all.contains("</zzz>"), "stray end tags injected");
        assert!(all.chars().any(|c| c.is_ascii_uppercase()), "case soup");
        // Full quirkiness omits every omittable end tag.
        assert!(!all.contains("</li>") || !all.contains("</p>"));
        // And none of the quirks leak into the witness.
        let xml: String = corpus.iter().map(|d| d.xml.as_str()).collect();
        assert!(!xml.contains("zzz") && !xml.contains("soup"));
    }

    #[test]
    fn plain_mode_renders_wellformed_html() {
        let cfg = HtmlSoupConfig {
            quirkiness: 0.0,
            ..HtmlSoupConfig::default()
        };
        // With quirkiness 0 the HTML differs from the witness only in
        // void/entity/raw-text spelling.
        let doc = html_soup_document(&mut SmallRng::seed_from_u64(9), &cfg);
        assert!(!doc.html.contains("<!--"));
        assert!(!doc.html.chars().any(|c| c.is_ascii_uppercase()));
    }

    #[test]
    fn json_corpus_is_deterministic_and_witnessed() {
        let cfg = JsonRecordsConfig::default();
        let a = json_records(&mut SmallRng::seed_from_u64(21), &cfg, 16);
        let b = json_records(&mut SmallRng::seed_from_u64(21), &cfg, 16);
        assert_eq!(a, b);
        for rec in &a {
            assert!(rec.xml.starts_with("<json"), "{}", rec.xml);
            let parsed = Document::from_xml(&rec.xml);
            assert!(
                parsed.is_ok(),
                "witness must parse: {}\n{:?}",
                rec.xml,
                parsed.err()
            );
        }
    }

    #[test]
    fn json_member_arrays_splice_in_the_witness() {
        // A hand-held check of the splice/wrap rules the renderer
        // encodes, independent of the RNG.
        let v = JsonValue::Object(vec![(
            "tags",
            JsonValue::Array(vec![
                JsonValue::Number("1"),
                JsonValue::Array(vec![JsonValue::Number("2")]),
            ]),
        )]);
        let mut rng = SmallRng::seed_from_u64(0);
        let mut r = JsonRenderer {
            rng: &mut rng,
            messy: 0.0,
            json: String::new(),
            xml: String::new(),
        };
        r.xml_slot("json", &v);
        assert_eq!(
            r.xml,
            "<json><tags>1</tags><tags><item>2</item></tags></json>"
        );
    }

    #[test]
    fn query_lists_parse() {
        for q in soup_queries().iter().chain(json_queries().iter()) {
            fx_xpath::parse_query(q).unwrap_or_else(|e| panic!("{q}: {e}"));
        }
    }
}
