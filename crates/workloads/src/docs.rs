//! Seeded document generators: random trees plus the parameterized
//! families the paper's bounds sweep over (deep, recursive, wide,
//! long-text documents).

use fx_dom::{Document, NodeId, NodeKind};
use rand::seq::SliceRandom;
use rand::Rng;

/// A small element-name alphabet shared by tests and benches.
pub fn small_alphabet() -> Vec<String> {
    ["a", "b", "c", "d", "e", "f", "x", "y"]
        .iter()
        .map(|s| s.to_string())
        .collect()
}

/// Configuration for [`random_document`].
#[derive(Debug, Clone)]
pub struct RandomDocConfig {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Maximum children per node.
    pub max_children: usize,
    /// Element-name pool.
    pub names: Vec<String>,
    /// Text-value pool (empty string = no text node).
    pub text_values: Vec<String>,
}

impl Default for RandomDocConfig {
    fn default() -> Self {
        RandomDocConfig {
            max_depth: 6,
            max_children: 4,
            names: small_alphabet(),
            text_values: vec![String::new(), "1".into(), "6".into(), "x".into()],
        }
    }
}

/// Generates a random document from the given RNG (deterministic for a
/// seeded RNG).
pub fn random_document<R: Rng>(rng: &mut R, cfg: &RandomDocConfig) -> Document {
    let mut doc = Document::empty();
    let root_name = cfg.names.choose(rng).expect("non-empty name pool").clone();
    let root = doc.push_node(NodeId::ROOT, NodeKind::Element, root_name, "");
    grow(rng, cfg, &mut doc, root, 1);
    doc
}

fn grow<R: Rng>(rng: &mut R, cfg: &RandomDocConfig, doc: &mut Document, at: NodeId, depth: usize) {
    if let Some(t) = cfg.text_values.choose(rng) {
        if !t.is_empty() && rng.gen_bool(0.5) {
            doc.push_node(at, NodeKind::Text, "", t.clone());
        }
    }
    if depth >= cfg.max_depth {
        return;
    }
    let n_children = rng.gen_range(0..=cfg.max_children);
    for _ in 0..n_children {
        let name = cfg.names.choose(rng).expect("non-empty name pool").clone();
        let child = doc.push_node(at, NodeKind::Element, name, "");
        grow(rng, cfg, doc, child, depth + 1);
    }
}

/// The Theorem 4.6 family: `<a><Z>^i … <b/> … </a>` — a `/a/b`-matching
/// document of depth `max(i+1, 2)`, with the `b` child of `a` flanked by
/// two depth-`i` auxiliary paths (Fig. 6(a)).
pub fn depth_document(i: usize) -> Document {
    let xml = format!(
        "<a>{o}{c}<b/>{o}{c}</a>",
        o = "<Z>".repeat(i),
        c = "</Z>".repeat(i)
    );
    Document::from_xml(&xml).expect("constructed XML is valid")
}

/// The Theorem 4.5 family `D_{s,t}` (Fig. 5): `r` nested `a` elements; the
/// `i`-th has a left `b` child iff `s[i]`, and a right `c` child iff
/// `t[i]`. Matches `//a[b and c]` iff the sets intersect.
pub fn disjointness_document(s: &[bool], t: &[bool]) -> Document {
    assert_eq!(s.len(), t.len());
    let mut xml = String::new();
    for &si in s {
        xml.push_str("<a>");
        if si {
            xml.push_str("<b/>");
        }
    }
    for &ti in t.iter().rev() {
        if ti {
            xml.push_str("<c/>");
        }
        xml.push_str("</a>");
    }
    Document::from_xml(&xml).expect("constructed XML is valid")
}

/// A recursive document: `r` nested `name` elements, the innermost
/// carrying the given children XML.
pub fn nested(name: &str, r: usize, innermost: &str) -> Document {
    let xml = format!(
        "{}{}{}",
        format!("<{name}>").repeat(r),
        innermost,
        format!("</{name}>").repeat(r)
    );
    Document::from_xml(&xml).expect("constructed XML is valid")
}

/// A wide, flat document: a root with `n` children cycling through
/// `names`, each optionally holding a small text value.
pub fn wide(root: &str, names: &[&str], n: usize) -> Document {
    let mut xml = format!("<{root}>");
    for i in 0..n {
        let name = names[i % names.len()];
        xml.push_str(&format!("<{name}>{}</{name}>", i % 10));
    }
    xml.push_str(&format!("</{root}>"));
    Document::from_xml(&xml).expect("constructed XML is valid")
}

/// A document whose single `field` leaf under the root holds a text value
/// of `width` characters (drives the `w` axis of Thm 8.8).
pub fn long_text(root: &str, field: &str, width: usize) -> Document {
    let text = "t".repeat(width);
    let xml = format!("<{root}><{field}>{text}</{field}><ok/></{root}>");
    Document::from_xml(&xml).expect("constructed XML is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn random_document_is_deterministic_per_seed() {
        let cfg = RandomDocConfig::default();
        let a = random_document(&mut SmallRng::seed_from_u64(7), &cfg);
        let b = random_document(&mut SmallRng::seed_from_u64(7), &cfg);
        let c = random_document(&mut SmallRng::seed_from_u64(8), &cfg);
        assert_eq!(a, b);
        assert_ne!(a, c); // overwhelmingly likely
    }

    #[test]
    fn depth_document_shape() {
        let d = depth_document(3);
        assert_eq!(d.depth(), 4); // i+1
        assert_eq!(depth_document(0).depth(), 2);
        // It matches /a/b.
        let q = fx_xpath::parse_query("/a/b").unwrap();
        assert!(fx_eval::bool_eval(&q, &d).unwrap());
    }

    #[test]
    fn disjointness_document_semantics() {
        let q = fx_xpath::parse_query("//a[b and c]").unwrap();
        // s=110, t=010 (the paper's Fig. 5 example): intersect at i=2.
        let d = disjointness_document(&[true, true, false], &[false, true, false]);
        assert!(fx_eval::bool_eval(&q, &d).unwrap());
        // Disjoint sets.
        let d2 = disjointness_document(&[true, false, false], &[false, true, true]);
        assert!(!fx_eval::bool_eval(&q, &d2).unwrap());
        // Empty sets.
        let d3 = disjointness_document(&[false; 4], &[false; 4]);
        assert!(!fx_eval::bool_eval(&q, &d3).unwrap());
    }

    #[test]
    fn nested_and_wide() {
        let d = nested("a", 5, "<b/>");
        assert_eq!(d.depth(), 6);
        let w = wide("r", &["a", "b"], 10);
        let root_elem = w.children(w.root())[0];
        assert_eq!(w.non_text_children(root_elem).count(), 10);
    }

    #[test]
    fn long_text_width() {
        let d = long_text("r", "f", 500);
        let q = fx_xpath::parse_query("/r[f = \"nope\"]").unwrap();
        assert_eq!(fx_analysis::text_width(&q, &d), 500);
    }
}
