//! # fx-workloads
//!
//! Seeded, deterministic generators for the documents and queries the
//! experiments sweep over: random trees, the paper's adversarial families
//! (depth documents of Thm 4.6, DISJ documents of Thm 4.5), random
//! redundancy-free queries, and a miniature XMark-style auction-site
//! generator for realistic end-to-end scenarios.

#![warn(missing_docs)]

pub mod docs;
pub mod frontends;
pub mod queries;
pub mod xmark;

pub use docs::{
    depth_document, disjointness_document, long_text, nested, random_document, small_alphabet,
    wide, RandomDocConfig,
};
pub use frontends::{
    html_soup_corpus, html_soup_document, json_queries, json_record, json_records, soup_queries,
    HtmlSoupConfig, JsonRecord, JsonRecordsConfig, SoupDoc,
};
pub use queries::{
    balanced_twig, descendant_chain, random_redundancy_free, random_shared_prefix_bank, star,
    RandomQueryConfig, SharedPrefixBank, SharedPrefixBankConfig,
};
pub use xmark::{auction_site, standing_queries, XmarkConfig};
