//! Seeded query generators, including random members of Redundancy-free
//! XPath (used by the generalized lower-bound experiments E4–E6).

use fx_xpath::{parse_query, Query};
use rand::seq::SliceRandom;
use rand::Rng;

/// Configuration for [`random_redundancy_free`].
#[derive(Debug, Clone)]
pub struct RandomQueryConfig {
    /// Upper bound on the number of steps/predicate children generated.
    pub max_nodes: usize,
    /// Probability of a descendant axis per step.
    pub descendant_prob: f64,
    /// Probability a node gets a predicate with children.
    pub predicate_prob: f64,
}

impl Default for RandomQueryConfig {
    fn default() -> Self {
        RandomQueryConfig {
            max_nodes: 12,
            descendant_prob: 0.3,
            predicate_prob: 0.5,
        }
    }
}

/// Generates a random redundancy-free query. Distinct element names are
/// drawn without replacement, which guarantees path-consistency-freeness
/// of the structure; numeric predicates use disjoint intervals so the
/// sunflower properties hold trivially. The result is checked against
/// `fx_analysis::redundancy_free` by the caller's tests.
pub fn random_redundancy_free<R: Rng>(rng: &mut R, cfg: &RandomQueryConfig) -> Query {
    // A pool of distinct names: n0, n1, … — never reused, so no two query
    // nodes are path consistent and no automorphism collapses nodes.
    let mut next_name = 0usize;
    let mut budget = cfg.max_nodes.max(2);
    let src = gen_path(rng, cfg, &mut next_name, &mut budget, true);
    parse_query(&src).expect("generated query is syntactically valid")
}

fn fresh(next_name: &mut usize) -> String {
    let n = format!("n{next_name}");
    *next_name += 1;
    n
}

fn gen_path<R: Rng>(
    rng: &mut R,
    cfg: &RandomQueryConfig,
    next_name: &mut usize,
    budget: &mut usize,
    top: bool,
) -> String {
    let mut out = String::new();
    let steps = rng.gen_range(1..=2.min(*budget).max(1));
    for i in 0..steps {
        if *budget == 0 {
            break;
        }
        *budget -= 1;
        let axis = if rng.gen_bool(cfg.descendant_prob) {
            "//"
        } else {
            "/"
        };
        let axis = if top && i == 0 && axis == "/" {
            "/"
        } else {
            axis
        };
        let name = fresh(next_name);
        out.push_str(axis);
        out.push_str(&name);
        if *budget > 0 && rng.gen_bool(cfg.predicate_prob) {
            let n_conj = rng.gen_range(1..=2.min(*budget).max(1));
            let mut conjuncts = Vec::new();
            for _ in 0..n_conj {
                if *budget == 0 {
                    break;
                }
                conjuncts.push(gen_conjunct(rng, next_name, budget));
            }
            if !conjuncts.is_empty() {
                out.push('[');
                out.push_str(&conjuncts.join(" and "));
                out.push(']');
            }
        }
    }
    out
}

fn gen_conjunct<R: Rng>(rng: &mut R, next_name: &mut usize, budget: &mut usize) -> String {
    *budget -= 1;
    let axis = match rng.gen_range(0..3) {
        0 => ".//",
        _ => "",
    };
    let name = fresh(next_name);
    // Optionally constrain the leaf's value; distinct constants keep the
    // sunflower property trivially satisfiable.
    let kind = rng.gen_range(0..4);
    match kind {
        0 => format!("{axis}{name}"),
        1 => {
            let c = rng.gen_range(0..1000) * 10 + 5;
            format!("{axis}{name} > {c}")
        }
        2 => {
            let s: String = (0..3)
                .map(|_| *b"ghijklm".choose(rng).unwrap() as char)
                .collect();
            format!("{axis}{name} = \"{s}\"")
        }
        _ => {
            if *budget > 0 {
                *budget -= 1;
                let inner = fresh(next_name);
                format!("{axis}{name}[{inner}]")
            } else {
                format!("{axis}{name}")
            }
        }
    }
}

/// The `//a1//a2…//ak` chain queries that blow up deterministic automata
/// (experiment E9).
pub fn descendant_chain(k: usize) -> Query {
    let src: String = (0..k).map(|i| format!("//s{i}")).collect();
    parse_query(&src).expect("chain query is valid")
}

/// A star query `/root[c0 and c1 and … and c(k-1)]` with frontier size k.
pub fn star(k: usize) -> Query {
    let conj: Vec<String> = (0..k).map(|i| format!("c{i}")).collect();
    parse_query(&format!("/root[{}]", conj.join(" and "))).expect("star query is valid")
}

/// A balanced binary twig of the given depth; `FS` grows linearly with
/// depth while `|Q|` grows exponentially.
pub fn balanced_twig(depth: usize) -> Query {
    fn node(prefix: &str, depth: usize) -> String {
        if depth == 0 {
            prefix.to_string()
        } else {
            format!(
                "{prefix}[{} and {}]",
                node(&format!("{prefix}l"), depth - 1),
                node(&format!("{prefix}r"), depth - 1)
            )
        }
    }
    parse_query(&format!("/{}", node("q", depth))).expect("twig query is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn random_queries_are_redundancy_free() {
        let mut rng = SmallRng::seed_from_u64(42);
        let cfg = RandomQueryConfig::default();
        let mut checked = 0;
        for _ in 0..60 {
            let q = random_redundancy_free(&mut rng, &cfg);
            let violations = fx_analysis::redundancy_free(&q);
            assert!(
                violations.is_empty(),
                "{}: {violations:?}",
                fx_xpath::to_xpath(&q)
            );
            checked += 1;
        }
        assert_eq!(checked, 60);
    }

    #[test]
    fn random_queries_are_deterministic() {
        let cfg = RandomQueryConfig::default();
        let a = random_redundancy_free(&mut SmallRng::seed_from_u64(1), &cfg);
        let b = random_redundancy_free(&mut SmallRng::seed_from_u64(1), &cfg);
        assert_eq!(fx_xpath::to_xpath(&a), fx_xpath::to_xpath(&b));
    }

    #[test]
    fn chain_star_twig_shapes() {
        assert_eq!(descendant_chain(3).len(), 4);
        let s = star(5);
        assert_eq!(fx_analysis::frontier_size(&s), 5);
        let t = balanced_twig(2);
        assert_eq!(t.len(), 1 + 7); // root + complete binary tree of 7
        assert!(fx_analysis::frontier_size(&t) < t.len());
    }

    #[test]
    fn twigs_are_redundancy_free() {
        let t = balanced_twig(3);
        assert!(fx_analysis::redundancy_free(&t).is_empty());
        assert!(fx_analysis::path_consistency_free(&t));
        assert!(fx_analysis::closure_free(&t));
    }
}
