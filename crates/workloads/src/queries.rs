//! Seeded query generators, including random members of Redundancy-free
//! XPath (used by the generalized lower-bound experiments E4–E6).

use fx_xpath::{parse_query, Query};
use rand::seq::SliceRandom;
use rand::Rng;

/// Configuration for [`random_redundancy_free`].
#[derive(Debug, Clone)]
pub struct RandomQueryConfig {
    /// Upper bound on the number of steps/predicate children generated.
    pub max_nodes: usize,
    /// Probability of a descendant axis per step.
    pub descendant_prob: f64,
    /// Probability a node gets a predicate with children.
    pub predicate_prob: f64,
}

impl Default for RandomQueryConfig {
    fn default() -> Self {
        RandomQueryConfig {
            max_nodes: 12,
            descendant_prob: 0.3,
            predicate_prob: 0.5,
        }
    }
}

/// Generates a random redundancy-free query. Distinct element names are
/// drawn without replacement, which guarantees path-consistency-freeness
/// of the structure; numeric predicates use disjoint intervals so the
/// sunflower properties hold trivially. The result is checked against
/// `fx_analysis::redundancy_free` by the caller's tests.
pub fn random_redundancy_free<R: Rng>(rng: &mut R, cfg: &RandomQueryConfig) -> Query {
    // A pool of distinct names: n0, n1, … — never reused, so no two query
    // nodes are path consistent and no automorphism collapses nodes.
    let mut next_name = 0usize;
    let mut budget = cfg.max_nodes.max(2);
    let src = gen_path(rng, cfg, &mut next_name, &mut budget, true);
    parse_query(&src).expect("generated query is syntactically valid")
}

fn fresh(next_name: &mut usize) -> String {
    let n = format!("n{next_name}");
    *next_name += 1;
    n
}

fn gen_path<R: Rng>(
    rng: &mut R,
    cfg: &RandomQueryConfig,
    next_name: &mut usize,
    budget: &mut usize,
    top: bool,
) -> String {
    let mut out = String::new();
    let steps = rng.gen_range(1..=2.min(*budget).max(1));
    for i in 0..steps {
        if *budget == 0 {
            break;
        }
        *budget -= 1;
        let axis = if rng.gen_bool(cfg.descendant_prob) {
            "//"
        } else {
            "/"
        };
        let axis = if top && i == 0 && axis == "/" {
            "/"
        } else {
            axis
        };
        let name = fresh(next_name);
        out.push_str(axis);
        out.push_str(&name);
        if *budget > 0 && rng.gen_bool(cfg.predicate_prob) {
            let n_conj = rng.gen_range(1..=2.min(*budget).max(1));
            let mut conjuncts = Vec::new();
            for _ in 0..n_conj {
                if *budget == 0 {
                    break;
                }
                conjuncts.push(gen_conjunct(rng, next_name, budget));
            }
            if !conjuncts.is_empty() {
                out.push('[');
                out.push_str(&conjuncts.join(" and "));
                out.push(']');
            }
        }
    }
    out
}

fn gen_conjunct<R: Rng>(rng: &mut R, next_name: &mut usize, budget: &mut usize) -> String {
    *budget -= 1;
    let axis = match rng.gen_range(0..3) {
        0 => ".//",
        _ => "",
    };
    let name = fresh(next_name);
    // Optionally constrain the leaf's value; distinct constants keep the
    // sunflower property trivially satisfiable.
    let kind = rng.gen_range(0..4);
    match kind {
        0 => format!("{axis}{name}"),
        1 => {
            let c = rng.gen_range(0..1000) * 10 + 5;
            format!("{axis}{name} > {c}")
        }
        2 => {
            let s: String = (0..3)
                .map(|_| *b"ghijklm".choose(rng).unwrap() as char)
                .collect();
            format!("{axis}{name} = \"{s}\"")
        }
        _ => {
            if *budget > 0 {
                *budget -= 1;
                let inner = fresh(next_name);
                format!("{axis}{name}[{inner}]")
            } else {
                format!("{axis}{name}")
            }
        }
    }
}

/// Configuration for [`random_shared_prefix_bank`].
#[derive(Debug, Clone)]
pub struct SharedPrefixBankConfig {
    /// Number of query families; each family owns one shared prefix.
    pub families: usize,
    /// Queries generated per family.
    pub queries_per_family: usize,
    /// Length of each family's shared predicate-free prefix, in steps —
    /// including the leading `/hub` step every family has in common (so
    /// the bank diverges *below* the document root, where a naive bank
    /// cannot short-circuit on the root tag).
    pub prefix_depth: usize,
    /// When `true`, member tails are drawn from a *family-independent*
    /// name pool, so the same residual shape recurs under many distinct
    /// prefixes: canonically-equal residuals across different trie
    /// groups, the dedup target of the indexed bank's shared-residual
    /// pool. When `false` (the default) every tail name embeds its
    /// family, so residuals are family-unique.
    pub cross_family_tails: bool,
}

impl Default for SharedPrefixBankConfig {
    fn default() -> Self {
        SharedPrefixBankConfig {
            families: 8,
            queries_per_family: 4,
            prefix_depth: 3,
            cross_family_tails: false,
        }
    }
}

/// A bank of queries organized into shared-prefix families — the
/// workload the shared-prefix index (`fx_core::IndexedBank`) is built
/// for, used by both the `multi_query` bench and the indexed
/// differential suite.
#[derive(Debug, Clone)]
pub struct SharedPrefixBank {
    /// The generated queries, in bank order.
    pub queries: Vec<Query>,
    /// Per family: the XPath text of its shared prefix (`/hub/f0x1/…`).
    pub prefixes: Vec<String>,
    /// Per query: the family it belongs to.
    pub family_of: Vec<usize>,
    /// Per query: an XML fragment that satisfies the query's residual
    /// when placed under the family's prefix-end element.
    pub witnesses: Vec<String>,
    /// The configured shared-prefix depth.
    pub prefix_depth: usize,
}

impl SharedPrefixBank {
    /// Number of queries in the bank.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True when the bank is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Bank indices of the queries in family `f`.
    pub fn members(&self, f: usize) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.family_of[i] == f)
            .collect()
    }

    /// Builds a document that instantiates the prefixes of
    /// `active_families` and, under each, the witness fragments of that
    /// family's first `witnesses_per_family` members, padded with
    /// `noise` inert elements per active family. Queries of inactive
    /// families never see their prefix, witnessed queries match, and
    /// unwitnessed members of active families usually do not.
    pub fn document(
        &self,
        active_families: &[usize],
        witnesses_per_family: usize,
        noise: usize,
    ) -> String {
        let mut xml = String::from("<hub>");
        for &f in active_families {
            // Open the family-specific part of the prefix (after /hub).
            let steps: Vec<&str> = self.prefixes[f]
                .split('/')
                .filter(|s| !s.is_empty())
                .skip(1)
                .collect();
            for s in &steps {
                xml.push('<');
                xml.push_str(s);
                xml.push('>');
            }
            for (n, &i) in self.members(f).iter().enumerate() {
                if n < witnesses_per_family {
                    xml.push_str(&self.witnesses[i]);
                }
            }
            for _ in 0..noise {
                xml.push_str("<zz/>");
            }
            for s in steps.iter().rev() {
                xml.push_str("</");
                xml.push_str(s);
                xml.push('>');
            }
        }
        xml.push_str("</hub>");
        xml
    }

    /// [`SharedPrefixBank::document`] repeated `copies` times under one
    /// root: a byte-throughput workload of controllable size for the
    /// MB/s benches (each copy re-exercises the activation/dormancy
    /// cycle of the active families).
    pub fn document_repeated(
        &self,
        active_families: &[usize],
        witnesses_per_family: usize,
        noise: usize,
        copies: usize,
    ) -> String {
        let one = self.document(active_families, witnesses_per_family, noise);
        let body = one
            .strip_prefix("<hub>")
            .and_then(|s| s.strip_suffix("</hub>"))
            .expect("document is hub-rooted");
        let mut xml = String::with_capacity(one.len() * copies.max(1) + 16);
        xml.push_str("<hub>");
        for _ in 0..copies.max(1) {
            xml.push_str(body);
        }
        xml.push_str("</hub>");
        xml
    }
}

/// Generates a bank of overlapping-prefix query families: family `i`
/// owns the predicate-free chain `/hub/f{i}x1/…` of the configured
/// depth, and its members diverge below it with varied residual shapes
/// (bare tails, name predicates, conjunctive value predicates with an
/// output step, string equality, descendant tails — plus occasional
/// *commutative twins*, members identical to their predecessor up to
/// conjunct order, which a canonical index must collapse into one
/// group). Every generated query parses, compiles in the streamable
/// fragment, supports reporting, and shares exactly `prefix_depth`
/// leading canonical steps with its family siblings (one, the `/hub`
/// root step, across families).
///
/// With [`SharedPrefixBankConfig::cross_family_tails`] set, tail names
/// drop their family component: member `j` of every family gets the
/// *same* residual shape, so a shared-residual index can compile each
/// distinct remainder once and reuse it across all families' trie
/// groups.
pub fn random_shared_prefix_bank<R: Rng>(
    rng: &mut R,
    cfg: &SharedPrefixBankConfig,
) -> SharedPrefixBank {
    let depth = cfg.prefix_depth.max(1);
    let mut queries = Vec::new();
    let mut prefixes = Vec::new();
    let mut family_of = Vec::new();
    let mut witnesses = Vec::new();
    // Cross-family mode draws one tail pool up front (member `j` of
    // every family reuses entry `j`), so equal residual shapes — random
    // constants included — recur under every family prefix.
    let shared_tails: Vec<(String, String)> = if cfg.cross_family_tails {
        let mut pool = Vec::new();
        let mut prev: Option<(String, String)> = None;
        for j in 0..cfg.queries_per_family {
            let tw = gen_tail(rng, "s", j, &prev);
            prev = Some(tw.clone());
            pool.push(tw);
        }
        pool
    } else {
        Vec::new()
    };
    for f in 0..cfg.families {
        let mut prefix = String::from("/hub");
        for l in 1..depth {
            prefix.push_str(&format!("/f{f}x{l}"));
        }
        prefixes.push(prefix.clone());
        // (tail, witness) of the previous member, for commutative twins.
        let mut prev: Option<(String, String)> = None;
        for j in 0..cfg.queries_per_family {
            // The shared pool is empty in family-unique mode, so `get`
            // doubles as the mode switch.
            let (tail, witness) = match shared_tails.get(j) {
                Some(tw) => tw.clone(),
                None => gen_tail(rng, &f.to_string(), j, &prev),
            };
            let src = format!("{prefix}{tail}");
            queries.push(parse_query(&src).expect("generated query is syntactically valid"));
            family_of.push(f);
            witnesses.push(witness.clone());
            prev = Some((tail, witness));
        }
    }
    SharedPrefixBank {
        queries,
        prefixes,
        family_of,
        witnesses,
        prefix_depth: depth,
    }
}

/// One member tail below a family prefix: a `(tail XPath, witness XML)`
/// pair with names scoped by the `fam` tag and member index `j`.
fn gen_tail<R: Rng>(
    rng: &mut R,
    fam: &str,
    j: usize,
    prev: &Option<(String, String)>,
) -> (String, String) {
    let t = format!("t{fam}x{j}");
    match rng.gen_range(0..6) {
        0 => (format!("/{t}"), format!("<{t}/>")),
        1 => (
            format!("/{t}[u{fam}x{j}]"),
            format!("<{t}><u{fam}x{j}/></{t}>"),
        ),
        2 => {
            let c = rng.gen_range(0..500) * 2 + 1;
            (
                format!("/{t}[u{fam}x{j} and v{fam}x{j} > {c}]/w{fam}x{j}"),
                format!(
                    "<{t}><u{fam}x{j}/><v{fam}x{j}>{}</v{fam}x{j}><w{fam}x{j}/></{t}>",
                    c + 1
                ),
            )
        }
        3 => (
            format!("/{t}[v{fam}x{j} = \"mid\"]"),
            format!("<{t}><v{fam}x{j}>mid</v{fam}x{j}></{t}>"),
        ),
        4 => (
            format!("//{t}[u{fam}x{j}]"),
            format!("<{t}><u{fam}x{j}/></{t}>"),
        ),
        _ => match prev {
            // A commutative twin: the previous member's tail with its
            // conjuncts swapped (when it has two).
            Some((tail, witness)) if tail.contains(" and ") => {
                let open = tail.find('[').expect("conjunctive tails have a predicate");
                let close = tail.rfind(']').expect("matching bracket");
                let (a, b) = tail[open + 1..close]
                    .split_once(" and ")
                    .expect("two conjuncts");
                (
                    format!("{}[{b} and {a}]{}", &tail[..open], &tail[close + 1..]),
                    witness.clone(),
                )
            }
            _ => (format!("/{t}"), format!("<{t}/>")),
        },
    }
}

/// The `//a1//a2…//ak` chain queries that blow up deterministic automata
/// (experiment E9).
pub fn descendant_chain(k: usize) -> Query {
    let src: String = (0..k).map(|i| format!("//s{i}")).collect();
    parse_query(&src).expect("chain query is valid")
}

/// A star query `/root[c0 and c1 and … and c(k-1)]` with frontier size k.
pub fn star(k: usize) -> Query {
    let conj: Vec<String> = (0..k).map(|i| format!("c{i}")).collect();
    parse_query(&format!("/root[{}]", conj.join(" and "))).expect("star query is valid")
}

/// A balanced binary twig of the given depth; `FS` grows linearly with
/// depth while `|Q|` grows exponentially.
pub fn balanced_twig(depth: usize) -> Query {
    fn node(prefix: &str, depth: usize) -> String {
        if depth == 0 {
            prefix.to_string()
        } else {
            format!(
                "{prefix}[{} and {}]",
                node(&format!("{prefix}l"), depth - 1),
                node(&format!("{prefix}r"), depth - 1)
            )
        }
    }
    parse_query(&format!("/{}", node("q", depth))).expect("twig query is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn random_queries_are_redundancy_free() {
        let mut rng = SmallRng::seed_from_u64(42);
        let cfg = RandomQueryConfig::default();
        let mut checked = 0;
        for _ in 0..60 {
            let q = random_redundancy_free(&mut rng, &cfg);
            let violations = fx_analysis::redundancy_free(&q);
            assert!(
                violations.is_empty(),
                "{}: {violations:?}",
                fx_xpath::to_xpath(&q)
            );
            checked += 1;
        }
        assert_eq!(checked, 60);
    }

    #[test]
    fn random_queries_are_deterministic() {
        let cfg = RandomQueryConfig::default();
        let a = random_redundancy_free(&mut SmallRng::seed_from_u64(1), &cfg);
        let b = random_redundancy_free(&mut SmallRng::seed_from_u64(1), &cfg);
        assert_eq!(fx_xpath::to_xpath(&a), fx_xpath::to_xpath(&b));
    }

    #[test]
    fn chain_star_twig_shapes() {
        assert_eq!(descendant_chain(3).len(), 4);
        let s = star(5);
        assert_eq!(fx_analysis::frontier_size(&s), 5);
        let t = balanced_twig(2);
        assert_eq!(t.len(), 1 + 7); // root + complete binary tree of 7
        assert!(fx_analysis::frontier_size(&t) < t.len());
    }

    #[test]
    fn twigs_are_redundancy_free() {
        let t = balanced_twig(3);
        assert!(fx_analysis::redundancy_free(&t).is_empty());
        assert!(fx_analysis::path_consistency_free(&t));
        assert!(fx_analysis::closure_free(&t));
    }

    #[test]
    fn shared_prefix_bank_parses_compiles_and_reports() {
        let mut rng = SmallRng::seed_from_u64(0x5A11);
        let cfg = SharedPrefixBankConfig {
            families: 6,
            queries_per_family: 5,
            prefix_depth: 3,
            cross_family_tails: false,
        };
        let bank = random_shared_prefix_bank(&mut rng, &cfg);
        assert_eq!(bank.len(), 30);
        for (i, q) in bank.queries.iter().enumerate() {
            // Every query is in the streamable fragment…
            let compiled = fx_core::CompiledQuery::compile(q)
                .unwrap_or_else(|e| panic!("query #{i} uncompilable: {e}"));
            // …and has an element output node (usable in Select mode).
            compiled
                .reporting_supported()
                .unwrap_or_else(|e| panic!("query #{i} not reportable: {e}"));
        }
    }

    #[test]
    fn shared_prefix_bank_shares_the_intended_depth() {
        let mut rng = SmallRng::seed_from_u64(0x5A12);
        let cfg = SharedPrefixBankConfig {
            families: 4,
            queries_per_family: 6,
            prefix_depth: 4,
            cross_family_tails: false,
        };
        let bank = random_shared_prefix_bank(&mut rng, &cfg);
        for i in 0..bank.len() {
            for j in (i + 1)..bank.len() {
                let d = fx_analysis::shared_prefix_depth(&bank.queries[i], &bank.queries[j]);
                if bank.family_of[i] == bank.family_of[j] {
                    assert_eq!(
                        d, cfg.prefix_depth,
                        "family members #{i} and #{j} must share the whole prefix"
                    );
                } else {
                    assert_eq!(d, 1, "cross-family pairs share only /hub (#{i}, #{j})");
                }
            }
        }
        // The prefix steps themselves are predicate-free and sharable.
        for q in &bank.queries {
            assert!(fx_analysis::sharable_prefix_len(q) >= cfg.prefix_depth);
        }
    }

    #[test]
    fn cross_family_tails_repeat_residuals_across_trie_groups() {
        let mut rng = SmallRng::seed_from_u64(0x5A14);
        let cfg = SharedPrefixBankConfig {
            families: 6,
            queries_per_family: 5,
            prefix_depth: 3,
            cross_family_tails: true,
        };
        let bank = random_shared_prefix_bank(&mut rng, &cfg);
        // Member j of every family carries the same canonical residual
        // form (names, shapes and random constants included)…
        let rkey =
            |q: &Query| fx_analysis::canonical_residual_key(q, fx_analysis::sharable_prefix_len(q));
        for j in 0..cfg.queries_per_family {
            let first = rkey(&bank.queries[j]);
            for f in 1..cfg.families {
                let i = f * cfg.queries_per_family + j;
                assert_eq!(rkey(&bank.queries[i]), first, "member {j} of family {f}");
            }
        }
        // …while the full queries stay family-distinct (different
        // prefixes), so the indexed bank sees many groups but pools few
        // compiled residuals.
        let ib = fx_core::IndexedBank::new(&bank.queries).unwrap();
        assert!(ib.group_count() > cfg.queries_per_family);
        assert!(
            ib.residual_pool_size() <= cfg.queries_per_family,
            "{} forms for {} groups",
            ib.residual_pool_size(),
            ib.group_count()
        );
        // And every query still parses/compiles/reports like the
        // family-unique variant.
        for (i, q) in bank.queries.iter().enumerate() {
            fx_core::CompiledQuery::compile(q)
                .unwrap_or_else(|e| panic!("query #{i} uncompilable: {e}"))
                .reporting_supported()
                .unwrap_or_else(|e| panic!("query #{i} not reportable: {e}"));
        }
    }

    #[test]
    fn document_repeated_replicates_the_body() {
        let mut rng = SmallRng::seed_from_u64(7);
        let bank = random_shared_prefix_bank(
            &mut rng,
            &SharedPrefixBankConfig {
                families: 3,
                queries_per_family: 2,
                prefix_depth: 2,
                cross_family_tails: false,
            },
        );
        let one = bank.document(&[0], 1, 2);
        let four = bank.document_repeated(&[0], 1, 2, 4);
        assert!(
            fx_xml::parse(&four).is_ok(),
            "repeated doc stays well-formed"
        );
        // Four copies of the body under one root.
        let body = one
            .strip_prefix("<hub>")
            .unwrap()
            .strip_suffix("</hub>")
            .unwrap();
        assert_eq!(four.matches(body).count(), 4);
    }

    #[test]
    fn shared_prefix_documents_witness_the_intended_queries() {
        let mut rng = SmallRng::seed_from_u64(0x5A13);
        let cfg = SharedPrefixBankConfig::default();
        let bank = random_shared_prefix_bank(&mut rng, &cfg);
        let xml = bank.document(&[0, 2], 2, 3);
        let events = fx_xml::parse(&xml).unwrap();
        let mut mf = fx_core::MultiFilter::new(&bank.queries).unwrap();
        for e in &events {
            mf.process(e);
        }
        let results = mf.results();
        let mut matched = 0usize;
        for (i, r) in results.iter().enumerate() {
            let f = bank.family_of[i];
            let witnessed =
                (f == 0 || f == 2) && bank.members(f).iter().position(|&m| m == i).unwrap() < 2;
            if witnessed {
                assert_eq!(*r, Some(true), "witnessed query #{i} must match");
                matched += 1;
            }
            if f != 0 && f != 2 {
                assert_eq!(*r, Some(false), "inactive family query #{i} must not match");
            }
        }
        assert!(matched >= 4, "expected several witnessed matches");
    }
}
