//! A miniature auction-site document generator in the spirit of the XMark
//! benchmark: realistic element names, mild recursion (nested categories),
//! attributes, and text payloads. Used by the examples and the throughput
//! benches.

use fx_dom::{Document, NodeId, NodeKind};
use rand::seq::SliceRandom;
use rand::Rng;

/// Configuration for [`auction_site`].
#[derive(Debug, Clone)]
pub struct XmarkConfig {
    /// Number of items listed.
    pub items: usize,
    /// Number of open auctions.
    pub auctions: usize,
    /// Number of registered people.
    pub people: usize,
    /// Depth of the nested category tree.
    pub category_depth: usize,
}

impl Default for XmarkConfig {
    fn default() -> Self {
        XmarkConfig {
            items: 20,
            auctions: 10,
            people: 10,
            category_depth: 3,
        }
    }
}

const WORDS: &[&str] = &[
    "vintage", "rare", "antique", "mint", "boxed", "signed", "limited", "classic", "original",
    "restored",
];

/// Generates a deterministic auction-site document from a seeded RNG.
pub fn auction_site<R: Rng>(rng: &mut R, cfg: &XmarkConfig) -> Document {
    let mut d = Document::empty();
    let site = d.push_node(NodeId::ROOT, NodeKind::Element, "site", "");

    let regions = d.push_node(site, NodeKind::Element, "regions", "");
    for region in ["africa", "asia", "europe"] {
        let r = d.push_node(regions, NodeKind::Element, region, "");
        for i in 0..cfg.items {
            let item = d.push_node(r, NodeKind::Element, "item", "");
            d.push_node(item, NodeKind::Attribute, "id", format!("item{i}"));
            let name = d.push_node(item, NodeKind::Element, "name", "");
            let w1 = WORDS.choose(rng).expect("non-empty");
            let w2 = WORDS.choose(rng).expect("non-empty");
            d.push_node(name, NodeKind::Text, "", format!("{w1} {w2}"));
            let price = d.push_node(item, NodeKind::Element, "price", "");
            d.push_node(
                price,
                NodeKind::Text,
                "",
                format!("{}", rng.gen_range(1..500)),
            );
            if rng.gen_bool(0.4) {
                let ship = d.push_node(item, NodeKind::Element, "shipping", "");
                d.push_node(ship, NodeKind::Text, "", "worldwide".to_string());
            }
        }
    }

    let auctions = d.push_node(site, NodeKind::Element, "open_auctions", "");
    for i in 0..cfg.auctions {
        let a = d.push_node(auctions, NodeKind::Element, "open_auction", "");
        d.push_node(a, NodeKind::Attribute, "id", format!("auction{i}"));
        let initial = d.push_node(a, NodeKind::Element, "initial", "");
        d.push_node(
            initial,
            NodeKind::Text,
            "",
            format!("{}", rng.gen_range(1..100)),
        );
        for _ in 0..rng.gen_range(0..4) {
            let bid = d.push_node(a, NodeKind::Element, "bidder", "");
            let inc = d.push_node(bid, NodeKind::Element, "increase", "");
            d.push_node(inc, NodeKind::Text, "", format!("{}", rng.gen_range(1..50)));
        }
        let current = d.push_node(a, NodeKind::Element, "current", "");
        d.push_node(
            current,
            NodeKind::Text,
            "",
            format!("{}", rng.gen_range(100..1000)),
        );
    }

    let people = d.push_node(site, NodeKind::Element, "people", "");
    for i in 0..cfg.people {
        let p = d.push_node(people, NodeKind::Element, "person", "");
        d.push_node(p, NodeKind::Attribute, "id", format!("person{i}"));
        let name = d.push_node(p, NodeKind::Element, "name", "");
        d.push_node(name, NodeKind::Text, "", format!("user{i}"));
        if rng.gen_bool(0.6) {
            let watch = d.push_node(p, NodeKind::Element, "watches", "");
            let w = d.push_node(watch, NodeKind::Element, "watch", "");
            d.push_node(
                w,
                NodeKind::Attribute,
                "auction",
                format!("auction{}", rng.gen_range(0..cfg.auctions.max(1))),
            );
        }
    }

    // Nested categories: the recursive part of the schema.
    let cats = d.push_node(site, NodeKind::Element, "categories", "");
    let mut cur = cats;
    for depth in 0..cfg.category_depth {
        cur = d.push_node(cur, NodeKind::Element, "category", "");
        d.push_node(cur, NodeKind::Attribute, "id", format!("cat{depth}"));
        let name = d.push_node(cur, NodeKind::Element, "name", "");
        d.push_node(name, NodeKind::Text, "", format!("level {depth}"));
    }
    d
}

/// The benchmark's standing queries over the auction schema (all within
/// the filter's supported fragment).
pub fn standing_queries() -> Vec<(&'static str, fx_xpath::Query)> {
    [
        ("expensive items", "//item[price > 300]"),
        ("shipped items", "//item[shipping and price]"),
        (
            "active auctions",
            "//open_auction[bidder and current > 500]",
        ),
        ("watchers", "//person[name and watches]"),
        ("deep categories", "//category[category and name]"),
        ("asia items", "/site/regions/asia/item"),
    ]
    .into_iter()
    .map(|(label, src)| {
        (
            label,
            fx_xpath::parse_query(src).expect("standing query parses"),
        )
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn generates_valid_recursive_documents() {
        let mut rng = SmallRng::seed_from_u64(99);
        let d = auction_site(&mut rng, &XmarkConfig::default());
        assert!(d.len() > 100);
        // The category chain is recursive.
        assert!(fx_dom::measure::max_same_name_nesting(&d) >= 3);
        // Round-trips through XML.
        let xml = d.to_xml();
        assert_eq!(Document::from_xml(&xml).unwrap(), d);
    }

    #[test]
    fn standing_queries_run_and_some_match() {
        let mut rng = SmallRng::seed_from_u64(7);
        let d = auction_site(
            &mut rng,
            &XmarkConfig {
                items: 50,
                auctions: 30,
                people: 20,
                category_depth: 4,
            },
        );
        let mut matched = 0;
        for (label, q) in standing_queries() {
            let reference = fx_eval::bool_eval(&q, &d).unwrap();
            let streamed = fx_core::StreamFilter::new(&q)
                .unwrap()
                .run_stream(&d.to_events())
                .unwrap();
            assert_eq!(reference, streamed, "{label}");
            matched += usize::from(reference);
        }
        assert!(matched >= 3, "expected several standing queries to match");
    }
}
