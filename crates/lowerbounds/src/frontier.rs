//! The query-frontier-size lower bound (Theorem 4.2 / Theorem 7.1): for a
//! redundancy-free query `Q`, a fooling set of `2^FS(Q)` prefix/suffix
//! pairs built from the canonical document — certifying that any streaming
//! algorithm for `BOOLEVAL_Q` needs `FS(Q)` bits on some document.

use crate::fooling::FoolingSet;
use fx_analysis::{canonical_document, CanonicalDocument, FragmentViolation};
use fx_dom::{NodeId, NodeKind};
use fx_xml::Event;
use fx_xpath::Query;

/// The Theorem 7.1 construction, fully materialized.
#[derive(Debug, Clone)]
pub struct FrontierBound {
    /// The canonical document the pairs are carved from.
    pub canonical: CanonicalDocument,
    /// The frontier node `x` (the shadow node with the largest frontier).
    pub x: NodeId,
    /// The frontier members `F(x)` in a fixed order (document nodes).
    pub frontier: Vec<NodeId>,
    /// The fooling set: one pair per subset `T ⊆ F(x)`.
    pub fooling: FoolingSet,
}

impl FrontierBound {
    /// The certified lower bound, in bits: `FS(Q)`.
    pub fn bits(&self) -> u32 {
        self.fooling.bits()
    }
}

/// Builds the Theorem 7.1 fooling set for a redundancy-free query. With
/// `cap` capping the subset enumeration (2^FS pairs explode quickly; pass
/// `None` for all of them, or `Some(k)` to keep the first `k` subsets by
/// binary counting — the bits certified shrink accordingly).
pub fn frontier_bound(q: &Query, cap: Option<usize>) -> Result<FrontierBound, FragmentViolation> {
    let cd = canonical_document(q)?;
    let d = &cd.doc;

    // The document node with the largest frontier; WLOG a shadow node
    // (artificial nodes have no siblings, their frontier is dominated by
    // the shadow below them).
    let shadows: Vec<NodeId> = cd
        .shadow
        .values()
        .copied()
        .filter(|&n| n != d.root())
        .collect();
    // Attribute nodes cannot be toggled across the cut (they ride their
    // element's start tag), so the construction distributes only element
    // frontier members; attribute members shrink the certified bits.
    let elem_frontier = |n: NodeId| -> Vec<NodeId> {
        fx_dom::measure::frontier(d, n)
            .into_iter()
            .filter(|&m| d.kind(m) == NodeKind::Element)
            .collect()
    };
    // Prefer the *deepest* widest-frontier node: the crossing documents
    // then drop an inner element while staying well-formed (a root-level
    // widest frontier would make crossings malformed and certify
    // nothing).
    let x = shadows
        .iter()
        .copied()
        .filter(|&n| d.kind(n) == NodeKind::Element)
        .max_by_key(|&n| (elem_frontier(n).len(), d.level(n)))
        .expect("queries have at least one non-root element node");
    let frontier = elem_frontier(x);

    let path = d.path(x); // document root (the 〈$〉 node) … x
    if path.len() == 2 {
        // Degenerate case: the widest frontier sits at the root element
        // (single-step queries like `/a`). A streaming algorithm needs
        // only the output bit there; certify the trivial 0-bit set.
        let events = d.to_events();
        let cut = events.len() - 1;
        return Ok(FrontierBound {
            x,
            frontier,
            fooling: FoolingSet {
                pairs: vec![(events[..cut].to_vec(), events[cut..].to_vec())],
                expected: true,
            },
            canonical: cd,
        });
    }
    let subset_count = 1usize
        .checked_shl(frontier.len() as u32)
        .expect("frontier sizes stay well below 64");
    let take = cap.map_or(subset_count, |c| c.min(subset_count));

    let mut pairs = Vec::with_capacity(take);
    for t in 0..take {
        let in_t = |n: NodeId| {
            frontier
                .iter()
                .position(|&f| f == n)
                .is_some_and(|i| t >> i & 1 == 1)
        };
        // α = 〈$〉 ◦ α_1 ◦ … ◦ α_{ℓ-1}, β = β_{ℓ-1} ◦ … ◦ β_1 ◦ 〈/$〉 where
        // segment i covers the path node x_i: α_i = 〈x_i〉 ◦ (leading text)
        // ◦ subtrees of T-children; β_i = subtrees of complement-children
        // ◦ 〈/x_i〉. Children on the path are the nesting itself.
        let mut alpha = vec![Event::StartDocument];
        let mut beta = vec![Event::EndDocument];
        // Iterate the path nodes x_1 … x_{ℓ-1} (§7.1: x_1 = ROOT(D), the
        // 〈$〉 node, whose "frame" is the document envelope itself);
        // x = x_ℓ is distributed at its parent like its super-siblings.
        for w in 0..path.len() - 1 {
            let xi = path[w];
            // The path continues through this child — unless it is x
            // itself, which is distributed by T-membership like its
            // super-siblings.
            let continuation = (w + 1 < path.len() - 1).then(|| path[w + 1]);
            if w == 0 {
                // The 〈$〉 frame is already in place; the document root has
                // no other children to distribute.
                continue;
            }
            let attrs: Vec<fx_xml::Attribute> = d
                .children(xi)
                .iter()
                .filter(|&&c| d.kind(c) == NodeKind::Attribute)
                .map(|&c| fx_xml::Attribute::new(d.name(c), d.strval(c)))
                .collect();
            alpha.push(Event::start_with_attrs(d.name(xi), attrs));
            // Leading text (canonical values precede other children).
            if let Some(&first) = d.children(xi).first() {
                if d.kind(first) == NodeKind::Text {
                    alpha.push(Event::text(d.strval(first)));
                }
            }
            let mut closing = vec![Event::end(d.name(xi))];
            for c in d.non_text_children(xi) {
                if Some(c) == continuation {
                    continue; // the nesting continues here
                }
                if d.kind(c) == NodeKind::Attribute {
                    continue; // excluded from the toggled frontier
                }
                let sub = subtree_events(d, c);
                if in_t(c) {
                    alpha.extend(sub);
                } else {
                    let mut with_tail = sub;
                    with_tail.append(&mut closing);
                    closing = with_tail;
                }
            }
            beta.splice(0..0, closing);
        }
        pairs.push((alpha, beta));
    }
    Ok(FrontierBound {
        canonical: cd,
        x,
        frontier,
        fooling: FoolingSet {
            pairs,
            expected: true,
        },
    })
}

/// Serializes the subtree rooted at `n` (attributes included) to events.
fn subtree_events(d: &fx_dom::Document, n: NodeId) -> Vec<Event> {
    match d.kind(n) {
        NodeKind::Text => vec![Event::text(d.strval(n))],
        NodeKind::Attribute => {
            // Attributes ride on their element's start tag and are never
            // serialized standalone (the construction filters them out).
            debug_assert!(
                false,
                "attribute nodes are not distributable frontier members"
            );
            Vec::new()
        }
        _ => {
            let mut out = Vec::new();
            let attrs: Vec<fx_xml::Attribute> = d
                .children(n)
                .iter()
                .filter(|&&c| d.kind(c) == NodeKind::Attribute)
                .map(|&c| fx_xml::Attribute::new(d.name(c), d.strval(c)))
                .collect();
            out.push(Event::start_with_attrs(d.name(n), attrs));
            for &c in d.children(n) {
                match d.kind(c) {
                    NodeKind::Attribute => {}
                    NodeKind::Text => out.push(Event::text(d.strval(c))),
                    _ => out.extend(subtree_events(d, c)),
                }
            }
            out.push(Event::end(d.name(n)));
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fx_xpath::parse_query;

    #[test]
    fn theorem_4_2_fixed_query() {
        // Q = /a[c[.//e and f] and b > 5]: FS(Q) = 3, fooling set of 8.
        let q = parse_query("/a[c[.//e and f] and b > 5]").unwrap();
        let fb = frontier_bound(&q, None).unwrap();
        assert_eq!(fb.frontier.len(), 3);
        assert_eq!(fb.fooling.pairs.len(), 8);
        let report = fb.fooling.verify(&q).unwrap();
        assert_eq!(report.bits, 3);
        assert_eq!(report.bits as usize, fx_analysis::frontier_size(&q));
    }

    #[test]
    fn general_queries_certify_their_frontier_size() {
        for src in [
            "//a[b and c]",
            "/a[b and c and d]",
            "/r[a[b and c] and d]",
            "/a[*/b > 5 and c/b//d > 12 and .//d < 30]",
            "//d[f and a[b and c]]",
        ] {
            let q = parse_query(src).unwrap();
            let fb = frontier_bound(&q, None).unwrap();
            let report = fb
                .fooling
                .verify(&q)
                .unwrap_or_else(|e| panic!("{src}: {e}"));
            assert_eq!(
                report.bits as usize,
                fx_analysis::frontier_size(&q),
                "{src}"
            );
        }
    }

    #[test]
    fn capped_enumeration() {
        let q = parse_query("/a[b and c and d and e]").unwrap(); // FS = 4
        let fb = frontier_bound(&q, Some(4)).unwrap();
        assert_eq!(fb.fooling.pairs.len(), 4);
        assert!(fb.fooling.verify(&q).is_ok());
        assert_eq!(fb.bits(), 2); // capped certification
    }

    #[test]
    fn random_redundancy_free_queries_verify() {
        use rand::{rngs::SmallRng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(2024);
        let cfg = fx_workloads::RandomQueryConfig {
            max_nodes: 8,
            ..Default::default()
        };
        for i in 0..12 {
            let q = fx_workloads::random_redundancy_free(&mut rng, &cfg);
            let fb = frontier_bound(&q, Some(64)).unwrap();
            let report = fb.fooling.verify(&q);
            assert!(
                report.is_ok(),
                "query {i} {}: {report:?}",
                fx_xpath::to_xpath(&q)
            );
        }
    }
}
