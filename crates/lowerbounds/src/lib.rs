//! # fx-lowerbounds
//!
//! The paper's lower bounds, executable: fooling sets (§3.2) with a
//! machine checker, the frontier-size construction (Thm 4.2/7.1), the
//! set-disjointness reduction (Thm 4.5/7.4), the document-depth
//! construction (Thm 4.6/7.14), and a state-complexity prober rendering
//! the reduction lemma (Lemma 3.7) as a measurement: it counts the
//! behaviorally distinguishable states any correct streaming filter is
//! forced into by these document families.
//!
//! ```
//! use fx_xpath::parse_query;
//! use fx_lowerbounds::{frontier_bound, probe_fooling_set};
//!
//! // Theorem 4.2: FS(Q) = 3 bits are necessary…
//! let q = parse_query("/a[c[.//e and f] and b > 5]").unwrap();
//! let bound = frontier_bound(&q, None).unwrap();
//! assert_eq!(bound.fooling.verify(&q).unwrap().bits, 3);
//! // …and the Section-8 filter is indeed forced into 8 distinct states.
//! let report = probe_fooling_set(
//!     || fx_core::StreamFilter::new(&q).unwrap(), &bound.fooling);
//! assert_eq!(report.classes, 8);
//! ```

#![warn(missing_docs)]

pub mod depth;
pub mod disj;
pub mod fooling;
pub mod frontier;
pub mod prober;

pub use depth::{depth_bound, DepthBound, DepthError};
pub use disj::{disj_segments, sets_intersect, DisjError, DisjSegments};
pub use fooling::{FoolingError, FoolingReport, FoolingSet, FoolingSet3};
pub use frontier::{frontier_bound, FrontierBound};
pub use prober::{probe, probe_fooling_set, Probe, ProbeReport};
