//! The recursion-depth lower bound (Theorem 4.5 / Theorem 7.4): a
//! reduction from set disjointness. For a Recursive-XPath query, documents
//! `D_{s,t}` of recursion depth ≤ r are built from the canonical document
//! such that `D_{s,t}` matches `Q` iff the sets intersect — so any
//! streaming algorithm needs Ω(r) bits (the one-way communication
//! complexity of DISJ).

use fx_analysis::{canonical_document, recursive_xpath_node, CanonicalDocument, FragmentViolation};
use fx_dom::NodeId;
use fx_xml::{matching_end, Event};
use fx_xpath::{Axis, Query, QueryNodeId};

/// The seven stream segments of §7.2 (γ_prefix, γ_y-beg, γ_w1, γ_y-mid,
/// γ_w2, γ_y-end, γ_suffix).
#[derive(Debug, Clone)]
pub struct DisjSegments {
    /// γ_prefix — up to (excluding) the `startElement` of `y`.
    pub prefix: Vec<Event>,
    /// γ_y-beg — from `y`'s start to (excluding) `φ(w1)`'s start.
    pub y_beg: Vec<Event>,
    /// γ_w1 — the element `φ(w1)`.
    pub w1: Vec<Event>,
    /// γ_y-mid — between `φ(w1)` and `φ(w2)`.
    pub y_mid: Vec<Event>,
    /// γ_w2 — the element `φ(w2)`.
    pub w2: Vec<Event>,
    /// γ_y-end — after `φ(w2)` through `y`'s end.
    pub y_end: Vec<Event>,
    /// γ_suffix — the rest of the stream.
    pub suffix: Vec<Event>,
    /// The distinguished query node `v` (= v_k) of §7.2.1.
    pub v: QueryNodeId,
    /// The canonical document the segments were cut from.
    pub canonical: CanonicalDocument,
}

/// An error building the reduction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DisjError {
    /// The query is not in Recursive XPath (§7.2.1).
    NotRecursive,
    /// The query is not redundancy-free.
    Fragment(FragmentViolation),
}

impl std::fmt::Display for DisjError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DisjError::NotRecursive => write!(f, "query has no Recursive-XPath node v"),
            DisjError::Fragment(v) => write!(f, "query is not redundancy-free: {v}"),
        }
    }
}

impl std::error::Error for DisjError {}

impl From<FragmentViolation> for DisjError {
    fn from(v: FragmentViolation) -> Self {
        DisjError::Fragment(v)
    }
}

/// Cuts the canonical document into the seven segments of §7.2.
pub fn disj_segments(q: &Query) -> Result<DisjSegments, DisjError> {
    let v = recursive_xpath_node(q).ok_or(DisjError::NotRecursive)?;
    let cd = canonical_document(q)?;
    let d = &cd.doc;

    // v1: v itself if it has a descendant axis, else its lowest ancestor
    // with one (guaranteed to exist by the Recursive-XPath definition).
    let v1 = if q.axis(v) == Some(Axis::Descendant) {
        v
    } else {
        *q.path(v)
            .iter()
            .rev()
            .find(|&&n| q.axis(n) == Some(Axis::Descendant))
            .expect("Recursive XPath guarantees a descendant-axis ancestor")
    };
    // w1, w2: the first two child-axis children of v.
    let ws: Vec<QueryNodeId> = q
        .children(v)
        .iter()
        .copied()
        .filter(|&c| q.axis(c) == Some(Axis::Child))
        .collect();
    let (w1, w2) = (ws[0], ws[1]);

    // y: the first artificial node in the chain above SHADOW(v1).
    let shadow_v1 = cd.shadow[&v1];
    let mut y = shadow_v1;
    while let Some(p) = d.parent(y) {
        if cd.artificial.contains(&p) {
            y = p;
        } else {
            break;
        }
    }

    let events = d.to_events();
    let find_start = |target: NodeId| -> usize {
        // The k-th StartElement corresponds to the k-th element node in
        // document order.
        let elems: Vec<NodeId> = d
            .all_nodes()
            .filter(|&n| d.kind(n) == fx_dom::NodeKind::Element)
            .collect();
        let ord = elems
            .iter()
            .position(|&n| n == target)
            .expect("target is an element");
        events
            .iter()
            .enumerate()
            .filter(|(_, e)| e.is_start())
            .nth(ord)
            .map(|(i, _)| i)
            .expect("stream contains every element")
    };

    let y_start = find_start(y);
    let y_close = matching_end(&events, y_start).expect("well-formed stream");
    let w1_start = find_start(cd.shadow[&w1]);
    let w1_close = matching_end(&events, w1_start).expect("well-formed stream");
    let w2_start = find_start(cd.shadow[&w2]);
    let w2_close = matching_end(&events, w2_start).expect("well-formed stream");
    assert!(y_start < w1_start && w1_close < w2_start && w2_close < y_close);

    Ok(DisjSegments {
        prefix: events[..y_start].to_vec(),
        y_beg: events[y_start..w1_start].to_vec(),
        w1: events[w1_start..=w1_close].to_vec(),
        y_mid: events[w1_close + 1..w2_start].to_vec(),
        w2: events[w2_start..=w2_close].to_vec(),
        y_end: events[w2_close + 1..=y_close].to_vec(),
        suffix: events[y_close + 1..].to_vec(),
        v,
        canonical: cd,
    })
}

impl DisjSegments {
    /// Alice's stream prefix `α = γ_prefix ◦ α_1 ◦ … ◦ α_r` (depends only
    /// on `s`).
    pub fn alpha(&self, s: &[bool]) -> Vec<Event> {
        let mut out = self.prefix.clone();
        for &si in s {
            out.extend_from_slice(&self.y_beg);
            if si {
                out.extend_from_slice(&self.w1);
            }
            out.extend_from_slice(&self.y_mid);
        }
        out
    }

    /// Bob's stream suffix `β = β_r ◦ … ◦ β_1 ◦ γ_suffix` (depends only on
    /// `t`).
    pub fn beta(&self, t: &[bool]) -> Vec<Event> {
        let mut out = Vec::new();
        for &ti in t.iter().rev() {
            if ti {
                out.extend_from_slice(&self.w2);
            }
            out.extend_from_slice(&self.y_end);
        }
        out.extend_from_slice(&self.suffix);
        out
    }

    /// The full document `D_{s,t}` (Fig. 15).
    pub fn document(&self, s: &[bool], t: &[bool]) -> Vec<Event> {
        assert_eq!(s.len(), t.len());
        let mut out = self.alpha(s);
        out.extend(self.beta(t));
        out
    }
}

/// `DISJ(s, t) = 1` iff the sets intersect (note the paper's convention:
/// DISJ is 1 exactly when NOT disjoint — matching `D_{s,t} matches Q`).
pub fn sets_intersect(s: &[bool], t: &[bool]) -> bool {
    s.iter().zip(t).any(|(&a, &b)| a && b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fx_dom::Document;
    use fx_eval::bool_eval;
    use fx_xml::is_well_formed;
    use fx_xpath::parse_query;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn check_query(src: &str, r: usize, cases: usize, seed: u64) {
        let q = parse_query(src).unwrap();
        let seg = disj_segments(&q).unwrap();
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..cases {
            let s: Vec<bool> = (0..r).map(|_| rng.gen_bool(0.5)).collect();
            let t: Vec<bool> = (0..r).map(|_| rng.gen_bool(0.5)).collect();
            let events = seg.document(&s, &t);
            assert!(is_well_formed(&events), "{src}: malformed D_s,t");
            let doc = Document::from_sax(&events).unwrap();
            let expected = sets_intersect(&s, &t);
            assert_eq!(
                bool_eval(&q, &doc).unwrap(),
                expected,
                "{src} with s={s:?} t={t:?}:\n{}",
                doc.to_xml()
            );
        }
    }

    #[test]
    fn theorem_4_5_query() {
        check_query("//a[b and c]", 5, 40, 1);
    }

    #[test]
    fn paper_7_2_example_query() {
        // //d[f and a[b and c]] — the worked example of §7.2.
        check_query("//d[f and a[b and c]]", 4, 40, 2);
    }

    #[test]
    fn fig5_example_document() {
        // r = 3, s = 110, t = 010 (Fig. 5 / Fig. 14).
        let q = parse_query("//a[b and c]").unwrap();
        let seg = disj_segments(&q).unwrap();
        let events = seg.document(&[true, true, false], &[false, true, false]);
        let doc = Document::from_sax(&events).unwrap();
        assert!(bool_eval(&q, &doc).unwrap());
        // Recursion depth w.r.t. the distinguished node is ≤ r.
        let r = fx_analysis::recursion_depth_wrt(&q, &doc, seg.v).unwrap();
        assert!(r <= 3, "recursion depth {r}");
    }

    #[test]
    fn value_predicates_survive_the_reduction() {
        check_query("//a[b > 5 and c]", 4, 30, 3);
    }

    #[test]
    fn deeper_recursive_nodes() {
        check_query("//x//a[b and c]", 3, 30, 4);
        check_query("/r//a[b and c and d]", 3, 30, 5);
    }

    #[test]
    fn non_recursive_queries_are_rejected() {
        for src in ["//a", "//a//b", "/a[b and c]", "/a/b"] {
            let q = parse_query(src).unwrap();
            assert!(
                matches!(disj_segments(&q), Err(DisjError::NotRecursive)),
                "{src}"
            );
        }
    }

    #[test]
    fn alpha_depends_only_on_s() {
        let q = parse_query("//a[b and c]").unwrap();
        let seg = disj_segments(&q).unwrap();
        let s = [true, false, true];
        assert_eq!(seg.alpha(&s), seg.alpha(&s));
        assert_ne!(seg.alpha(&[true, true, true]), seg.alpha(&s));
    }

    #[test]
    fn filter_memory_grows_linearly_in_r() {
        // The upper-bound side of the same experiment: the streaming
        // filter's frontier grows Θ(r) on D_{s,t}.
        let q = parse_query("//a[b and c]").unwrap();
        let seg = disj_segments(&q).unwrap();
        let mut rows = Vec::new();
        for r in [2usize, 8, 32] {
            let s = vec![true; r];
            let t = vec![false; r];
            let events = seg.document(&s, &t);
            let mut f = fx_core::StreamFilter::new(&q).unwrap();
            f.process_all(&events);
            rows.push(f.stats().max_rows);
        }
        assert!(
            rows[1] >= 3 * rows[0] / 2 && rows[2] >= 3 * rows[1],
            "{rows:?}"
        );
    }
}
