//! The state-complexity prober: an executable rendering of the reduction
//! lemma (Lemma 3.7). Running a streaming filter over a family of stream
//! prefixes and probing each resulting state with a family of suffixes
//! partitions the states into *behavioral equivalence classes*; any
//! correct algorithm must keep these classes apart, so
//! `⌈log2 #classes⌉` is a measured lower bound on its state size — and a
//! machine check that our fooling sets really force the advertised
//! memory.

use fx_xml::Event;
use std::collections::HashMap;

/// A streaming filter usable by the prober: processable, cloneable (to
/// snapshot the state at the cut), and yielding a verdict.
pub trait Probe: Clone {
    /// Feeds one event.
    fn feed(&mut self, event: &Event);
    /// The verdict after `EndDocument`.
    fn verdict(&self) -> Option<bool>;
}

impl Probe for fx_core::StreamFilter {
    fn feed(&mut self, event: &Event) {
        self.process(event);
    }
    fn verdict(&self) -> Option<bool> {
        self.result()
    }
}

impl Probe for fx_automata::NfaFilter {
    fn feed(&mut self, event: &Event) {
        self.process(event);
    }
    fn verdict(&self) -> Option<bool> {
        fx_automata::NfaFilter::verdict(self)
    }
}

impl Probe for fx_automata::LazyDfaFilter {
    fn feed(&mut self, event: &Event) {
        self.process(event);
    }
    fn verdict(&self) -> Option<bool> {
        fx_automata::LazyDfaFilter::verdict(self)
    }
}

/// The prober's findings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeReport {
    /// Number of prefixes probed.
    pub prefixes: usize,
    /// Number of behaviorally distinguishable states.
    pub classes: usize,
    /// `⌈log2 classes⌉`: the bits the filter provably dedicates to
    /// separating this family.
    pub bits: u32,
}

/// Runs `fresh()` on every prefix, snapshots the state, probes it with
/// every suffix, and counts distinct behavior vectors.
pub fn probe<F: Probe>(
    fresh: impl Fn() -> F,
    prefixes: &[Vec<Event>],
    suffixes: &[Vec<Event>],
) -> ProbeReport {
    let mut classes: HashMap<Vec<Option<bool>>, usize> = HashMap::new();
    for prefix in prefixes {
        let mut f = fresh();
        for e in prefix {
            f.feed(e);
        }
        let behavior: Vec<Option<bool>> = suffixes
            .iter()
            .map(|suffix| {
                let mut g = f.clone();
                for e in suffix {
                    g.feed(e);
                }
                g.verdict()
            })
            .collect();
        let next = classes.len();
        classes.entry(behavior).or_insert(next);
    }
    let n = classes.len();
    ProbeReport {
        prefixes: prefixes.len(),
        classes: n,
        bits: if n <= 1 {
            0
        } else {
            usize::BITS - (n - 1).leading_zeros()
        },
    }
}

/// Convenience: probes a filter with a two-argument fooling set, using the
/// set's own suffixes as probes (the canonical usage of Lemma 3.7).
pub fn probe_fooling_set<F: Probe>(
    fresh: impl Fn() -> F,
    fooling: &crate::fooling::FoolingSet,
) -> ProbeReport {
    let prefixes: Vec<Vec<Event>> = fooling.pairs.iter().map(|(a, _)| a.clone()).collect();
    let suffixes: Vec<Vec<Event>> = fooling.pairs.iter().map(|(_, b)| b.clone()).collect();
    probe(fresh, &prefixes, &suffixes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::depth::depth_bound;
    use crate::disj::{disj_segments, sets_intersect};
    use crate::frontier::frontier_bound;
    use fx_core::StreamFilter;
    use fx_xpath::parse_query;

    #[test]
    fn frontier_fooling_set_forces_fs_bits() {
        // Theorem 4.2, measured: the filter's states after the 2^3
        // prefixes are pairwise distinguishable — exactly FS(Q)=3 bits.
        let q = parse_query("/a[c[.//e and f] and b > 5]").unwrap();
        let fb = frontier_bound(&q, None).unwrap();
        let report = probe_fooling_set(|| StreamFilter::new(&q).unwrap(), &fb.fooling);
        assert_eq!(report.classes, 8);
        assert_eq!(report.bits, 3);
    }

    #[test]
    fn disj_prefixes_force_r_bits() {
        // Theorem 4.5, measured: all 2^r Alice-side prefixes lead to
        // pairwise-distinguishable states.
        let q = parse_query("//a[b and c]").unwrap();
        let seg = disj_segments(&q).unwrap();
        let r = 6usize;
        let all: Vec<Vec<bool>> = (0..1usize << r)
            .map(|m| (0..r).map(|i| m >> i & 1 == 1).collect())
            .collect();
        let prefixes: Vec<Vec<Event>> = all.iter().map(|s| seg.alpha(s)).collect();
        let suffixes: Vec<Vec<Event>> = all.iter().map(|t| seg.beta(t)).collect();
        let report = probe(|| StreamFilter::new(&q).unwrap(), &prefixes, &suffixes);
        assert_eq!(
            report.classes,
            1 << r,
            "every subset state must be distinguishable"
        );
        assert_eq!(report.bits, r as u32);
        // Sanity: the behavior actually encodes DISJ.
        let mut f = StreamFilter::new(&q).unwrap();
        let s = &all[0b101];
        for e in seg.alpha(s) {
            f.feed(&e);
        }
        for t in &all {
            let mut g = f.clone();
            for e in seg.beta(t) {
                g.feed(&e);
            }
            assert_eq!(g.verdict(), Some(sets_intersect(s, t)));
        }
    }

    #[test]
    fn depth_prefixes_force_log_d_states() {
        // Theorem 4.6, measured: the t prefixes α_i lead to t
        // distinguishable states (i must be remembered exactly).
        let q = parse_query("/a/b").unwrap();
        let db = depth_bound(&q).unwrap();
        let t = 16usize;
        let prefixes: Vec<Vec<Event>> = (0..t).map(|i| db.alpha_i(i)).collect();
        let suffixes: Vec<Vec<Event>> = (0..t)
            .map(|i| {
                let mut s = db.beta_i(i);
                s.extend(db.gamma_i(i));
                s
            })
            .collect();
        let report = probe(|| StreamFilter::new(&q).unwrap(), &prefixes, &suffixes);
        assert_eq!(report.classes, t);
        assert_eq!(report.bits, 4);
    }

    #[test]
    fn automata_states_are_also_forced() {
        // The NFA baseline must keep the depth states apart too (it is
        // correct, so Lemma 3.7 applies to it equally).
        let q = parse_query("/a/b").unwrap();
        let db = depth_bound(&q).unwrap();
        let t = 8usize;
        let prefixes: Vec<Vec<Event>> = (0..t).map(|i| db.alpha_i(i)).collect();
        let suffixes: Vec<Vec<Event>> = (0..t)
            .map(|i| {
                let mut s = db.beta_i(i);
                s.extend(db.gamma_i(i));
                s
            })
            .collect();
        let report = probe(
            || fx_automata::NfaFilter::new(&q).unwrap(),
            &prefixes,
            &suffixes,
        );
        assert_eq!(report.classes, t);
    }

    #[test]
    fn identical_prefixes_collapse_to_one_class() {
        let q = parse_query("/a[b]").unwrap();
        let events = fx_xml::parse("<a><b/></a>").unwrap();
        let prefix = events[..2].to_vec();
        let suffix = events[2..].to_vec();
        let report = probe(
            || StreamFilter::new(&q).unwrap(),
            &[prefix.clone(), prefix],
            &[suffix],
        );
        assert_eq!(report.classes, 1);
        assert_eq!(report.bits, 0);
    }
}
