//! The communication-complexity scaffolding of §3.2 in executable form:
//! fooling sets (Def. 3.8) with a machine checker for their two defining
//! properties, and the reduction-lemma bookkeeping (Lemma 3.7) that turns
//! a fooling set into a bits-of-memory lower bound.

use fx_dom::Document;
use fx_eval::bool_eval;
use fx_xml::{is_well_formed, splice, Event};
use fx_xpath::Query;

/// A two-argument fooling set for `BOOLEVAL²_Q`: pairs `(α_i, β_i)` of
/// stream prefix/suffix whose concatenations all share the output value
/// `expected`, such that crossing any two distinct pairs flips the output
/// (or is malformed) in at least one direction.
#[derive(Debug, Clone)]
pub struct FoolingSet {
    /// The prefix/suffix pairs.
    pub pairs: Vec<(Vec<Event>, Vec<Event>)>,
    /// The shared output value `z` of all diagonal inputs.
    pub expected: bool,
}

/// The outcome of checking a fooling set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FoolingReport {
    /// Number of pairs `|S|`.
    pub size: usize,
    /// The communication (and, via Lemma 3.7 with k = 2, memory) lower
    /// bound in bits: `⌊log2 |S|⌋`.
    pub bits: u32,
    /// Diagonal inputs verified to produce `expected`.
    pub diagonal_checked: usize,
    /// Off-diagonal pairs verified to flip in at least one direction.
    pub cross_checked: usize,
}

/// A violation of the fooling-set properties.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FoolingError {
    /// `α_i ◦ β_i` is malformed or does not produce `expected`.
    BadDiagonal {
        /// Index of the offending pair.
        index: usize,
    },
    /// Neither `α_i ◦ β_j` nor `α_j ◦ β_i` is a well-formed document with
    /// output ≠ `expected`.
    BadCross {
        /// First pair index.
        i: usize,
        /// Second pair index.
        j: usize,
    },
    /// The reference evaluator failed.
    Eval(String),
}

impl std::fmt::Display for FoolingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FoolingError::BadDiagonal { index } => write!(f, "pair {index} breaks property (1)"),
            FoolingError::BadCross { i, j } => write!(f, "pairs ({i},{j}) break property (2)"),
            FoolingError::Eval(m) => write!(f, "evaluation failed: {m}"),
        }
    }
}

impl std::error::Error for FoolingError {}

impl FoolingSet {
    /// The memory lower bound the set certifies (Theorem 3.9 + Lemma 3.7
    /// with `k = 2`, `|Z| = 2`): at least `log2 |S| − 1` bits; we report
    /// the un-slacked `⌊log2 |S|⌋` communication bound.
    pub fn bits(&self) -> u32 {
        usize::BITS - 1 - self.pairs.len().leading_zeros()
    }

    /// Checks both fooling-set properties against the reference evaluator
    /// (Def. 3.8). `O(|S|²)` evaluations; intended for the experiment
    /// harness, not hot paths.
    pub fn verify(&self, q: &Query) -> Result<FoolingReport, FoolingError> {
        let eval = |events: &[Event]| -> Result<Option<bool>, FoolingError> {
            if !is_well_formed(events) {
                return Ok(None);
            }
            let doc = Document::from_sax(events).map_err(|e| FoolingError::Eval(e.to_string()))?;
            bool_eval(q, &doc)
                .map(Some)
                .map_err(|e| FoolingError::Eval(e.to_string()))
        };
        let mut diagonal_checked = 0;
        for (i, (a, b)) in self.pairs.iter().enumerate() {
            match eval(&splice(&[a, b]))? {
                Some(v) if v == self.expected => diagonal_checked += 1,
                _ => return Err(FoolingError::BadDiagonal { index: i }),
            }
        }
        let mut cross_checked = 0;
        for i in 0..self.pairs.len() {
            for j in i + 1..self.pairs.len() {
                let ij = eval(&splice(&[&self.pairs[i].0, &self.pairs[j].1]))?;
                let ji = eval(&splice(&[&self.pairs[j].0, &self.pairs[i].1]))?;
                let flips = |v: Option<bool>| v.is_some_and(|x| x != self.expected);
                if flips(ij) || flips(ji) {
                    cross_checked += 1;
                } else {
                    return Err(FoolingError::BadCross { i, j });
                }
            }
        }
        Ok(FoolingReport {
            size: self.pairs.len(),
            bits: self.bits(),
            diagonal_checked,
            cross_checked,
        })
    }
}

/// A three-argument fooling set for `BOOLEVAL³_Q` (used by the document
/// depth bound, Thm 4.6/7.14): triples `(α_i, β_i, γ_i)` where Alice holds
/// `(α, γ)` and Bob holds `β`.
#[derive(Debug, Clone)]
pub struct FoolingSet3 {
    /// The (prefix, middle, suffix) triples.
    pub triples: Vec<(Vec<Event>, Vec<Event>, Vec<Event>)>,
    /// The shared output of the diagonal.
    pub expected: bool,
}

impl FoolingSet3 {
    /// `⌊log2 |S|⌋` (the Ω(log d) bound divides by k−1 = 2 per Lemma 3.7).
    pub fn bits(&self) -> u32 {
        usize::BITS - 1 - self.triples.len().leading_zeros()
    }

    /// Checks the two fooling-set properties: all `α_i β_i γ_i` produce
    /// `expected`; crossing the middle part flips at least one direction.
    pub fn verify(&self, q: &Query) -> Result<FoolingReport, FoolingError> {
        let eval = |events: &[Event]| -> Result<Option<bool>, FoolingError> {
            if !is_well_formed(events) {
                return Ok(None);
            }
            let doc = Document::from_sax(events).map_err(|e| FoolingError::Eval(e.to_string()))?;
            bool_eval(q, &doc)
                .map(Some)
                .map_err(|e| FoolingError::Eval(e.to_string()))
        };
        let mut diagonal_checked = 0;
        for (i, (a, b, c)) in self.triples.iter().enumerate() {
            match eval(&splice(&[a, b, c]))? {
                Some(v) if v == self.expected => diagonal_checked += 1,
                _ => return Err(FoolingError::BadDiagonal { index: i }),
            }
        }
        let mut cross_checked = 0;
        for i in 0..self.triples.len() {
            for j in i + 1..self.triples.len() {
                let (ai, _, ci) = &self.triples[i];
                let (aj, _, cj) = &self.triples[j];
                let ij = eval(&splice(&[ai, &self.triples[j].1, ci]))?;
                let ji = eval(&splice(&[aj, &self.triples[i].1, cj]))?;
                let flips = |v: Option<bool>| v.is_some_and(|x| x != self.expected);
                if flips(ij) || flips(ji) {
                    cross_checked += 1;
                } else {
                    return Err(FoolingError::BadCross { i, j });
                }
            }
        }
        Ok(FoolingReport {
            size: self.triples.len(),
            bits: self.bits(),
            diagonal_checked,
            cross_checked,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fx_xpath::parse_query;

    fn ev(xml: &str) -> Vec<Event> {
        fx_xml::parse(xml).unwrap()
    }

    #[test]
    fn hand_built_theorem_4_2_set_verifies() {
        // The 8 subsets of {e, f, b} for /a[c[.//e and f] and b > 5],
        // built by hand as in the proof of Theorem 4.2 (no canonical Z
        // chain — the simplified §4.1 version).
        let q = parse_query("/a[c[.//e and f] and b > 5]").unwrap();
        let b6 = [Event::start("b"), Event::text("6"), Event::end("b")];
        let e = [Event::start("e"), Event::end("e")];
        let f = [Event::start("f"), Event::end("f")];
        let mut pairs = Vec::new();
        for t in 0u8..8 {
            let te = t & 1 != 0;
            let tf = t & 2 != 0;
            let tb = t & 4 != 0;
            // α: 〈$〉〈a〉 [b∈T] 〈c〉 [f∈T] [e∈T]; β: [e∉T] [f∉T] 〈/c〉 [b∉T]
            // 〈/a〉〈/$〉 — the cut sits between T and its complement.
            let mut alpha = vec![Event::StartDocument, Event::start("a")];
            let mut beta = Vec::new();
            if tb {
                alpha.extend(b6.iter().cloned());
            }
            alpha.push(Event::start("c"));
            if tf {
                alpha.extend(f.iter().cloned());
            }
            if te {
                alpha.extend(e.iter().cloned());
            }
            if !te {
                beta.extend(e.iter().cloned());
            }
            if !tf {
                beta.extend(f.iter().cloned());
            }
            beta.push(Event::end("c"));
            if !tb {
                beta.extend(b6.iter().cloned());
            }
            beta.push(Event::end("a"));
            beta.push(Event::EndDocument);
            pairs.push((alpha, beta));
        }
        let fs = FoolingSet {
            pairs,
            expected: true,
        };
        let report = fs.verify(&q).unwrap();
        assert_eq!(report.size, 8);
        assert_eq!(report.bits, 3); // = FS(Q)
        assert_eq!(report.cross_checked, 8 * 7 / 2);
    }

    #[test]
    fn broken_sets_are_rejected() {
        // Two identical pairs cannot fool anything.
        let q = parse_query("/a[b]").unwrap();
        let events = ev("<a><b/></a>");
        let pairs = vec![
            (events[..2].to_vec(), events[2..].to_vec()),
            (events[..2].to_vec(), events[2..].to_vec()),
        ];
        let fs = FoolingSet {
            pairs,
            expected: true,
        };
        assert!(matches!(fs.verify(&q), Err(FoolingError::BadCross { .. })));
    }

    #[test]
    fn diagonal_mismatch_is_rejected() {
        let q = parse_query("/a[b]").unwrap();
        let events = ev("<a><c/></a>"); // does not match
        let fs = FoolingSet {
            pairs: vec![(events[..2].to_vec(), events[2..].to_vec())],
            expected: true,
        };
        assert!(matches!(
            fs.verify(&q),
            Err(FoolingError::BadDiagonal { index: 0 })
        ));
    }

    #[test]
    fn bits_is_floor_log2() {
        let dummy = (vec![], vec![]);
        for (n, expect) in [(1usize, 0u32), (2, 1), (3, 1), (4, 2), (8, 3), (9, 3)] {
            let fs = FoolingSet {
                pairs: vec![dummy.clone(); n],
                expected: true,
            };
            assert_eq!(fs.bits(), expect, "n={n}");
        }
    }
}
