//! The document-depth lower bound (Theorem 4.6 / Theorem 7.14): a fooling
//! set of `t = d − s` documents `D_i` built by wrapping the canonical
//! document's node `φ(u)` in auxiliary paths of varying length — any
//! streaming algorithm needs Ω(log d) bits to keep track of the level.

use crate::fooling::FoolingSet3;
use fx_analysis::{canonical_document, depth_theorem_node, CanonicalDocument, FragmentViolation};
use fx_xml::{matching_end, Event};
use fx_xpath::{Query, QueryNodeId};

/// The Theorem 7.14 construction.
#[derive(Debug, Clone)]
pub struct DepthBound {
    /// The distinguished child-axis node `u`.
    pub u: QueryNodeId,
    /// The α / β / γ split of the canonical stream around `φ(u)`.
    pub alpha: Vec<Event>,
    /// The element `φ(u)` itself.
    pub beta: Vec<Event>,
    /// The remainder.
    pub gamma: Vec<Event>,
    /// The auxiliary name `Z`.
    pub aux: String,
    /// The canonical document.
    pub canonical: CanonicalDocument,
}

/// An error building the construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DepthError {
    /// No eligible node `u` (see the §7.3 remark: queries like `//a`,
    /// `*/a`, `a/*`, `//a//b` are genuinely cheap in depth).
    NoEligibleNode,
    /// The query is not redundancy-free.
    Fragment(FragmentViolation),
}

impl std::fmt::Display for DepthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DepthError::NoEligibleNode => write!(f, "no child-axis node with named parent"),
            DepthError::Fragment(v) => write!(f, "query is not redundancy-free: {v}"),
        }
    }
}

impl std::error::Error for DepthError {}

impl From<FragmentViolation> for DepthError {
    fn from(v: FragmentViolation) -> Self {
        DepthError::Fragment(v)
    }
}

/// Builds the α/β/γ split of §7.3 for an eligible redundancy-free query.
pub fn depth_bound(q: &Query) -> Result<DepthBound, DepthError> {
    let u = depth_theorem_node(q).ok_or(DepthError::NoEligibleNode)?;
    let cd = canonical_document(q)?;
    let d = &cd.doc;
    let events = d.to_events();

    let elems: Vec<fx_dom::NodeId> = d
        .all_nodes()
        .filter(|&n| d.kind(n) == fx_dom::NodeKind::Element)
        .collect();
    let ord = elems
        .iter()
        .position(|&n| n == cd.shadow[&u])
        .expect("shadow of u is an element (u has a named test)");
    let start = events
        .iter()
        .enumerate()
        .filter(|(_, e)| e.is_start())
        .nth(ord)
        .map(|(i, _)| i)
        .expect("stream contains every element");
    let close = matching_end(&events, start).expect("well-formed stream");

    Ok(DepthBound {
        u,
        alpha: events[..start].to_vec(),
        beta: events[start..=close].to_vec(),
        gamma: events[close + 1..].to_vec(),
        aux: cd.aux_name.clone(),
        canonical: cd,
    })
}

impl DepthBound {
    /// `α_i = α ◦ 〈Z〉^i`.
    pub fn alpha_i(&self, i: usize) -> Vec<Event> {
        let mut out = self.alpha.clone();
        out.extend(std::iter::repeat_with(|| Event::start(&self.aux)).take(i));
        out
    }

    /// `β_i = 〈/Z〉^i ◦ β ◦ 〈Z〉^i`.
    pub fn beta_i(&self, i: usize) -> Vec<Event> {
        let mut out: Vec<Event> = std::iter::repeat_with(|| Event::end(&self.aux))
            .take(i)
            .collect();
        out.extend_from_slice(&self.beta);
        out.extend(std::iter::repeat_with(|| Event::start(&self.aux)).take(i));
        out
    }

    /// `γ_i = 〈/Z〉^i ◦ γ`.
    pub fn gamma_i(&self, i: usize) -> Vec<Event> {
        let mut out: Vec<Event> = std::iter::repeat_with(|| Event::end(&self.aux))
            .take(i)
            .collect();
        out.extend_from_slice(&self.gamma);
        out
    }

    /// The matching document `D_i = α_i ◦ β_i ◦ γ_i` (Fig. 17).
    pub fn document(&self, i: usize) -> Vec<Event> {
        let mut out = self.alpha_i(i);
        out.extend(self.beta_i(i));
        out.extend(self.gamma_i(i));
        out
    }

    /// The fooling set `{(α_i, β_i, γ_i)}` for depths `0..t` (the §7.3
    /// set has size `t = d − s = Ω(d)`).
    pub fn fooling_set(&self, t: usize) -> FoolingSet3 {
        FoolingSet3 {
            triples: (0..t)
                .map(|i| (self.alpha_i(i), self.beta_i(i), self.gamma_i(i)))
                .collect(),
            expected: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fx_dom::Document;
    use fx_eval::bool_eval;
    use fx_xml::is_well_formed;
    use fx_xpath::parse_query;

    #[test]
    fn theorem_4_6_query() {
        let q = parse_query("/a/b").unwrap();
        let db = depth_bound(&q).unwrap();
        let report = db.fooling_set(12).verify(&q).unwrap();
        assert_eq!(report.size, 12);
        assert!(report.bits >= 3); // ⌊log2 12⌋
    }

    #[test]
    fn documents_match_and_crossings_fail() {
        let q = parse_query("/a/b").unwrap();
        let db = depth_bound(&q).unwrap();
        for i in [0usize, 1, 5] {
            let doc = Document::from_sax(&db.document(i)).unwrap();
            assert!(bool_eval(&q, &doc).unwrap(), "D_{i} must match");
        }
        // D_{i,j} with i > j: well-formed but non-matching (Fig. 6(b)).
        let mut dij = db.alpha_i(5);
        dij.extend(db.beta_i(2));
        dij.extend(db.gamma_i(5));
        assert!(is_well_formed(&dij));
        let doc = Document::from_sax(&dij).unwrap();
        assert!(!bool_eval(&q, &doc).unwrap());
    }

    #[test]
    fn depth_of_d_i_is_linear_in_i() {
        let q = parse_query("/a/b").unwrap();
        let db = depth_bound(&q).unwrap();
        for i in [0usize, 3, 9] {
            let doc = Document::from_sax(&db.document(i)).unwrap();
            assert!(
                doc.depth() > i && doc.depth() <= i + 3,
                "i={i} depth={}",
                doc.depth()
            );
        }
    }

    #[test]
    fn general_queries() {
        for src in [
            "//a/b",
            "/r/a/b[c]",
            "/a[c[.//e and f] and b > 5]",
            "//d[f and a[b and c]]",
        ] {
            let q = parse_query(src).unwrap();
            let db = depth_bound(&q).unwrap();
            let report = db.fooling_set(8).verify(&q);
            assert!(report.is_ok(), "{src}: {report:?}");
        }
    }

    #[test]
    fn ineligible_queries_are_rejected() {
        for src in ["//a", "/*/a", "//a//b"] {
            let q = parse_query(src).unwrap();
            assert!(
                matches!(depth_bound(&q), Err(DepthError::NoEligibleNode)),
                "{src}"
            );
        }
    }

    #[test]
    fn filter_memory_grows_logarithmically_in_depth() {
        // Upper-bound side: the filter's peak bits grow like log d on D_i
        // (the level fields), not like d.
        let q = parse_query("/a/b").unwrap();
        let db = depth_bound(&q).unwrap();
        let bits_at = |i: usize| {
            let mut f = fx_core::StreamFilter::new(&q).unwrap();
            f.process_all(&db.document(i));
            assert_eq!(f.result(), Some(true));
            f.stats().max_bits
        };
        let b16 = bits_at(16);
        let b4096 = bits_at(4096);
        // 256× deeper, but the bits grow only by ≈ 8 extra level bits per
        // frontier row — nowhere near the 256× a linear dependence would
        // give.
        assert!(b4096 > b16);
        assert!(
            b4096 <= b16 + 64,
            "expected logarithmic growth: {b16} -> {b4096}"
        );
    }
}
