//! Multi-core scale-out: document sharding and bank sharding.
//!
//! The paper bounds the memory of *one* streaming evaluation; this
//! module is about using N cores without changing its semantics. Two
//! orthogonal axes, matching the two ways a dissemination workload
//! gets big:
//!
//! - **Document sharding** ([`Engine::run_sharded`] /
//!   [`Engine::select_sharded`]): many independent documents fan out
//!   across worker threads, each owning a full cloned session. The
//!   many-small-docs path — embarrassingly parallel, results merged
//!   back in input (`doc_seq`) order.
//! - **Bank sharding** ([`Engine::run_bank_sharded`]): one huge
//!   document streams once through a frozen-snapshot parser, its
//!   interned events broadcast over a bounded SPMC [`BatchRing`] to K
//!   threads each evaluating a [`fx_core::IndexedBank::partition`]
//!   shard of the query groups. The huge-bank × huge-document path —
//!   the stream is read once, the per-event bank work splits K ways.
//!
//! Both paths parse with [`crate::Session::freeze_parser`]-style
//! frozen symbol snapshots, so worker threads never touch the shared
//! table's lock. Equivalence to the single-threaded engine — verdicts,
//! match streams, and merged space stats — is proven by
//! `tests/sharded_differential.rs`.

use crate::builder::Engine;
use crate::error::EngineError;
use crate::session::{Outcome, Session, Verdicts};
use fx_core::{IndexSpaceStats, Match};
use fx_xml::{EventBatch, StreamingParser, BATCH_BYTES, BATCH_EVENTS};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};

/// A bounded single-producer / multi-consumer **broadcast** ring of
/// [`EventBatch`]es: every consumer sees every batch, in publish
/// order. This is the spine of bank sharding — one parse, K bank
/// shards each replaying the identical interned event stream.
///
/// The ring owns `capacity` batch slots. [`BatchRing::publish`] swaps
/// the producer's filled batch into the next slot and hands back the
/// slot's previous batch (already seen by every consumer), cleared
/// with its arenas intact — so in steady state the producer cycles
/// `capacity + 1` batches and the hot path performs no allocation
/// (proven by `tests/alloc_steady_state.rs`). Publishing blocks while
/// the slowest consumer is `capacity` batches behind (backpressure);
/// consuming blocks while a consumer has seen everything published.
pub struct BatchRing {
    slots: Vec<RwLock<EventBatch>>,
    state: Mutex<RingState>,
    /// Consumers wait here for the head to advance (or the ring to
    /// close).
    data: Condvar,
    /// The producer waits here for the slowest tail to advance.
    space: Condvar,
}

struct RingState {
    /// Batches published so far; slot `head % capacity` is written
    /// next.
    head: u64,
    /// Per-consumer count of batches fully consumed.
    tails: Vec<u64>,
    closed: bool,
}

impl BatchRing {
    /// A ring of `capacity` slots (clamped to at least 2) broadcast to
    /// `consumers` consumers.
    pub fn new(capacity: usize, consumers: usize) -> BatchRing {
        let capacity = capacity.max(2);
        BatchRing {
            slots: (0..capacity)
                .map(|_| RwLock::new(EventBatch::new()))
                .collect(),
            state: Mutex::new(RingState {
                head: 0,
                tails: vec![0; consumers],
                closed: false,
            }),
            data: Condvar::new(),
            space: Condvar::new(),
        }
    }

    /// Number of consumers the ring broadcasts to.
    pub fn consumers(&self) -> usize {
        self.state.lock().expect("ring state lock").tails.len()
    }

    /// Publishes `batch` to every consumer, blocking while the ring is
    /// full. On return, `batch` holds a cleared, already-broadcast
    /// batch (arenas retained) ready to be refilled — the producer
    /// never allocates in steady state.
    pub fn publish(&self, batch: &mut EventBatch) {
        let cap = self.slots.len() as u64;
        let idx = {
            let mut st = self.state.lock().expect("ring state lock");
            while st.head - st.tails.iter().copied().min().unwrap_or(st.head) >= cap {
                st = self.space.wait(st).expect("ring state lock");
            }
            (st.head % cap) as usize
        };
        {
            // Uncontended by construction: the wait above guarantees
            // every consumer has advanced past this slot's previous
            // lap, and tails advance only after the read guard drops.
            let mut slot = self.slots[idx].write().expect("ring slot lock");
            std::mem::swap(&mut *slot, batch);
        }
        self.state.lock().expect("ring state lock").head += 1;
        self.data.notify_all();
        batch.clear();
    }

    /// Runs consumer `i`'s drain loop: `f` is called on every batch in
    /// publish order, returning once the ring is closed *and* this
    /// consumer has seen everything published.
    pub fn consume<F: FnMut(&EventBatch)>(&self, i: usize, mut f: F) {
        let cap = self.slots.len() as u64;
        loop {
            let idx = {
                let mut st = self.state.lock().expect("ring state lock");
                while st.tails[i] == st.head && !st.closed {
                    st = self.data.wait(st).expect("ring state lock");
                }
                if st.tails[i] == st.head {
                    return; // closed and drained
                }
                (st.tails[i] % cap) as usize
            };
            {
                let slot = self.slots[idx].read().expect("ring slot lock");
                f(&slot);
            }
            self.state.lock().expect("ring state lock").tails[i] += 1;
            self.space.notify_one();
        }
    }

    /// Marks the stream complete: consumers drain what is published
    /// and return.
    pub fn close(&self) {
        self.state.lock().expect("ring state lock").closed = true;
        self.data.notify_all();
    }
}

impl std::fmt::Debug for BatchRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock().expect("ring state lock");
        f.debug_struct("BatchRing")
            .field("capacity", &self.slots.len())
            .field("head", &st.head)
            .field("tails", &st.tails)
            .field("closed", &st.closed)
            .finish()
    }
}

/// What one bank-sharded run of a document produced: merged per-query
/// verdicts, per-query match lists (selection engines; empty on
/// filtering engines), and the shards' space stats combined through
/// [`IndexSpaceStats::merge_sharded`].
#[derive(Debug, Clone)]
pub struct BankShardedOutcome {
    matched: Vec<bool>,
    matches: Vec<Vec<Match>>,
    stats: IndexSpaceStats,
    shards: usize,
}

impl BankShardedOutcome {
    /// Per-query verdicts, in registration order — each taken from the
    /// shard that owns the query's group, so the vector is identical
    /// to a single-threaded run's [`Verdicts::matched`].
    pub fn matched(&self) -> &[bool] {
        &self.matched
    }

    /// Whether any query matched.
    pub fn any(&self) -> bool {
        self.matched.iter().any(|&m| m)
    }

    /// The matches query `query` confirmed (selection engines), in the
    /// owning shard's confirmation order.
    pub fn matches(&self, query: usize) -> &[Match] {
        &self.matches[query]
    }

    /// Total confirmed matches across the bank.
    pub fn total_matches(&self) -> usize {
        self.matches.iter().map(Vec::len).sum()
    }

    /// The selected element ordinals of query `query`, sorted into
    /// document order.
    pub fn ordinals(&self, query: usize) -> Vec<u64> {
        let mut o: Vec<u64> = self.matches[query].iter().map(|m| m.ordinal).collect();
        o.sort_unstable();
        o
    }

    /// The merged space stats (see [`IndexSpaceStats::merge_sharded`]
    /// for which fields are exact and which are bounds).
    pub fn stats(&self) -> &IndexSpaceStats {
        &self.stats
    }

    /// Number of bank shards the document ran through.
    pub fn shards(&self) -> usize {
        self.shards
    }
}

impl Engine {
    /// Evaluates many independent documents across `threads` worker
    /// threads — the many-small-docs dissemination path. Each worker
    /// owns a full session (cloned bank, frozen-snapshot parser via
    /// [`Session::freeze_parser`], so name resolution is lock-free) and
    /// claims work from a shared counter by **claim-halving**: each
    /// claim takes half of the remaining queue divided by the worker
    /// count (at least one document), so early claims amortize the
    /// atomic while the tail degrades to single-document grabs — a
    /// worker stuck on one huge document strands at most its current
    /// (geometrically shrinking) chunk, and the rest of the queue is
    /// stolen by idle workers. Results come back in **input order**
    /// (`docs[i]` → `result[i]`, the stable `doc_seq` ordering), however
    /// the workers interleave.
    ///
    /// Verdicts are per-document identical to running each document
    /// through [`Engine::run_reader`] on one thread. On error the
    /// lowest-indexed failing document's error is returned. `threads`
    /// is clamped to `1..=docs.len()`.
    pub fn run_sharded<D>(&self, docs: &[D], threads: usize) -> Result<Vec<Verdicts>, EngineError>
    where
        D: AsRef<[u8]> + Sync,
    {
        self.sharded_generic(docs, threads, |session, doc| session.run_reader(doc))
    }

    /// [`Engine::run_sharded`] for selection engines: each document's
    /// full [`Outcome`] (verdicts plus per-query match lists), in input
    /// order.
    pub fn select_sharded<D>(&self, docs: &[D], threads: usize) -> Result<Vec<Outcome>, EngineError>
    where
        D: AsRef<[u8]> + Sync,
    {
        self.sharded_generic(docs, threads, |session, doc| {
            session.run_reader_outcome(doc)
        })
    }

    fn sharded_generic<D, T, F>(
        &self,
        docs: &[D],
        threads: usize,
        run: F,
    ) -> Result<Vec<T>, EngineError>
    where
        D: AsRef<[u8]> + Sync,
        T: Send,
        F: Fn(&mut Session, &[u8]) -> Result<T, EngineError> + Sync,
    {
        if docs.is_empty() {
            return Ok(Vec::new());
        }
        let threads = threads.clamp(1, docs.len());
        let next = AtomicUsize::new(0);
        let mut out: Vec<Option<Result<T, EngineError>>> = (0..docs.len()).map(|_| None).collect();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let next = &next;
                    let run = &run;
                    s.spawn(move || {
                        let mut session = self.session();
                        session.freeze_parser();
                        let mut produced = Vec::new();
                        loop {
                            // Claim-halving: take `remaining / (2 ·
                            // threads)` documents (at least one) in one
                            // CAS. Chunks shrink geometrically toward
                            // single-document claims, so skewed document
                            // sizes rebalance at the tail instead of
                            // stranding a fixed share behind one slow
                            // worker.
                            let start = next.load(Ordering::Relaxed);
                            if start >= docs.len() {
                                break;
                            }
                            let take = ((docs.len() - start) / (2 * threads)).max(1);
                            if next
                                .compare_exchange_weak(
                                    start,
                                    start + take,
                                    Ordering::Relaxed,
                                    Ordering::Relaxed,
                                )
                                .is_err()
                            {
                                continue;
                            }
                            for (i, doc) in docs.iter().enumerate().skip(start).take(take) {
                                produced.push((i, run(&mut session, doc.as_ref())));
                            }
                        }
                        produced
                    })
                })
                .collect();
            for h in handles {
                for (i, r) in h.join().expect("document-shard worker panicked") {
                    out[i] = Some(r);
                }
            }
        });
        out.into_iter()
            .map(|r| r.expect("every document is claimed exactly once"))
            .collect()
    }

    /// Evaluates **one** document against the bank split across
    /// `shards` threads — the huge-bank × huge-document path. Requires
    /// [`crate::IndexPolicy::SharedPrefix`]
    /// ([`EngineError::ShardingRequiresIndex`] otherwise).
    ///
    /// The calling thread parses once with a frozen-snapshot parser
    /// and broadcasts interned [`EventBatch`]es over a bounded
    /// [`BatchRing`]; each consumer thread replays the identical event
    /// stream into its [`fx_core::IndexedBank::partition`] shard.
    /// Verdicts and matches per query come from the shard owning the
    /// query's group (each group is owned by exactly one shard, so
    /// nothing is lost or duplicated); per-shard space stats merge
    /// through [`IndexSpaceStats::merge_sharded`] — exact for every
    /// field except `peak_instances`, which is an upper bound.
    pub fn run_bank_sharded<D: AsRef<[u8]>>(
        &self,
        doc: D,
        shards: usize,
    ) -> Result<BankShardedOutcome, EngineError> {
        let proto = self
            .indexed_proto()
            .ok_or(EngineError::ShardingRequiresIndex)?;
        let shards = shards.max(1);
        let banks = proto.partition(shards);
        let slots = proto.len();
        let ring = BatchRing::new(8, shards);
        let reader = doc.as_ref();

        type ShardOut = (Vec<Option<bool>>, Vec<bool>, Vec<Match>, IndexSpaceStats);
        let mut shard_outputs: Vec<Option<ShardOut>> = (0..shards).map(|_| None).collect();
        let mut parse_result: Result<(), EngineError> = Ok(());
        std::thread::scope(|s| {
            let handles: Vec<_> = banks
                .into_iter()
                .enumerate()
                .map(|(ci, mut bank)| {
                    let ring = &ring;
                    s.spawn(move || {
                        let mut matches: Vec<Match> = Vec::new();
                        ring.consume(ci, |batch| {
                            bank.process_batch_to(batch, &mut |m: Match| matches.push(m));
                        });
                        let owns: Vec<bool> = (0..bank.len()).map(|q| bank.owns_slot(q)).collect();
                        (bank.results(), owns, matches, bank.space_stats())
                    })
                })
                .collect();

            // The producer runs on the calling thread: one parse, K
            // replays. The parser freezes its own snapshot of the
            // engine table, so this thread needs no lock either. It
            // fills its batch inline (same `BATCH_EVENTS`/`BATCH_BYTES`
            // cut as `drive_batched`) rather than through the parser's
            // own batch, because the ring recycles batches by swapping
            // owned buffers — `publish` needs `&mut EventBatch`, not
            // the borrow `drive_batched` hands out.
            let mut parser = StreamingParser::with_symbols(Arc::clone(self.symbols()))
                .lookup_only()
                .frozen();
            let mut batch = EventBatch::new();
            let drive = parser.drive_reader(reader, &mut |ev, span| {
                batch.push(&ev, span);
                if batch.len() >= BATCH_EVENTS || batch.payload_bytes() >= BATCH_BYTES {
                    ring.publish(&mut batch);
                }
            });
            if !batch.is_empty() {
                ring.publish(&mut batch);
            }
            ring.close();
            parse_result = drive.map_err(EngineError::from);
            for (i, h) in handles.into_iter().enumerate() {
                shard_outputs[i] = Some(h.join().expect("bank-shard worker panicked"));
            }
        });
        parse_result?;

        let mut matched = vec![false; slots];
        let mut per_query: Vec<Vec<Match>> = (0..slots).map(|_| Vec::new()).collect();
        let mut stats = Vec::with_capacity(shards);
        for out in shard_outputs {
            let (results, owns, matches, shard_stats) = out.expect("every shard joined");
            for slot in 0..slots {
                if owns[slot] {
                    matched[slot] = results[slot].ok_or(EngineError::IncompleteDocument)?;
                }
            }
            for m in matches {
                per_query[m.query].push(m);
            }
            stats.push(shard_stats);
        }
        Ok(BankShardedOutcome {
            matched,
            matches: per_query,
            stats: IndexSpaceStats::merge_sharded(&stats),
            shards,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IndexPolicy;
    use fx_xml::{AttrBuf, Span, SymEvent, Symbols};

    /// Every consumer must see every batch, in publish order, with
    /// backpressure never deadlocking a slow consumer.
    #[test]
    fn ring_broadcasts_in_order_to_every_consumer() {
        let ring = Arc::new(BatchRing::new(2, 3));
        let symbols = Symbols::new();
        let syms: Vec<_> = (0..40).map(|i| symbols.intern(&format!("n{i}"))).collect();
        let consumers: Vec<_> = (0..3)
            .map(|i| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    let mut scratch = AttrBuf::new();
                    let mut seen = Vec::new();
                    ring.consume(i, |batch| {
                        batch.replay(&mut scratch, |ev, _| {
                            if let SymEvent::StartElement { name, .. } = ev {
                                seen.push(name);
                            }
                        });
                        // Slow one consumer down so tails diverge.
                        if i == 0 {
                            std::thread::sleep(std::time::Duration::from_millis(1));
                        }
                    });
                    seen
                })
            })
            .collect();
        let mut batch = EventBatch::new();
        for (k, &sym) in syms.iter().enumerate() {
            batch.push(
                &SymEvent::StartElement {
                    name: sym,
                    attributes: &[],
                },
                Span::EMPTY,
            );
            if k % 7 == 6 {
                ring.publish(&mut batch);
            }
        }
        if !batch.is_empty() {
            ring.publish(&mut batch);
        }
        ring.close();
        for c in consumers {
            assert_eq!(c.join().unwrap(), syms);
        }
    }

    #[test]
    fn document_sharding_matches_sequential_runs() {
        let engine = crate::Engine::builder()
            .query_str("/doc[title]")
            .query_str("//item")
            .index(IndexPolicy::SharedPrefix)
            .build()
            .unwrap();
        let docs: Vec<String> = (0..17)
            .map(|i| match i % 3 {
                0 => "<doc><title>t</title></doc>".to_string(),
                1 => "<doc><item/><item/></doc>".to_string(),
                _ => "<other/>".to_string(),
            })
            .collect();
        let mut session = engine.session();
        let sequential: Vec<Vec<bool>> = docs
            .iter()
            .map(|d| session.run_reader(d.as_bytes()).unwrap().matched().to_vec())
            .collect();
        for threads in [1, 2, 4] {
            let sharded = engine.run_sharded(&docs, threads).unwrap();
            let got: Vec<Vec<bool>> = sharded.iter().map(|v| v.matched().to_vec()).collect();
            assert_eq!(got, sequential, "threads={threads}");
        }
    }

    #[test]
    fn bank_sharding_matches_single_threaded_selection() {
        let engine = crate::Engine::builder()
            .query_str("/site/a/item")
            .query_str("/site/b/item")
            .query_str("//note")
            .select()
            .index(IndexPolicy::SharedPrefix)
            .build()
            .unwrap();
        let xml = "<site><a><item/><note/><item/></a><b><item/></b><note/></site>";
        let reference = engine.select_str(xml).unwrap();
        for shards in [1, 2, 3, 8] {
            let out = engine.run_bank_sharded(xml.as_bytes(), shards).unwrap();
            assert_eq!(out.matched(), reference.verdicts().matched(), "{shards}");
            for q in 0..3 {
                assert_eq!(out.ordinals(q), reference.ordinals(q), "{shards}/{q}");
            }
        }
    }

    #[test]
    fn bank_sharding_requires_the_index() {
        let engine = crate::Engine::builder().query_str("/a").build().unwrap();
        assert!(matches!(
            engine.run_bank_sharded("<a/>".as_bytes(), 2),
            Err(EngineError::ShardingRequiresIndex)
        ));
    }
}
