//! Per-document evaluation state: [`Session`] and its [`Verdicts`].

use crate::error::EngineError;
use crate::evaluator::Evaluator;
use fx_xml::{Event, EventIter};
use std::io::Read;

/// The mutable half of the engine: filters mid-document.
///
/// A session is fed incrementally — [`Session::push`] one event at a
/// time, or [`Session::run_reader`] to drive a whole document from any
/// byte source through the pull-based [`EventIter`] without ever
/// materializing it. After `EndDocument` (or `finish()`), the same
/// session can be reused for the next document: the next
/// `StartDocument` resets every filter's per-document state while
/// keeping amortizable state (such as the lazy DFA's memoized
/// transition table) warm.
///
/// Multi-query `Frontier` sessions run on the short-circuiting
/// [`fx_core::MultiFilter`] bank: filters whose verdict is already
/// decided (accepted — or rejected at the root tag, the dominant
/// dissemination case) stop seeing events. Verdicts are unaffected; a
/// decided filter's peak-bit statistic simply freezes at its decision
/// point. Single-query sessions feed the filter every event, so their
/// statistics are bit-for-bit identical to a bare
/// [`fx_core::StreamFilter`] run.
pub struct Session {
    inner: SessionInner,
    events: u64,
}

pub(crate) enum SessionInner {
    /// One evaluator per query (single-query banks and the automata and
    /// buffering backends).
    Each(Vec<Box<dyn Evaluator>>),
    /// The short-circuiting frontier bank (multi-query `Frontier`).
    Bank(fx_core::MultiFilter),
}

impl Session {
    pub(crate) fn new(inner: SessionInner) -> Session {
        Session { inner, events: 0 }
    }

    /// Number of registered queries.
    pub fn len(&self) -> usize {
        match &self.inner {
            SessionInner::Each(evs) => evs.len(),
            SessionInner::Bank(bank) => bank.len(),
        }
    }

    /// True when no queries are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Feeds one SAX event to every filter whose verdict is still open.
    /// Streams must carry the full document framing (`StartDocument` …
    /// `EndDocument`), which is what every `fx_xml` source produces.
    pub fn push(&mut self, event: &Event) {
        self.events += 1;
        match &mut self.inner {
            SessionInner::Each(evs) => {
                for ev in evs {
                    ev.process(event);
                }
            }
            SessionInner::Bank(bank) => bank.process(event),
        }
    }

    /// Collects the per-query verdicts of the document just streamed.
    ///
    /// Errors with [`EngineError::IncompleteDocument`] if `EndDocument`
    /// has not been pushed. The session remains usable for the next
    /// document afterwards.
    pub fn finish(&mut self) -> Result<Verdicts, EngineError> {
        let (matched, peak_bits) = match &self.inner {
            SessionInner::Each(evs) => {
                let mut matched = Vec::with_capacity(evs.len());
                let mut peak_bits = Vec::with_capacity(evs.len());
                for ev in evs {
                    matched.push(ev.verdict().ok_or(EngineError::IncompleteDocument)?);
                    peak_bits.push(ev.peak_memory_bits());
                }
                (matched, peak_bits)
            }
            SessionInner::Bank(bank) => {
                let mut matched = Vec::with_capacity(bank.len());
                for r in bank.results() {
                    matched.push(r.ok_or(EngineError::IncompleteDocument)?);
                }
                let peak_bits = bank.stats().iter().map(|s| s.max_bits).collect();
                (matched, peak_bits)
            }
        };
        Ok(Verdicts {
            matched,
            peak_bits,
            events: self.events,
        })
    }

    /// Streams one whole document from `reader` and finishes: the
    /// true-streaming entry point. Memory is bounded by the read chunk,
    /// the largest single XML token, and the filters' own state — never
    /// by document size.
    pub fn run_reader<R: Read>(&mut self, reader: R) -> Result<Verdicts, EngineError> {
        for item in EventIter::new(reader) {
            self.push(&item?);
        }
        self.finish()
    }
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("queries", &self.len())
            .field("events", &self.events)
            .finish()
    }
}

/// Per-query outcomes of one document, plus the logical-memory measure
/// the paper's bounds are stated in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verdicts {
    matched: Vec<bool>,
    peak_bits: Vec<u64>,
    events: u64,
}

impl Verdicts {
    /// Per-query verdicts, in registration order.
    pub fn matched(&self) -> &[bool] {
        &self.matched
    }

    /// Whether any query matched.
    pub fn any(&self) -> bool {
        self.matched.iter().any(|&m| m)
    }

    /// Whether every query matched.
    pub fn all(&self) -> bool {
        self.matched.iter().all(|&m| m)
    }

    /// Indices of the matching queries — the dissemination fan-out list.
    pub fn matching_queries(&self) -> Vec<usize> {
        (0..self.matched.len())
            .filter(|&i| self.matched[i])
            .collect()
    }

    /// Per-query peak logical filter state, in bits.
    pub fn peak_memory_bits(&self) -> &[u64] {
        &self.peak_bits
    }

    /// Aggregate peak logical filter state across the bank, in bits.
    pub fn total_peak_bits(&self) -> u64 {
        self.peak_bits.iter().sum()
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.matched.len()
    }

    /// True for an empty bank (unreachable via [`crate::Engine`]).
    pub fn is_empty(&self) -> bool {
        self.matched.is_empty()
    }

    /// Events processed by the session so far (cumulative across
    /// documents when the session is reused).
    pub fn events(&self) -> u64 {
        self.events
    }
}

#[cfg(test)]
mod tests {
    use crate::{Backend, Engine, EngineError};

    #[test]
    fn push_finish_lifecycle() {
        let engine = Engine::builder().query_str("/a[b > 5]").build().unwrap();
        let mut session = engine.session();
        // finish() before EndDocument is an error, not a panic.
        for e in &fx_xml::parse("<a><b>6</b></a>").unwrap()[..3] {
            session.push(e);
        }
        assert!(matches!(
            session.finish(),
            Err(EngineError::IncompleteDocument)
        ));
        // Completing the stream delivers verdicts.
        for e in &fx_xml::parse("<a><b>6</b></a>").unwrap()[3..] {
            session.push(e);
        }
        let v = session.finish().unwrap();
        assert_eq!(v.matched(), &[true]);
        assert!(v.total_peak_bits() > 0);
    }

    #[test]
    fn session_reuse_across_documents() {
        let engine = Engine::builder()
            .query_str("/doc[title]")
            .query_str("/doc[price > 100]")
            .build()
            .unwrap();
        let mut session = engine.session();
        let v1 = session
            .run_reader("<doc><title>t</title><price>150</price></doc>".as_bytes())
            .unwrap();
        assert_eq!(v1.matching_queries(), vec![0, 1]);
        let v2 = session
            .run_reader("<doc><title>t</title></doc>".as_bytes())
            .unwrap();
        assert_eq!(v2.matching_queries(), vec![0]);
        assert!(v2.events() > v1.events(), "event counter is cumulative");
    }

    #[test]
    fn malformed_documents_surface_parse_errors() {
        let engine = Engine::builder().query_str("/a").build().unwrap();
        let err = engine.run_str("<a><b></a>").unwrap_err();
        assert!(matches!(err, EngineError::Parse(_)), "{err}");
    }

    #[test]
    fn lazy_dfa_table_stays_warm_across_documents() {
        let engine = Engine::builder()
            .query_str("//a//b")
            .backend(Backend::LazyDfa)
            .build()
            .unwrap();
        let mut session = engine.session();
        let v1 = session.run_reader("<a><b/></a>".as_bytes()).unwrap();
        let v2 = session.run_reader("<a><b/></a>".as_bytes()).unwrap();
        assert!(v1.any() && v2.any());
        // Memoized table persists, so peak memory does not restart at 0.
        assert!(v2.total_peak_bits() >= v1.total_peak_bits());
    }
}
