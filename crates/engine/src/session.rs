//! Per-document evaluation state: [`Session`], its [`Verdicts`], the
//! selection [`Outcome`], and the convenience [`MatchCollector`] sink.

use crate::builder::Mode;
use crate::error::EngineError;
use crate::evaluator::Evaluator;
use fx_core::{IndexedBank, Match, MatchSink};
use fx_xml::{
    Attribute, Event, EventBatch, EventIter, EventSource, Span, StreamingParser, Sym, SymEvent,
    Symbols,
};
use std::io::Read;
use std::sync::Arc;

/// The mutable half of the engine: filters mid-document.
///
/// A session is fed incrementally — [`Session::push`] one event at a
/// time, or [`Session::run_reader`] to drive a whole document from any
/// byte source through the pull-based [`EventIter`] without ever
/// materializing it. After `EndDocument` (or `finish()`), the same
/// session can be reused for the next document: the next
/// `StartDocument` resets every filter's per-document state while
/// keeping amortizable state (such as the lazy DFA's memoized
/// transition table) warm.
///
/// On a [`Mode::Select`] engine the session additionally *streams
/// matches*: every confirmed output node is delivered to a
/// [`MatchSink`] (the `_to` entry points) the moment its ancestor
/// chain resolves. The sink-less entry points collect matches
/// internally instead, for retrieval via [`Session::finish_outcome`].
///
/// Multi-query `Frontier` filtering sessions run on the
/// short-circuiting [`fx_core::MultiFilter`] bank: filters whose
/// verdict is already decided (accepted — or rejected at the root tag,
/// the dominant dissemination case) stop seeing events. Verdicts are
/// unaffected; a decided filter's peak-bit statistic simply freezes at
/// its decision point. Single-query filtering sessions feed the filter
/// every event, so their statistics are bit-for-bit identical to a
/// bare [`fx_core::StreamFilter`] run. Selection sessions never
/// short-circuit — full evaluation must examine every candidate.
pub struct Session {
    inner: SessionInner,
    events: u64,
    mode: Mode,
    /// The engine's symbol table: the reader entry points parse with it
    /// so events reach the banks pre-interned (zero per-event name
    /// lookups, zero per-event allocation on the tag-dispatch path).
    symbols: Arc<Symbols>,
    /// The session's reusable lookup-only parser for the interned
    /// reader path: reset per document, its scratch buffers, name memo
    /// and read buffer stay warm across a reused session's documents.
    parser: Option<StreamingParser>,
    /// Matches confirmed through the sink-less entry points, held for
    /// [`Session::finish_outcome`]; cleared at each `StartDocument`.
    collected: Vec<Match>,
}

pub(crate) enum SessionInner {
    /// One evaluator per query (single-query banks and the automata and
    /// buffering backends).
    Each(Vec<Box<dyn Evaluator>>),
    /// The (optionally reporting) frontier bank.
    Bank(fx_core::MultiFilter),
    /// The shared-prefix indexed bank
    /// ([`crate::IndexPolicy::SharedPrefix`]): common query prefixes
    /// evaluated once per event, per-query state only below activated
    /// divergence points.
    Indexed(Box<fx_core::IndexedBank>),
}

impl SessionInner {
    fn push(&mut self, event: &Event, span: Span, sink: &mut dyn MatchSink) {
        match self {
            SessionInner::Each(evs) => {
                for ev in evs {
                    ev.process(event);
                }
            }
            SessionInner::Bank(bank) => bank.process_to(event, span, sink),
            SessionInner::Indexed(bank) => bank.process_to(event, span, sink),
        }
    }

    /// Whether this session can consume interned events natively (the
    /// frontier banks); `Each` evaluators (automata baselines, bare
    /// single filters) keep the owned-event surface.
    fn supports_interned(&self) -> bool {
        matches!(self, SessionInner::Bank(_) | SessionInner::Indexed(_))
    }

    /// Whole-batch dispatch: one virtual call hands a run of events to
    /// the bank, which walks it with per-event scratch hoisted out of
    /// the loop (and, for the multi-filter bank, skips the rest of a
    /// batch once every filter is decided).
    fn push_batch(&mut self, batch: &EventBatch, sink: &mut dyn MatchSink) {
        match self {
            SessionInner::Bank(bank) => bank.process_batch_to(batch, sink),
            SessionInner::Indexed(bank) => bank.process_batch_to(batch, sink),
            SessionInner::Each(_) => unreachable!("interned path gated by supports_interned"),
        }
    }
}

impl Session {
    pub(crate) fn new(inner: SessionInner, mode: Mode, symbols: Arc<Symbols>) -> Session {
        Session {
            inner,
            events: 0,
            mode,
            symbols,
            parser: None,
            collected: Vec::new(),
        }
    }

    /// Wraps a live [`IndexedBank`] — typically one grown through
    /// [`IndexedBank::subscribe`] — in a session, inheriting the bank's
    /// symbol table and reporting mode. This is the entry point for
    /// long-running dissemination services (`fx-server`): the bank stays
    /// reachable through [`Session::indexed_bank`] /
    /// [`Session::indexed_bank_mut`] so queries can churn between
    /// documents while the session keeps its parser warm across
    /// [`Session::run_reader_to`] calls.
    pub fn from_indexed(bank: IndexedBank) -> Session {
        let mode = if bank.is_reporting() {
            Mode::Select
        } else {
            Mode::Filter
        };
        let symbols = Arc::clone(bank.symbols());
        Session::new(SessionInner::Indexed(Box::new(bank)), mode, symbols)
    }

    /// The underlying [`IndexedBank`] of a session built with
    /// [`crate::IndexPolicy::SharedPrefix`] or
    /// [`Session::from_indexed`]; `None` otherwise.
    pub fn indexed_bank(&self) -> Option<&IndexedBank> {
        match &self.inner {
            SessionInner::Indexed(bank) => Some(bank),
            _ => None,
        }
    }

    /// Mutable access to the underlying [`IndexedBank`], for subscribing
    /// and unsubscribing queries on a live session. Churn is safe at any
    /// time but only fully effective from the next document; apply it
    /// between documents (see `IndexedBank::subscribe`).
    pub fn indexed_bank_mut(&mut self) -> Option<&mut IndexedBank> {
        match &mut self.inner {
            SessionInner::Indexed(bank) => Some(bank),
            _ => None,
        }
    }

    /// Invalidates the warm parser's memoized name verdicts. Must be
    /// called after subscribing queries on a live session
    /// ([`Session::indexed_bank_mut`] + `IndexedBank::subscribe`): the
    /// lookup-only reader path memoizes unknown-name verdicts, and a new
    /// subscription can intern names an earlier document already
    /// memoized as unknown. No-op when no reader has run yet.
    ///
    /// On a [`Session::freeze_parser`] session this additionally
    /// re-takes the frozen symbol snapshot, so names the churn interned
    /// become visible to this session's reader. In a multi-worker pool
    /// every worker session must refresh its *own* memo when it applies
    /// a churn command — another worker's refresh does nothing for this
    /// one (see the multi-worker caveat on `fx_xml::SymCache`).
    pub fn refresh_symbol_memo(&mut self) {
        if let Some(parser) = &mut self.parser {
            parser.invalidate_name_memo();
        }
    }

    /// Switches the session's warm reader onto a **frozen snapshot** of
    /// the engine's symbol table ([`fx_xml::SymbolsSnapshot`]): from the
    /// next document on, the reader path resolves names lock-free
    /// against the snapshot instead of read-locking the shared table.
    /// This is the per-worker mode of the sharded runners
    /// ([`crate::Engine::run_sharded`] and the sharded dissemination
    /// server), where N sessions parse concurrently against one engine
    /// — the engine-owned mutable table stays single-writer while
    /// worker reads touch no lock at all.
    ///
    /// The snapshot is a point-in-time view: after subscribing queries
    /// on a live bank, call [`Session::refresh_symbol_memo`] to re-take
    /// it (churn is the only event that grows the table, since frozen
    /// readers run lookup-only).
    pub fn freeze_parser(&mut self) {
        let parser = self.parser.take().unwrap_or_else(|| {
            StreamingParser::with_symbols(Arc::clone(&self.symbols)).lookup_only()
        });
        self.parser = Some(parser.frozen());
    }

    /// Number of registered queries.
    pub fn len(&self) -> usize {
        match &self.inner {
            SessionInner::Each(evs) => evs.len(),
            SessionInner::Bank(bank) => bank.len(),
            SessionInner::Indexed(bank) => bank.len(),
        }
    }

    /// True when no queries are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The engine mode this session was spawned with.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The indexed bank's space/activation breakdown — shared-trie bits,
    /// per-group residual bits, exact bank total, activation counts and
    /// the shared-residual pool size (see [`fx_core::IndexSpaceStats`]).
    /// `None` on sessions not built with
    /// [`crate::IndexPolicy::SharedPrefix`]; for those, the per-query
    /// figures in [`Verdicts::peak_memory_bits`] are already exact.
    pub fn index_stats(&self) -> Option<fx_core::IndexSpaceStats> {
        match &self.inner {
            SessionInner::Indexed(bank) => Some(bank.space_stats()),
            _ => None,
        }
    }

    /// Feeds one SAX event to every filter whose verdict is still open.
    /// Streams must carry the full document framing (`StartDocument` …
    /// `EndDocument`), which is what every `fx_xml` source produces.
    ///
    /// On a selection session, matches this event confirms are collected
    /// internally for [`Session::finish_outcome`]; hand-pushed events
    /// carry no source offsets, so their matches have [`Span::EMPTY`].
    /// Use [`Session::push_spanned_to`] to stream matches to a sink with
    /// real spans.
    pub fn push(&mut self, event: &Event) {
        self.push_spanned(event, Span::EMPTY);
    }

    /// [`Session::push`] with the event's source byte span (from
    /// [`fx_xml::SpannedEvents`] or [`fx_xml::parse_spanned`]), so
    /// collected matches carry real source ranges.
    pub fn push_spanned(&mut self, event: &Event, span: Span) {
        if matches!(event, Event::StartDocument) {
            self.collected.clear();
        }
        self.events += 1;
        let Session {
            inner, collected, ..
        } = self;
        inner.push(event, span, collected);
    }

    /// Feeds one event, routing any matches it confirms to `sink`
    /// (selection sessions; filtering sessions never call the sink).
    pub fn push_to(&mut self, event: &Event, sink: &mut dyn MatchSink) {
        self.push_spanned_to(event, Span::EMPTY, sink);
    }

    /// [`Session::push_to`] with the event's source byte span: the full
    /// incremental-selection entry point. Matches reach `sink` the
    /// moment the frontier resolves their ancestor chains — possibly
    /// many events before `EndDocument`.
    pub fn push_spanned_to(&mut self, event: &Event, span: Span, sink: &mut dyn MatchSink) {
        if matches!(event, Event::StartDocument) {
            self.collected.clear();
        }
        self.events += 1;
        self.inner.push(event, span, sink);
    }

    /// Collects the per-query verdicts of the document just streamed.
    ///
    /// Errors with [`EngineError::IncompleteDocument`] if `EndDocument`
    /// has not been pushed. The session remains usable for the next
    /// document afterwards.
    pub fn finish(&mut self) -> Result<Verdicts, EngineError> {
        let (matched, peak_bits, peak_pending) = match &self.inner {
            SessionInner::Each(evs) => {
                let mut matched = Vec::with_capacity(evs.len());
                let mut peak_bits = Vec::with_capacity(evs.len());
                for ev in evs {
                    matched.push(ev.verdict().ok_or(EngineError::IncompleteDocument)?);
                    peak_bits.push(ev.peak_memory_bits());
                }
                let peak_pending = vec![0; evs.len()];
                (matched, peak_bits, peak_pending)
            }
            SessionInner::Bank(bank) => {
                let mut matched = Vec::with_capacity(bank.len());
                for r in bank.results() {
                    matched.push(r.ok_or(EngineError::IncompleteDocument)?);
                }
                let peak_bits = bank.stats().iter().map(|s| s.max_bits).collect();
                (matched, peak_bits, bank.peak_pending_positions())
            }
            SessionInner::Indexed(bank) => {
                let mut matched = Vec::with_capacity(bank.len());
                for r in bank.results() {
                    matched.push(r.ok_or(EngineError::IncompleteDocument)?);
                }
                (
                    matched,
                    bank.peak_memory_bits(),
                    bank.peak_pending_positions(),
                )
            }
        };
        Ok(Verdicts {
            matched,
            peak_bits,
            peak_pending,
            events: self.events,
        })
    }

    /// [`Session::finish`], additionally returning the matches the
    /// sink-less entry points collected since the last `StartDocument`,
    /// grouped per query: the batch face of selection.
    pub fn finish_outcome(&mut self) -> Result<Outcome, EngineError> {
        let verdicts = self.finish()?;
        let mut matches: Vec<Vec<Match>> = (0..verdicts.len()).map(|_| Vec::new()).collect();
        for m in self.collected.drain(..) {
            matches[m.query].push(m);
        }
        Ok(Outcome { verdicts, matches })
    }

    /// Streams one whole document from `reader` and finishes: the
    /// true-streaming entry point. Memory is bounded by the read chunk,
    /// the largest single XML token, and the filters' own state — never
    /// by document size. (On selection sessions, prefer
    /// [`Session::run_reader_to`] or [`Session::run_reader_outcome`],
    /// which do not discard the matches.)
    pub fn run_reader<R: Read>(&mut self, reader: R) -> Result<Verdicts, EngineError> {
        self.drive_collected(reader)?;
        self.finish()
    }

    /// Streams one whole document from `reader`, delivering each match
    /// to `sink` *as it is confirmed*, and finishes with the verdicts.
    /// This is the dissemination hot path: subscribers see matches while
    /// the document is still streaming, with byte spans to act on.
    pub fn run_reader_to<R: Read>(
        &mut self,
        reader: R,
        sink: &mut dyn MatchSink,
    ) -> Result<Verdicts, EngineError> {
        if self.inner.supports_interned() {
            self.drive_interned(reader, sink)?;
        } else {
            let mut events = EventIter::new(reader);
            while let Some(item) = events.next_spanned() {
                let (event, span) = item?;
                self.push_spanned_to(&event, span, sink);
            }
        }
        self.finish()
    }

    /// Streams one whole document from `reader` and returns the full
    /// [`Outcome`] — verdicts plus the collected per-query matches.
    pub fn run_reader_outcome<R: Read>(&mut self, reader: R) -> Result<Outcome, EngineError> {
        self.drive_collected(reader)?;
        self.finish_outcome()
    }

    /// [`Session::run_reader`] generalized over the event frontend:
    /// streams one whole document from `reader` through `source` — any
    /// [`EventSource`] (the XML [`StreamingParser`], `fx-html`'s soup
    /// tokenizer, `fx-json`'s record adapter, …) — and finishes with
    /// the verdicts.
    ///
    /// The source should share the engine's symbol table (build it with
    /// `with_symbols(engine.symbols().clone()).lookup_only()`, or use
    /// `Engine::html_source` / `Engine::json_source`): then interned
    /// events flow straight into the frontier banks with no per-event
    /// allocation, exactly like the XML reader path. A source carrying
    /// a *different* table still evaluates correctly — its events are
    /// materialized and re-resolved per event, at owned-event cost.
    pub fn run_source<R: Read>(
        &mut self,
        source: &mut dyn EventSource,
        mut reader: R,
    ) -> Result<Verdicts, EngineError> {
        self.drive_source_collected(source, &mut reader)?;
        self.finish()
    }

    /// [`Session::run_source`], delivering each match to `sink` *as it
    /// is confirmed* — [`Session::run_reader_to`] for non-XML frontends.
    pub fn run_source_to<R: Read>(
        &mut self,
        source: &mut dyn EventSource,
        mut reader: R,
        sink: &mut dyn MatchSink,
    ) -> Result<Verdicts, EngineError> {
        self.drive_source(source, &mut reader, sink)?;
        self.finish()
    }

    /// [`Session::run_source`], returning the full [`Outcome`] —
    /// verdicts plus the collected per-query matches.
    pub fn run_source_outcome<R: Read>(
        &mut self,
        source: &mut dyn EventSource,
        mut reader: R,
    ) -> Result<Outcome, EngineError> {
        self.drive_source_collected(source, &mut reader)?;
        self.finish_outcome()
    }

    fn drive_source_collected(
        &mut self,
        source: &mut dyn EventSource,
        reader: &mut dyn Read,
    ) -> Result<(), EngineError> {
        // Same outbox dance as `drive_collected`: one drive is one
        // document, so clearing up front equals clearing at its
        // `StartDocument`.
        self.collected.clear();
        let mut collected = std::mem::take(&mut self.collected);
        let result = self.drive_source(source, reader, &mut collected);
        self.collected = collected;
        result
    }

    /// The frontend-generic drive loop. Interned-capable sessions fed
    /// by a source sharing the engine's table take the same zero-copy
    /// path as [`Session::drive_interned`]; everything else (automata
    /// baselines, foreign tables) converts each event to its owned form
    /// through the *source's* table, mapping [`Sym::UNKNOWN`] — a name
    /// a lookup-only source saw but never interned — to a sentinel that
    /// cannot collide with any query's vocabulary (if it could, the
    /// name would have been interned at compile time and would not be
    /// unknown).
    fn drive_source(
        &mut self,
        source: &mut dyn EventSource,
        reader: &mut dyn Read,
        sink: &mut dyn MatchSink,
    ) -> Result<(), EngineError> {
        source.reset();
        let shares_table = Arc::ptr_eq(source.symbols(), &self.symbols);
        let Session {
            inner,
            collected,
            events,
            ..
        } = self;
        if inner.supports_interned() && shares_table {
            // A drive is exactly one document, so clearing the outbox up
            // front equals clearing at its `StartDocument` — which lets
            // the hot loop take whole batches with no per-event check.
            collected.clear();
            return source
                .drive_batched(reader, &mut |batch| {
                    *events += batch.len() as u64;
                    inner.push_batch(batch, sink);
                })
                .map_err(EngineError::from);
        }
        let symbols = Arc::clone(source.symbols());
        source
            .drive(reader, &mut |ev, span| {
                if matches!(ev, SymEvent::StartDocument) {
                    collected.clear();
                }
                *events += 1;
                let event = owned_from_sym(&symbols, &ev);
                inner.push(&event, span, sink);
            })
            .map_err(EngineError::from)
    }

    fn drive_collected<R: Read>(&mut self, reader: R) -> Result<(), EngineError> {
        if self.inner.supports_interned() {
            // Collect into the session's own outbox: drop the previous
            // document's matches (a drive is exactly one document, so
            // clearing up front equals clearing at its `StartDocument`)
            // and run the shared interned loop with the outbox as sink.
            self.collected.clear();
            let mut collected = std::mem::take(&mut self.collected);
            let result = self.drive_interned(reader, &mut collected);
            self.collected = collected;
            return result;
        }
        let mut events = EventIter::new(reader);
        while let Some(item) = events.next_spanned() {
            let (event, span) = item?;
            self.push_spanned(&event, span);
        }
        Ok(())
    }

    /// The zero-copy reader loop: parse with the engine's shared symbol
    /// table and dispatch interned events straight into the bank — no
    /// owned `Event` is ever materialized, and in steady state no
    /// allocation happens per element event anywhere on the path.
    ///
    /// Events move in **batches**: the parser fills a reusable
    /// arena-backed [`EventBatch`] per structural-index pass and the
    /// bank walks each run in one call
    /// ([`fx_core::MultiFilter::process_batch_to`] /
    /// [`fx_core::IndexedBank::process_batch_to`]), so the callback
    /// boundary is paid once per batch instead of once per event. The
    /// single-filter bank skips the batch buffer entirely: its filter is
    /// fused into the tokenizer's monomorphized emit chain, with no
    /// dynamic call anywhere on the per-event path.
    fn drive_interned<R: Read>(
        &mut self,
        reader: R,
        sink: &mut dyn MatchSink,
    ) -> Result<(), EngineError> {
        // Lookup-only: document names outside the compiled query
        // vocabulary collapse to `Sym::UNKNOWN` instead of growing
        // the engine-wide table, so a long-lived engine's memory
        // stays bounded by its queries, never by document content.
        // The parser itself is kept across documents (reset per drive)
        // so its scratch buffers and name memo stay warm.
        let mut parser = self.parser.take().unwrap_or_else(|| {
            StreamingParser::with_symbols(Arc::clone(&self.symbols)).lookup_only()
        });
        parser.reset();
        // A drive is exactly one document: clearing the outbox up front
        // equals clearing at its `StartDocument`.
        self.collected.clear();
        let Session { inner, events, .. } = self;
        let result = match inner {
            SessionInner::Bank(bank) if bank.len() == 1 => parser
                .drive_reader(reader, &mut |ev, span| {
                    *events += 1;
                    bank.process_sym_to(ev, span, sink);
                })
                .map_err(EngineError::from),
            _ => parser
                .drive_batched(reader, &mut |batch| {
                    *events += batch.len() as u64;
                    inner.push_batch(batch, sink);
                })
                .map_err(EngineError::from),
        };
        self.parser = Some(parser);
        result
    }
}

/// What [`Sym::UNKNOWN`] resolves to on the owned-event fallback path:
/// a name a lookup-only source could not resolve is by construction
/// outside every query's vocabulary, and U+FFFD is not a name-start
/// character in any frontend, so this sentinel can never equal a node
/// test — the evaluators reject it exactly as they would the real name.
const UNKNOWN_NAME: &str = "\u{fffd}unknown";

/// Materializes an interned event through `symbols` (the table the
/// source issued its syms from), collapsing unresolvable names to
/// [`UNKNOWN_NAME`]. This is [`SymEvent::to_owned`] made total over
/// lookup-only streams.
fn owned_from_sym(symbols: &Symbols, ev: &SymEvent<'_>) -> Event {
    let resolve = |sym: Sym| {
        if sym == Sym::UNKNOWN {
            UNKNOWN_NAME.to_string()
        } else {
            symbols.resolve(sym)
        }
    };
    match *ev {
        SymEvent::StartDocument => Event::StartDocument,
        SymEvent::EndDocument => Event::EndDocument,
        SymEvent::StartElement { name, attributes } => Event::StartElement {
            name: resolve(name),
            attributes: attributes
                .iter()
                .map(|a| Attribute {
                    name: resolve(a.name),
                    value: a.value.clone(),
                })
                .collect(),
        },
        SymEvent::EndElement { name } => Event::EndElement {
            name: resolve(name),
        },
        SymEvent::Text { content } => Event::Text {
            content: content.to_string(),
        },
    }
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("queries", &self.len())
            .field("mode", &self.mode)
            .field("events", &self.events)
            .finish()
    }
}

/// Everything one document produced on a selection engine: the boolean
/// [`Verdicts`] plus, per query, the confirmed [`Match`]es in
/// confirmation order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    verdicts: Verdicts,
    matches: Vec<Vec<Match>>,
}

impl Outcome {
    /// The per-query boolean verdicts and space statistics.
    pub fn verdicts(&self) -> &Verdicts {
        &self.verdicts
    }

    /// The matches query `query` confirmed, in confirmation order (use
    /// [`Outcome::ordinals`] for document order).
    pub fn matches(&self, query: usize) -> &[Match] {
        &self.matches[query]
    }

    /// All matches across the bank, in confirmation order per query.
    pub fn all_matches(&self) -> impl Iterator<Item = &Match> {
        self.matches.iter().flatten()
    }

    /// Total number of confirmed matches across all queries.
    pub fn total_matches(&self) -> usize {
        self.matches.iter().map(Vec::len).sum()
    }

    /// The selected element ordinals of query `query`, sorted into
    /// document order — directly comparable with `fx_eval::full_eval`
    /// ground truth.
    pub fn ordinals(&self, query: usize) -> Vec<u64> {
        let mut o: Vec<u64> = self.matches[query].iter().map(|m| m.ordinal).collect();
        o.sort_unstable();
        o
    }

    /// Decomposes into `(verdicts, per-query matches)`.
    pub fn into_parts(self) -> (Verdicts, Vec<Vec<Match>>) {
        (self.verdicts, self.matches)
    }
}

/// The convenience collecting [`MatchSink`]: accumulates every match,
/// preserving confirmation order.
///
/// ```
/// use fx_engine::{Engine, MatchCollector, Mode};
///
/// let engine = Engine::builder()
///     .query_str("//item[price > 300]/name")
///     .mode(Mode::Select)
///     .build()
///     .unwrap();
/// let mut sink = MatchCollector::new();
/// let xml = "<r><item><price>400</price><name>a</name></item></r>";
/// engine.session().run_reader_to(xml.as_bytes(), &mut sink).unwrap();
/// assert_eq!(sink.len(), 1);
/// assert_eq!(sink.matches()[0].span.slice(xml), Some("<name>a</name>"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct MatchCollector {
    matches: Vec<Match>,
}

impl MatchCollector {
    /// An empty collector.
    pub fn new() -> MatchCollector {
        MatchCollector::default()
    }

    /// The collected matches, in confirmation order.
    pub fn matches(&self) -> &[Match] {
        &self.matches
    }

    /// Consumes the collector, returning the matches.
    pub fn into_matches(self) -> Vec<Match> {
        self.matches
    }

    /// The collected ordinals of query `query`, sorted into document
    /// order.
    pub fn ordinals(&self, query: usize) -> Vec<u64> {
        let mut o: Vec<u64> = self
            .matches
            .iter()
            .filter(|m| m.query == query)
            .map(|m| m.ordinal)
            .collect();
        o.sort_unstable();
        o
    }

    /// Number of collected matches.
    pub fn len(&self) -> usize {
        self.matches.len()
    }

    /// True when nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.matches.is_empty()
    }

    /// Empties the collector (e.g. between documents of a reused
    /// session).
    pub fn clear(&mut self) {
        self.matches.clear();
    }
}

impl MatchSink for MatchCollector {
    fn on_match(&mut self, m: Match) {
        self.matches.push(m);
    }
}

/// Per-query outcomes of one document, plus the logical-memory measure
/// the paper's bounds are stated in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verdicts {
    matched: Vec<bool>,
    peak_bits: Vec<u64>,
    peak_pending: Vec<usize>,
    events: u64,
}

impl Verdicts {
    /// Per-query verdicts, in registration order.
    pub fn matched(&self) -> &[bool] {
        &self.matched
    }

    /// Whether any query matched.
    pub fn any(&self) -> bool {
        self.matched.iter().any(|&m| m)
    }

    /// Whether every query matched.
    pub fn all(&self) -> bool {
        self.matched.iter().all(|&m| m)
    }

    /// Iterates the indices of the matching queries without allocating —
    /// the per-document dissemination fan-out loop should use this
    /// rather than [`Verdicts::matching_queries`].
    pub fn matching(&self) -> impl Iterator<Item = usize> + '_ {
        self.matched
            .iter()
            .enumerate()
            .filter_map(|(i, &m)| m.then_some(i))
    }

    /// Indices of the matching queries, collected into a `Vec`.
    pub fn matching_queries(&self) -> Vec<usize> {
        self.matching().collect()
    }

    /// Per-query peak logical filter state, in bits.
    pub fn peak_memory_bits(&self) -> &[u64] {
        &self.peak_bits
    }

    /// Per-query peak counts of buffered unresolved candidate positions
    /// — the extra memory selection pays over filtering, which the
    /// paper's follow-up (\[5\]) proves unavoidable. All zeros on
    /// filtering sessions.
    pub fn peak_pending_positions(&self) -> &[usize] {
        &self.peak_pending
    }

    /// Aggregate peak logical filter state across the bank, in bits.
    pub fn total_peak_bits(&self) -> u64 {
        self.peak_bits.iter().sum()
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.matched.len()
    }

    /// True for an empty bank (unreachable via [`crate::Engine`]).
    pub fn is_empty(&self) -> bool {
        self.matched.is_empty()
    }

    /// Events processed by the session so far (cumulative across
    /// documents when the session is reused).
    pub fn events(&self) -> u64 {
        self.events
    }
}

#[cfg(test)]
mod tests {
    use crate::{Backend, Engine, EngineError};

    #[test]
    fn push_finish_lifecycle() {
        let engine = Engine::builder().query_str("/a[b > 5]").build().unwrap();
        let mut session = engine.session();
        // finish() before EndDocument is an error, not a panic.
        for e in &fx_xml::parse("<a><b>6</b></a>").unwrap()[..3] {
            session.push(e);
        }
        assert!(matches!(
            session.finish(),
            Err(EngineError::IncompleteDocument)
        ));
        // Completing the stream delivers verdicts.
        for e in &fx_xml::parse("<a><b>6</b></a>").unwrap()[3..] {
            session.push(e);
        }
        let v = session.finish().unwrap();
        assert_eq!(v.matched(), &[true]);
        assert!(v.total_peak_bits() > 0);
    }

    #[test]
    fn session_reuse_across_documents() {
        let engine = Engine::builder()
            .query_str("/doc[title]")
            .query_str("/doc[price > 100]")
            .build()
            .unwrap();
        let mut session = engine.session();
        let v1 = session
            .run_reader("<doc><title>t</title><price>150</price></doc>".as_bytes())
            .unwrap();
        assert_eq!(v1.matching_queries(), vec![0, 1]);
        let v2 = session
            .run_reader("<doc><title>t</title></doc>".as_bytes())
            .unwrap();
        assert_eq!(v2.matching_queries(), vec![0]);
        assert!(v2.events() > v1.events(), "event counter is cumulative");
    }

    #[test]
    fn malformed_documents_surface_parse_errors() {
        let engine = Engine::builder().query_str("/a").build().unwrap();
        let err = engine.run_str("<a><b></a>").unwrap_err();
        assert!(matches!(err, EngineError::Parse(_)), "{err}");
    }

    #[test]
    fn selection_outcome_routes_matches_per_query() {
        let engine = Engine::builder()
            .query_str("/doc/item")
            .query_str("//note")
            .mode(crate::Mode::Select)
            .build()
            .unwrap();
        let xml = "<doc><item/><note/><item/></doc>";
        let outcome = engine.select_str(xml).unwrap();
        assert_eq!(outcome.verdicts().matched(), &[true, true]);
        // Ordinals: doc=0, item=1, note=2, item=3.
        assert_eq!(outcome.ordinals(0), vec![1, 3]);
        assert_eq!(outcome.ordinals(1), vec![2]);
        assert_eq!(outcome.total_matches(), 3);
        for m in outcome.all_matches() {
            let text = m.span.slice(xml).unwrap();
            assert!(text == "<item/>" || text == "<note/>", "{text}");
        }
    }

    #[test]
    fn selection_and_filter_modes_agree_on_verdicts() {
        let srcs = ["/doc/item", "//a[b]/c", "//missing"];
        let xml = "<doc><item/><a><b/><c/></a></doc>";
        let filter = Engine::builder()
            .queries(srcs.iter().map(|s| fx_xpath::parse_query(s).unwrap()))
            .build()
            .unwrap();
        let select = Engine::builder()
            .queries(srcs.iter().map(|s| fx_xpath::parse_query(s).unwrap()))
            .select()
            .build()
            .unwrap();
        assert_eq!(
            filter.run_str(xml).unwrap().matched(),
            select.select_str(xml).unwrap().verdicts().matched()
        );
    }

    #[test]
    fn selection_session_reuse_clears_collected_matches() {
        let engine = Engine::builder()
            .query_str("//b")
            .mode(crate::Mode::Select)
            .build()
            .unwrap();
        let mut session = engine.session();
        let o1 = session
            .run_reader_outcome("<a><b/><b/></a>".as_bytes())
            .unwrap();
        assert_eq!(o1.ordinals(0), vec![1, 2]);
        let o2 = session
            .run_reader_outcome("<a><b/></a>".as_bytes())
            .unwrap();
        assert_eq!(
            o2.ordinals(0),
            vec![1],
            "first document's matches must not leak"
        );
    }

    #[test]
    fn selection_tracks_peak_pending_positions() {
        let n = 40usize;
        // All <b> candidates stay pending on the late <x/>…
        let pending_heavy = format!("<a>{}<x/></a>", "<b/>".repeat(n));
        // …whereas immediately-resolved matches never occupy the buffer.
        let resolved = format!("<a>{}</a>", "<b/>".repeat(n));
        let engine = Engine::builder()
            .query_str("/a[x]/b")
            .select()
            .build()
            .unwrap();
        let v = engine.select_str(&pending_heavy).unwrap();
        assert!(v.verdicts().peak_pending_positions()[0] >= n);
        assert_eq!(v.total_matches(), n);

        let free = Engine::builder().query_str("//b").select().build().unwrap();
        let v = free.select_str(&resolved).unwrap();
        assert_eq!(v.total_matches(), n);
        assert_eq!(v.verdicts().peak_pending_positions(), &[0]);

        // Filtering sessions report no pending-position cost at all.
        let f = Engine::builder().query_str("/a[x]/b").build().unwrap();
        assert_eq!(
            f.run_str(&pending_heavy).unwrap().peak_pending_positions(),
            &[0]
        );
    }

    #[test]
    fn push_to_streams_matches_with_empty_spans() {
        let engine = Engine::builder().query_str("//b").select().build().unwrap();
        let mut session = engine.session();
        let mut got: Vec<crate::Match> = Vec::new();
        for e in &fx_xml::parse("<a><b/></a>").unwrap() {
            session.push_to(e, &mut got);
        }
        session.finish().unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].ordinal, 1);
        assert_eq!(got[0].span, fx_xml::Span::EMPTY);
    }

    #[test]
    fn reader_path_keeps_the_symbol_table_bounded() {
        // The engine-wide table holds the query vocabulary only: a
        // stream of documents with ever-fresh element names must not
        // grow it (the reader path parses in lookup-only mode).
        let engine = Engine::builder()
            .query_str("/doc[title]")
            .query_str("//doc/item")
            .build()
            .unwrap();
        let before = engine.symbols().len();
        let mut session = engine.session();
        for i in 0..50 {
            let xml = format!("<doc><title/><u{i}><v{i}/></u{i}></doc>");
            session.run_reader(xml.as_bytes()).unwrap();
        }
        assert_eq!(
            engine.symbols().len(),
            before,
            "document names leaked into the engine table"
        );
        // And the queries still evaluate correctly against such docs.
        let v = session
            .run_reader("<doc><title/><item/><w99/></doc>".as_bytes())
            .unwrap();
        assert_eq!(v.matched(), &[true, true]);
    }

    #[test]
    fn lazy_dfa_table_stays_warm_across_documents() {
        let engine = Engine::builder()
            .query_str("//a//b")
            .backend(Backend::LazyDfa)
            .build()
            .unwrap();
        let mut session = engine.session();
        let v1 = session.run_reader("<a><b/></a>".as_bytes()).unwrap();
        let v2 = session.run_reader("<a><b/></a>".as_bytes()).unwrap();
        assert!(v1.any() && v2.any());
        // Memoized table persists, so peak memory does not restart at 0.
        assert!(v2.total_peak_bits() >= v1.total_peak_bits());
    }
}
