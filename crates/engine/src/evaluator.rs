//! The [`Evaluator`] trait: one interface over every boolean streaming
//! filter in the workspace.
//!
//! This trait is the former `fx_automata::BooleanStreamFilter`, moved to
//! the engine layer where it belongs: the automata crate provides
//! *baselines*, not the abstraction, and the paper's own algorithm
//! ([`fx_core::StreamFilter`]) was never an automaton. The engine's
//! [`crate::Session`] drives `Box<dyn Evaluator>` instances, and the
//! benchmark harness compares implementations through the same lens.

use fx_xml::Event;

/// A streaming algorithm computing `BOOLEVAL_Q` over SAX events.
///
/// `Send` so a [`crate::Session`] can live on a service's worker thread
/// (`fx-server`); every filter in the workspace is plain owned data.
pub trait Evaluator: Send {
    /// Feeds one event. A `StartDocument` resets per-document state.
    fn process(&mut self, event: &Event);
    /// The verdict, available after `EndDocument`.
    fn verdict(&self) -> Option<bool>;
    /// Peak logical memory, in bits (the quantity the paper bounds).
    fn peak_memory_bits(&self) -> u64;
    /// A short label for reports.
    fn label(&self) -> &'static str;

    /// Feeds a whole stream and returns the verdict.
    fn run_stream(&mut self, events: &[Event]) -> Option<bool> {
        for e in events {
            self.process(e);
        }
        self.verdict()
    }
}

impl Evaluator for fx_core::StreamFilter {
    fn process(&mut self, event: &Event) {
        fx_core::StreamFilter::process(self, event);
    }
    fn verdict(&self) -> Option<bool> {
        self.result()
    }
    fn peak_memory_bits(&self) -> u64 {
        self.stats().max_bits
    }
    fn label(&self) -> &'static str {
        "frontier-filter"
    }
}

impl Evaluator for fx_automata::NfaFilter {
    fn process(&mut self, event: &Event) {
        fx_automata::NfaFilter::process(self, event);
    }
    fn verdict(&self) -> Option<bool> {
        fx_automata::NfaFilter::verdict(self)
    }
    fn peak_memory_bits(&self) -> u64 {
        fx_automata::NfaFilter::peak_memory_bits(self)
    }
    fn label(&self) -> &'static str {
        fx_automata::NfaFilter::label(self)
    }
}

impl Evaluator for fx_automata::LazyDfaFilter {
    fn process(&mut self, event: &Event) {
        fx_automata::LazyDfaFilter::process(self, event);
    }
    fn verdict(&self) -> Option<bool> {
        fx_automata::LazyDfaFilter::verdict(self)
    }
    fn peak_memory_bits(&self) -> u64 {
        fx_automata::LazyDfaFilter::peak_memory_bits(self)
    }
    fn label(&self) -> &'static str {
        fx_automata::LazyDfaFilter::label(self)
    }
}

impl Evaluator for fx_automata::BufferingFilter {
    fn process(&mut self, event: &Event) {
        fx_automata::BufferingFilter::process(self, event);
    }
    fn verdict(&self) -> Option<bool> {
        fx_automata::BufferingFilter::verdict(self)
    }
    fn peak_memory_bits(&self) -> u64 {
        fx_automata::BufferingFilter::peak_memory_bits(self)
    }
    fn label(&self) -> &'static str {
        fx_automata::BufferingFilter::label(self)
    }
}

/// The legacy multi-query bank as a single evaluator: its verdict is
/// "some registered query matched", its memory the bank's aggregate.
impl Evaluator for fx_core::MultiFilter {
    fn process(&mut self, event: &Event) {
        fx_core::MultiFilter::process(self, event);
    }
    fn verdict(&self) -> Option<bool> {
        let results = self.results();
        results
            .iter()
            .all(Option::is_some)
            .then(|| results.contains(&Some(true)))
    }
    fn peak_memory_bits(&self) -> u64 {
        self.total_max_bits()
    }
    fn label(&self) -> &'static str {
        "multi-frontier"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fx_xpath::parse_query;

    #[test]
    fn all_backends_implement_the_trait() {
        let q = parse_query("/a/b").unwrap();
        let events = fx_xml::parse("<a><b/></a>").unwrap();
        let mut evals: Vec<Box<dyn Evaluator>> = vec![
            Box::new(fx_core::StreamFilter::new(&q).unwrap()),
            Box::new(fx_automata::NfaFilter::new(&q).unwrap()),
            Box::new(fx_automata::LazyDfaFilter::new(&q).unwrap()),
            Box::new(fx_automata::BufferingFilter::new(&q)),
        ];
        let mut labels = Vec::new();
        for e in &mut evals {
            assert_eq!(e.run_stream(&events), Some(true), "{}", e.label());
            assert!(e.peak_memory_bits() > 0, "{}", e.label());
            labels.push(e.label());
        }
        assert_eq!(labels, ["frontier-filter", "nfa", "lazy-dfa", "buffer-all"]);
    }

    #[test]
    fn multifilter_verdict_is_any_match() {
        let queries: Vec<_> = ["/a[b]", "/a[c]"]
            .iter()
            .map(|s| parse_query(s).unwrap())
            .collect();
        #[allow(deprecated)]
        let mut bank = fx_core::MultiFilter::new(&queries).unwrap();
        let events = fx_xml::parse("<a><b/></a>").unwrap();
        assert_eq!(Evaluator::run_stream(&mut bank, &events), Some(true));
        let events = fx_xml::parse("<a><x/></a>").unwrap();
        assert_eq!(Evaluator::run_stream(&mut bank, &events), Some(false));
    }
}
