//! # fx-engine
//!
//! The canonical public API of the `frontier-xpath` workspace: a
//! *true-streaming* engine for evaluating banks of Forward XPath filters
//! over XML documents in the near-optimal memory of
//! *Bar-Yossef, Fontoura, Josifovski — On the Memory Requirements of
//! XPath Evaluation over XML Streams* (PODS 2004 / JCSS 2007).
//!
//! The paper's contribution is that filtering needs only
//! `O(FS(Q)·log d)` bits — so the engine's surface never requires a
//! materialized `Vec<Event>`. Documents arrive either event-by-event
//! through [`Session::push`] or straight from any [`std::io::Read`]
//! through [`Session::run_reader`], which drives the pull-based
//! [`fx_xml::EventIter`] so memory stays bounded by the read buffer plus
//! the filter state regardless of document size.
//!
//! ## Quick start
//!
//! ```
//! use fx_engine::{Backend, Engine};
//!
//! let engine = Engine::builder()
//!     .query_str("/a[c[.//e and f] and b > 5]")
//!     .backend(Backend::Frontier)
//!     .build()
//!     .unwrap();
//!
//! // Stream a document from any `io::Read` — never materialized.
//! let verdicts = engine.run_reader("<a><c><e/><f/></c><b>6</b></a>".as_bytes()).unwrap();
//! assert!(verdicts.any());
//! ```
//!
//! ## Selection: streaming `FULLEVAL`, not just a verdict
//!
//! A [`Mode::Select`] engine performs the paper's §1 full-evaluation
//! extension: alongside the verdicts it emits one [`Match`] per node
//! `FULLEVAL(Q, D)` selects — with the element's document-order
//! ordinal and its source byte [`fx_xml::Span`] — *the moment the
//! frontier resolves its ancestor chain*, not at end-of-document.
//! Deliver them to your own [`MatchSink`] (any `FnMut(Match)` closure
//! works) or collect them:
//!
//! ```
//! use fx_engine::{Engine, Match, Mode};
//!
//! let engine = Engine::builder()
//!     .query_str("//item[price > 300]/name")
//!     .mode(Mode::Select)
//!     .build()
//!     .unwrap();
//!
//! let xml = "<r><item><price>400</price><name>gold</name></item>\
//!            <item><price>10</price><name>tin</name></item></r>";
//!
//! // Sink-driven: matches arrive as they are confirmed, mid-stream.
//! let mut names = Vec::new();
//! let mut session = engine.session();
//! session
//!     .run_reader_to(xml.as_bytes(), &mut |m: Match| {
//!         names.push(m.span.slice(xml).unwrap().to_string());
//!     })
//!     .unwrap();
//! assert_eq!(names, ["<name>gold</name>"]);
//!
//! // Or collected: the one-shot Outcome face of the same machinery.
//! let outcome = engine.select_str(xml).unwrap();
//! assert_eq!(outcome.total_matches(), 1);
//! assert_eq!(outcome.ordinals(0), vec![3]); // r=0 item=1 price=2 name=3
//! ```
//!
//! The only extra memory over pure filtering is the set of *unresolved*
//! candidate matches (tracked by [`Verdicts::peak_pending_positions`]),
//! which the paper's follow-up work (\[5\]) proves unavoidable for
//! full-fledged evaluation; matches in already-resolved subtrees are
//! emitted immediately and never buffered.
//!
//! ## Multi-query dissemination
//!
//! The XFilter-style selective-dissemination workload (\[1\] in the
//! paper) registers many standing queries and streams each arriving
//! document through all of them at once:
//!
//! ```
//! use fx_engine::Engine;
//! use fx_xpath::parse_query;
//!
//! let engine = Engine::builder()
//!     .queries(["/doc[title]", "/doc[price > 100]"].iter().map(|s| parse_query(s).unwrap()))
//!     .build()
//!     .unwrap();
//! let mut session = engine.session();
//! for xml in ["<doc><title>t</title></doc>", "<doc><price>150</price></doc>"] {
//!     let verdicts = session.run_reader(xml.as_bytes()).unwrap();
//!     assert_eq!(verdicts.matching().count(), 1);
//! }
//! ```
//!
//! In `Select` mode the bank stamps every match with the index of the
//! query that selected it, so one pass fans confirmed matches out to
//! per-query subscribers.
//!
//! For *large overlapping* banks, add
//! `.index(`[`IndexPolicy::SharedPrefix`]`)`: common predicate-free
//! query prefixes are canonicalized and merged into a trie evaluated
//! once per event ([`fx_core::IndexedBank`]), so per-event work scales
//! with the activated part of the bank instead of its size — same
//! verdicts, same routed matches, sublinear cost on dissemination
//! workloads.
//!
//! ## Layering
//!
//! | Piece | Role |
//! |---|---|
//! | [`Engine`] / [`EngineBuilder`] | Compiles and validates a query bank against a [`Backend`], [`Mode`] and [`IndexPolicy`] |
//! | [`Session`] | Per-document (reusable) evaluation state: `push` / `finish` / `run_reader`, plus the `_to` sink-driven variants |
//! | [`Evaluator`] | The uniform boolean-streaming-filter interface every backend implements |
//! | [`Verdicts`] / [`Outcome`] | Per-query outcomes (and match lists) plus the paper's logical-memory measures |
//! | [`Match`] / [`MatchSink`] / [`MatchCollector`] | The incremental selection output surface |
//! | [`EngineError`] | One `std::error::Error` for everything the above can reject |
//!
//! The [`Evaluator`] trait lived in `fx_automata` as
//! `BooleanStreamFilter` before this crate existed; it now sits at the
//! engine layer, where the paper's algorithm ([`fx_core::StreamFilter`]),
//! the three automata baselines, and the legacy multi-query bank all
//! implement it.

#![warn(missing_docs)]

mod builder;
mod error;
mod evaluator;
mod session;
mod sharded;

pub use builder::{Backend, Engine, EngineBuilder, IndexPolicy, Mode};
pub use error::EngineError;
pub use evaluator::Evaluator;
pub use fx_core::{IndexSpaceStats, Match, MatchSink};
pub use session::{MatchCollector, Outcome, Session, Verdicts};
pub use sharded::{BankShardedOutcome, BatchRing};
