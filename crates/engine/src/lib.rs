//! # fx-engine
//!
//! The canonical public API of the `frontier-xpath` workspace: a
//! *true-streaming* engine for evaluating banks of Forward XPath filters
//! over XML documents in the near-optimal memory of
//! *Bar-Yossef, Fontoura, Josifovski — On the Memory Requirements of
//! XPath Evaluation over XML Streams* (PODS 2004 / JCSS 2007).
//!
//! The paper's contribution is that filtering needs only
//! `O(FS(Q)·log d)` bits — so the engine's surface never requires a
//! materialized `Vec<Event>`. Documents arrive either event-by-event
//! through [`Session::push`] or straight from any [`std::io::Read`]
//! through [`Session::run_reader`], which drives the pull-based
//! [`fx_xml::EventIter`] so memory stays bounded by the read buffer plus
//! the filter state regardless of document size.
//!
//! ## Quick start
//!
//! ```
//! use fx_engine::{Backend, Engine};
//!
//! let engine = Engine::builder()
//!     .query_str("/a[c[.//e and f] and b > 5]")
//!     .backend(Backend::Frontier)
//!     .build()
//!     .unwrap();
//!
//! // Stream a document from any `io::Read` — never materialized.
//! let verdicts = engine.run_reader("<a><c><e/><f/></c><b>6</b></a>".as_bytes()).unwrap();
//! assert!(verdicts.any());
//! ```
//!
//! ## Multi-query dissemination
//!
//! The XFilter-style selective-dissemination workload ([1] in the
//! paper) registers many standing queries and streams each arriving
//! document through all of them at once:
//!
//! ```
//! use fx_engine::Engine;
//! use fx_xpath::parse_query;
//!
//! let engine = Engine::builder()
//!     .queries(["/doc[title]", "/doc[price > 100]"].iter().map(|s| parse_query(s).unwrap()))
//!     .build()
//!     .unwrap();
//! let mut session = engine.session();
//! for xml in ["<doc><title>t</title></doc>", "<doc><price>150</price></doc>"] {
//!     let verdicts = session.run_reader(xml.as_bytes()).unwrap();
//!     assert_eq!(verdicts.matching_queries().len(), 1);
//! }
//! ```
//!
//! ## Layering
//!
//! | Piece | Role |
//! |---|---|
//! | [`Engine`] / [`EngineBuilder`] | Compiles and validates a query bank against a [`Backend`] |
//! | [`Session`] | Per-document (reusable) evaluation state: `push` / `finish` / `run_reader` |
//! | [`Evaluator`] | The uniform boolean-streaming-filter interface every backend implements |
//! | [`Verdicts`] | Per-query outcomes plus the paper's logical-memory measure |
//! | [`EngineError`] | One `std::error::Error` for everything the above can reject |
//!
//! The [`Evaluator`] trait lived in `fx_automata` as
//! `BooleanStreamFilter` before this crate existed; it now sits at the
//! engine layer, where the paper's algorithm ([`fx_core::StreamFilter`]),
//! the three automata baselines, and the legacy multi-query bank all
//! implement it.

#![warn(missing_docs)]

mod builder;
mod error;
mod evaluator;
mod session;

pub use builder::{Backend, Engine, EngineBuilder};
pub use error::EngineError;
pub use evaluator::Evaluator;
pub use session::{Session, Verdicts};
