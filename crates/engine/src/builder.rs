//! [`Engine`] and its builder: compile-once, stream-many query banks.

use crate::error::EngineError;
use crate::session::{Outcome, Session, SessionInner, Verdicts};
use fx_core::{CompiledQuery, IndexedBank, StreamFilter};
use fx_xml::{Event, Symbols};
use fx_xpath::{parse_query, Query};
use std::io::Read;
use std::sync::Arc;

/// What a built [`Engine`] produces for each document.
///
/// | Mode | Output | Extra memory over filtering |
/// |---|---|---|
/// | `Filter` | boolean [`Verdicts`] only | none — the paper's `O(FS(Q)·log d)` bits |
/// | `Select` | verdicts **plus** a stream of [`crate::Match`]es | the unresolved-candidate buffer the paper's follow-up (\[5\]) proves unavoidable |
///
/// In `Select` mode every confirmed output node of `FULLEVAL(Q, D)` is
/// delivered to a [`crate::MatchSink`] the moment its ancestor chain
/// resolves — before the rest of the document streams — with its
/// document-order ordinal and source byte [`fx_xml::Span`]. Selection
/// requires [`Backend::Frontier`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Mode {
    /// Boolean filtering (the default): `BOOLEVAL_Q` per query.
    #[default]
    Filter,
    /// Full-fledged evaluation: incremental `FULLEVAL_Q` match streams
    /// alongside the verdicts.
    Select,
}

/// Which evaluation algorithm a built [`Engine`] runs.
///
/// All four implement [`crate::Evaluator`]; they differ in supported
/// fragment and in the memory/time trade-off the paper studies:
///
/// | Backend | Fragment | Memory |
/// |---|---|---|
/// | `Frontier` | univariate conjunctive Forward XPath | `O(|Q|·r·log d)` bits (Thm 8.8) — the paper's algorithm |
/// | `Nfa` | linear paths | `O(d·|Q|)` bits |
/// | `LazyDfa` | linear paths | up to `2^|Q|` transition-table states |
/// | `Buffering` | anything the reference evaluator handles | `Θ(|D|)` bits |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// The paper's Section-8 frontier algorithm (the default).
    #[default]
    Frontier,
    /// Lazily-determinized DFA (Green et al. style).
    LazyDfa,
    /// NFA with a run-time stack of state sets (XFilter/YFilter style).
    Nfa,
    /// Buffer the document, evaluate at `EndDocument` (the strawman).
    Buffering,
}

/// How a multi-query [`Engine`] organizes its bank.
///
/// | Policy | Per-event cost | When to use |
/// |---|---|---|
/// | `None` | Θ(n) — one independent filter per query | small banks, maximal per-query statistics fidelity |
/// | `SharedPrefix` | O(shared trie records + live residual instances) | large banks of overlapping queries (dissemination) |
///
/// `SharedPrefix` canonicalizes each query's step chain
/// (`fx_analysis::canonical_steps`), shares the evaluation of common
/// predicate-free prefixes in one trie walked once per event, and keeps
/// per-query state only below *activated* divergence points — see
/// [`fx_core::IndexedBank`]. Verdicts and routed matches are identical
/// to the naive bank (proven by `tests/indexed_differential.rs`); only
/// the work sharing differs. Requires [`Backend::Frontier`].
///
/// Two further sharing layers ride on the index. **Shared residuals**:
/// the remainder of a query below its prefix is compiled once per
/// *canonical residual form* (`fx_analysis::canonical_residual_key`) and
/// held behind an `Arc`, shared across all groups whose remainders
/// render identically — even groups on different trie paths — so
/// activating a divergence point spawns an instance with a refcount
/// bump, never a recompilation or deep clone. **Attributed space**: the
/// shared trie's and each group's peak bits are split evenly across
/// their sharers into [`crate::Verdicts::peak_memory_bits`], summing exactly to
/// the bank total, so indexed and naive sessions report comparable
/// per-query space; the bank-level breakdown (shared-trie bits, residual
/// bits, activation rate, pool size) is on
/// [`crate::Session::index_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum IndexPolicy {
    /// One independent [`StreamFilter`] per query (the default).
    #[default]
    None,
    /// The shared-prefix indexed bank ([`fx_core::IndexedBank`]).
    SharedPrefix,
}

/// Builds an [`Engine`]: accumulate queries, pick a [`Backend`], then
/// [`EngineBuilder::build`] validates everything up front so sessions
/// can be spawned infallibly.
#[derive(Debug, Default)]
#[must_use = "builders do nothing until `.build()` is called"]
pub struct EngineBuilder {
    queries: Vec<Query>,
    backend: Backend,
    mode: Mode,
    index: IndexPolicy,
    /// First query-string parse failure, surfaced at `build()` so the
    /// fluent chain stays ergonomic.
    deferred: Option<EngineError>,
}

impl EngineBuilder {
    /// Registers one parsed query.
    pub fn query(mut self, q: Query) -> EngineBuilder {
        self.queries.push(q);
        self
    }

    /// Registers a query from XPath source text; a parse failure is
    /// reported by `build()` with this query's index.
    pub fn query_str(mut self, src: &str) -> EngineBuilder {
        match parse_query(src) {
            Ok(q) => self.queries.push(q),
            Err(source) => {
                if self.deferred.is_none() {
                    self.deferred = Some(EngineError::QueryParse {
                        index: self.queries.len(),
                        source,
                    });
                }
            }
        }
        self
    }

    /// Registers many parsed queries.
    pub fn queries(mut self, qs: impl IntoIterator<Item = Query>) -> EngineBuilder {
        self.queries.extend(qs);
        self
    }

    /// Selects the evaluation backend (default: [`Backend::Frontier`]).
    pub fn backend(mut self, backend: Backend) -> EngineBuilder {
        self.backend = backend;
        self
    }

    /// Selects what the engine produces (default: [`Mode::Filter`]).
    /// [`Mode::Select`] additionally streams confirmed matches and
    /// requires [`Backend::Frontier`].
    pub fn mode(mut self, mode: Mode) -> EngineBuilder {
        self.mode = mode;
        self
    }

    /// Shorthand for `.mode(Mode::Select)`.
    pub fn select(self) -> EngineBuilder {
        self.mode(Mode::Select)
    }

    /// Selects how the multi-query bank is organized (default:
    /// [`IndexPolicy::None`]). [`IndexPolicy::SharedPrefix`] makes
    /// per-event work scale with the *activated* part of the bank
    /// instead of its size; it requires [`Backend::Frontier`].
    pub fn index(mut self, policy: IndexPolicy) -> EngineBuilder {
        self.index = policy;
        self
    }

    /// Validates every query against the chosen backend and mode, and
    /// compiles what can be compiled ahead of time.
    pub fn build(self) -> Result<Engine, EngineError> {
        if let Some(e) = self.deferred {
            return Err(e);
        }
        if self.queries.is_empty() {
            return Err(EngineError::NoQueries);
        }
        if self.mode == Mode::Select && self.backend != Backend::Frontier {
            return Err(EngineError::SelectionUnsupported {
                backend: self.backend,
            });
        }
        if self.index == IndexPolicy::SharedPrefix && self.backend != Backend::Frontier {
            return Err(EngineError::IndexUnsupported {
                backend: self.backend,
            });
        }
        // One symbol table per engine: queries compile against it, the
        // indexed bank's trie resolves against it, and every session's
        // parser interns document names into it — so events and node
        // tests meet as equal integers with no per-event conversion.
        let symbols = Arc::new(Symbols::new());
        // Seed the table with every query's name vocabulary up front,
        // for *all* backends — Frontier compilation would intern these
        // anyway, but the automata and buffering backends compile
        // nothing against the table, and the lookup-only frontends
        // (`Engine::html_source`, `Session::run_source`) rely on the
        // invariant that a name missing from the table cannot be part
        // of any query.
        for q in &self.queries {
            for id in q.all_nodes() {
                if let Some(fx_xpath::NodeTest::Name(n)) = q.ntest(id) {
                    symbols.intern(n);
                }
            }
        }
        let mut compiled = Vec::new();
        match self.backend {
            // Under IndexPolicy::SharedPrefix the indexed bank built
            // below is the sole compiler/validator (it checks every
            // query in order, with the same error indices), and indexed
            // sessions never read `compiled` — skip the duplicate pass.
            Backend::Frontier if self.index == IndexPolicy::None => {
                for (index, q) in self.queries.iter().enumerate() {
                    let c = CompiledQuery::compile_with(q, Arc::clone(&symbols))
                        .map_err(|source| EngineError::Unsupported { index, source })?;
                    if self.mode == Mode::Select {
                        c.reporting_supported()
                            .map_err(|source| EngineError::Unsupported { index, source })?;
                    }
                    compiled.push(Arc::new(c));
                }
            }
            Backend::Frontier => {}
            Backend::Nfa | Backend::LazyDfa => {
                for (index, q) in self.queries.iter().enumerate() {
                    let linear =
                        fx_automata::LinearPath::from_query(q).filter(|p| p.state_count() <= 128);
                    if linear.is_none() {
                        return Err(EngineError::BackendRequiresLinear {
                            index,
                            backend: self.backend,
                            query: fx_xpath::to_xpath(q),
                        });
                    }
                }
            }
            Backend::Buffering => {}
        }
        // The indexed bank is built once here (trie construction +
        // residual compilation) and cheaply cloned per session.
        let indexed = if self.index == IndexPolicy::SharedPrefix {
            let bank = if self.mode == Mode::Select {
                IndexedBank::new_reporting_with_symbols(&self.queries, Arc::clone(&symbols))
            } else {
                IndexedBank::new_with_symbols(&self.queries, Arc::clone(&symbols))
            }
            .map_err(|(index, source)| EngineError::Unsupported { index, source })?;
            Some(bank)
        } else {
            None
        };
        Ok(Engine {
            queries: self.queries,
            compiled,
            backend: self.backend,
            mode: self.mode,
            indexed,
            symbols,
        })
    }
}

/// A compiled, validated bank of streaming XPath filters.
///
/// The engine itself is immutable (and cheaply shareable across
/// threads for `Frontier`/`Buffering` backends); all per-document state
/// lives in the [`Session`]s it spawns.
#[derive(Debug, Clone)]
pub struct Engine {
    queries: Vec<Query>,
    /// Pre-compiled forms (Frontier backend only; other backends build
    /// their automata per session, which is cheap for linear paths),
    /// behind `Arc` so spawning a session is a reference-count bump per
    /// query — compiled state is pooled across every session of this
    /// engine, never cloned.
    compiled: Vec<Arc<CompiledQuery>>,
    backend: Backend,
    mode: Mode,
    /// The shared-prefix bank prototype ([`IndexPolicy::SharedPrefix`]
    /// only): trie and residuals prebuilt, cloned per session (the
    /// compiled residual pool inside is `Arc`-shared, so the clone is
    /// bookkeeping, not recompilation).
    indexed: Option<IndexedBank>,
    /// The engine-wide symbol table (see [`Engine::symbols`]).
    symbols: Arc<Symbols>,
}

impl Engine {
    /// Starts building an engine.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// The prebuilt shared-prefix bank prototype, for the sharded
    /// runners ([`IndexPolicy::SharedPrefix`] engines only).
    pub(crate) fn indexed_proto(&self) -> Option<&IndexedBank> {
        self.indexed.as_ref()
    }

    /// Number of registered queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True when no queries are registered (unreachable via the builder,
    /// which rejects empty banks).
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// The configured backend.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The configured output mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The configured bank organization.
    pub fn index_policy(&self) -> IndexPolicy {
        if self.indexed.is_some() {
            IndexPolicy::SharedPrefix
        } else {
            IndexPolicy::None
        }
    }

    /// The registered queries, in registration order.
    pub fn queries(&self) -> &[Query] {
        &self.queries
    }

    /// The engine-wide symbol table: every compiled node test is a sym
    /// from it, and every session's reader path interns document names
    /// into it. Hand it to `fx_xml::StreamingParser::with_symbols` when
    /// driving a session with hand-built parsers, so events arrive
    /// pre-interned and the banks skip per-event name lookups.
    pub fn symbols(&self) -> &Arc<Symbols> {
        &self.symbols
    }

    /// Opens a session: the mutable per-document evaluation state. A
    /// session may be reused for many documents in sequence (each
    /// `StartDocument` resets the filters), which is how the
    /// dissemination workload amortizes setup — and how the `LazyDfa`
    /// backend keeps its memoized transition table warm across documents.
    pub fn session(&self) -> Session {
        // Indexed engines run every session on a clone of the prebuilt
        // shared-prefix bank (filtering or reporting per the mode).
        if let Some(proto) = &self.indexed {
            return Session::new(
                SessionInner::Indexed(Box::new(proto.clone())),
                self.mode,
                Arc::clone(&self.symbols),
            );
        }
        // Selection sessions always run on a reporting bank (even with a
        // single query): the bank stamps every confirmed match with its
        // query index and routes it to the caller's sink. Spawning
        // shares the engine's compiled queries by reference — no clone.
        if self.mode == Mode::Select {
            let bank =
                fx_core::MultiFilter::from_shared_reporting(self.compiled.iter().map(Arc::clone))
                    .expect("reporting support validated at build()");
            return Session::new(
                SessionInner::Bank(bank),
                self.mode,
                Arc::clone(&self.symbols),
            );
        }
        // A multi-query Frontier session runs on the short-circuiting
        // bank; a single-query one keeps the bare filter so its space
        // statistics stay bit-for-bit identical to a legacy run. Either
        // way the compiled queries are pooled behind `Arc` — spawning a
        // session never recompiles or deep-clones them.
        if self.backend == Backend::Frontier && self.compiled.len() > 1 {
            return Session::new(
                SessionInner::Bank(fx_core::MultiFilter::from_shared(
                    self.compiled.iter().map(Arc::clone),
                )),
                self.mode,
                Arc::clone(&self.symbols),
            );
        }
        let evaluators: Vec<Box<dyn crate::Evaluator>> = match self.backend {
            Backend::Frontier => self
                .compiled
                .iter()
                .map(|c| {
                    Box::new(StreamFilter::from_shared(Arc::clone(c))) as Box<dyn crate::Evaluator>
                })
                .collect(),
            Backend::Nfa => self
                .queries
                .iter()
                .map(|q| {
                    Box::new(fx_automata::NfaFilter::new(q).expect("validated linear at build()"))
                        as Box<dyn crate::Evaluator>
                })
                .collect(),
            Backend::LazyDfa => self
                .queries
                .iter()
                .map(|q| {
                    Box::new(
                        fx_automata::LazyDfaFilter::new(q).expect("validated linear at build()"),
                    ) as Box<dyn crate::Evaluator>
                })
                .collect(),
            Backend::Buffering => self
                .queries
                .iter()
                .map(|q| {
                    Box::new(fx_automata::BufferingFilter::new(q)) as Box<dyn crate::Evaluator>
                })
                .collect(),
        };
        Session::new(
            SessionInner::Each(evaluators),
            self.mode,
            Arc::clone(&self.symbols),
        )
    }

    /// One-shot convenience: stream a document from a reader through a
    /// fresh session. Use [`Engine::session`] directly to amortize
    /// session setup over many documents.
    pub fn run_reader<R: Read>(&self, reader: R) -> Result<Verdicts, EngineError> {
        self.session().run_reader(reader)
    }

    /// One-shot convenience over an in-memory XML string. The string is
    /// still *streamed* (via [`fx_xml::EventIter`] over its bytes), not
    /// materialized into events.
    pub fn run_str(&self, xml: &str) -> Result<Verdicts, EngineError> {
        self.run_reader(xml.as_bytes())
    }

    /// One-shot convenience over pre-materialized events, for callers
    /// migrating from the legacy `&[Event]` batch surface.
    pub fn run_events(&self, events: &[Event]) -> Result<Verdicts, EngineError> {
        let mut session = self.session();
        for e in events {
            session.push(e);
        }
        session.finish()
    }

    /// One-shot selection: streams a document from a reader through a
    /// fresh session and returns the full [`Outcome`] — verdicts plus
    /// the per-query match lists. Meaningful on a [`Mode::Select`]
    /// engine; a filtering engine returns empty match lists.
    ///
    /// To consume matches *as they are confirmed* (rather than collected
    /// at the end), open a session and use
    /// [`Session::run_reader_to`] with your own [`crate::MatchSink`].
    pub fn select_reader<R: Read>(&self, reader: R) -> Result<Outcome, EngineError> {
        self.session().run_reader_outcome(reader)
    }

    /// [`Engine::select_reader`] over an in-memory XML string (still
    /// streamed, never materialized into events).
    pub fn select_str(&self, xml: &str) -> Result<Outcome, EngineError> {
        self.select_reader(xml.as_bytes())
    }

    /// An HTML-soup frontend bound to this engine: a lenient
    /// [`fx_html::HtmlParser`] sharing the engine's symbol table in
    /// lookup-only mode, so document names outside the query vocabulary
    /// never grow the table. Reuse it across documents with
    /// [`Session::run_source`] to keep its scratch buffers warm.
    pub fn html_source(&self) -> fx_html::HtmlParser {
        fx_html::HtmlParser::with_symbols(Arc::clone(&self.symbols)).lookup_only()
    }

    /// A streaming-JSON frontend bound to this engine: an
    /// [`fx_json::JsonParser`] sharing the engine's symbol table in
    /// lookup-only mode (see [`Engine::html_source`]).
    pub fn json_source(&self) -> fx_json::JsonParser {
        fx_json::JsonParser::with_symbols(Arc::clone(&self.symbols)).lookup_only()
    }

    /// A newline-delimited-JSON frontend bound to this engine: an
    /// [`fx_json::NdjsonParser`] sharing the engine's symbol table in
    /// lookup-only mode. The stream is a *document sequence* — each
    /// non-blank line is framed as its own document — so drive it
    /// through a reused session ([`Session::run_source`]) and the
    /// session's verdicts reflect the **last** record, while match
    /// sinks and collected outcomes see **every** record's matches,
    /// with stream-global spans that slice the original NDJSON input.
    pub fn ndjson_source(&self) -> fx_json::NdjsonParser {
        fx_json::NdjsonParser::with_symbols(Arc::clone(&self.symbols)).lookup_only()
    }

    /// One-shot convenience: stream an HTML document from a reader
    /// through a fresh session and the lenient soup tokenizer. HTML
    /// never fails structurally, so the only errors are I/O and
    /// invalid UTF-8.
    pub fn filter_html_reader<R: Read>(&self, reader: R) -> Result<Verdicts, EngineError> {
        self.session().run_source(&mut self.html_source(), reader)
    }

    /// One-shot HTML selection: [`Engine::select_reader`] through the
    /// soup tokenizer, returning verdicts plus per-query matches whose
    /// spans index the HTML source bytes.
    pub fn select_html_reader<R: Read>(&self, reader: R) -> Result<Outcome, EngineError> {
        self.session()
            .run_source_outcome(&mut self.html_source(), reader)
    }

    /// One-shot convenience: stream a JSON document from a reader
    /// through a fresh session and the JSON→element mapping (objects as
    /// elements, keys as QNames, array items as repeated children —
    /// see `fx_json`). Malformed JSON is a [`ParseError`] wrapped in
    /// [`EngineError::Parse`].
    ///
    /// [`ParseError`]: fx_xml::ParseError
    pub fn filter_json_reader<R: Read>(&self, reader: R) -> Result<Verdicts, EngineError> {
        self.session().run_source(&mut self.json_source(), reader)
    }

    /// One-shot JSON selection: verdicts plus per-query matches whose
    /// spans index the JSON source bytes (an element match spans its
    /// originating value token onward — see `fx_json`'s span rules).
    pub fn select_json_reader<R: Read>(&self, reader: R) -> Result<Outcome, EngineError> {
        self.session()
            .run_source_outcome(&mut self.json_source(), reader)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_validates_per_backend() {
        // Twig queries compile on Frontier…
        let e = Engine::builder().query_str("/a[b and c]").build().unwrap();
        assert_eq!(e.backend(), Backend::Frontier);
        assert_eq!(e.len(), 1);

        // …but the automata backends demand linear paths.
        let err = Engine::builder()
            .query_str("/a[b and c]")
            .backend(Backend::Nfa)
            .build()
            .unwrap_err();
        assert!(
            matches!(err, EngineError::BackendRequiresLinear { index: 0, .. }),
            "{err}"
        );

        // Buffering takes anything, including non-streamable queries.
        Engine::builder()
            .query_str("/a[not(b)]")
            .backend(Backend::Buffering)
            .build()
            .unwrap();

        // Frontier rejects non-streamable queries with the index.
        let err = Engine::builder()
            .query_str("/a[b]")
            .query_str("/a[not(b)]")
            .build()
            .unwrap_err();
        assert!(
            matches!(err, EngineError::Unsupported { index: 1, .. }),
            "{err}"
        );
    }

    #[test]
    fn selection_mode_validates_backend_and_output() {
        // Selection runs only on the paper's algorithm…
        let err = Engine::builder()
            .query_str("/a/b")
            .backend(Backend::Nfa)
            .mode(Mode::Select)
            .build()
            .unwrap_err();
        assert!(
            matches!(
                err,
                EngineError::SelectionUnsupported {
                    backend: Backend::Nfa
                }
            ),
            "{err}"
        );

        // …and needs an element output node (attributes carry no
        // element ordinal), reported with the query's index.
        let err = Engine::builder()
            .query_str("/a/b")
            .query_str("/a/@id")
            .select()
            .build()
            .unwrap_err();
        assert!(
            matches!(err, EngineError::Unsupported { index: 1, .. }),
            "{err}"
        );

        // A valid selection bank reports its mode.
        let e = Engine::builder()
            .query_str("//a[b]/c")
            .select()
            .build()
            .unwrap();
        assert_eq!(e.mode(), Mode::Select);
        assert_eq!(e.session().mode(), Mode::Select);
    }

    #[test]
    fn indexed_sessions_agree_with_naive_sessions() {
        let srcs = [
            "/site/regions/asia/item",
            "/site/regions/asia/item[price > 100]",
            "/site/regions/europe/item",
            "/doc[title]",
        ];
        let naive = Engine::builder()
            .queries(srcs.iter().map(|s| fx_xpath::parse_query(s).unwrap()))
            .build()
            .unwrap();
        let indexed = Engine::builder()
            .queries(srcs.iter().map(|s| fx_xpath::parse_query(s).unwrap()))
            .index(IndexPolicy::SharedPrefix)
            .build()
            .unwrap();
        assert_eq!(indexed.index_policy(), IndexPolicy::SharedPrefix);
        assert_eq!(naive.index_policy(), IndexPolicy::None);
        let mut s1 = naive.session();
        let mut s2 = indexed.session();
        for xml in [
            "<site><regions><asia><item><price>150</price></item></asia></regions></site>",
            "<doc><title>t</title></doc>",
            "<other/>",
        ] {
            let v1 = s1.run_reader(xml.as_bytes()).unwrap();
            let v2 = s2.run_reader(xml.as_bytes()).unwrap();
            assert_eq!(v1.matched(), v2.matched(), "{xml}");
        }
    }

    #[test]
    fn indexed_selection_routes_identical_matches() {
        let srcs = ["/doc/item", "//note"];
        let build = |policy| {
            Engine::builder()
                .queries(srcs.iter().map(|s| fx_xpath::parse_query(s).unwrap()))
                .select()
                .index(policy)
                .build()
                .unwrap()
        };
        let xml = "<doc><item/><note/><item/></doc>";
        let naive = build(IndexPolicy::None).select_str(xml).unwrap();
        let indexed = build(IndexPolicy::SharedPrefix).select_str(xml).unwrap();
        assert_eq!(naive.verdicts().matched(), indexed.verdicts().matched());
        for q in 0..srcs.len() {
            assert_eq!(naive.ordinals(q), indexed.ordinals(q), "query #{q}");
        }
    }

    #[test]
    fn index_requires_frontier_backend() {
        let err = Engine::builder()
            .query_str("/a/b")
            .backend(Backend::Nfa)
            .index(IndexPolicy::SharedPrefix)
            .build()
            .unwrap_err();
        assert!(
            matches!(
                err,
                EngineError::IndexUnsupported {
                    backend: Backend::Nfa
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn builder_rejects_empty_and_bad_sources() {
        assert!(matches!(
            Engine::builder().build(),
            Err(EngineError::NoQueries)
        ));
        let err = Engine::builder().query_str("///").build().unwrap_err();
        assert!(
            matches!(err, EngineError::QueryParse { index: 0, .. }),
            "{err}"
        );
    }

    #[test]
    fn html_and_json_frontends_share_the_engine() {
        let e = Engine::builder().query_str("//li").build().unwrap();
        let before = e.symbols().len();
        let v = e
            .filter_html_reader("<UL><li>a<li>b</ul>".as_bytes())
            .unwrap();
        assert!(v.any());
        assert!(!e
            .filter_html_reader("<p>no lists</p>".as_bytes())
            .unwrap()
            .any());
        // Lookup-only sources never grow the engine table, even over
        // documents full of names outside the query vocabulary.
        assert_eq!(e.symbols().len(), before);

        let e = Engine::builder()
            .query_str("/json/user/name")
            .build()
            .unwrap();
        assert!(e
            .filter_json_reader(r#"{"user":{"name":"ada"}}"#.as_bytes())
            .unwrap()
            .any());
        assert!(!e
            .filter_json_reader(r#"{"user":{"id":7}}"#.as_bytes())
            .unwrap()
            .any());
        // Malformed JSON is a parse error, not soup.
        assert!(matches!(
            e.filter_json_reader("{broken".as_bytes()),
            Err(EngineError::Parse(_))
        ));
    }

    #[test]
    fn frontend_selection_reports_source_spans() {
        let e = Engine::builder()
            .query_str("//li")
            .select()
            .build()
            .unwrap();
        let html = "<ul><li>a<li>b</ul>";
        let out = e.select_html_reader(html.as_bytes()).unwrap();
        assert!(out.verdicts().matched()[0]);
        let spans: Vec<_> = out
            .matches(0)
            .iter()
            .map(|m| m.span.slice(html).unwrap())
            .collect();
        // A match span covers the element from its start tag through
        // its (here implied) close.
        assert_eq!(spans, vec!["<li>a", "<li>b"]);

        let e = Engine::builder()
            .query_str("/json/tags")
            .select()
            .build()
            .unwrap();
        let out = e
            .select_json_reader(r#"{"tags":[1,2,3]}"#.as_bytes())
            .unwrap();
        assert_eq!(out.matches(0).len(), 3);
    }

    #[test]
    fn each_sessions_take_the_owned_fallback_for_frontends() {
        // The automata backends have no interned surface: run_source
        // materializes owned events, collapsing names a lookup-only
        // source could not resolve to a sentinel outside any query
        // vocabulary. Verdicts must agree with the frontier backend.
        let html = "<div><ul><li>x</li></ul></div>";
        for backend in [Backend::Frontier, Backend::Nfa, Backend::LazyDfa] {
            let e = Engine::builder()
                .query_str("//li")
                .backend(backend)
                .build()
                .unwrap();
            let mut session = e.session();
            let v = session
                .run_source(&mut e.html_source(), html.as_bytes())
                .unwrap();
            assert!(v.any(), "{backend:?}");
            let v = session
                .run_source(&mut e.html_source(), "<div><p>x</p></div>".as_bytes())
                .unwrap();
            assert!(!v.any(), "{backend:?}");
        }
    }

    #[test]
    fn a_source_with_a_foreign_table_still_evaluates() {
        let e = Engine::builder().query_str("/json/a").build().unwrap();
        // An interning parser over its own table: syms are meaningless
        // to the engine, so the session re-resolves per event.
        let mut source = fx_json::JsonParser::new();
        let v = e
            .session()
            .run_source(&mut source, r#"{"a": 1}"#.as_bytes())
            .unwrap();
        assert!(v.any());
        assert!(!Arc::ptr_eq(source.symbols(), e.symbols()));
    }

    #[test]
    fn all_four_backends_agree_on_a_linear_query() {
        let xml = "<a><x><b/></x><a><b/></a></a>";
        let mut verdicts = Vec::new();
        for backend in [
            Backend::Frontier,
            Backend::Nfa,
            Backend::LazyDfa,
            Backend::Buffering,
        ] {
            let engine = Engine::builder()
                .query_str("//a/b")
                .backend(backend)
                .build()
                .unwrap();
            verdicts.push(engine.run_str(xml).unwrap().any());
        }
        assert_eq!(verdicts, vec![true; 4]);
    }
}
