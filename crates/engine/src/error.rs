//! The engine's unified error type.
//!
//! Every layer below the engine has its own precise error
//! (`fx_xpath::QueryParseError`, `fx_core::UnsupportedQuery`,
//! `fx_xml::ParseError`, …), all of which implement `std::error::Error`.
//! [`EngineError`] is the composition point: it wraps each of them with
//! enough context (query index, chosen backend) to act on, implements
//! `source()` chaining, and converts via `?` through `From`.

use crate::builder::Backend;
use fx_core::UnsupportedQuery;
use fx_xml::ParseError;
use fx_xpath::QueryParseError;
use std::fmt;

/// Everything the engine can reject, as one `std::error::Error`.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EngineError {
    /// `build()` was called on a builder with no queries.
    NoQueries,
    /// A query source string did not parse as Forward XPath.
    QueryParse {
        /// Position of the query among the builder's additions.
        index: usize,
        /// The parser's error.
        source: QueryParseError,
    },
    /// A query lies outside the fragment the selected backend supports.
    Unsupported {
        /// Position of the query among the builder's additions.
        index: usize,
        /// Why the streaming filter rejected it.
        source: UnsupportedQuery,
    },
    /// The backend only handles linear (predicate-free) path queries.
    BackendRequiresLinear {
        /// Position of the query among the builder's additions.
        index: usize,
        /// The backend that rejected it.
        backend: Backend,
        /// The query, rendered back to XPath.
        query: String,
    },
    /// Selection mode was requested on a backend that cannot report
    /// matched positions.
    SelectionUnsupported {
        /// The backend that only computes boolean verdicts.
        backend: Backend,
    },
    /// A shared-prefix index was requested on a backend other than the
    /// paper's frontier algorithm.
    IndexUnsupported {
        /// The backend that has no indexed bank.
        backend: Backend,
    },
    /// The document stream was malformed XML (or unreadable).
    Parse(ParseError),
    /// `finish()` was called before `EndDocument` was seen.
    IncompleteDocument,
    /// Bank sharding was requested on an engine without a shared-prefix
    /// index.
    ShardingRequiresIndex,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::NoQueries => write!(f, "engine built with no queries"),
            EngineError::QueryParse { index, source } => {
                write!(f, "query #{index} does not parse: {source}")
            }
            EngineError::Unsupported { index, source } => {
                write!(
                    f,
                    "query #{index} is outside the streamable fragment: {source}"
                )
            }
            EngineError::BackendRequiresLinear {
                index,
                backend,
                query,
            } => {
                write!(
                    f,
                    "query #{index} (`{query}`) is outside the {backend:?} backend's fragment \
                     (linear predicate-free paths of at most 127 steps, no attributes); \
                     use Backend::Frontier"
                )
            }
            EngineError::SelectionUnsupported { backend } => {
                write!(
                    f,
                    "selection (Mode::Select) requires Backend::Frontier — the paper's \
                     algorithm is the one extended to full-fledged evaluation; \
                     {backend:?} only computes boolean verdicts"
                )
            }
            EngineError::IndexUnsupported { backend } => {
                write!(
                    f,
                    "IndexPolicy::SharedPrefix requires Backend::Frontier — the indexed \
                     bank shares frontier-table segments across queries; {backend:?} has \
                     no such structure"
                )
            }
            EngineError::Parse(e) => write!(f, "document stream: {e}"),
            EngineError::IncompleteDocument => {
                write!(f, "finish() called before EndDocument was pushed")
            }
            EngineError::ShardingRequiresIndex => {
                write!(
                    f,
                    "bank sharding partitions the shared-prefix trie's query groups; \
                     build the engine with .index(IndexPolicy::SharedPrefix)"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::QueryParse { source, .. } => Some(source),
            EngineError::Unsupported { source, .. } => Some(source),
            EngineError::Parse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseError> for EngineError {
    fn from(e: ParseError) -> EngineError {
        EngineError::Parse(e)
    }
}

/// Preserves the legacy `MultiFilter::new` error shape — an index plus
/// the per-query rejection.
impl From<(usize, UnsupportedQuery)> for EngineError {
    fn from((index, source): (usize, UnsupportedQuery)) -> EngineError {
        EngineError::Unsupported { index, source }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn displays_and_chains_sources() {
        let parse_err = fx_xml::parse("<a><b></a>").unwrap_err();
        let e: EngineError = parse_err.clone().into();
        assert!(e.to_string().contains("document stream"));
        assert_eq!(e.source().unwrap().to_string(), parse_err.to_string());

        let q = fx_xpath::parse_query("/a[not(b)]").unwrap();
        let unsupported = fx_core::CompiledQuery::compile(&q).unwrap_err();
        let e: EngineError = (3usize, unsupported).into();
        assert!(e.to_string().contains("query #3"), "{e}");
        assert!(e.source().is_some());
    }

    #[test]
    fn question_mark_composes() {
        fn parse_doc(xml: &str) -> Result<Vec<fx_xml::Event>, EngineError> {
            Ok(fx_xml::parse(xml)?)
        }
        assert!(parse_doc("<a/>").is_ok());
        assert!(matches!(parse_doc("<a>"), Err(EngineError::Parse(_))));
    }
}
