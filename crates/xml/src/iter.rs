//! A pull-based event source: [`EventIter`] adapts any [`std::io::Read`]
//! into an `Iterator<Item = Result<Event, ParseError>>`, driving the
//! incremental [`StreamingParser`] one fixed-size chunk at a time.
//!
//! This is the inversion of [`crate::parse_reader`]'s push model: instead
//! of handing events to a callback, the consumer *pulls* them, which is
//! what lets the engine layer compose filters, sessions, and event
//! sources without ever materializing a `Vec<Event>`. Memory is bounded
//! by the read buffer plus the largest single XML token, independent of
//! document size — the setting the paper's space bounds are about.
//!
//! ```
//! use fx_xml::{Event, EventIter};
//!
//! let doc = "<a><b>6</b></a>";
//! let events: Vec<Event> = EventIter::new(doc.as_bytes())
//!     .collect::<Result<_, _>>()
//!     .unwrap();
//! assert_eq!(events, fx_xml::parse(doc).unwrap());
//! ```

use crate::event::Event;
use crate::parser::ParseError;
use crate::reader::StreamingParser;
use crate::span::Span;
use std::collections::VecDeque;
use std::io::Read;

/// Default read-chunk size in bytes.
const DEFAULT_CHUNK: usize = 8 * 1024;

/// An iterator of SAX events pulled from a byte stream.
///
/// The iterator is fused around errors: after yielding `Err(_)` once it
/// yields `None` forever. `EndDocument` is emitted when the underlying
/// reader reaches EOF and the document is complete.
#[derive(Debug)]
pub struct EventIter<R: Read> {
    reader: R,
    parser: StreamingParser,
    pending: VecDeque<(Event, Span)>,
    /// Incomplete UTF-8 tail carried between reads.
    carry: Vec<u8>,
    /// Reused read buffer (allocated once, not per refill).
    chunk: Vec<u8>,
    /// A parse/read error waiting to be yielded once `pending` drains:
    /// events completed before the fault are delivered first, so the
    /// prefix a consumer sees does not depend on the chunk size.
    error: Option<ParseError>,
    eof: bool,
    failed: bool,
}

impl<R: Read> EventIter<R> {
    /// Wraps a reader with the default chunk size.
    pub fn new(reader: R) -> EventIter<R> {
        EventIter::with_chunk_size(reader, DEFAULT_CHUNK)
    }

    /// Wraps a reader, reading `chunk_size` bytes at a time (minimum 4,
    /// so a UTF-8 scalar always fits).
    pub fn with_chunk_size(reader: R, chunk_size: usize) -> EventIter<R> {
        EventIter {
            reader,
            parser: StreamingParser::new(),
            pending: VecDeque::new(),
            carry: Vec::new(),
            chunk: vec![0u8; chunk_size.max(4)],
            error: None,
            eof: false,
            failed: false,
        }
    }

    /// Keeps whitespace-only text nodes (dropped by default, matching
    /// [`crate::parse`]).
    pub fn keep_whitespace(mut self) -> EventIter<R> {
        self.parser = self.parser.keep_whitespace();
        self
    }

    /// Pulls the next event together with its source byte [`Span`].
    ///
    /// Spans are stream offsets: chunk boundaries never shift them, so
    /// a consumer can seek back into the original byte source (or slice
    /// an in-memory document) to recover the matched region.
    pub fn next_spanned(&mut self) -> Option<Result<(Event, Span), ParseError>> {
        if self.failed {
            return None;
        }
        if self.pending.is_empty() && self.error.is_none() {
            if let Err(e) = self.pump() {
                self.error = Some(e);
            }
        }
        if let Some(item) = self.pending.pop_front() {
            return Some(Ok(item));
        }
        if let Some(e) = self.error.take() {
            self.failed = true;
            return Some(Err(e));
        }
        None
    }

    /// Adapts this iterator to yield `(Event, Span)` pairs — the form
    /// the engine's selection mode consumes.
    pub fn spanned(self) -> SpannedEvents<R> {
        SpannedEvents(self)
    }

    /// Feeds `buf` (arbitrary byte boundary) to the parser, queuing every
    /// completed event.
    fn feed_bytes(&mut self, buf: &[u8], at_eof: bool) -> Result<(), ParseError> {
        let mut data = std::mem::take(&mut self.carry);
        data.extend_from_slice(buf);
        let valid_len = match std::str::from_utf8(&data) {
            Ok(_) => data.len(),
            Err(e) if e.error_len().is_none() && !at_eof => e.valid_up_to(),
            Err(e) => {
                return Err(ParseError {
                    message: format!("invalid UTF-8 in input: {e}"),
                    line: 0,
                    column: 0,
                })
            }
        };
        let text = std::str::from_utf8(&data[..valid_len]).expect("validated prefix");
        let pending = &mut self.pending;
        self.parser
            .feed_spanned(text, &mut |e, s| pending.push_back((e, s)))?;
        self.carry = data[valid_len..].to_vec();
        Ok(())
    }

    fn pump(&mut self) -> Result<(), ParseError> {
        // Move the buffer out for the duration of the loop so `read` and
        // `feed_bytes` can borrow `self` independently; no allocation.
        let mut buf = std::mem::take(&mut self.chunk);
        let result = self.pump_into(&mut buf);
        self.chunk = buf;
        result
    }

    fn pump_into(&mut self, buf: &mut [u8]) -> Result<(), ParseError> {
        while self.pending.is_empty() && !self.eof {
            let n = match self.reader.read(buf) {
                Ok(n) => n,
                // Retriable by std::io convention (cf. read_to_end):
                // a signal interrupted the read, not ended the stream.
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    return Err(ParseError {
                        message: format!("read error: {e}"),
                        line: 0,
                        column: 0,
                    })
                }
            };
            if n == 0 {
                self.eof = true;
                self.feed_bytes(&[], true)?;
                let pending = &mut self.pending;
                self.parser
                    .finish_spanned(&mut |e, s| pending.push_back((e, s)))?;
            } else {
                self.feed_bytes(&buf[..n], false)?;
            }
        }
        Ok(())
    }
}

impl<R: Read> Iterator for EventIter<R> {
    type Item = Result<Event, ParseError>;

    fn next(&mut self) -> Option<Result<Event, ParseError>> {
        Some(self.next_spanned()?.map(|(event, _span)| event))
    }
}

/// [`EventIter`] adapted to yield `(Event, Span)` pairs, from
/// [`EventIter::spanned`]. Fused around errors, like the plain iterator.
#[derive(Debug)]
pub struct SpannedEvents<R: Read>(EventIter<R>);

impl<R: Read> SpannedEvents<R> {
    /// Returns the underlying event iterator.
    pub fn into_inner(self) -> EventIter<R> {
        self.0
    }
}

impl<R: Read> Iterator for SpannedEvents<R> {
    type Item = Result<(Event, Span), ParseError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.0.next_spanned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use std::io::{Cursor, Read};

    #[test]
    fn yields_same_events_as_batch_parser() {
        let xml = r#"<a id="1"><b>x &amp; y</b><!-- note --><c/>tail</a>"#;
        for chunk in [1usize, 2, 3, 5, 7, 64, 8192] {
            let events: Vec<Event> = EventIter::with_chunk_size(Cursor::new(xml.as_bytes()), chunk)
                .collect::<Result<_, _>>()
                .unwrap();
            assert_eq!(events, parse(xml).unwrap(), "chunk size {chunk}");
        }
    }

    #[test]
    fn multibyte_utf8_split_across_chunks() {
        let xml = "<a>héllo • wörld</a>";
        for chunk in 1..=6usize {
            let events: Vec<Event> = EventIter::with_chunk_size(Cursor::new(xml.as_bytes()), chunk)
                .collect::<Result<_, _>>()
                .unwrap();
            assert_eq!(events, parse(xml).unwrap(), "chunk size {chunk}");
        }
    }

    #[test]
    fn error_then_fused() {
        let mut it = EventIter::new(Cursor::new(b"<a><b></a>".as_ref()));
        let mut saw_err = false;
        for item in it.by_ref() {
            if item.is_err() {
                saw_err = true;
                break;
            }
        }
        assert!(saw_err);
        assert!(it.next().is_none(), "iterator must fuse after an error");
    }

    #[test]
    fn events_before_an_error_are_yielded_regardless_of_chunk_size() {
        // `<a><b/><b></a>`: the first three element events are valid; the
        // mismatched end tag then faults. Every chunk size must deliver
        // the same valid prefix before the single Err.
        let bad = b"<a><b/><b></a>";
        let mut expected: Option<Vec<Event>> = None;
        for chunk in [1usize, 3, 8192] {
            let mut events = Vec::new();
            let mut errors = 0;
            for item in EventIter::with_chunk_size(Cursor::new(bad.as_ref()), chunk) {
                match item {
                    Ok(e) => events.push(e),
                    Err(_) => errors += 1,
                }
            }
            assert_eq!(errors, 1, "chunk size {chunk}");
            assert!(
                events.contains(&Event::start("b")),
                "valid prefix lost at chunk size {chunk}: {events:?}"
            );
            match &expected {
                None => expected = Some(events),
                Some(prev) => assert_eq!(&events, prev, "prefix differs at chunk size {chunk}"),
            }
        }
    }

    #[test]
    fn truncated_document_errors_at_eof() {
        let items: Vec<_> = EventIter::new(Cursor::new(b"<a><b>".as_ref())).collect();
        assert!(items.last().unwrap().is_err());
    }

    #[test]
    fn invalid_utf8_is_reported() {
        let bytes = b"<a>\xFF</a>";
        let items: Vec<_> = EventIter::new(Cursor::new(bytes.as_ref())).collect();
        assert!(items.iter().any(|i| i.is_err()));
    }

    #[test]
    fn constant_queue_memory_on_large_documents() {
        // The pull loop never holds more than one chunk's worth of events:
        // the queue drains fully between reads.
        let body: String = (0..5_000).map(|i| format!("<i>{i}</i>")).collect();
        let xml = format!("<r>{body}</r>");
        let mut it = EventIter::with_chunk_size(Cursor::new(xml.as_bytes()), 64);
        let mut count = 0usize;
        let mut max_queue = 0usize;
        while let Some(item) = it.next() {
            item.unwrap();
            count += 1;
            max_queue = max_queue.max(it.pending.len());
        }
        assert_eq!(count, 2 + 2 + 2 * 5_000 + 5_000); // docs + root + elements + texts
        assert!(max_queue < 64, "queue stayed chunk-bounded: {max_queue}");
    }

    #[test]
    fn spans_match_the_batch_parser_at_every_chunk_size() {
        let xml = r#"<a id="1"><b>x &amp; y</b><c/>tail</a>"#;
        let expected = crate::parser::parse_spanned(xml).unwrap();
        for chunk in [1usize, 2, 3, 5, 7, 64, 8192] {
            let got: Vec<(Event, crate::span::Span)> =
                EventIter::with_chunk_size(Cursor::new(xml.as_bytes()), chunk)
                    .spanned()
                    .collect::<Result<_, _>>()
                    .unwrap();
            assert_eq!(got, expected, "chunk size {chunk}");
        }
    }

    #[test]
    fn spans_survive_multibyte_chunk_splits() {
        // Offsets are byte offsets even when UTF-8 scalars straddle
        // chunk boundaries and are carried between reads.
        let xml = "<a>héllo</a>";
        for chunk in 1..=4usize {
            let got: Vec<(Event, crate::span::Span)> =
                EventIter::with_chunk_size(Cursor::new(xml.as_bytes()), chunk)
                    .spanned()
                    .collect::<Result<_, _>>()
                    .unwrap();
            for (event, span) in &got {
                if let Event::Text { content } = event {
                    assert_eq!(span.slice(xml), Some(content.as_str()), "chunk {chunk}");
                }
            }
            assert_eq!(got, crate::parser::parse_spanned(xml).unwrap());
        }
    }

    #[test]
    fn interrupted_reads_are_retried() {
        struct Flaky {
            data: &'static [u8],
            pos: usize,
            hiccup: bool,
        }
        impl Read for Flaky {
            fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
                if !self.hiccup {
                    self.hiccup = true;
                    return Err(std::io::Error::from(std::io::ErrorKind::Interrupted));
                }
                self.hiccup = false;
                let n = (self.data.len() - self.pos).min(out.len()).min(3);
                out[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
                self.pos += n;
                Ok(n)
            }
        }
        let xml = "<a><b>6</b></a>";
        let flaky = Flaky {
            data: xml.as_bytes(),
            pos: 0,
            hiccup: false,
        };
        let events: Vec<Event> = EventIter::new(flaky).collect::<Result<_, _>>().unwrap();
        assert_eq!(events, parse(xml).unwrap());
    }

    #[test]
    fn keep_whitespace_mode() {
        let xml = "<a> <b/></a>";
        let with_ws: Vec<Event> = EventIter::new(Cursor::new(xml.as_bytes()))
            .keep_whitespace()
            .collect::<Result<_, _>>()
            .unwrap();
        assert!(with_ws
            .iter()
            .any(|e| matches!(e, Event::Text { content } if content == " ")));
        let without: Vec<Event> = EventIter::new(Cursor::new(xml.as_bytes()))
            .collect::<Result<_, _>>()
            .unwrap();
        assert!(!without.iter().any(|e| matches!(e, Event::Text { .. })));
    }
}
