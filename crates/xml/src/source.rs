//! [`EventSource`]: the format-agnostic input seam of the pipeline.
//!
//! The frontier core is already format-agnostic — it consumes interned
//! [`SymEvent`]s, never XML text — so the only XML-specific piece of the
//! whole system is the tokenizer at the front. `EventSource` names that
//! seam: *anything* that can stream one document's worth of interned
//! events from an [`std::io::Read`] can drive an engine session, with the
//! paper's `O(FS(Q)·log d)` frontier-space bound intact (the bound is
//! stated over event streams of nesting depth `d`, not over XML).
//!
//! Implementors today:
//!
//! * [`crate::StreamingParser`] — the XML tokenizer in this crate;
//! * `fx_html::HtmlParser` — a lenient streaming HTML-soup tokenizer;
//! * `fx_json::JsonParser` — a streaming JSON → element-event adapter.
//!
//! All three share the same contract: events are emitted the moment
//! they are complete, names are resolved through the source's
//! [`Symbols`] table (interned, or — the engine's long-lived mode —
//! looked up read-only so unbounded input vocabularies never grow the
//! table), and per-document state resets without dropping warm scratch
//! capacity.

use crate::parser::ParseError;
use crate::span::Span;
use crate::symbols::{SymEvent, Symbols};
use std::io::Read;
use std::sync::Arc;

/// A streaming producer of one document's interned SAX events.
///
/// The engine drives sources through `Session::run_source`; a source is
/// reusable across documents ([`EventSource::reset`] is called before
/// each drive, and implementations keep scratch buffers warm across
/// resets, exactly like [`crate::StreamingParser::reset`]).
pub trait EventSource {
    /// The symbol table this source resolves names against. Syms in the
    /// emitted events are only meaningful to consumers compiled against
    /// the same table.
    fn symbols(&self) -> &Arc<Symbols>;

    /// Resets per-document state so the source can stream another
    /// document, keeping amortizable scratch (buffers, name memos)
    /// warm.
    fn reset(&mut self);

    /// Drops any memoized name-resolution verdicts. Required after the
    /// shared table gains names behind a live lookup-only source (e.g.
    /// a dissemination server compiling a late subscription); a no-op
    /// for sources without a memo.
    fn invalidate_name_memo(&mut self) {}

    /// Streams one whole document from `reader`, emitting every event
    /// (including the `StartDocument`/`EndDocument` framing) with its
    /// source byte [`Span`]. Memory stays bounded by the read chunk
    /// plus the largest single input token, never by document size.
    fn drive(
        &mut self,
        reader: &mut dyn Read,
        emit: &mut dyn FnMut(SymEvent<'_>, Span),
    ) -> Result<(), ParseError>;
}

/// Length of the longest valid-UTF-8 prefix of `data`, or an error when
/// the invalid bytes cannot be a scalar split across a chunk boundary.
fn utf8_prefix_len(data: &[u8]) -> Result<usize, ParseError> {
    match std::str::from_utf8(data) {
        Ok(_) => Ok(data.len()),
        Err(e) if e.error_len().is_none() => Ok(e.valid_up_to()),
        Err(e) => Err(ParseError {
            message: format!("invalid UTF-8 in input: {e}"),
            line: 0,
            column: 0,
        }),
    }
}

/// The shared byte-chunk → `&str`-chunk reader loop every text-based
/// [`EventSource`] uses: reads fixed-size chunks into `io_chunk`
/// (grown to 8 KiB on first use, reused afterwards), carries UTF-8
/// scalars split across read boundaries (at most 3 bytes), and hands
/// each maximal valid-UTF-8 run to `feed`. Returns after EOF; the
/// caller then finishes its own token state.
pub fn drive_utf8_chunks(
    reader: &mut dyn Read,
    io_chunk: &mut Vec<u8>,
    feed: &mut dyn FnMut(&str) -> Result<(), ParseError>,
) -> Result<(), ParseError> {
    let io_err = |e: std::io::Error| ParseError {
        message: format!("read error: {e}"),
        line: 0,
        column: 0,
    };
    if io_chunk.is_empty() {
        io_chunk.resize(8 * 1024, 0);
    }
    // Incomplete UTF-8 tail carried to the next read (at most 3 bytes).
    let mut carry: Vec<u8> = Vec::new();
    loop {
        let n = match reader.read(io_chunk) {
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(io_err(e)),
        };
        if n == 0 {
            if !carry.is_empty() {
                return Err(ParseError {
                    message: "invalid UTF-8: truncated scalar at end of input".to_string(),
                    line: 0,
                    column: 0,
                });
            }
            return Ok(());
        }
        if carry.is_empty() {
            let valid = utf8_prefix_len(&io_chunk[..n])?;
            feed(std::str::from_utf8(&io_chunk[..valid]).expect("validated prefix"))?;
            carry.extend_from_slice(&io_chunk[valid..n]);
        } else {
            carry.extend_from_slice(&io_chunk[..n]);
            let valid = utf8_prefix_len(&carry)?;
            feed(std::str::from_utf8(&carry[..valid]).expect("validated prefix"))?;
            carry.drain(..valid);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::StreamingParser;
    use crate::Event;

    #[test]
    fn streaming_parser_is_an_event_source() {
        let mut parser = StreamingParser::new();
        let symbols = Arc::clone(parser.symbols());
        let source: &mut dyn EventSource = &mut parser;
        let mut got = Vec::new();
        source
            .drive(&mut "<a><b>6</b></a>".as_bytes(), &mut |ev, _| {
                got.push(ev.to_owned(&symbols))
            })
            .unwrap();
        assert_eq!(got, crate::parse("<a><b>6</b></a>").unwrap());

        // Reusable: reset, then stream a second document.
        source.reset();
        let mut got2 = Vec::new();
        source
            .drive(&mut "<x/>".as_bytes(), &mut |ev, _| {
                got2.push(ev.to_owned(&symbols))
            })
            .unwrap();
        assert_eq!(got2, crate::parse("<x/>").unwrap());
    }

    #[test]
    fn drive_utf8_chunks_carries_split_scalars() {
        // A 1-byte reader splits every multi-byte scalar.
        struct OneByte<'a>(&'a [u8], usize);
        impl Read for OneByte<'_> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.1 >= self.0.len() {
                    return Ok(0);
                }
                buf[0] = self.0[self.1];
                self.1 += 1;
                Ok(1)
            }
        }
        let text = "héllo • wörld";
        let mut out = String::new();
        let mut chunk = Vec::new();
        drive_utf8_chunks(&mut OneByte(text.as_bytes(), 0), &mut chunk, &mut |s| {
            out.push_str(s);
            Ok(())
        })
        .unwrap();
        assert_eq!(out, text);

        // A truncated scalar at EOF is a proper error.
        let bad = &"é".as_bytes()[..1];
        let mut chunk = Vec::new();
        assert!(drive_utf8_chunks(&mut OneByte(bad, 0), &mut chunk, &mut |_| Ok(())).is_err());
    }

    #[test]
    fn event_source_drive_matches_drive_reader() {
        let xml = "<a attr=\"v\">x &amp; y<b/></a>";
        let mut p1 = StreamingParser::new();
        let s1 = Arc::clone(p1.symbols());
        let mut via_reader: Vec<Event> = Vec::new();
        p1.drive_reader(xml.as_bytes(), &mut |ev, _| {
            via_reader.push(ev.to_owned(&s1));
        })
        .unwrap();

        let mut p2 = StreamingParser::new();
        let s2 = Arc::clone(p2.symbols());
        let mut via_source: Vec<Event> = Vec::new();
        EventSource::drive(&mut p2, &mut xml.as_bytes(), &mut |ev, _| {
            via_source.push(ev.to_owned(&s2));
        })
        .unwrap();
        assert_eq!(via_reader, via_source);
    }
}
