//! [`EventSource`]: the format-agnostic input seam of the pipeline.
//!
//! The frontier core is already format-agnostic — it consumes interned
//! [`SymEvent`]s, never XML text — so the only XML-specific piece of the
//! whole system is the tokenizer at the front. `EventSource` names that
//! seam: *anything* that can stream one document's worth of interned
//! events from an [`std::io::Read`] can drive an engine session, with the
//! paper's `O(FS(Q)·log d)` frontier-space bound intact (the bound is
//! stated over event streams of nesting depth `d`, not over XML).
//!
//! Implementors today:
//!
//! * [`crate::StreamingParser`] — the XML tokenizer in this crate;
//! * `fx_html::HtmlParser` — a lenient streaming HTML-soup tokenizer;
//! * `fx_json::JsonParser` — a streaming JSON → element-event adapter.
//!
//! All three share the same contract: events are emitted the moment
//! they are complete, names are resolved through the source's
//! [`Symbols`] table (interned, or — the engine's long-lived mode —
//! looked up read-only so unbounded input vocabularies never grow the
//! table), and per-document state resets without dropping warm scratch
//! capacity.

use crate::batch::EventBatch;
use crate::parser::ParseError;
use crate::span::Span;
use crate::symbols::{AttrBuf, SymEvent, Symbols};
use std::io::Read;
use std::sync::Arc;

/// A streaming producer of one document's interned SAX events.
///
/// The engine drives sources through `Session::run_source`; a source is
/// reusable across documents ([`EventSource::reset`] is called before
/// each drive, and implementations keep scratch buffers warm across
/// resets, exactly like [`crate::StreamingParser::reset`]).
pub trait EventSource {
    /// The symbol table this source resolves names against. Syms in the
    /// emitted events are only meaningful to consumers compiled against
    /// the same table.
    fn symbols(&self) -> &Arc<Symbols>;

    /// Resets per-document state so the source can stream another
    /// document, keeping amortizable scratch (buffers, name memos)
    /// warm.
    fn reset(&mut self);

    /// Drops any memoized name-resolution verdicts. Required after the
    /// shared table gains names behind a live lookup-only source (e.g.
    /// a dissemination server compiling a late subscription); a no-op
    /// for sources without a memo.
    fn invalidate_name_memo(&mut self) {}

    /// Streams one whole document from `reader` as **runs of events**:
    /// the source fills a reusable arena-backed [`EventBatch`] (events
    /// plus spans, including the `StartDocument`/`EndDocument` framing)
    /// and hands each full batch to `consume` — one virtual call per
    /// batch instead of per event, which is what the engine's hot path
    /// rides. The batch borrow is valid only for the duration of the
    /// call (the source recycles it); memory stays bounded by the read
    /// chunk, the batch cut ([`crate::BATCH_EVENTS`] /
    /// [`crate::BATCH_BYTES`]), and the largest single input token —
    /// never by document size. Batching is pure control-transfer
    /// amortization: event order, spans, and the paper's frontier-space
    /// bounds are exactly those of the per-event stream.
    fn drive_batched(
        &mut self,
        reader: &mut dyn Read,
        consume: &mut dyn FnMut(&EventBatch),
    ) -> Result<(), ParseError>;

    /// Per-event [`EventSource::drive_batched`]: streams the document
    /// one event at a time by replaying each batch into `emit`. This is
    /// the compatibility surface — same events, same spans — for
    /// consumers that need a callback per event; throughput-sensitive
    /// consumers should take whole batches via
    /// [`EventSource::drive_batched`] instead.
    fn drive(
        &mut self,
        reader: &mut dyn Read,
        emit: &mut dyn FnMut(SymEvent<'_>, Span),
    ) -> Result<(), ParseError> {
        let mut scratch = AttrBuf::new();
        self.drive_batched(reader, &mut |batch| batch.replay(&mut scratch, &mut *emit))
    }
}

/// Length of the longest valid-UTF-8 prefix of `data`, or an error when
/// the invalid bytes cannot be a scalar split across a chunk boundary.
fn utf8_prefix_len(data: &[u8]) -> Result<usize, ParseError> {
    match std::str::from_utf8(data) {
        Ok(_) => Ok(data.len()),
        Err(e) if e.error_len().is_none() => Ok(e.valid_up_to()),
        Err(e) => Err(ParseError {
            message: format!("invalid UTF-8 in input: {e}"),
            line: 0,
            column: 0,
        }),
    }
}

/// Total byte width of the UTF-8 sequence introduced by `lead`.
fn scalar_width(lead: u8) -> usize {
    match lead {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// An incomplete UTF-8 scalar carried across byte-chunk boundaries: at
/// most 3 bytes of a 2–4-byte sequence, held inline (no allocation).
///
/// This is the structural fix for the chunk-boundary UTF-8 bug: every
/// byte-feeding surface (`feed_interned_bytes` on the three parsers,
/// [`drive_utf8_chunks`], `parse_reader`) validates UTF-8 **once per
/// chunk** and parks a split trailing scalar here instead of failing —
/// or worse, slicing a `&str` mid-scalar — when a read boundary lands
/// inside a multibyte character.
#[derive(Debug, Clone, Copy, Default)]
pub struct Utf8Carry {
    tail: [u8; 4],
    len: u8,
}

impl Utf8Carry {
    /// An empty carry.
    pub const fn new() -> Utf8Carry {
        Utf8Carry {
            tail: [0; 4],
            len: 0,
        }
    }

    /// True when no partial scalar is pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drops any pending partial scalar (per-document reset).
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Feeds `chunk`: first completes (and emits) the carried scalar if
    /// one is pending, then hands the chunk's maximal valid-UTF-8 run
    /// to `sink`, carrying any new incomplete trailing scalar. Errors
    /// only on bytes that cannot be part of any valid scalar.
    pub fn feed(
        &mut self,
        mut chunk: &[u8],
        sink: &mut dyn FnMut(&str) -> Result<(), ParseError>,
    ) -> Result<(), ParseError> {
        if self.len > 0 {
            let width = scalar_width(self.tail[0]);
            while (self.len as usize) < width {
                let Some((&b, rest)) = chunk.split_first() else {
                    return Ok(());
                };
                self.tail[self.len as usize] = b;
                self.len += 1;
                chunk = rest;
            }
            let scalar = self.tail;
            self.len = 0;
            let scalar = std::str::from_utf8(&scalar[..width]).map_err(|e| ParseError {
                message: format!("invalid UTF-8 in input: {e}"),
                line: 0,
                column: 0,
            })?;
            sink(scalar)?;
        }
        let valid = utf8_prefix_len(chunk)?;
        if valid > 0 {
            sink(std::str::from_utf8(&chunk[..valid]).expect("validated prefix"))?;
        }
        let tail = &chunk[valid..];
        self.tail[..tail.len()].copy_from_slice(tail);
        self.len = tail.len() as u8;
        Ok(())
    }

    /// Ends the stream: a carried scalar that never completed is a
    /// truncation error.
    pub fn finish(&self) -> Result<(), ParseError> {
        if self.len == 0 {
            Ok(())
        } else {
            Err(ParseError {
                message: "invalid UTF-8: truncated scalar at end of input".to_string(),
                line: 0,
                column: 0,
            })
        }
    }
}

/// The shared fixed-size read loop every [`EventSource`] driver uses:
/// reads chunks into `io_chunk` (grown to 8 KiB on first use, reused
/// afterwards) and hands each raw byte run to `feed` — UTF-8 handling
/// is the consumer's business (the parsers' `feed_interned_bytes`
/// carry split scalars via [`Utf8Carry`]). Returns after EOF; the
/// caller then finishes its own token state.
pub fn drive_byte_chunks(
    reader: &mut dyn Read,
    io_chunk: &mut Vec<u8>,
    feed: &mut dyn FnMut(&[u8]) -> Result<(), ParseError>,
) -> Result<(), ParseError> {
    if io_chunk.is_empty() {
        io_chunk.resize(8 * 1024, 0);
    }
    loop {
        let n = match reader.read(io_chunk) {
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => {
                return Err(ParseError {
                    message: format!("read error: {e}"),
                    line: 0,
                    column: 0,
                })
            }
        };
        if n == 0 {
            return Ok(());
        }
        feed(&io_chunk[..n])?;
    }
}

/// [`drive_byte_chunks`] decoded to `&str` runs: carries UTF-8 scalars
/// split across read boundaries (at most 3 bytes) and hands each
/// maximal valid-UTF-8 run to `feed`. Kept for callers that want text
/// chunks; the parsers' own drivers feed bytes and carry internally.
pub fn drive_utf8_chunks(
    reader: &mut dyn Read,
    io_chunk: &mut Vec<u8>,
    feed: &mut dyn FnMut(&str) -> Result<(), ParseError>,
) -> Result<(), ParseError> {
    let mut carry = Utf8Carry::new();
    drive_byte_chunks(reader, io_chunk, &mut |bytes| carry.feed(bytes, feed))?;
    carry.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::StreamingParser;
    use crate::Event;

    #[test]
    fn streaming_parser_is_an_event_source() {
        let mut parser = StreamingParser::new();
        let symbols = Arc::clone(parser.symbols());
        let source: &mut dyn EventSource = &mut parser;
        let mut got = Vec::new();
        source
            .drive(&mut "<a><b>6</b></a>".as_bytes(), &mut |ev, _| {
                got.push(ev.to_owned(&symbols))
            })
            .unwrap();
        assert_eq!(got, crate::parse("<a><b>6</b></a>").unwrap());

        // Reusable: reset, then stream a second document.
        source.reset();
        let mut got2 = Vec::new();
        source
            .drive(&mut "<x/>".as_bytes(), &mut |ev, _| {
                got2.push(ev.to_owned(&symbols))
            })
            .unwrap();
        assert_eq!(got2, crate::parse("<x/>").unwrap());
    }

    #[test]
    fn drive_utf8_chunks_carries_split_scalars() {
        // A 1-byte reader splits every multi-byte scalar.
        struct OneByte<'a>(&'a [u8], usize);
        impl Read for OneByte<'_> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.1 >= self.0.len() {
                    return Ok(0);
                }
                buf[0] = self.0[self.1];
                self.1 += 1;
                Ok(1)
            }
        }
        let text = "héllo • wörld";
        let mut out = String::new();
        let mut chunk = Vec::new();
        drive_utf8_chunks(&mut OneByte(text.as_bytes(), 0), &mut chunk, &mut |s| {
            out.push_str(s);
            Ok(())
        })
        .unwrap();
        assert_eq!(out, text);

        // A truncated scalar at EOF is a proper error.
        let bad = &"é".as_bytes()[..1];
        let mut chunk = Vec::new();
        assert!(drive_utf8_chunks(&mut OneByte(bad, 0), &mut chunk, &mut |_| Ok(())).is_err());
    }

    #[test]
    fn event_source_drive_matches_drive_reader() {
        let xml = "<a attr=\"v\">x &amp; y<b/></a>";
        let mut p1 = StreamingParser::new();
        let s1 = Arc::clone(p1.symbols());
        let mut via_reader: Vec<Event> = Vec::new();
        p1.drive_reader(xml.as_bytes(), &mut |ev, _| {
            via_reader.push(ev.to_owned(&s1));
        })
        .unwrap();

        let mut p2 = StreamingParser::new();
        let s2 = Arc::clone(p2.symbols());
        let mut via_source: Vec<Event> = Vec::new();
        EventSource::drive(&mut p2, &mut xml.as_bytes(), &mut |ev, _| {
            via_source.push(ev.to_owned(&s2));
        })
        .unwrap();
        assert_eq!(via_reader, via_source);
    }
}
