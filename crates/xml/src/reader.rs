//! Incremental (chunk-at-a-time) XML parsing: the true streaming entry
//! point. [`crate::parse`] needs the whole document in memory;
//! [`StreamingParser`] accepts arbitrary byte-chunk boundaries and emits
//! events as soon as they are complete, so a filter can run over documents
//! far larger than RAM — the setting the paper's space bounds are about.
//!
//! The parser's native output is the *interned* event surface
//! ([`StreamingParser::feed_interned`] → [`SymEvent`]): element and
//! attribute names are interned into the parser's shared [`Symbols`]
//! table and payloads borrow reusable scratch buffers, so steady-state
//! parsing performs **zero heap allocations per element event**. The
//! owned-event surface ([`StreamingParser::feed`] /
//! [`StreamingParser::feed_spanned`]) is a thin conversion layer over it.
//!
//! The inner byte scan is built on [`crate::scan`] — SWAR word-at-a-time
//! structural search for `<`, `>`, `&`, and quote delimiters — and text
//! spans containing no `&` are emitted as borrowed slices of the input
//! buffer with no entity decoding and no copy. Raw byte chunks enter
//! through [`StreamingParser::feed_interned_bytes`], which validates
//! UTF-8 once per chunk and carries a scalar split across chunk
//! boundaries (see [`crate::source::Utf8Carry`]).

use crate::batch::{EventBatch, BATCH_BYTES, BATCH_EVENTS};
use crate::escape::decode_entities_into;
use crate::event::{Event, SaxHandler};
use crate::parser::ParseError;
use crate::scan;
use crate::source::Utf8Carry;
use crate::span::Span;
use crate::symbols::{AttrBuf, Sym, SymCache, SymEvent, Symbols, SymbolsSnapshot};
use std::io::{BufRead, Read};
use std::sync::Arc;

/// A resumable push parser. Feed it string chunks; it emits events through
/// a callback and buffers only the current incomplete token.
#[derive(Debug, Clone)]
pub struct StreamingParser {
    buf: String,
    /// Consumed prefix of `buf`: tokens advance this cursor instead of
    /// draining the buffer (an O(remaining) memmove per token — on a
    /// batch feed that is quadratic in document size). The buffer
    /// compacts once per `feed`, amortizing the move to O(1) per byte.
    pos: usize,
    symbols: Arc<Symbols>,
    /// When false (see [`StreamingParser::lookup_only`]), document
    /// names are *resolved* against the table read-only instead of
    /// interned: names outside the compiled vocabulary collapse to
    /// [`Sym::UNKNOWN`] and the shared table never grows with document
    /// content — the bounded-memory mode the engine's reader path uses.
    intern_names: bool,
    /// A frozen view of the table (see [`StreamingParser::frozen`]):
    /// when set, name resolution goes through this immutable snapshot
    /// instead of the live table — no lock even on memo misses, the
    /// worker-thread mode. Implies lookup-only resolution.
    snapshot: Option<std::sync::Arc<SymbolsSnapshot>>,
    /// Per-parser lock-free memo over the table.
    name_cache: SymCache,
    /// Open elements: `(sym, name start)` where the second field is
    /// the byte offset of this element's name in
    /// [`StreamingParser::name_arena`]. End tags are matched by
    /// *string*, which stays exact when unknown names share a sym.
    stack: Vec<(Sym, u32)>,
    /// The names of all open elements, concatenated in stack order —
    /// the top element's name is always the arena's suffix, so a pop
    /// is a `truncate`. One growing buffer instead of a `String` per
    /// depth keeps fresh parsers allocation-light and the end-tag
    /// memcmp cache-local.
    name_arena: String,
    /// Number of live `stack` entries (the rest are retired slots kept
    /// for reuse).
    depth: usize,
    started: bool,
    finished: bool,
    consumed: usize,
    keep_whitespace: bool,
    /// Incomplete UTF-8 scalar split across byte-chunk feeds
    /// ([`StreamingParser::feed_interned_bytes`]).
    utf8_carry: Utf8Carry,
    /// Reused entity-decoded text buffer; `Text` events with entities
    /// borrow it (entity-free text borrows `buf` directly).
    text_scratch: String,
    /// Reused attribute slots; `StartElement` events borrow them.
    attrs: AttrBuf,
    /// Reused structural index: positions of `<` `>` `"` `'` `&` in the
    /// unconsumed buffer, rebuilt by one SWAR pass per drain.
    struct_idx: Vec<u32>,
    /// Reused read buffer for [`StreamingParser::drive_reader`].
    io_chunk: Vec<u8>,
    /// Reused event batch for [`StreamingParser::drive_batched`]:
    /// recycled (`clear` keeps arena capacity) so the batched drive
    /// allocates nothing per event in steady state.
    ev_batch: EventBatch,
}

impl Default for StreamingParser {
    fn default() -> Self {
        StreamingParser::new()
    }
}

impl StreamingParser {
    /// Creates a parser with default options (whitespace-only text
    /// dropped, matching [`crate::parse`]) and a fresh private
    /// [`Symbols`] table.
    pub fn new() -> StreamingParser {
        StreamingParser::with_symbols(Arc::new(Symbols::new()))
    }

    /// Creates a parser interning names into `symbols` — the table the
    /// downstream filters' compiled node tests live in, so interned
    /// events and compiled queries meet as equal integers.
    pub fn with_symbols(symbols: Arc<Symbols>) -> StreamingParser {
        StreamingParser {
            buf: String::new(),
            pos: 0,
            symbols,
            intern_names: true,
            snapshot: None,
            name_cache: SymCache::new(),
            stack: Vec::new(),
            name_arena: String::new(),
            depth: 0,
            started: false,
            finished: false,
            consumed: 0,
            keep_whitespace: false,
            utf8_carry: Utf8Carry::new(),
            text_scratch: String::new(),
            attrs: AttrBuf::new(),
            struct_idx: Vec::new(),
            io_chunk: Vec::new(),
            ev_batch: EventBatch::new(),
        }
    }

    /// Resets per-document state so the parser can stream another
    /// document, keeping everything amortizable warm: the symbol table
    /// handle, the name memo, and every scratch buffer's capacity.
    /// Sessions reuse one parser across documents this way instead of
    /// rebuilding scratch per document.
    pub fn reset(&mut self) {
        self.buf.clear();
        self.pos = 0;
        self.depth = 0;
        self.name_arena.clear();
        self.started = false;
        self.finished = false;
        self.consumed = 0;
        self.utf8_carry.clear();
    }

    /// The symbol table this parser interns names into.
    pub fn symbols(&self) -> &Arc<Symbols> {
        &self.symbols
    }

    /// Drops every memoized name verdict. A lookup-only parser memoizes
    /// [`Sym::UNKNOWN`] for names outside the table; if the shared table
    /// later gains such a name (a dissemination server compiling a new
    /// subscription), the stale memo would keep collapsing it to
    /// `UNKNOWN`. Call this after interning new names behind a live
    /// parser; [`StreamingParser::reset`] deliberately keeps the memo
    /// warm.
    ///
    /// In a worker pool, *every* worker must invalidate its own parser
    /// when churn grows the shared table — see the multi-worker caveat
    /// on [`SymCache`]. A [`StreamingParser::frozen`] parser re-freezes
    /// its snapshot here too, so the new vocabulary becomes visible to
    /// its lock-free path.
    pub fn invalidate_name_memo(&mut self) {
        self.name_cache.clear();
        if self.snapshot.is_some() {
            self.snapshot = Some(std::sync::Arc::new(self.symbols.freeze()));
        }
    }

    /// Keeps whitespace-only text nodes.
    pub fn keep_whitespace(mut self) -> StreamingParser {
        self.keep_whitespace = true;
        self
    }

    /// Switches to *lookup-only* name resolution: document names are
    /// resolved against the (shared) table without interning — names
    /// the table has never seen collapse to [`Sym::UNKNOWN`], exactly
    /// as the filters' owned-event conversion treats them (they fail
    /// every named node test and pass every wildcard), and the table
    /// never grows with document content. This is how a long-lived
    /// engine keeps bounded memory on streams with unbounded
    /// distinct-name cardinality; the default interning mode instead
    /// guarantees distinct syms per distinct name (required by
    /// [`SymEvent::to_owned`] and thus the owned `feed`/`feed_spanned`
    /// wrappers, which must not be used in lookup-only mode).
    ///
    /// Compile every query against the table *before* parsing: the
    /// per-parser memo caches "unknown" verdicts (see
    /// [`crate::SymCache`]).
    pub fn lookup_only(mut self) -> StreamingParser {
        self.intern_names = false;
        self
    }

    /// [`StreamingParser::lookup_only`] resolution against a **frozen
    /// snapshot** of the parser's table, taken now: name resolution
    /// never touches the live table's lock again — not even on memo
    /// misses — which is what lets N worker parsers share one
    /// engine-owned table with zero read contention. The snapshot
    /// carries exactly the vocabulary interned so far (compile every
    /// query first); if the table later grows behind this parser, call
    /// [`StreamingParser::invalidate_name_memo`], which re-freezes.
    pub fn frozen(mut self) -> StreamingParser {
        self.intern_names = false;
        self.snapshot = Some(std::sync::Arc::new(self.symbols.freeze()));
        self
    }

    /// Resolves a name per the parser's mode: memoized lookup against
    /// the frozen snapshot (lock-free) or the live table, plus
    /// interning (and memo refresh) on a miss in the default mode.
    fn resolve_name(&mut self, name: &str) -> Sym {
        match &self.snapshot {
            Some(snap) => self.name_cache.lookup_frozen(snap, name),
            None => self
                .name_cache
                .lookup_or_intern(&self.symbols, name, self.intern_names),
        }
    }

    /// Pushes an open element, appending its name to the arena, so the
    /// end-tag hot path is one name memcmp against the tag's interior
    /// — no trimming, no extraction.
    fn stack_push(&mut self, sym: Sym, name: &str) {
        let start = self.name_arena.len() as u32;
        self.name_arena.push_str(name);
        if self.depth == self.stack.len() {
            self.stack.push((sym, start));
        } else {
            self.stack[self.depth] = (sym, start);
        }
        self.depth += 1;
    }

    /// The name of the innermost open element — always the arena's
    /// suffix.
    fn top_name(&self) -> (Sym, usize, &str) {
        let (sym, start) = self.stack[self.depth - 1];
        (sym, start as usize, &self.name_arena[start as usize..])
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            line: 0,
            column: self.consumed + 1,
        }
    }

    /// Feeds a chunk, emitting every event that becomes complete.
    pub fn feed(&mut self, chunk: &str, emit: &mut dyn FnMut(Event)) -> Result<(), ParseError> {
        self.feed_spanned(chunk, &mut |e, _| emit(e))
    }

    /// [`StreamingParser::feed`], with each event's source byte [`Span`].
    ///
    /// Offsets are cumulative across chunks — a tag split over two
    /// `feed` calls is stamped with its position in the whole stream,
    /// not in the chunk that completed it.
    pub fn feed_spanned(
        &mut self,
        chunk: &str,
        emit: &mut dyn FnMut(Event, Span),
    ) -> Result<(), ParseError> {
        self.require_interning()?;
        let symbols = Arc::clone(&self.symbols);
        self.feed_interned(chunk, &mut |ev, span| emit(ev.to_owned(&symbols), span))
    }

    /// The owned-event wrappers must resolve every sym back to its
    /// name, which [`StreamingParser::lookup_only`] mode cannot do
    /// (unknown names collapse to one sentinel): reject the combination
    /// with a proper error instead of panicking inside `resolve`.
    fn require_interning(&self) -> Result<(), ParseError> {
        if self.intern_names {
            Ok(())
        } else {
            Err(self.err(
                "the owned-event surface (feed/feed_spanned/finish_spanned) requires                  interning mode; a lookup_only parser emits interned events only",
            ))
        }
    }

    /// Feeds a chunk, emitting every completed event in *interned*,
    /// zero-copy form: names are [`Sym`]s from the parser's table,
    /// attribute and text payloads borrow the parser's reusable scratch
    /// buffers (valid for the duration of the callback). In steady
    /// state — names already interned, scratch capacities warm — a
    /// start/end element event allocates nothing.
    pub fn feed_interned<F: FnMut(SymEvent<'_>, Span)>(
        &mut self,
        chunk: &str,
        emit: &mut F,
    ) -> Result<(), ParseError> {
        self.compact();
        if self.buf.is_empty() {
            // Zero-copy fast path: no partial token is buffered, so the
            // chunk itself is the input — parse in place and buffer only
            // the incomplete tail for the next feed.
            let result = self.drain_slice(chunk, false, emit);
            self.buf.push_str(&chunk[self.pos..]);
            self.pos = 0;
            return result;
        }
        self.buf.push_str(chunk);
        self.drain(false, emit)
    }

    /// [`StreamingParser::feed_interned`] over raw bytes with arbitrary
    /// chunk boundaries: validates UTF-8 **once per chunk** and carries
    /// a trailing scalar split across the boundary to the next feed —
    /// any split point, including mid-character, is safe. This is the
    /// surface reader drivers use; don't interleave it mid-scalar with
    /// the `&str` feeds (a pending carry would reorder bytes).
    pub fn feed_interned_bytes<F: FnMut(SymEvent<'_>, Span)>(
        &mut self,
        chunk: &[u8],
        emit: &mut F,
    ) -> Result<(), ParseError> {
        self.compact();
        if self.buf.is_empty() && self.utf8_carry.is_empty() {
            // Zero-copy fast path: nothing carried, so if the chunk is
            // wholly valid UTF-8 it can be parsed in place like
            // [`StreamingParser::feed_interned`] does. A chunk that
            // fails whole-validation (split trailing scalar, or truly
            // invalid bytes) takes the carry path below, which
            // distinguishes the two.
            if let Ok(s) = std::str::from_utf8(chunk) {
                let result = self.drain_slice(s, false, emit);
                self.buf.push_str(&s[self.pos..]);
                self.pos = 0;
                return result;
            }
        }
        let mut carry = self.utf8_carry;
        let fed = carry.feed(chunk, &mut |s| {
            self.buf.push_str(s);
            Ok(())
        });
        self.utf8_carry = carry;
        fed?;
        self.drain(false, emit)
    }

    /// Drops the consumed prefix of the buffer (cheap when it was fully
    /// consumed, one move of the unconsumed tail otherwise).
    fn compact(&mut self) {
        if self.pos == 0 {
            return;
        }
        if self.pos == self.buf.len() {
            self.buf.clear();
        } else {
            self.buf.drain(..self.pos);
        }
        self.pos = 0;
    }

    /// The unconsumed input.
    fn pending(&self) -> &str {
        &self.buf[self.pos..]
    }

    /// Signals end of input; emits any trailing events (including
    /// `EndDocument`) and verifies completeness.
    pub fn finish(&mut self, emit: &mut dyn FnMut(Event)) -> Result<(), ParseError> {
        self.finish_spanned(&mut |e, _| emit(e))
    }

    /// [`StreamingParser::finish`], with each event's source byte [`Span`].
    pub fn finish_spanned(&mut self, emit: &mut dyn FnMut(Event, Span)) -> Result<(), ParseError> {
        self.require_interning()?;
        let symbols = Arc::clone(&self.symbols);
        self.finish_interned(&mut |ev, span| emit(ev.to_owned(&symbols), span))
    }

    /// [`StreamingParser::finish`] on the interned surface.
    pub fn finish_interned<F: FnMut(SymEvent<'_>, Span)>(
        &mut self,
        emit: &mut F,
    ) -> Result<(), ParseError> {
        self.utf8_carry.finish()?;
        self.drain(true, emit)?;
        if !self.pending().trim().is_empty() {
            return Err(self.err("unexpected trailing content at end of input"));
        }
        if self.depth > 0 {
            return Err(self.err(format!("unclosed element `{}`", self.top_name().2)));
        }
        if !self.started {
            return Err(self.err("empty document"));
        }
        if self.finished {
            return Err(self.err("finish called twice"));
        }
        self.finished = true;
        emit(SymEvent::EndDocument, Span::point(self.consumed as u64));
        Ok(())
    }

    /// Streams a whole document from `reader` through the interned
    /// surface: the engine's zero-copy hot path. Reads fixed-size
    /// chunks, carries split UTF-8 scalars across boundaries, feeds and
    /// finishes. Parser memory is bounded by the chunk plus the largest
    /// single XML token, never by document size — and in
    /// [`StreamingParser::lookup_only`] mode (how the engine drives
    /// this) the shared symbol table stays bounded by the compiled
    /// query vocabulary too; the default interning mode instead grows
    /// the table with the document's *distinct* names.
    pub fn drive_reader<R: Read, F: FnMut(SymEvent<'_>, Span)>(
        &mut self,
        mut reader: R,
        emit: &mut F,
    ) -> Result<(), ParseError> {
        // Take the reused read buffer out for the loop (so reads and
        // the feed can borrow `self` independently) and restore it on
        // every exit path.
        let mut chunk = std::mem::take(&mut self.io_chunk);
        let result = crate::source::drive_byte_chunks(&mut reader, &mut chunk, &mut |bytes| {
            self.feed_interned_bytes(bytes, emit)
        })
        .and_then(|()| self.finish_interned(emit));
        self.io_chunk = chunk;
        result
    }

    /// One batched drain: feeds `chunk` and appends every event this
    /// structural-index pass completes to `batch` — the batch-granular
    /// sibling of [`StreamingParser::feed_interned`]. The push into the
    /// batch is monomorphized into the token loop, and the batch copies
    /// payloads into its own arenas, so the filled batch outlives
    /// further feeds (see [`EventBatch`] for the reuse rules).
    pub fn drain_batch(&mut self, chunk: &str, batch: &mut EventBatch) -> Result<(), ParseError> {
        self.feed_interned(chunk, &mut |ev, span| batch.push(&ev, span))
    }

    /// [`StreamingParser::drain_batch`] over raw bytes with arbitrary
    /// chunk boundaries (the [`StreamingParser::feed_interned_bytes`]
    /// surface).
    pub fn drain_batch_bytes(
        &mut self,
        chunk: &[u8],
        batch: &mut EventBatch,
    ) -> Result<(), ParseError> {
        self.feed_interned_bytes(chunk, &mut |ev, span| batch.push(&ev, span))
    }

    /// [`StreamingParser::finish_interned`] into a batch: appends the
    /// trailing events (including `EndDocument`) to `batch`.
    pub fn finish_batch(&mut self, batch: &mut EventBatch) -> Result<(), ParseError> {
        self.finish_interned(&mut |ev, span| batch.push(&ev, span))
    }

    /// Streams a whole document from `reader` as *batches*: the parser
    /// fills its own recycled [`EventBatch`] (events plus spans, arenas
    /// reused — zero allocation per event in steady state) and hands
    /// each full batch to `consume`, cutting on [`BATCH_EVENTS`] events
    /// or [`BATCH_BYTES`] payload bytes. One virtual call per batch
    /// replaces one per event — the dispatch-amortized hot path
    /// `Session::run_reader*` rides. The batch borrow handed to
    /// `consume` is only valid for that call; the producer clears and
    /// refills it afterwards.
    pub fn drive_batched<R: Read>(
        &mut self,
        mut reader: R,
        consume: &mut dyn FnMut(&EventBatch),
    ) -> Result<(), ParseError> {
        let mut batch = std::mem::take(&mut self.ev_batch);
        batch.clear();
        let mut chunk = std::mem::take(&mut self.io_chunk);
        let result = crate::source::drive_byte_chunks(&mut reader, &mut chunk, &mut |bytes| {
            self.feed_interned_bytes(bytes, &mut |ev, span| batch.push(&ev, span))?;
            if batch.len() >= BATCH_EVENTS || batch.payload_bytes() >= BATCH_BYTES {
                consume(&batch);
                batch.clear();
            }
            Ok(())
        })
        .and_then(|()| self.finish_interned(&mut |ev, span| batch.push(&ev, span)));
        if result.is_ok() && !batch.is_empty() {
            consume(&batch);
        }
        batch.clear();
        self.io_chunk = chunk;
        self.ev_batch = batch;
        result
    }

    // The whole internal drain chain is generic over the emit closure
    // (`?Sized` keeps `&mut dyn FnMut` callers working): a concrete
    // closure handed to the public generic surface monomorphizes all
    // the way into the token loop — the filter inlines into the
    // tokenizer, with no virtual call per event.
    fn drain<F: FnMut(SymEvent<'_>, Span) + ?Sized>(
        &mut self,
        at_eof: bool,
        emit: &mut F,
    ) -> Result<(), ParseError> {
        // Take the buffer out so tags and text can be handled as plain
        // slices of it while `&mut self` stays free for state updates —
        // this is what lets a tag be parsed in place, with no scratch
        // copy, and entity-free text be emitted borrowed.
        let buf = std::mem::take(&mut self.buf);
        let result = self.drain_slice(&buf, at_eof, emit);
        self.buf = buf;
        result
    }

    /// [`StreamingParser::drain`] over any input slice (the internal
    /// buffer, or — the zero-copy fast path — the caller's own chunk).
    /// One SWAR pass builds the structural index; the token loop then
    /// walks delimiter *positions* instead of re-scanning bytes.
    fn drain_slice<F: FnMut(SymEvent<'_>, Span) + ?Sized>(
        &mut self,
        buf: &str,
        at_eof: bool,
        emit: &mut F,
    ) -> Result<(), ParseError> {
        let mut idx = std::mem::take(&mut self.struct_idx);
        idx.clear();
        assert!(
            buf.len() <= u32::MAX as usize,
            "single buffered token exceeds 4 GiB"
        );
        // Pre-size to the worst typical density (~1 delimiter per 4
        // bytes) so a cold index reaches capacity in one reallocation
        // instead of a doubling cascade.
        idx.reserve((buf.len() - self.pos) / 4);
        scan::positions_xml(buf.as_bytes(), self.pos, &mut idx);
        let result = self.drain_buf(buf, &idx, at_eof, emit);
        self.struct_idx = idx;
        result
    }

    fn drain_buf<F: FnMut(SymEvent<'_>, Span) + ?Sized>(
        &mut self,
        buf: &str,
        idx: &[u32],
        at_eof: bool,
        emit: &mut F,
    ) -> Result<(), ParseError> {
        let bytes = buf.as_bytes();
        let mut k = 0usize; // cursor into the structural index
        loop {
            // Walk the index to the next `<` at or after the cursor,
            // noting the last `&` passed on the way (text entities).
            let mut last_amp = usize::MAX;
            let mut lt = None;
            while k < idx.len() {
                let p = idx[k] as usize;
                if p >= self.pos {
                    match bytes[p] {
                        b'<' => {
                            lt = Some(p);
                            break;
                        }
                        b'&' => last_amp = p,
                        _ => {} // `>` and quotes are plain text here
                    }
                }
                k += 1;
            }
            match lt {
                Some(p) if p == self.pos => {}
                Some(p) => {
                    self.take_text(buf, p - self.pos, last_amp, emit)?;
                    if self.pos < p {
                        // The text directly before the tag ends in a
                        // held-back entity fragment ("&am…" with no
                        // `;`); a tag can never complete it.
                        return Err(self.err("unterminated entity reference before tag"));
                    }
                    continue;
                }
                None => {
                    let len = buf.len() - self.pos;
                    if at_eof && len > 0 {
                        self.take_text(buf, len, last_amp, emit)?;
                    }
                    return Ok(());
                }
            }
            // A tag begins at the cursor; find its end, respecting the
            // multi-character terminators of comments/CDATA/PIs and
            // quoted attribute values (which may contain `>`).
            let Some((tag_len, k_next)) = self.tag_region(bytes, idx, k)? else {
                return Ok(()); // incomplete: wait for more input
            };
            k = k_next;
            let tag = &buf[self.pos..self.pos + tag_len];
            self.pos += tag_len;
            self.consumed += tag_len;
            let span = Span::new((self.consumed - tag_len) as u64, self.consumed as u64);
            self.handle_tag(tag, span, emit)?;
        }
    }

    fn take_text<F: FnMut(SymEvent<'_>, Span) + ?Sized>(
        &mut self,
        buf: &str,
        len: usize,
        last_amp: usize, // absolute position of the last `&`, or usize::MAX
        emit: &mut F,
    ) -> Result<(), ParseError> {
        let text = &buf[self.pos..self.pos + len];
        // Entity-free text (the overwhelmingly common case) needs no
        // decoding and no hold-back: the raw slice is the payload.
        let (end, decoded) = if last_amp == usize::MAX {
            (len, false)
        } else {
            // Hold back a trailing fragment that may be a split entity
            // reference ("&am" + "p;").
            let amp = last_amp - self.pos;
            let end = if scan::memchr(b';', &text.as_bytes()[amp..]).is_none() {
                amp
            } else {
                len
            };
            if end == 0 {
                return Ok(());
            }
            self.text_scratch.clear();
            if let Err(e) = decode_entities_into(&text[..end], &mut self.text_scratch) {
                return Err(self.err(e.to_string()));
            }
            (end, true)
        };
        self.pos += end;
        self.consumed += end;
        let span = Span::new((self.consumed - end) as u64, self.consumed as u64);
        let content: &str = if decoded {
            &self.text_scratch
        } else {
            &text[..end]
        };
        if self.keep_whitespace || !is_all_whitespace(content) {
            if self.depth == 0 {
                return Err(self.err("text content outside the root element"));
            }
            emit(SymEvent::Text { content }, span);
        }
        Ok(())
    }

    /// Extent of the complete tag whose `<` sits at `idx[k]` (== the
    /// cursor): `(byte length, index entry just past the tag)`, or
    /// `None` if more input is needed. Pure index walk — no byte
    /// re-scanning except the short prefix dispatch and the rare
    /// DOCTYPE form.
    fn tag_region(
        &self,
        bytes: &[u8],
        idx: &[u32],
        k: usize,
    ) -> Result<Option<(usize, usize)>, ParseError> {
        let lt = idx[k] as usize;
        debug_assert_eq!(bytes[lt], b'<');
        let b = &bytes[lt..];
        if matches!(b.get(1), Some(b'!') | Some(b'?')) {
            // Comment / CDATA / PI: a `>` directly preceded by the
            // construct's suffix ends it, quotes notwithstanding.
            let (from, suffix): (usize, &[u8]) = if b.starts_with(b"<!--") {
                (4, b"--")
            } else if b.starts_with(b"<![CDATA[") {
                (9, b"]]")
            } else if b.starts_with(b"<?") {
                (2, b"?")
            } else {
                // DOCTYPE with optional internal subset: bracket-aware
                // byte scan (rare; brackets are not indexed).
                let mut depth = 0usize;
                for (i, &c) in b.iter().enumerate().skip(2) {
                    match c {
                        b'[' => depth += 1,
                        b']' => depth = depth.saturating_sub(1),
                        b'>' if depth == 0 => {
                            let end = lt + i + 1;
                            let mut j = k + 1;
                            while j < idx.len() && (idx[j] as usize) < end {
                                j += 1;
                            }
                            return Ok(Some((i + 1, j)));
                        }
                        _ => {}
                    }
                }
                return Ok(None);
            };
            let min = lt + from + suffix.len();
            let mut j = k + 1;
            while j < idx.len() {
                let p = idx[j] as usize;
                if bytes[p] == b'>' && p >= min && &bytes[p - suffix.len()..p] == suffix {
                    return Ok(Some((p + 1 - lt, j + 1)));
                }
                j += 1;
            }
            return Ok(None);
        }
        // A start or end tag: walk delimiter positions, skipping quoted
        // attribute values (which may contain `>` or `<`).
        let mut j = k + 1;
        while j < idx.len() {
            let p = idx[j] as usize;
            match bytes[p] {
                b'>' => return Ok(Some((p + 1 - lt, j + 1))),
                b'<' => return Err(self.err("`<` inside a tag")),
                b'"' | b'\'' => {
                    let quote = bytes[p];
                    j += 1;
                    while j < idx.len() && bytes[idx[j] as usize] != quote {
                        j += 1;
                    }
                    if j >= idx.len() {
                        return Ok(None); // unclosed quote: wait
                    }
                    j += 1;
                }
                _ => j += 1, // `&` inside a tag: nothing structural
            }
        }
        Ok(None)
    }

    fn handle_tag<F: FnMut(SymEvent<'_>, Span) + ?Sized>(
        &mut self,
        tag: &str,
        span: Span,
        emit: &mut F,
    ) -> Result<(), ParseError> {
        // One byte decides the tag kind; the `<!…`/`<?…` markup forms
        // take the cold path.
        match tag.as_bytes()[1] {
            b'!' | b'?' => self.handle_markup_tag(tag, span, emit),
            b'/' => {
                // Hot path: a well-formed end tag is byte-identical to
                // the expected closer stored at push time — one memcmp,
                // no trimming, no name extraction, no lookup. Matching
                // by bytes stays exact even when several unknown names
                // share a sym in lookup-only mode.
                if self.depth > 0 {
                    let (open_sym, start, open_name) = self.top_name();
                    if *open_name.as_bytes() == tag.as_bytes()[2..tag.len() - 1] {
                        self.depth -= 1;
                        self.name_arena.truncate(start);
                        emit(SymEvent::EndElement { name: open_sym }, span);
                        return Ok(());
                    }
                }
                // Cold path: whitespace inside the closer (`</a >`),
                // a mismatch, or an unopened end tag.
                let name = trim_ws(&tag[2..tag.len() - 1]);
                if self.depth == 0 {
                    return Err(self.err(format!("`</{name}>` without matching start tag")));
                }
                let (open_sym, start, open_name) = self.top_name();
                if open_name != name {
                    return Err(
                        self.err(format!("mismatched `</{name}>`; expected `</{open_name}>`"))
                    );
                }
                self.depth -= 1;
                self.name_arena.truncate(start);
                emit(SymEvent::EndElement { name: open_sym }, span);
                Ok(())
            }
            _ => self.handle_element_tag(tag, span, emit),
        }
    }

    /// `<!…>` / `<?…>` markup: comments, PIs, and DOCTYPE are skipped,
    /// CDATA becomes text, and any other `<!…` form falls through to
    /// the element path (an element named `!…`, as the batch parser
    /// sees it).
    fn handle_markup_tag<F: FnMut(SymEvent<'_>, Span) + ?Sized>(
        &mut self,
        tag: &str,
        span: Span,
        emit: &mut F,
    ) -> Result<(), ParseError> {
        if tag.starts_with("<!--") || tag.starts_with("<?") || tag.starts_with("<!DOCTYPE") {
            return Ok(());
        }
        if let Some(cdata) = tag
            .strip_prefix("<![CDATA[")
            .and_then(|t| t.strip_suffix("]]>"))
        {
            if self.depth == 0 {
                return Err(self.err("CDATA outside the root element"));
            }
            if !cdata.is_empty() {
                emit(SymEvent::Text { content: cdata }, span);
            }
            return Ok(());
        }
        self.handle_element_tag(tag, span, emit)
    }

    /// A start (or self-closing) tag: `<name attr="v"…>` / `<name…/>`.
    fn handle_element_tag<F: FnMut(SymEvent<'_>, Span) + ?Sized>(
        &mut self,
        tag: &str,
        span: Span,
        emit: &mut F,
    ) -> Result<(), ParseError> {
        let inner = &tag.as_bytes()[1..tag.len() - 1];
        let (inner, self_closing) = match inner.split_last() {
            Some((&b'/', rest)) => (rest, true),
            _ => (inner, false),
        };
        // The name ends at the first splitter byte (the same set
        // `splitn` used); anything after it is the attribute region.
        let mut ne = 0;
        while ne < inner.len() && !matches!(inner[ne], b' ' | b'\t' | b'\r' | b'\n') {
            ne += 1;
        }
        // The `ne` scan guarantees no splitter bytes inside the slice,
        // so the trim can only bite on the exotic edges (0x0B / 0x0C /
        // non-ASCII whitespace) — skip it when both edge bytes are
        // plain ASCII.
        let name_raw = &tag[1..1 + ne];
        let name = match (name_raw.as_bytes().first(), name_raw.as_bytes().last()) {
            (Some(&f), Some(&l))
                if !matches!(f, 0x0B | 0x0C | 0x80..) && !matches!(l, 0x0B | 0x0C | 0x80..) =>
            {
                name_raw
            }
            _ => trim_ws(name_raw),
        };
        if name.is_empty() {
            return Err(self.err("empty tag name"));
        }
        if self.depth == 0 && self.started {
            return Err(self.err("multiple root elements"));
        }
        if ne < inner.len() {
            parse_attrs_into(
                &tag[1 + ne + 1..1 + inner.len()],
                &self.symbols,
                self.snapshot.as_deref(),
                &mut self.name_cache,
                self.intern_names,
                &mut self.attrs,
            )
            .map_err(|m| self.err(m))?;
        } else {
            self.attrs.clear();
        }
        let sym = self.resolve_name(name);
        if !self.started {
            self.started = true;
            emit(SymEvent::StartDocument, Span::point(0));
        }
        emit(
            SymEvent::StartElement {
                name: sym,
                attributes: self.attrs.as_slice(),
            },
            span,
        );
        if self_closing {
            // A self-closing tag is both events; they share its span.
            emit(SymEvent::EndElement { name: sym }, span);
        } else {
            self.stack_push(sym, name);
        }
        Ok(())
    }
}

impl crate::source::EventSource for StreamingParser {
    fn symbols(&self) -> &Arc<Symbols> {
        StreamingParser::symbols(self)
    }

    fn reset(&mut self) {
        StreamingParser::reset(self);
    }

    fn invalidate_name_memo(&mut self) {
        StreamingParser::invalidate_name_memo(self);
    }

    fn drive_batched(
        &mut self,
        reader: &mut dyn Read,
        consume: &mut dyn FnMut(&EventBatch),
    ) -> Result<(), ParseError> {
        StreamingParser::drive_batched(self, reader, consume)
    }
}

/// `s.trim()` with a byte-wise fast path: trims the ASCII whitespace
/// edges directly and falls back to the exact Unicode trim only when a
/// non-ASCII byte is left on an edge (which is the only way Unicode
/// whitespace can remain there).
fn trim_ws(s: &str) -> &str {
    let b = s.as_bytes();
    let mut start = 0;
    while start < b.len() && matches!(b[start], b' ' | b'\t' | b'\r' | b'\n' | 0x0B | 0x0C) {
        start += 1;
    }
    let mut end = b.len();
    while end > start && matches!(b[end - 1], b' ' | b'\t' | b'\r' | b'\n' | 0x0B | 0x0C) {
        end -= 1;
    }
    let t = &s[start..end];
    match t.as_bytes() {
        [f, .., l] if *f >= 0x80 || *l >= 0x80 => t.trim(),
        _ => t,
    }
}

/// `trim_ws` for slices whose leading edge is already known clean
/// (e.g. attribute names, which start right after a [`skip_ws`]):
/// only the trailing edge is scanned.
fn trim_ws_end(s: &str) -> &str {
    let b = s.as_bytes();
    let mut end = b.len();
    while end > 0 && matches!(b[end - 1], b' ' | b'\t' | b'\r' | b'\n' | 0x0B | 0x0C) {
        end -= 1;
    }
    let t = &s[..end];
    match t.as_bytes() {
        [.., l] if *l >= 0x80 => t.trim_end(),
        _ => t,
    }
}

/// First index `>= i` in `s` that is not whitespace (`s[i..].trim_start()`
/// as an index), with the same byte-wise fast path as [`trim_ws`].
fn skip_ws(s: &str, mut i: usize) -> usize {
    let b = s.as_bytes();
    while i < b.len() {
        match b[i] {
            b' ' | b'\t' | b'\r' | b'\n' | 0x0B | 0x0C => i += 1,
            0x80.. => {
                let rest = &s[i..];
                return i + (rest.len() - rest.trim_start().len());
            }
            _ => break,
        }
    }
    i
}

/// `s.chars().all(char::is_whitespace)` with a byte-wise fast path:
/// bails out at the first non-whitespace ASCII byte (the common case
/// for real text) and falls back to the exact `char` check only when
/// a non-ASCII byte appears first.
fn is_all_whitespace(s: &str) -> bool {
    for (i, &b) in s.as_bytes().iter().enumerate() {
        match b {
            b' ' | b'\t' | b'\r' | b'\n' | 0x0B | 0x0C => {}
            0x80.. => return s[i..].chars().all(char::is_whitespace),
            _ => return false,
        }
    }
    true
}

/// Parses `name="value"` pairs into the reused buffer, resolving names
/// per the parser's mode (interned, or lookup-only with unknown names
/// collapsing to [`Sym::UNKNOWN`]). Duplicates are detected by name
/// *string*, which stays exact under the collapse. Allocation-free in
/// steady state (slot strings and known names are reused).
fn parse_attrs_into(
    s: &str,
    symbols: &Symbols,
    snapshot: Option<&SymbolsSnapshot>,
    cache: &mut SymCache,
    intern_names: bool,
    out: &mut AttrBuf,
) -> Result<(), String> {
    out.clear();
    let s = s.trim_end();
    let b = s.as_bytes();
    let mut i = skip_ws(s, 0);
    while i < b.len() {
        let eq = match scan::memchr(b'=', &b[i..]) {
            Some(p) => i + p,
            None => return Err(format!("expected `=` in attributes: `{}`", &s[i..])),
        };
        let name = trim_ws_end(&s[i..eq]);
        let j = skip_ws(s, eq + 1);
        let q = match b.get(j) {
            Some(&q @ (b'"' | b'\'')) => q,
            _ => return Err("expected quoted attribute value".to_string()),
        };
        let close = match scan::memchr(q, &b[j + 1..]) {
            Some(p) => j + 1 + p,
            None => return Err("unterminated attribute value".to_string()),
        };
        let raw = &s[j + 1..close];
        let sym = match snapshot {
            Some(snap) => cache.lookup_frozen(snap, name),
            None => cache.lookup_or_intern(symbols, name, intern_names),
        };
        // In interning mode distinct names have distinct syms, so the
        // duplicate check is an integer scan and the name string need
        // not be copied at all. Only the lookup-only collapse (unknown
        // names sharing `Sym::UNKNOWN`) requires comparing by text.
        let value = if intern_names {
            if out.contains_name(sym) {
                return Err(format!("duplicate attribute `{name}`"));
            }
            out.push_name(sym)
        } else {
            if out.has_name_str(name) {
                return Err(format!("duplicate attribute `{name}`"));
            }
            out.push_named(sym, name)
        };
        if scan::memchr(b'&', raw.as_bytes()).is_none() {
            value.push_str(raw);
        } else {
            decode_entities_into(raw, value).map_err(|e| e.to_string())?;
        }
        i = skip_ws(s, close + 1);
    }
    Ok(())
}

/// Parses from any [`BufRead`], pushing events into a [`SaxHandler`]
/// without materializing the document. Fixed-size read buffer; memory
/// is bounded by the largest single token. Reads are fed as raw bytes,
/// so a buffer boundary landing inside a multibyte UTF-8 character is
/// carried, not an error.
pub fn parse_reader<R: BufRead, H: SaxHandler>(
    mut reader: R,
    handler: &mut H,
) -> Result<(), ParseError> {
    let mut parser = StreamingParser::new();
    let symbols = Arc::clone(parser.symbols());
    let mut emit = |ev: SymEvent<'_>, _: Span| {
        let e = ev.to_owned(&symbols);
        match &e {
            Event::StartDocument => handler.start_document(),
            Event::EndDocument => handler.end_document(),
            Event::StartElement { name, attributes } => handler.start_element(name, attributes),
            Event::EndElement { name } => handler.end_element(name),
            Event::Text { content } => handler.text(content),
        }
    };
    loop {
        let chunk = reader.fill_buf().map_err(|e| ParseError {
            message: e.to_string(),
            line: 0,
            column: 0,
        })?;
        if chunk.is_empty() {
            break;
        }
        let len = chunk.len();
        parser.feed_interned_bytes(chunk, &mut emit)?;
        reader.consume(len);
    }
    parser.finish_interned(&mut emit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventCollector;
    use crate::parser::parse;

    /// Feeds a document in chunks of every size 1..=n and checks the
    /// events match the batch parser.
    fn chunked_equals_batch(xml: &str) {
        let expected = parse(xml).unwrap();
        for chunk_size in 1..=xml.len().min(7) {
            let mut parser = StreamingParser::new();
            let mut events = Vec::new();
            let mut emit = |e: Event| events.push(e);
            let bytes = xml.as_bytes();
            let mut i = 0;
            while i < bytes.len() {
                let end = (i + chunk_size).min(bytes.len());
                // Respect UTF-8 boundaries (ASCII fixtures here).
                parser
                    .feed(std::str::from_utf8(&bytes[i..end]).unwrap(), &mut emit)
                    .unwrap();
                i = end;
            }
            parser.finish(&mut emit).unwrap();
            assert_eq!(events, expected, "chunk size {chunk_size} on {xml}");
        }
    }

    #[test]
    fn chunked_parsing_matches_batch() {
        chunked_equals_batch("<a><b>6</b><c/></a>");
        chunked_equals_batch(r#"<a id="1"><b>x &amp; y</b></a>"#);
        chunked_equals_batch("<a><!-- note --><b/></a>");
        chunked_equals_batch("<a><![CDATA[1 < 2]]></a>");
        chunked_equals_batch("<?xml version=\"1.0\"?><r><x/>text</r>");
    }

    #[test]
    fn split_entities_survive_chunking() {
        let mut parser = StreamingParser::new();
        let mut events = Vec::new();
        let mut emit = |e: Event| events.push(e);
        parser.feed("<a>x &am", &mut emit).unwrap();
        parser.feed("p; y</a>", &mut emit).unwrap();
        parser.finish(&mut emit).unwrap();
        assert!(events.contains(&Event::text("x & y")));
    }

    #[test]
    fn attribute_values_with_gt() {
        let xml = r#"<a note="1 > 0"><b/></a>"#;
        chunked_equals_batch(xml);
        let events = {
            let mut p = StreamingParser::new();
            let mut ev = Vec::new();
            p.feed(xml, &mut |e| ev.push(e)).unwrap();
            p.finish(&mut |e| ev.push(e)).unwrap();
            ev
        };
        match &events[1] {
            Event::StartElement { attributes, .. } => assert_eq!(attributes[0].value, "1 > 0"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn errors_on_mismatch_and_garbage() {
        let mut p = StreamingParser::new();
        let mut sink = |_e: Event| {};
        p.feed("<a><b>", &mut sink).unwrap();
        assert!(p.feed("</a>", &mut sink).is_err());

        let mut p2 = StreamingParser::new();
        p2.feed("<a/>", &mut sink).unwrap();
        assert!(p2.feed("<b/>", &mut sink).is_err());

        let mut p3 = StreamingParser::new();
        p3.feed("<a>", &mut sink).unwrap();
        assert!(p3.finish(&mut sink).is_err());
    }

    #[test]
    fn multiple_roots_are_rejected_after_stack_slots_retire() {
        // Regression: the pooled element stack keeps retired slots, so
        // the multiple-roots guard must consult the live depth, not
        // `stack.is_empty()`.
        let mut p = StreamingParser::new();
        let mut sink = |_e: Event| {};
        p.feed("<a></a>", &mut sink).unwrap();
        assert!(p.feed("<b></b>", &mut sink).is_err());

        let mut p2 = StreamingParser::new();
        assert!(p2.feed("<a><x/></a><b/>", &mut sink).is_err());
    }

    #[test]
    fn unterminated_entity_before_tag_errors_instead_of_looping() {
        // Regression: "&am" (no `;`) directly before a tag used to spin
        // forever in `drain` — the held-back fragment never shrank.
        let mut p = StreamingParser::new();
        let mut sink = |_e: Event| {};
        assert!(p.feed("<a>x &am<b/></a>", &mut sink).is_err());
    }

    /// Collects `(event, span)` pairs, feeding in `chunk` byte steps.
    fn spanned_events(xml: &str, chunk: usize) -> Vec<(Event, crate::span::Span)> {
        let mut parser = StreamingParser::new();
        let mut out = Vec::new();
        let mut emit = |e: Event, s: crate::span::Span| out.push((e, s));
        let bytes = xml.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let end = (i + chunk).min(bytes.len());
            parser
                .feed_spanned(std::str::from_utf8(&bytes[i..end]).unwrap(), &mut emit)
                .unwrap();
            i = end;
        }
        parser.finish_spanned(&mut emit).unwrap();
        out
    }

    #[test]
    fn spans_slice_back_to_the_source() {
        let xml = r#"<a id="1"><b>6</b><c/>t</a>"#;
        for (event, span) in spanned_events(xml, xml.len()) {
            let text = span.slice(xml).expect("span in bounds");
            match event {
                Event::StartElement { ref name, .. } => {
                    assert!(text.starts_with(&format!("<{name}")), "{text}");
                }
                Event::EndElement { ref name } => {
                    // Self-closing tags share the `<c/>` span.
                    assert!(
                        text == format!("</{name}>") || text == format!("<{name}/>"),
                        "{text}"
                    );
                }
                Event::Text { ref content } => assert_eq!(text, content.as_str()),
                Event::StartDocument | Event::EndDocument => assert!(text.is_empty()),
            }
        }
    }

    #[test]
    fn spans_are_chunk_boundary_correct() {
        // Offsets must count stream bytes, not chunk-local positions:
        // every chunking yields identical spans.
        let xml = r#"<a note="1 > 0"><b>x &amp; y</b><![CDATA[q]]><c/></a>"#;
        let reference = spanned_events(xml, xml.len());
        for chunk in 1..=9usize {
            assert_eq!(spanned_events(xml, chunk), reference, "chunk size {chunk}");
        }
    }

    #[test]
    fn reader_drives_handler() {
        let xml = "<a><b>6</b><c/></a>".to_string();
        let mut collector = EventCollector::default();
        parse_reader(std::io::Cursor::new(xml.as_bytes()), &mut collector).unwrap();
        assert_eq!(collector.events, parse(&xml).unwrap());
    }

    #[test]
    fn reader_streams_into_a_filter() {
        // End-to-end: BufRead → events → the Section-8 filter, no DOM.
        // (The filter lives downstream; here we just count elements.)
        #[derive(Default)]
        struct Counter {
            starts: usize,
        }
        impl SaxHandler for Counter {
            fn start_element(&mut self, _n: &str, _a: &[crate::event::Attribute]) {
                self.starts += 1;
            }
        }
        let body: String = (0..500)
            .map(|i| format!("<item><price>{i}</price></item>"))
            .collect();
        let xml = format!("<catalog>{body}</catalog>");
        let mut counter = Counter::default();
        parse_reader(
            std::io::BufReader::with_capacity(64, std::io::Cursor::new(xml)),
            &mut counter,
        )
        .unwrap();
        assert_eq!(counter.starts, 1001);
    }

    // -- interned surface ---------------------------------------------------

    /// Runs the interned path and re-materializes owned events through
    /// the table, for comparison with the owned path.
    fn interned_as_owned(xml: &str, chunk: usize) -> Vec<(Event, Span)> {
        let mut parser = StreamingParser::new();
        let symbols = Arc::clone(parser.symbols());
        let mut out: Vec<(Event, Span)> = Vec::new();
        let bytes = xml.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let end = (i + chunk).min(bytes.len());
            parser
                .feed_interned(
                    std::str::from_utf8(&bytes[i..end]).unwrap(),
                    &mut |ev, s| out.push((ev.to_owned(&symbols), s)),
                )
                .unwrap();
            i = end;
        }
        parser
            .finish_interned(&mut |ev, s| out.push((ev.to_owned(&symbols), s)))
            .unwrap();
        out
    }

    #[test]
    fn interned_events_match_owned_events_at_every_chunking() {
        let xml = r#"<a note="1 > 0"><b>x &amp; y</b><![CDATA[q]]><c/>t</a>"#;
        let reference = spanned_events(xml, xml.len());
        for chunk in [1usize, 2, 3, 7, xml.len()] {
            assert_eq!(interned_as_owned(xml, chunk), reference, "chunk {chunk}");
        }
    }

    #[test]
    fn interned_names_are_stable_across_occurrences() {
        let mut parser = StreamingParser::new();
        let mut names: Vec<Sym> = Vec::new();
        parser
            .feed_interned("<a><b/><b/><a><b/></a></a>", &mut |ev, _| {
                if let SymEvent::StartElement { name, .. } = ev {
                    names.push(name);
                }
            })
            .unwrap();
        parser.finish_interned(&mut |_, _| {}).unwrap();
        assert_eq!(names.len(), 5);
        assert_eq!(names[1], names[2]);
        assert_eq!(names[1], names[4]);
        assert_ne!(names[0], names[1]);
        assert_eq!(parser.symbols().len(), 2);
    }

    #[test]
    fn shared_table_gives_equal_syms_across_parsers() {
        let symbols = Arc::new(Symbols::new());
        let sym_of = |xml: &str| {
            let mut p = StreamingParser::with_symbols(Arc::clone(&symbols));
            let mut first = None;
            p.feed_interned(xml, &mut |ev, _| {
                if let SymEvent::StartElement { name, .. } = ev {
                    first.get_or_insert(name);
                }
            })
            .unwrap();
            first.unwrap()
        };
        assert_eq!(sym_of("<doc><x/></doc>"), sym_of("<doc><y/></doc>"));
    }

    #[test]
    fn lookup_only_mode_never_grows_the_table() {
        let symbols = Arc::new(Symbols::new());
        let known = symbols.intern("item");
        let mut p = StreamingParser::with_symbols(Arc::clone(&symbols)).lookup_only();
        let mut events = Vec::new();
        p.feed_interned(
            r#"<root><item/><other key="v">text</other></root>"#,
            &mut |ev, _| events.push(format!("{ev:?}")),
        )
        .unwrap();
        p.finish_interned(&mut |_, _| {}).unwrap();
        assert_eq!(symbols.len(), 1, "document names must not intern");
        // The known name resolves to its real sym; unknown ones
        // collapse to UNKNOWN (and still match as start/end pairs).
        assert!(events.iter().any(|e| e.contains(&format!("{known:?}"))));
        assert!(events
            .iter()
            .any(|e| e.contains("UNKNOWN") || e.contains("4294967295")));
    }

    #[test]
    fn lookup_only_rejects_the_owned_event_surface() {
        // The owned wrappers must resolve syms back to names, which
        // lookup-only mode cannot do: a proper error, not a panic.
        let mut p = StreamingParser::new().lookup_only();
        let err = p.feed("<a/>", &mut |_e| {}).unwrap_err();
        assert!(err.message.contains("interning"), "{err}");
        let mut p2 = StreamingParser::new().lookup_only();
        p2.feed_interned("<a/>", &mut |_, _| {}).unwrap();
        assert!(p2.finish_spanned(&mut |_, _| {}).is_err());
    }

    #[test]
    fn parser_reset_reuses_scratch_across_documents() {
        let mut p = StreamingParser::new();
        let mut names = Vec::new();
        p.feed_interned("<a><b/></a>", &mut |ev, _| {
            if let SymEvent::StartElement { name, .. } = ev {
                names.push(name);
            }
        })
        .unwrap();
        p.finish_interned(&mut |_, _| {}).unwrap();
        p.reset();
        p.feed_interned("<a><c/></a>", &mut |ev, _| {
            if let SymEvent::StartElement { name, .. } = ev {
                names.push(name);
            }
        })
        .unwrap();
        p.finish_interned(&mut |_, _| {}).unwrap();
        assert_eq!(names[0], names[2], "syms stable across reset");
        assert_eq!(p.symbols().len(), 3);
        // And a reset parser enforces completeness afresh.
        p.reset();
        p.feed_interned("<open>", &mut |_, _| {}).unwrap();
        assert!(p.finish_interned(&mut |_, _| {}).is_err());
    }

    #[test]
    fn lookup_only_mode_still_matches_end_tags_exactly() {
        // Two distinct unknown names share Sym::UNKNOWN, but tag
        // matching is by string: crossing them is still an error.
        let mut p = StreamingParser::new().lookup_only();
        let mut sink = |_: SymEvent<'_>, _: crate::span::Span| {};
        p.feed_interned("<aaa><bbb>", &mut sink).unwrap();
        assert!(p.feed_interned("</aaa>", &mut sink).is_err());

        // And duplicate unknown attribute names are still rejected.
        let mut p2 = StreamingParser::new().lookup_only();
        assert!(p2
            .feed_interned(r#"<t q="1" q="2"/>"#, &mut |_, _| {})
            .is_err());
        // Distinct unknown attribute names are not false duplicates.
        let mut p3 = StreamingParser::new().lookup_only();
        p3.feed_interned(r#"<t q="1" r="2"/>"#, &mut |_, _| {})
            .unwrap();
    }

    #[test]
    fn drive_reader_equals_batch_with_multibyte_splits() {
        let xml = "<a attr=\"v\">héllo • wörld<b/></a>";
        let expected = parse(xml).unwrap();
        let mut parser = StreamingParser::new();
        let symbols = Arc::clone(parser.symbols());
        let mut got = Vec::new();
        parser
            .drive_reader(std::io::Cursor::new(xml.as_bytes()), &mut |ev, _| {
                got.push(ev.to_owned(&symbols))
            })
            .unwrap();
        assert_eq!(got, expected);
    }

    #[test]
    fn drive_reader_reports_truncation_and_bad_utf8() {
        let mut p = StreamingParser::new();
        assert!(p
            .drive_reader(std::io::Cursor::new(b"<a><b>".as_ref()), &mut |_, _| {})
            .is_err());
        let mut p2 = StreamingParser::new();
        assert!(p2
            .drive_reader(
                std::io::Cursor::new(b"<a>\xFF</a>".as_ref()),
                &mut |_, _| {}
            )
            .is_err());
    }
}
