//! Incremental (chunk-at-a-time) XML parsing: the true streaming entry
//! point. [`crate::parse`] needs the whole document in memory;
//! [`StreamingParser`] accepts arbitrary byte-chunk boundaries and emits
//! events as soon as they are complete, so a filter can run over documents
//! far larger than RAM — the setting the paper's space bounds are about.

use crate::escape::decode_entities;
use crate::event::{Attribute, Event, SaxHandler};
use crate::parser::ParseError;
use crate::span::Span;
use std::io::BufRead;

/// A resumable push parser. Feed it string chunks; it emits events through
/// a callback and buffers only the current incomplete token.
#[derive(Debug, Clone)]
pub struct StreamingParser {
    buf: String,
    stack: Vec<String>,
    started: bool,
    finished: bool,
    consumed: usize,
    keep_whitespace: bool,
}

impl Default for StreamingParser {
    fn default() -> Self {
        StreamingParser::new()
    }
}

impl StreamingParser {
    /// Creates a parser with default options (whitespace-only text
    /// dropped, matching [`crate::parse`]).
    pub fn new() -> StreamingParser {
        StreamingParser {
            buf: String::new(),
            stack: Vec::new(),
            started: false,
            finished: false,
            consumed: 0,
            keep_whitespace: false,
        }
    }

    /// Keeps whitespace-only text nodes.
    pub fn keep_whitespace(mut self) -> StreamingParser {
        self.keep_whitespace = true;
        self
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            line: 0,
            column: self.consumed + 1,
        }
    }

    /// Feeds a chunk, emitting every event that becomes complete.
    pub fn feed(&mut self, chunk: &str, emit: &mut dyn FnMut(Event)) -> Result<(), ParseError> {
        self.feed_spanned(chunk, &mut |e, _| emit(e))
    }

    /// [`StreamingParser::feed`], with each event's source byte [`Span`].
    ///
    /// Offsets are cumulative across chunks — a tag split over two
    /// `feed` calls is stamped with its position in the whole stream,
    /// not in the chunk that completed it.
    pub fn feed_spanned(
        &mut self,
        chunk: &str,
        emit: &mut dyn FnMut(Event, Span),
    ) -> Result<(), ParseError> {
        self.buf.push_str(chunk);
        self.drain(false, emit)
    }

    /// Signals end of input; emits any trailing events (including
    /// `EndDocument`) and verifies completeness.
    pub fn finish(&mut self, emit: &mut dyn FnMut(Event)) -> Result<(), ParseError> {
        self.finish_spanned(&mut |e, _| emit(e))
    }

    /// [`StreamingParser::finish`], with each event's source byte [`Span`].
    pub fn finish_spanned(&mut self, emit: &mut dyn FnMut(Event, Span)) -> Result<(), ParseError> {
        self.drain(true, emit)?;
        if !self.buf.trim().is_empty() {
            return Err(self.err("unexpected trailing content at end of input"));
        }
        if !self.stack.is_empty() {
            return Err(self.err(format!(
                "unclosed element `{}`",
                self.stack.last().expect("non-empty")
            )));
        }
        if !self.started {
            return Err(self.err("empty document"));
        }
        if self.finished {
            return Err(self.err("finish called twice"));
        }
        self.finished = true;
        emit(Event::EndDocument, Span::point(self.consumed as u64));
        Ok(())
    }

    fn drain(&mut self, at_eof: bool, emit: &mut dyn FnMut(Event, Span)) -> Result<(), ParseError> {
        loop {
            // Text up to the next tag (or all of it at EOF).
            match self.buf.find('<') {
                Some(0) => {}
                Some(pos) => {
                    let before = self.consumed;
                    self.take_text(pos, emit)?;
                    if self.consumed == before {
                        // The text before the tag is entirely a held-back
                        // entity fragment ("&am…" with no `;`); a tag can
                        // never complete it, so looping would never make
                        // progress.
                        return Err(self.err("unterminated entity reference before tag"));
                    }
                    continue;
                }
                None => {
                    if at_eof {
                        let len = self.buf.len();
                        if len > 0 {
                            self.take_text(len, emit)?;
                        }
                    }
                    return Ok(());
                }
            }
            // A tag begins at offset 0; find its end, respecting the
            // multi-character terminators of comments/CDATA/PIs and
            // quoted attribute values (which may contain `>`).
            let Some(tag_len) = self.tag_length()? else {
                return Ok(()); // incomplete: wait for more input
            };
            let tag: String = self.buf.drain(..tag_len).collect();
            self.consumed += tag_len;
            let span = Span::new((self.consumed - tag_len) as u64, self.consumed as u64);
            self.handle_tag(&tag, span, emit)?;
        }
    }

    fn take_text(
        &mut self,
        len: usize,
        emit: &mut dyn FnMut(Event, Span),
    ) -> Result<(), ParseError> {
        // Hold back a trailing fragment that may be a split entity
        // reference ("&am" + "p;").
        let mut end = len;
        if let Some(amp) = self.buf[..len].rfind('&') {
            if !self.buf[amp..len].contains(';') {
                end = amp;
            }
        }
        if end == 0 {
            return Ok(());
        }
        let raw: String = self.buf.drain(..end).collect();
        self.consumed += end;
        let span = Span::new((self.consumed - end) as u64, self.consumed as u64);
        let text = decode_entities(&raw).map_err(|e| self.err(e.to_string()))?;
        if self.keep_whitespace || !text.chars().all(char::is_whitespace) {
            if self.stack.is_empty() {
                return Err(self.err("text content outside the root element"));
            }
            emit(Event::text(text), span);
        }
        Ok(())
    }

    /// Length of the complete tag at the buffer start, or `None` if more
    /// input is needed.
    fn tag_length(&self) -> Result<Option<usize>, ParseError> {
        let b = &self.buf;
        debug_assert!(b.starts_with('<'));
        let closed_by = |needle: &str, from: usize| -> Option<usize> {
            b[from..].find(needle).map(|i| from + i + needle.len())
        };
        if b.starts_with("<!--") {
            return Ok(closed_by("-->", 4));
        }
        if b.starts_with("<![CDATA[") {
            return Ok(closed_by("]]>", 9));
        }
        if b.starts_with("<?") {
            return Ok(closed_by("?>", 2));
        }
        if b.starts_with("<!") {
            // DOCTYPE with optional internal subset.
            let mut depth = 0usize;
            for (i, c) in b.char_indices().skip(2) {
                match c {
                    '[' => depth += 1,
                    ']' => depth = depth.saturating_sub(1),
                    '>' if depth == 0 => return Ok(Some(i + 1)),
                    _ => {}
                }
            }
            return Ok(None);
        }
        // A start or end tag: scan with quote awareness.
        let mut quote: Option<char> = None;
        for (i, c) in b.char_indices().skip(1) {
            match (quote, c) {
                (Some(q), _) if c == q => quote = None,
                (Some(_), _) => {}
                (None, '"') | (None, '\'') => quote = Some(c),
                (None, '>') => return Ok(Some(i + 1)),
                (None, '<') => return Err(self.err("`<` inside a tag")),
                _ => {}
            }
        }
        Ok(None)
    }

    fn handle_tag(
        &mut self,
        tag: &str,
        span: Span,
        emit: &mut dyn FnMut(Event, Span),
    ) -> Result<(), ParseError> {
        if tag.starts_with("<!--") || tag.starts_with("<?") || tag.starts_with("<!DOCTYPE") {
            return Ok(());
        }
        if let Some(cdata) = tag
            .strip_prefix("<![CDATA[")
            .and_then(|t| t.strip_suffix("]]>"))
        {
            if self.stack.is_empty() {
                return Err(self.err("CDATA outside the root element"));
            }
            if !cdata.is_empty() {
                emit(Event::text(cdata), span);
            }
            return Ok(());
        }
        if let Some(rest) = tag.strip_prefix("</") {
            let name = rest.trim_end_matches('>').trim();
            match self.stack.pop() {
                Some(open) if open == name => {
                    emit(Event::end(name), span);
                    Ok(())
                }
                Some(open) => {
                    Err(self.err(format!("mismatched `</{name}>`; expected `</{open}>`")))
                }
                None => Err(self.err(format!("`</{name}>` without matching start tag"))),
            }
        } else {
            let inner = tag.trim_start_matches('<').trim_end_matches('>');
            let (inner, self_closing) = match inner.strip_suffix('/') {
                Some(rest) => (rest, true),
                None => (inner, false),
            };
            let mut parts = inner.splitn(2, [' ', '\t', '\r', '\n']);
            let name = parts.next().unwrap_or_default().trim();
            if name.is_empty() {
                return Err(self.err("empty tag name"));
            }
            if self.stack.is_empty() && self.started {
                return Err(self.err("multiple root elements"));
            }
            let attributes = match parts.next() {
                Some(attrs) => parse_attrs(attrs).map_err(|m| self.err(m))?,
                None => Vec::new(),
            };
            if !self.started {
                self.started = true;
                emit(Event::StartDocument, Span::point(0));
            }
            emit(
                Event::StartElement {
                    name: name.to_string(),
                    attributes,
                },
                span,
            );
            if self_closing {
                // A self-closing tag is both events; they share its span.
                emit(Event::end(name), span);
            } else {
                self.stack.push(name.to_string());
            }
            Ok(())
        }
    }
}

fn parse_attrs(s: &str) -> Result<Vec<Attribute>, String> {
    let mut out = Vec::new();
    let mut rest = s.trim();
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("expected `=` in attributes: `{rest}`"))?;
        let name = rest[..eq].trim().to_string();
        rest = rest[eq + 1..].trim_start();
        let quote = rest.chars().next().filter(|&c| c == '"' || c == '\'');
        let Some(q) = quote else {
            return Err("expected quoted attribute value".to_string());
        };
        let close = rest[1..].find(q).ok_or("unterminated attribute value")? + 1;
        let raw = &rest[1..close];
        let value = decode_entities(raw)
            .map_err(|e| e.to_string())?
            .into_owned();
        if out.iter().any(|a: &Attribute| a.name == name) {
            return Err(format!("duplicate attribute `{name}`"));
        }
        out.push(Attribute { name, value });
        rest = rest[close + 1..].trim_start();
    }
    Ok(out)
}

/// Parses from any [`BufRead`], pushing events into a [`SaxHandler`]
/// without materializing the document. Fixed-size read buffer; memory is
/// bounded by the largest single token.
pub fn parse_reader<R: BufRead, H: SaxHandler>(
    mut reader: R,
    handler: &mut H,
) -> Result<(), ParseError> {
    let mut parser = StreamingParser::new();
    let mut emit = |e: Event| match &e {
        Event::StartDocument => handler.start_document(),
        Event::EndDocument => handler.end_document(),
        Event::StartElement { name, attributes } => handler.start_element(name, attributes),
        Event::EndElement { name } => handler.end_element(name),
        Event::Text { content } => handler.text(content),
    };
    loop {
        let chunk = reader.fill_buf().map_err(|e| ParseError {
            message: e.to_string(),
            line: 0,
            column: 0,
        })?;
        if chunk.is_empty() {
            break;
        }
        let text = std::str::from_utf8(chunk).map_err(|e| ParseError {
            message: format!("invalid UTF-8: {e}"),
            line: 0,
            column: 0,
        })?;
        let len = chunk.len();
        parser.feed(text, &mut emit)?;
        reader.consume(len);
    }
    parser.finish(&mut emit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventCollector;
    use crate::parser::parse;

    /// Feeds a document in chunks of every size 1..=n and checks the
    /// events match the batch parser.
    fn chunked_equals_batch(xml: &str) {
        let expected = parse(xml).unwrap();
        for chunk_size in 1..=xml.len().min(7) {
            let mut parser = StreamingParser::new();
            let mut events = Vec::new();
            let mut emit = |e: Event| events.push(e);
            let bytes = xml.as_bytes();
            let mut i = 0;
            while i < bytes.len() {
                let end = (i + chunk_size).min(bytes.len());
                // Respect UTF-8 boundaries (ASCII fixtures here).
                parser
                    .feed(std::str::from_utf8(&bytes[i..end]).unwrap(), &mut emit)
                    .unwrap();
                i = end;
            }
            parser.finish(&mut emit).unwrap();
            assert_eq!(events, expected, "chunk size {chunk_size} on {xml}");
        }
    }

    #[test]
    fn chunked_parsing_matches_batch() {
        chunked_equals_batch("<a><b>6</b><c/></a>");
        chunked_equals_batch(r#"<a id="1"><b>x &amp; y</b></a>"#);
        chunked_equals_batch("<a><!-- note --><b/></a>");
        chunked_equals_batch("<a><![CDATA[1 < 2]]></a>");
        chunked_equals_batch("<?xml version=\"1.0\"?><r><x/>text</r>");
    }

    #[test]
    fn split_entities_survive_chunking() {
        let mut parser = StreamingParser::new();
        let mut events = Vec::new();
        let mut emit = |e: Event| events.push(e);
        parser.feed("<a>x &am", &mut emit).unwrap();
        parser.feed("p; y</a>", &mut emit).unwrap();
        parser.finish(&mut emit).unwrap();
        assert!(events.contains(&Event::text("x & y")));
    }

    #[test]
    fn attribute_values_with_gt() {
        let xml = r#"<a note="1 > 0"><b/></a>"#;
        chunked_equals_batch(xml);
        let events = {
            let mut p = StreamingParser::new();
            let mut ev = Vec::new();
            p.feed(xml, &mut |e| ev.push(e)).unwrap();
            p.finish(&mut |e| ev.push(e)).unwrap();
            ev
        };
        match &events[1] {
            Event::StartElement { attributes, .. } => assert_eq!(attributes[0].value, "1 > 0"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn errors_on_mismatch_and_garbage() {
        let mut p = StreamingParser::new();
        let mut sink = |_e: Event| {};
        p.feed("<a><b>", &mut sink).unwrap();
        assert!(p.feed("</a>", &mut sink).is_err());

        let mut p2 = StreamingParser::new();
        p2.feed("<a/>", &mut sink).unwrap();
        assert!(p2.feed("<b/>", &mut sink).is_err());

        let mut p3 = StreamingParser::new();
        p3.feed("<a>", &mut sink).unwrap();
        assert!(p3.finish(&mut sink).is_err());
    }

    #[test]
    fn unterminated_entity_before_tag_errors_instead_of_looping() {
        // Regression: "&am" (no `;`) directly before a tag used to spin
        // forever in `drain` — the held-back fragment never shrank.
        let mut p = StreamingParser::new();
        let mut sink = |_e: Event| {};
        assert!(p.feed("<a>x &am<b/></a>", &mut sink).is_err());
    }

    /// Collects `(event, span)` pairs, feeding in `chunk` byte steps.
    fn spanned_events(xml: &str, chunk: usize) -> Vec<(Event, crate::span::Span)> {
        let mut parser = StreamingParser::new();
        let mut out = Vec::new();
        let mut emit = |e: Event, s: crate::span::Span| out.push((e, s));
        let bytes = xml.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let end = (i + chunk).min(bytes.len());
            parser
                .feed_spanned(std::str::from_utf8(&bytes[i..end]).unwrap(), &mut emit)
                .unwrap();
            i = end;
        }
        parser.finish_spanned(&mut emit).unwrap();
        out
    }

    #[test]
    fn spans_slice_back_to_the_source() {
        let xml = r#"<a id="1"><b>6</b><c/>t</a>"#;
        for (event, span) in spanned_events(xml, xml.len()) {
            let text = span.slice(xml).expect("span in bounds");
            match event {
                Event::StartElement { ref name, .. } => {
                    assert!(text.starts_with(&format!("<{name}")), "{text}");
                }
                Event::EndElement { ref name } => {
                    // Self-closing tags share the `<c/>` span.
                    assert!(
                        text == format!("</{name}>") || text == format!("<{name}/>"),
                        "{text}"
                    );
                }
                Event::Text { ref content } => assert_eq!(text, content.as_str()),
                Event::StartDocument | Event::EndDocument => assert!(text.is_empty()),
            }
        }
    }

    #[test]
    fn spans_are_chunk_boundary_correct() {
        // Offsets must count stream bytes, not chunk-local positions:
        // every chunking yields identical spans.
        let xml = r#"<a note="1 > 0"><b>x &amp; y</b><![CDATA[q]]><c/></a>"#;
        let reference = spanned_events(xml, xml.len());
        for chunk in 1..=9usize {
            assert_eq!(spanned_events(xml, chunk), reference, "chunk size {chunk}");
        }
    }

    #[test]
    fn reader_drives_handler() {
        let xml = "<a><b>6</b><c/></a>".to_string();
        let mut collector = EventCollector::default();
        parse_reader(std::io::Cursor::new(xml.as_bytes()), &mut collector).unwrap();
        assert_eq!(collector.events, parse(&xml).unwrap());
    }

    #[test]
    fn reader_streams_into_a_filter() {
        // End-to-end: BufRead → events → the Section-8 filter, no DOM.
        // (The filter lives downstream; here we just count elements.)
        #[derive(Default)]
        struct Counter {
            starts: usize,
        }
        impl SaxHandler for Counter {
            fn start_element(&mut self, _n: &str, _a: &[Attribute]) {
                self.starts += 1;
            }
        }
        let body: String = (0..500)
            .map(|i| format!("<item><price>{i}</price></item>"))
            .collect();
        let xml = format!("<catalog>{body}</catalog>");
        let mut counter = Counter::default();
        parse_reader(
            std::io::BufReader::with_capacity(64, std::io::Cursor::new(xml)),
            &mut counter,
        )
        .unwrap();
        assert_eq!(counter.starts, 1001);
    }
}
