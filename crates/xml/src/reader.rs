//! Incremental (chunk-at-a-time) XML parsing: the true streaming entry
//! point. [`crate::parse`] needs the whole document in memory;
//! [`StreamingParser`] accepts arbitrary byte-chunk boundaries and emits
//! events as soon as they are complete, so a filter can run over documents
//! far larger than RAM — the setting the paper's space bounds are about.
//!
//! The parser's native output is the *interned* event surface
//! ([`StreamingParser::feed_interned`] → [`SymEvent`]): element and
//! attribute names are interned into the parser's shared [`Symbols`]
//! table and payloads borrow reusable scratch buffers, so steady-state
//! parsing performs **zero heap allocations per element event**. The
//! owned-event surface ([`StreamingParser::feed`] /
//! [`StreamingParser::feed_spanned`]) is a thin conversion layer over it.

use crate::escape::decode_entities_into;
use crate::event::{Event, SaxHandler};
use crate::parser::ParseError;
use crate::span::Span;
use crate::symbols::{AttrBuf, Sym, SymCache, SymEvent, Symbols};
use std::io::{BufRead, Read};
use std::sync::Arc;

/// A resumable push parser. Feed it string chunks; it emits events through
/// a callback and buffers only the current incomplete token.
#[derive(Debug, Clone)]
pub struct StreamingParser {
    buf: String,
    /// Consumed prefix of `buf`: tokens advance this cursor instead of
    /// draining the buffer (an O(remaining) memmove per token — on a
    /// batch feed that is quadratic in document size). The buffer
    /// compacts once per `feed`, amortizing the move to O(1) per byte.
    pos: usize,
    symbols: Arc<Symbols>,
    /// When false (see [`StreamingParser::lookup_only`]), document
    /// names are *resolved* against the table read-only instead of
    /// interned: names outside the compiled vocabulary collapse to
    /// [`Sym::UNKNOWN`] and the shared table never grows with document
    /// content — the bounded-memory mode the engine's reader path uses.
    intern_names: bool,
    /// Per-parser lock-free memo over the table.
    name_cache: SymCache,
    /// Open elements: `(sym, name)` with the name strings pooled
    /// (popped slots keep their capacity). End tags are matched by
    /// *string*, which stays exact when unknown names share a sym.
    stack: Vec<(Sym, String)>,
    /// Number of live `stack` entries (the rest are retired slots kept
    /// for reuse).
    depth: usize,
    started: bool,
    finished: bool,
    consumed: usize,
    keep_whitespace: bool,
    /// Reused copy of the tag being handled (the tag must leave `buf`
    /// before events are emitted, but not via a fresh allocation).
    tag_scratch: String,
    /// Reused entity-decoded text buffer; `Text` events borrow it.
    text_scratch: String,
    /// Reused attribute slots; `StartElement` events borrow them.
    attrs: AttrBuf,
    /// Reused read buffer for [`StreamingParser::drive_reader`].
    io_chunk: Vec<u8>,
}

impl Default for StreamingParser {
    fn default() -> Self {
        StreamingParser::new()
    }
}

impl StreamingParser {
    /// Creates a parser with default options (whitespace-only text
    /// dropped, matching [`crate::parse`]) and a fresh private
    /// [`Symbols`] table.
    pub fn new() -> StreamingParser {
        StreamingParser::with_symbols(Arc::new(Symbols::new()))
    }

    /// Creates a parser interning names into `symbols` — the table the
    /// downstream filters' compiled node tests live in, so interned
    /// events and compiled queries meet as equal integers.
    pub fn with_symbols(symbols: Arc<Symbols>) -> StreamingParser {
        StreamingParser {
            buf: String::new(),
            pos: 0,
            symbols,
            intern_names: true,
            name_cache: SymCache::new(),
            stack: Vec::new(),
            depth: 0,
            started: false,
            finished: false,
            consumed: 0,
            keep_whitespace: false,
            tag_scratch: String::new(),
            text_scratch: String::new(),
            attrs: AttrBuf::new(),
            io_chunk: Vec::new(),
        }
    }

    /// Resets per-document state so the parser can stream another
    /// document, keeping everything amortizable warm: the symbol table
    /// handle, the name memo, and every scratch buffer's capacity.
    /// Sessions reuse one parser across documents this way instead of
    /// rebuilding scratch per document.
    pub fn reset(&mut self) {
        self.buf.clear();
        self.pos = 0;
        self.depth = 0;
        self.started = false;
        self.finished = false;
        self.consumed = 0;
    }

    /// The symbol table this parser interns names into.
    pub fn symbols(&self) -> &Arc<Symbols> {
        &self.symbols
    }

    /// Drops every memoized name verdict. A lookup-only parser memoizes
    /// [`Sym::UNKNOWN`] for names outside the table; if the shared table
    /// later gains such a name (a dissemination server compiling a new
    /// subscription), the stale memo would keep collapsing it to
    /// `UNKNOWN`. Call this after interning new names behind a live
    /// parser; [`StreamingParser::reset`] deliberately keeps the memo
    /// warm.
    pub fn invalidate_name_memo(&mut self) {
        self.name_cache.clear();
    }

    /// Keeps whitespace-only text nodes.
    pub fn keep_whitespace(mut self) -> StreamingParser {
        self.keep_whitespace = true;
        self
    }

    /// Switches to *lookup-only* name resolution: document names are
    /// resolved against the (shared) table without interning — names
    /// the table has never seen collapse to [`Sym::UNKNOWN`], exactly
    /// as the filters' owned-event conversion treats them (they fail
    /// every named node test and pass every wildcard), and the table
    /// never grows with document content. This is how a long-lived
    /// engine keeps bounded memory on streams with unbounded
    /// distinct-name cardinality; the default interning mode instead
    /// guarantees distinct syms per distinct name (required by
    /// [`SymEvent::to_owned`] and thus the owned `feed`/`feed_spanned`
    /// wrappers, which must not be used in lookup-only mode).
    ///
    /// Compile every query against the table *before* parsing: the
    /// per-parser memo caches "unknown" verdicts (see
    /// [`crate::SymCache`]).
    pub fn lookup_only(mut self) -> StreamingParser {
        self.intern_names = false;
        self
    }

    /// Resolves a name per the parser's mode: memoized lookup, plus
    /// interning (and memo refresh) on a miss in the default mode.
    fn resolve_name(&mut self, name: &str) -> Sym {
        self.name_cache
            .lookup_or_intern(&self.symbols, name, self.intern_names)
    }

    /// Pushes an open element, reusing a retired slot's name capacity.
    fn stack_push(&mut self, sym: Sym, name: &str) {
        if self.depth == self.stack.len() {
            self.stack.push((sym, name.to_string()));
        } else {
            let slot = &mut self.stack[self.depth];
            slot.0 = sym;
            slot.1.clear();
            slot.1.push_str(name);
        }
        self.depth += 1;
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            line: 0,
            column: self.consumed + 1,
        }
    }

    /// Feeds a chunk, emitting every event that becomes complete.
    pub fn feed(&mut self, chunk: &str, emit: &mut dyn FnMut(Event)) -> Result<(), ParseError> {
        self.feed_spanned(chunk, &mut |e, _| emit(e))
    }

    /// [`StreamingParser::feed`], with each event's source byte [`Span`].
    ///
    /// Offsets are cumulative across chunks — a tag split over two
    /// `feed` calls is stamped with its position in the whole stream,
    /// not in the chunk that completed it.
    pub fn feed_spanned(
        &mut self,
        chunk: &str,
        emit: &mut dyn FnMut(Event, Span),
    ) -> Result<(), ParseError> {
        self.require_interning()?;
        let symbols = Arc::clone(&self.symbols);
        self.feed_interned(chunk, &mut |ev, span| emit(ev.to_owned(&symbols), span))
    }

    /// The owned-event wrappers must resolve every sym back to its
    /// name, which [`StreamingParser::lookup_only`] mode cannot do
    /// (unknown names collapse to one sentinel): reject the combination
    /// with a proper error instead of panicking inside `resolve`.
    fn require_interning(&self) -> Result<(), ParseError> {
        if self.intern_names {
            Ok(())
        } else {
            Err(self.err(
                "the owned-event surface (feed/feed_spanned/finish_spanned) requires                  interning mode; a lookup_only parser emits interned events only",
            ))
        }
    }

    /// Feeds a chunk, emitting every completed event in *interned*,
    /// zero-copy form: names are [`Sym`]s from the parser's table,
    /// attribute and text payloads borrow the parser's reusable scratch
    /// buffers (valid for the duration of the callback). In steady
    /// state — names already interned, scratch capacities warm — a
    /// start/end element event allocates nothing.
    pub fn feed_interned(
        &mut self,
        chunk: &str,
        emit: &mut dyn FnMut(SymEvent<'_>, Span),
    ) -> Result<(), ParseError> {
        self.compact();
        self.buf.push_str(chunk);
        self.drain(false, emit)
    }

    /// Drops the consumed prefix of the buffer (cheap when it was fully
    /// consumed, one move of the unconsumed tail otherwise).
    fn compact(&mut self) {
        if self.pos == 0 {
            return;
        }
        if self.pos == self.buf.len() {
            self.buf.clear();
        } else {
            self.buf.drain(..self.pos);
        }
        self.pos = 0;
    }

    /// The unconsumed input.
    fn pending(&self) -> &str {
        &self.buf[self.pos..]
    }

    /// Signals end of input; emits any trailing events (including
    /// `EndDocument`) and verifies completeness.
    pub fn finish(&mut self, emit: &mut dyn FnMut(Event)) -> Result<(), ParseError> {
        self.finish_spanned(&mut |e, _| emit(e))
    }

    /// [`StreamingParser::finish`], with each event's source byte [`Span`].
    pub fn finish_spanned(&mut self, emit: &mut dyn FnMut(Event, Span)) -> Result<(), ParseError> {
        self.require_interning()?;
        let symbols = Arc::clone(&self.symbols);
        self.finish_interned(&mut |ev, span| emit(ev.to_owned(&symbols), span))
    }

    /// [`StreamingParser::finish`] on the interned surface.
    pub fn finish_interned(
        &mut self,
        emit: &mut dyn FnMut(SymEvent<'_>, Span),
    ) -> Result<(), ParseError> {
        self.drain(true, emit)?;
        if !self.pending().trim().is_empty() {
            return Err(self.err("unexpected trailing content at end of input"));
        }
        if self.depth > 0 {
            return Err(self.err(format!(
                "unclosed element `{}`",
                self.stack[self.depth - 1].1
            )));
        }
        if !self.started {
            return Err(self.err("empty document"));
        }
        if self.finished {
            return Err(self.err("finish called twice"));
        }
        self.finished = true;
        emit(SymEvent::EndDocument, Span::point(self.consumed as u64));
        Ok(())
    }

    /// Streams a whole document from `reader` through the interned
    /// surface: the engine's zero-copy hot path. Reads fixed-size
    /// chunks, carries split UTF-8 scalars across boundaries, feeds and
    /// finishes. Parser memory is bounded by the chunk plus the largest
    /// single XML token, never by document size — and in
    /// [`StreamingParser::lookup_only`] mode (how the engine drives
    /// this) the shared symbol table stays bounded by the compiled
    /// query vocabulary too; the default interning mode instead grows
    /// the table with the document's *distinct* names.
    pub fn drive_reader<R: Read>(
        &mut self,
        mut reader: R,
        emit: &mut dyn FnMut(SymEvent<'_>, Span),
    ) -> Result<(), ParseError> {
        // Take the reused read buffer out for the loop (so reads and
        // `feed_interned` can borrow `self` independently) and restore
        // it on every exit path.
        let mut chunk = std::mem::take(&mut self.io_chunk);
        let result = crate::source::drive_utf8_chunks(&mut reader, &mut chunk, &mut |text| {
            self.feed_interned(text, emit)
        })
        .and_then(|()| self.finish_interned(emit));
        self.io_chunk = chunk;
        result
    }

    fn drain(
        &mut self,
        at_eof: bool,
        emit: &mut dyn FnMut(SymEvent<'_>, Span),
    ) -> Result<(), ParseError> {
        loop {
            // Text up to the next tag (or all of it at EOF).
            match self.pending().find('<') {
                Some(0) => {}
                Some(pos) => {
                    let before = self.consumed;
                    self.take_text(pos, emit)?;
                    if self.consumed == before {
                        // The text before the tag is entirely a held-back
                        // entity fragment ("&am…" with no `;`); a tag can
                        // never complete it, so looping would never make
                        // progress.
                        return Err(self.err("unterminated entity reference before tag"));
                    }
                    continue;
                }
                None => {
                    if at_eof {
                        let len = self.pending().len();
                        if len > 0 {
                            self.take_text(len, emit)?;
                        }
                    }
                    return Ok(());
                }
            }
            // A tag begins at the cursor; find its end, respecting the
            // multi-character terminators of comments/CDATA/PIs and
            // quoted attribute values (which may contain `>`).
            let Some(tag_len) = self.tag_length()? else {
                return Ok(()); // incomplete: wait for more input
            };
            // Copy the tag into the reused scratch so the cursor can
            // advance past it without a fresh allocation, then hand it
            // to the handler.
            let mut tag = std::mem::take(&mut self.tag_scratch);
            tag.clear();
            tag.push_str(&self.buf[self.pos..self.pos + tag_len]);
            self.pos += tag_len;
            self.consumed += tag_len;
            let span = Span::new((self.consumed - tag_len) as u64, self.consumed as u64);
            let result = self.handle_tag(&tag, span, emit);
            self.tag_scratch = tag;
            result?;
        }
    }

    fn take_text(
        &mut self,
        len: usize,
        emit: &mut dyn FnMut(SymEvent<'_>, Span),
    ) -> Result<(), ParseError> {
        // Hold back a trailing fragment that may be a split entity
        // reference ("&am" + "p;").
        let text = &self.buf[self.pos..self.pos + len];
        let mut end = len;
        if let Some(amp) = text.rfind('&') {
            if !text[amp..].contains(';') {
                end = amp;
            }
        }
        if end == 0 {
            return Ok(());
        }
        self.text_scratch.clear();
        if let Err(e) =
            decode_entities_into(&self.buf[self.pos..self.pos + end], &mut self.text_scratch)
        {
            return Err(self.err(e.to_string()));
        }
        self.pos += end;
        self.consumed += end;
        let span = Span::new((self.consumed - end) as u64, self.consumed as u64);
        if self.keep_whitespace || !self.text_scratch.chars().all(char::is_whitespace) {
            if self.depth == 0 {
                return Err(self.err("text content outside the root element"));
            }
            emit(
                SymEvent::Text {
                    content: &self.text_scratch,
                },
                span,
            );
        }
        Ok(())
    }

    /// Length of the complete tag at the buffer start, or `None` if more
    /// input is needed.
    fn tag_length(&self) -> Result<Option<usize>, ParseError> {
        let b = self.pending();
        debug_assert!(b.starts_with('<'));
        let closed_by = |needle: &str, from: usize| -> Option<usize> {
            b[from..].find(needle).map(|i| from + i + needle.len())
        };
        if b.starts_with("<!--") {
            return Ok(closed_by("-->", 4));
        }
        if b.starts_with("<![CDATA[") {
            return Ok(closed_by("]]>", 9));
        }
        if b.starts_with("<?") {
            return Ok(closed_by("?>", 2));
        }
        if b.starts_with("<!") {
            // DOCTYPE with optional internal subset.
            let mut depth = 0usize;
            for (i, c) in b.char_indices().skip(2) {
                match c {
                    '[' => depth += 1,
                    ']' => depth = depth.saturating_sub(1),
                    '>' if depth == 0 => return Ok(Some(i + 1)),
                    _ => {}
                }
            }
            return Ok(None);
        }
        // A start or end tag: scan with quote awareness.
        let mut quote: Option<char> = None;
        for (i, c) in b.char_indices().skip(1) {
            match (quote, c) {
                (Some(q), _) if c == q => quote = None,
                (Some(_), _) => {}
                (None, '"') | (None, '\'') => quote = Some(c),
                (None, '>') => return Ok(Some(i + 1)),
                (None, '<') => return Err(self.err("`<` inside a tag")),
                _ => {}
            }
        }
        Ok(None)
    }

    fn handle_tag(
        &mut self,
        tag: &str,
        span: Span,
        emit: &mut dyn FnMut(SymEvent<'_>, Span),
    ) -> Result<(), ParseError> {
        if tag.starts_with("<!--") || tag.starts_with("<?") || tag.starts_with("<!DOCTYPE") {
            return Ok(());
        }
        if let Some(cdata) = tag
            .strip_prefix("<![CDATA[")
            .and_then(|t| t.strip_suffix("]]>"))
        {
            if self.depth == 0 {
                return Err(self.err("CDATA outside the root element"));
            }
            if !cdata.is_empty() {
                emit(SymEvent::Text { content: cdata }, span);
            }
            return Ok(());
        }
        if let Some(rest) = tag.strip_prefix("</") {
            let name = rest.trim_end_matches('>').trim();
            if self.depth == 0 {
                return Err(self.err(format!("`</{name}>` without matching start tag")));
            }
            // Match by string (exact even when several unknown names
            // share a sym in lookup-only mode) and emit the sym the
            // matching start carried — no lookup at all on end tags.
            let (open_sym, ref open_name) = self.stack[self.depth - 1];
            if open_name != name {
                return Err(self.err(format!("mismatched `</{name}>`; expected `</{open_name}>`")));
            }
            self.depth -= 1;
            emit(SymEvent::EndElement { name: open_sym }, span);
            Ok(())
        } else {
            let inner = tag.trim_start_matches('<').trim_end_matches('>');
            let (inner, self_closing) = match inner.strip_suffix('/') {
                Some(rest) => (rest, true),
                None => (inner, false),
            };
            let mut parts = inner.splitn(2, [' ', '\t', '\r', '\n']);
            let name = parts.next().unwrap_or_default().trim();
            if name.is_empty() {
                return Err(self.err("empty tag name"));
            }
            if self.depth == 0 && self.started {
                return Err(self.err("multiple root elements"));
            }
            match parts.next() {
                Some(attrs) => parse_attrs_into(
                    attrs,
                    &self.symbols,
                    &mut self.name_cache,
                    self.intern_names,
                    &mut self.attrs,
                )
                .map_err(|m| self.err(m))?,
                None => self.attrs.clear(),
            }
            let sym = self.resolve_name(name);
            if !self.started {
                self.started = true;
                emit(SymEvent::StartDocument, Span::point(0));
            }
            emit(
                SymEvent::StartElement {
                    name: sym,
                    attributes: self.attrs.as_slice(),
                },
                span,
            );
            if self_closing {
                // A self-closing tag is both events; they share its span.
                emit(SymEvent::EndElement { name: sym }, span);
            } else {
                self.stack_push(sym, name);
            }
            Ok(())
        }
    }
}

impl crate::source::EventSource for StreamingParser {
    fn symbols(&self) -> &Arc<Symbols> {
        StreamingParser::symbols(self)
    }

    fn reset(&mut self) {
        StreamingParser::reset(self);
    }

    fn invalidate_name_memo(&mut self) {
        StreamingParser::invalidate_name_memo(self);
    }

    fn drive(
        &mut self,
        reader: &mut dyn Read,
        emit: &mut dyn FnMut(SymEvent<'_>, Span),
    ) -> Result<(), ParseError> {
        self.drive_reader(reader, emit)
    }
}

/// Parses `name="value"` pairs into the reused buffer, resolving names
/// per the parser's mode (interned, or lookup-only with unknown names
/// collapsing to [`Sym::UNKNOWN`]). Duplicates are detected by name
/// *string*, which stays exact under the collapse. Allocation-free in
/// steady state (slot strings and known names are reused).
fn parse_attrs_into(
    s: &str,
    symbols: &Symbols,
    cache: &mut SymCache,
    intern_names: bool,
    out: &mut AttrBuf,
) -> Result<(), String> {
    out.clear();
    let mut rest = s.trim();
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("expected `=` in attributes: `{rest}`"))?;
        let name = rest[..eq].trim();
        rest = rest[eq + 1..].trim_start();
        let quote = rest.chars().next().filter(|&c| c == '"' || c == '\'');
        let Some(q) = quote else {
            return Err("expected quoted attribute value".to_string());
        };
        let close = rest[1..].find(q).ok_or("unterminated attribute value")? + 1;
        let raw = &rest[1..close];
        let sym = cache.lookup_or_intern(symbols, name, intern_names);
        if out.has_name_str(name) {
            return Err(format!("duplicate attribute `{name}`"));
        }
        let value = out.push_named(sym, name);
        decode_entities_into(raw, value).map_err(|e| e.to_string())?;
        rest = rest[close + 1..].trim_start();
    }
    Ok(())
}

/// Parses from any [`BufRead`], pushing events into a [`SaxHandler`]
/// without materializing the document. Fixed-size read buffer; memory is
/// bounded by the largest single token.
pub fn parse_reader<R: BufRead, H: SaxHandler>(
    mut reader: R,
    handler: &mut H,
) -> Result<(), ParseError> {
    let mut parser = StreamingParser::new();
    let mut emit = |e: Event| match &e {
        Event::StartDocument => handler.start_document(),
        Event::EndDocument => handler.end_document(),
        Event::StartElement { name, attributes } => handler.start_element(name, attributes),
        Event::EndElement { name } => handler.end_element(name),
        Event::Text { content } => handler.text(content),
    };
    loop {
        let chunk = reader.fill_buf().map_err(|e| ParseError {
            message: e.to_string(),
            line: 0,
            column: 0,
        })?;
        if chunk.is_empty() {
            break;
        }
        let text = std::str::from_utf8(chunk).map_err(|e| ParseError {
            message: format!("invalid UTF-8: {e}"),
            line: 0,
            column: 0,
        })?;
        let len = chunk.len();
        parser.feed(text, &mut emit)?;
        reader.consume(len);
    }
    parser.finish(&mut emit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventCollector;
    use crate::parser::parse;

    /// Feeds a document in chunks of every size 1..=n and checks the
    /// events match the batch parser.
    fn chunked_equals_batch(xml: &str) {
        let expected = parse(xml).unwrap();
        for chunk_size in 1..=xml.len().min(7) {
            let mut parser = StreamingParser::new();
            let mut events = Vec::new();
            let mut emit = |e: Event| events.push(e);
            let bytes = xml.as_bytes();
            let mut i = 0;
            while i < bytes.len() {
                let end = (i + chunk_size).min(bytes.len());
                // Respect UTF-8 boundaries (ASCII fixtures here).
                parser
                    .feed(std::str::from_utf8(&bytes[i..end]).unwrap(), &mut emit)
                    .unwrap();
                i = end;
            }
            parser.finish(&mut emit).unwrap();
            assert_eq!(events, expected, "chunk size {chunk_size} on {xml}");
        }
    }

    #[test]
    fn chunked_parsing_matches_batch() {
        chunked_equals_batch("<a><b>6</b><c/></a>");
        chunked_equals_batch(r#"<a id="1"><b>x &amp; y</b></a>"#);
        chunked_equals_batch("<a><!-- note --><b/></a>");
        chunked_equals_batch("<a><![CDATA[1 < 2]]></a>");
        chunked_equals_batch("<?xml version=\"1.0\"?><r><x/>text</r>");
    }

    #[test]
    fn split_entities_survive_chunking() {
        let mut parser = StreamingParser::new();
        let mut events = Vec::new();
        let mut emit = |e: Event| events.push(e);
        parser.feed("<a>x &am", &mut emit).unwrap();
        parser.feed("p; y</a>", &mut emit).unwrap();
        parser.finish(&mut emit).unwrap();
        assert!(events.contains(&Event::text("x & y")));
    }

    #[test]
    fn attribute_values_with_gt() {
        let xml = r#"<a note="1 > 0"><b/></a>"#;
        chunked_equals_batch(xml);
        let events = {
            let mut p = StreamingParser::new();
            let mut ev = Vec::new();
            p.feed(xml, &mut |e| ev.push(e)).unwrap();
            p.finish(&mut |e| ev.push(e)).unwrap();
            ev
        };
        match &events[1] {
            Event::StartElement { attributes, .. } => assert_eq!(attributes[0].value, "1 > 0"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn errors_on_mismatch_and_garbage() {
        let mut p = StreamingParser::new();
        let mut sink = |_e: Event| {};
        p.feed("<a><b>", &mut sink).unwrap();
        assert!(p.feed("</a>", &mut sink).is_err());

        let mut p2 = StreamingParser::new();
        p2.feed("<a/>", &mut sink).unwrap();
        assert!(p2.feed("<b/>", &mut sink).is_err());

        let mut p3 = StreamingParser::new();
        p3.feed("<a>", &mut sink).unwrap();
        assert!(p3.finish(&mut sink).is_err());
    }

    #[test]
    fn multiple_roots_are_rejected_after_stack_slots_retire() {
        // Regression: the pooled element stack keeps retired slots, so
        // the multiple-roots guard must consult the live depth, not
        // `stack.is_empty()`.
        let mut p = StreamingParser::new();
        let mut sink = |_e: Event| {};
        p.feed("<a></a>", &mut sink).unwrap();
        assert!(p.feed("<b></b>", &mut sink).is_err());

        let mut p2 = StreamingParser::new();
        assert!(p2.feed("<a><x/></a><b/>", &mut sink).is_err());
    }

    #[test]
    fn unterminated_entity_before_tag_errors_instead_of_looping() {
        // Regression: "&am" (no `;`) directly before a tag used to spin
        // forever in `drain` — the held-back fragment never shrank.
        let mut p = StreamingParser::new();
        let mut sink = |_e: Event| {};
        assert!(p.feed("<a>x &am<b/></a>", &mut sink).is_err());
    }

    /// Collects `(event, span)` pairs, feeding in `chunk` byte steps.
    fn spanned_events(xml: &str, chunk: usize) -> Vec<(Event, crate::span::Span)> {
        let mut parser = StreamingParser::new();
        let mut out = Vec::new();
        let mut emit = |e: Event, s: crate::span::Span| out.push((e, s));
        let bytes = xml.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let end = (i + chunk).min(bytes.len());
            parser
                .feed_spanned(std::str::from_utf8(&bytes[i..end]).unwrap(), &mut emit)
                .unwrap();
            i = end;
        }
        parser.finish_spanned(&mut emit).unwrap();
        out
    }

    #[test]
    fn spans_slice_back_to_the_source() {
        let xml = r#"<a id="1"><b>6</b><c/>t</a>"#;
        for (event, span) in spanned_events(xml, xml.len()) {
            let text = span.slice(xml).expect("span in bounds");
            match event {
                Event::StartElement { ref name, .. } => {
                    assert!(text.starts_with(&format!("<{name}")), "{text}");
                }
                Event::EndElement { ref name } => {
                    // Self-closing tags share the `<c/>` span.
                    assert!(
                        text == format!("</{name}>") || text == format!("<{name}/>"),
                        "{text}"
                    );
                }
                Event::Text { ref content } => assert_eq!(text, content.as_str()),
                Event::StartDocument | Event::EndDocument => assert!(text.is_empty()),
            }
        }
    }

    #[test]
    fn spans_are_chunk_boundary_correct() {
        // Offsets must count stream bytes, not chunk-local positions:
        // every chunking yields identical spans.
        let xml = r#"<a note="1 > 0"><b>x &amp; y</b><![CDATA[q]]><c/></a>"#;
        let reference = spanned_events(xml, xml.len());
        for chunk in 1..=9usize {
            assert_eq!(spanned_events(xml, chunk), reference, "chunk size {chunk}");
        }
    }

    #[test]
    fn reader_drives_handler() {
        let xml = "<a><b>6</b><c/></a>".to_string();
        let mut collector = EventCollector::default();
        parse_reader(std::io::Cursor::new(xml.as_bytes()), &mut collector).unwrap();
        assert_eq!(collector.events, parse(&xml).unwrap());
    }

    #[test]
    fn reader_streams_into_a_filter() {
        // End-to-end: BufRead → events → the Section-8 filter, no DOM.
        // (The filter lives downstream; here we just count elements.)
        #[derive(Default)]
        struct Counter {
            starts: usize,
        }
        impl SaxHandler for Counter {
            fn start_element(&mut self, _n: &str, _a: &[crate::event::Attribute]) {
                self.starts += 1;
            }
        }
        let body: String = (0..500)
            .map(|i| format!("<item><price>{i}</price></item>"))
            .collect();
        let xml = format!("<catalog>{body}</catalog>");
        let mut counter = Counter::default();
        parse_reader(
            std::io::BufReader::with_capacity(64, std::io::Cursor::new(xml)),
            &mut counter,
        )
        .unwrap();
        assert_eq!(counter.starts, 1001);
    }

    // -- interned surface ---------------------------------------------------

    /// Runs the interned path and re-materializes owned events through
    /// the table, for comparison with the owned path.
    fn interned_as_owned(xml: &str, chunk: usize) -> Vec<(Event, Span)> {
        let mut parser = StreamingParser::new();
        let symbols = Arc::clone(parser.symbols());
        let mut out: Vec<(Event, Span)> = Vec::new();
        let bytes = xml.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let end = (i + chunk).min(bytes.len());
            parser
                .feed_interned(
                    std::str::from_utf8(&bytes[i..end]).unwrap(),
                    &mut |ev, s| out.push((ev.to_owned(&symbols), s)),
                )
                .unwrap();
            i = end;
        }
        parser
            .finish_interned(&mut |ev, s| out.push((ev.to_owned(&symbols), s)))
            .unwrap();
        out
    }

    #[test]
    fn interned_events_match_owned_events_at_every_chunking() {
        let xml = r#"<a note="1 > 0"><b>x &amp; y</b><![CDATA[q]]><c/>t</a>"#;
        let reference = spanned_events(xml, xml.len());
        for chunk in [1usize, 2, 3, 7, xml.len()] {
            assert_eq!(interned_as_owned(xml, chunk), reference, "chunk {chunk}");
        }
    }

    #[test]
    fn interned_names_are_stable_across_occurrences() {
        let mut parser = StreamingParser::new();
        let mut names: Vec<Sym> = Vec::new();
        parser
            .feed_interned("<a><b/><b/><a><b/></a></a>", &mut |ev, _| {
                if let SymEvent::StartElement { name, .. } = ev {
                    names.push(name);
                }
            })
            .unwrap();
        parser.finish_interned(&mut |_, _| {}).unwrap();
        assert_eq!(names.len(), 5);
        assert_eq!(names[1], names[2]);
        assert_eq!(names[1], names[4]);
        assert_ne!(names[0], names[1]);
        assert_eq!(parser.symbols().len(), 2);
    }

    #[test]
    fn shared_table_gives_equal_syms_across_parsers() {
        let symbols = Arc::new(Symbols::new());
        let sym_of = |xml: &str| {
            let mut p = StreamingParser::with_symbols(Arc::clone(&symbols));
            let mut first = None;
            p.feed_interned(xml, &mut |ev, _| {
                if let SymEvent::StartElement { name, .. } = ev {
                    first.get_or_insert(name);
                }
            })
            .unwrap();
            first.unwrap()
        };
        assert_eq!(sym_of("<doc><x/></doc>"), sym_of("<doc><y/></doc>"));
    }

    #[test]
    fn lookup_only_mode_never_grows_the_table() {
        let symbols = Arc::new(Symbols::new());
        let known = symbols.intern("item");
        let mut p = StreamingParser::with_symbols(Arc::clone(&symbols)).lookup_only();
        let mut events = Vec::new();
        p.feed_interned(
            r#"<root><item/><other key="v">text</other></root>"#,
            &mut |ev, _| events.push(format!("{ev:?}")),
        )
        .unwrap();
        p.finish_interned(&mut |_, _| {}).unwrap();
        assert_eq!(symbols.len(), 1, "document names must not intern");
        // The known name resolves to its real sym; unknown ones
        // collapse to UNKNOWN (and still match as start/end pairs).
        assert!(events.iter().any(|e| e.contains(&format!("{known:?}"))));
        assert!(events
            .iter()
            .any(|e| e.contains("UNKNOWN") || e.contains("4294967295")));
    }

    #[test]
    fn lookup_only_rejects_the_owned_event_surface() {
        // The owned wrappers must resolve syms back to names, which
        // lookup-only mode cannot do: a proper error, not a panic.
        let mut p = StreamingParser::new().lookup_only();
        let err = p.feed("<a/>", &mut |_e| {}).unwrap_err();
        assert!(err.message.contains("interning"), "{err}");
        let mut p2 = StreamingParser::new().lookup_only();
        p2.feed_interned("<a/>", &mut |_, _| {}).unwrap();
        assert!(p2.finish_spanned(&mut |_, _| {}).is_err());
    }

    #[test]
    fn parser_reset_reuses_scratch_across_documents() {
        let mut p = StreamingParser::new();
        let mut names = Vec::new();
        p.feed_interned("<a><b/></a>", &mut |ev, _| {
            if let SymEvent::StartElement { name, .. } = ev {
                names.push(name);
            }
        })
        .unwrap();
        p.finish_interned(&mut |_, _| {}).unwrap();
        p.reset();
        p.feed_interned("<a><c/></a>", &mut |ev, _| {
            if let SymEvent::StartElement { name, .. } = ev {
                names.push(name);
            }
        })
        .unwrap();
        p.finish_interned(&mut |_, _| {}).unwrap();
        assert_eq!(names[0], names[2], "syms stable across reset");
        assert_eq!(p.symbols().len(), 3);
        // And a reset parser enforces completeness afresh.
        p.reset();
        p.feed_interned("<open>", &mut |_, _| {}).unwrap();
        assert!(p.finish_interned(&mut |_, _| {}).is_err());
    }

    #[test]
    fn lookup_only_mode_still_matches_end_tags_exactly() {
        // Two distinct unknown names share Sym::UNKNOWN, but tag
        // matching is by string: crossing them is still an error.
        let mut p = StreamingParser::new().lookup_only();
        let mut sink = |_: SymEvent<'_>, _: crate::span::Span| {};
        p.feed_interned("<aaa><bbb>", &mut sink).unwrap();
        assert!(p.feed_interned("</aaa>", &mut sink).is_err());

        // And duplicate unknown attribute names are still rejected.
        let mut p2 = StreamingParser::new().lookup_only();
        assert!(p2
            .feed_interned(r#"<t q="1" q="2"/>"#, &mut |_, _| {})
            .is_err());
        // Distinct unknown attribute names are not false duplicates.
        let mut p3 = StreamingParser::new().lookup_only();
        p3.feed_interned(r#"<t q="1" r="2"/>"#, &mut |_, _| {})
            .unwrap();
    }

    #[test]
    fn drive_reader_equals_batch_with_multibyte_splits() {
        let xml = "<a attr=\"v\">héllo • wörld<b/></a>";
        let expected = parse(xml).unwrap();
        let mut parser = StreamingParser::new();
        let symbols = Arc::clone(parser.symbols());
        let mut got = Vec::new();
        parser
            .drive_reader(std::io::Cursor::new(xml.as_bytes()), &mut |ev, _| {
                got.push(ev.to_owned(&symbols))
            })
            .unwrap();
        assert_eq!(got, expected);
    }

    #[test]
    fn drive_reader_reports_truncation_and_bad_utf8() {
        let mut p = StreamingParser::new();
        assert!(p
            .drive_reader(std::io::Cursor::new(b"<a><b>".as_ref()), &mut |_, _| {})
            .is_err());
        let mut p2 = StreamingParser::new();
        assert!(p2
            .drive_reader(
                std::io::Cursor::new(b"<a>\xFF</a>".as_ref()),
                &mut |_, _| {}
            )
            .is_err());
    }
}
