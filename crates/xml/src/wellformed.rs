//! Well-formedness checking for event sequences.
//!
//! The lower-bound proofs splice stream segments together (`αT ◦ βT'`) and
//! must verify that the result is a *well-formed* document: proper nesting,
//! a single root, matching tag names, and the correct document envelope.

use crate::event::Event;
use std::fmt;

/// A well-formedness violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// The sequence does not begin with `StartDocument`.
    MissingStartDocument,
    /// The sequence does not terminate with `EndDocument`.
    MissingEndDocument,
    /// `StartDocument`/`EndDocument` appeared in the interior.
    StrayDocumentEvent {
        /// Index of the offending event.
        at: usize,
    },
    /// An end tag without a matching start tag, or mismatched names.
    MismatchedEnd {
        /// Index of the offending event.
        at: usize,
        /// The open element that should have been closed, if any.
        expected: Option<String>,
        /// The name actually found on the end tag.
        found: String,
    },
    /// Elements remained open at `EndDocument`.
    UnclosedElements {
        /// The names still open, innermost last.
        open: Vec<String>,
    },
    /// Text or elements occurred outside the single root element.
    ContentOutsideRoot {
        /// Index of the offending event.
        at: usize,
    },
    /// The document has no element at all.
    NoRootElement,
    /// More than one top-level element.
    MultipleRoots {
        /// Index of the second root's start event.
        at: usize,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::MissingStartDocument => write!(f, "missing startDocument"),
            Violation::MissingEndDocument => write!(f, "missing endDocument"),
            Violation::StrayDocumentEvent { at } => write!(f, "stray document event at {at}"),
            Violation::MismatchedEnd {
                at,
                expected,
                found,
            } => match expected {
                Some(e) => write!(f, "mismatched end tag </{found}> at {at}; expected </{e}>"),
                None => write!(f, "end tag </{found}> at {at} with no open element"),
            },
            Violation::UnclosedElements { open } => {
                write!(f, "unclosed elements at endDocument: {}", open.join(", "))
            }
            Violation::ContentOutsideRoot { at } => write!(f, "content outside root at {at}"),
            Violation::NoRootElement => write!(f, "document has no root element"),
            Violation::MultipleRoots { at } => write!(f, "second root element at {at}"),
        }
    }
}

impl std::error::Error for Violation {}

/// Checks whether `events` is a well-formed document stream. Returns the
/// first violation found, or `Ok(())`.
pub fn check(events: &[Event]) -> Result<(), Violation> {
    if events.first() != Some(&Event::StartDocument) {
        return Err(Violation::MissingStartDocument);
    }
    if events.last() != Some(&Event::EndDocument) {
        return Err(Violation::MissingEndDocument);
    }
    let mut stack: Vec<&str> = Vec::new();
    let mut seen_root = false;
    for (i, e) in events.iter().enumerate() {
        let interior = i != 0 && i != events.len() - 1;
        match e {
            Event::StartDocument | Event::EndDocument => {
                if interior {
                    return Err(Violation::StrayDocumentEvent { at: i });
                }
            }
            Event::StartElement { name, .. } => {
                if stack.is_empty() {
                    if seen_root {
                        return Err(Violation::MultipleRoots { at: i });
                    }
                    seen_root = true;
                }
                stack.push(name);
            }
            Event::EndElement { name } => match stack.pop() {
                Some(open) if open == name => {}
                Some(open) => {
                    return Err(Violation::MismatchedEnd {
                        at: i,
                        expected: Some(open.to_string()),
                        found: name.clone(),
                    })
                }
                None => {
                    return Err(Violation::MismatchedEnd {
                        at: i,
                        expected: None,
                        found: name.clone(),
                    })
                }
            },
            Event::Text { .. } => {
                if stack.is_empty() {
                    return Err(Violation::ContentOutsideRoot { at: i });
                }
            }
        }
    }
    if !stack.is_empty() {
        return Err(Violation::UnclosedElements {
            open: stack.into_iter().map(str::to_string).collect(),
        });
    }
    if !seen_root {
        return Err(Violation::NoRootElement);
    }
    Ok(())
}

/// Convenience predicate form of [`check`].
pub fn is_well_formed(events: &[Event]) -> bool {
    check(events).is_ok()
}

/// Computes the depth (length of the longest root-to-leaf *element* path) of
/// a well-formed event stream without materializing a tree. The paper's
/// document depth `d` (§4.3).
pub fn stream_depth(events: &[Event]) -> usize {
    let mut depth = 0usize;
    let mut max = 0usize;
    for e in events {
        match e {
            Event::StartElement { .. } => {
                depth += 1;
                max = max.max(depth);
            }
            Event::EndElement { .. } => depth = depth.saturating_sub(1),
            _ => {}
        }
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn ev(src: &str) -> Vec<Event> {
        parse(src).unwrap()
    }

    #[test]
    fn parsed_documents_are_well_formed() {
        assert!(is_well_formed(&ev("<a><b>6</b></a>")));
    }

    #[test]
    fn detects_missing_envelope() {
        assert_eq!(
            check(&[Event::start("a"), Event::end("a")]),
            Err(Violation::MissingStartDocument)
        );
        assert_eq!(
            check(&[Event::StartDocument, Event::start("a"), Event::end("a")]),
            Err(Violation::MissingEndDocument)
        );
    }

    #[test]
    fn detects_mismatched_nesting() {
        let events = vec![
            Event::StartDocument,
            Event::start("a"),
            Event::start("b"),
            Event::end("a"),
            Event::end("b"),
            Event::EndDocument,
        ];
        assert!(matches!(
            check(&events),
            Err(Violation::MismatchedEnd { at: 3, .. })
        ));
    }

    #[test]
    fn detects_unclosed() {
        let events = vec![Event::StartDocument, Event::start("a"), Event::EndDocument];
        assert!(matches!(
            check(&events),
            Err(Violation::UnclosedElements { .. })
        ));
    }

    #[test]
    fn detects_multiple_roots() {
        let events = vec![
            Event::StartDocument,
            Event::start("a"),
            Event::end("a"),
            Event::start("b"),
            Event::end("b"),
            Event::EndDocument,
        ];
        assert!(matches!(
            check(&events),
            Err(Violation::MultipleRoots { at: 3 })
        ));
    }

    #[test]
    fn detects_empty_document() {
        assert_eq!(
            check(&[Event::StartDocument, Event::EndDocument]),
            Err(Violation::NoRootElement)
        );
    }

    #[test]
    fn paper_splice_is_well_formed() {
        // Splicing αT ◦ βT' from Theorem 4.2 yields a well-formed document.
        let a = ev("<a><b>6</b><c><f/><e/></c></a>");
        // αT = 〈$〉〈a〉〈b〉6〈/b〉〈c〉〈f/〉 (prefix through index 7 = 〈/f〉),
        // βT  = 〈e/〉〈/c〉〈/a〉〈/$〉 (the complementing suffix).
        let alpha = &a[..=7];
        let beta = &a[8..];
        let mut spliced = alpha.to_vec();
        spliced.extend_from_slice(beta);
        assert!(is_well_formed(&spliced));
    }

    #[test]
    fn stream_depth_matches_tree_depth() {
        assert_eq!(stream_depth(&ev("<a/>")), 1);
        assert_eq!(stream_depth(&ev("<a><b><c/></b><d/></a>")), 3);
    }
}
