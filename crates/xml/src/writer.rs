//! Serializing SAX event sequences back to XML text.

use crate::escape::{escape_attr, escape_text};
use crate::event::Event;
use std::fmt;

/// An error produced when serializing a malformed event sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteError {
    /// Description of the structural problem.
    pub message: String,
    /// Index of the offending event.
    pub at: usize,
}

impl fmt::Display for WriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot serialize event {}: {}", self.at, self.message)
    }
}

impl std::error::Error for WriteError {}

/// Serializes events to compact XML. The event sequence must be well-formed
/// (see [`crate::wellformed::check`]); self-closing tags are emitted for
/// empty elements.
pub fn to_xml(events: &[Event]) -> Result<String, WriteError> {
    let mut out = String::new();
    // Holds the pending start tag so that `<a></a>` collapses to `<a/>`.
    let mut pending: Option<String> = None;

    let flush = |out: &mut String, pending: &mut Option<String>| {
        if let Some(tag) = pending.take() {
            out.push_str(&tag);
            out.push('>');
        }
    };

    for (i, e) in events.iter().enumerate() {
        match e {
            Event::StartDocument | Event::EndDocument => {
                flush(&mut out, &mut pending);
            }
            Event::StartElement { name, attributes } => {
                flush(&mut out, &mut pending);
                let mut tag = format!("<{name}");
                for a in attributes {
                    tag.push_str(&format!(" {}=\"{}\"", a.name, escape_attr(&a.value)));
                }
                pending = Some(tag);
            }
            Event::EndElement { name } => {
                if let Some(tag) = pending.take() {
                    out.push_str(&tag);
                    out.push_str("/>");
                } else {
                    out.push_str(&format!("</{name}>"));
                }
            }
            Event::Text { content } => {
                flush(&mut out, &mut pending);
                if content.is_empty() {
                    return Err(WriteError {
                        message: "empty text event".into(),
                        at: i,
                    });
                }
                out.push_str(&escape_text(content));
            }
        }
    }
    if pending.is_some() {
        return Err(WriteError {
            message: "unterminated start tag".into(),
            at: events.len(),
        });
    }
    Ok(out)
}

/// Serializes events to indented XML, two spaces per depth level. Text-only
/// elements are kept on one line.
pub fn to_pretty_xml(events: &[Event]) -> Result<String, WriteError> {
    let mut out = String::new();
    let mut depth = 0usize;
    let mut i = 0usize;
    while i < events.len() {
        match &events[i] {
            Event::StartDocument | Event::EndDocument => {}
            Event::StartElement { name, attributes } => {
                if !out.is_empty() {
                    out.push('\n');
                }
                out.push_str(&"  ".repeat(depth));
                out.push('<');
                out.push_str(name);
                for a in attributes {
                    out.push_str(&format!(" {}=\"{}\"", a.name, escape_attr(&a.value)));
                }
                // Lookahead: <n/> , <n>text</n> on one line, otherwise block.
                match events.get(i + 1) {
                    Some(Event::EndElement { .. }) => {
                        out.push_str("/>");
                        i += 1;
                    }
                    Some(Event::Text { content })
                        if matches!(events.get(i + 2), Some(Event::EndElement { .. })) =>
                    {
                        out.push('>');
                        out.push_str(&escape_text(content));
                        out.push_str(&format!("</{name}>"));
                        i += 2;
                    }
                    _ => {
                        out.push('>');
                        depth += 1;
                    }
                }
            }
            Event::EndElement { name } => {
                depth = depth.saturating_sub(1);
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
                out.push_str(&format!("</{name}>"));
            }
            Event::Text { content } => {
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
                out.push_str(&escape_text(content));
            }
        }
        i += 1;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn round_trip_compact() {
        let src = "<a><c><e/><f/></c><b>6</b></a>";
        let events = parse(src).unwrap();
        assert_eq!(to_xml(&events).unwrap(), src);
    }

    #[test]
    fn escapes_on_output() {
        let events = vec![
            Event::StartDocument,
            Event::start("a"),
            Event::text("1 < 2 & 3"),
            Event::end("a"),
            Event::EndDocument,
        ];
        assert_eq!(to_xml(&events).unwrap(), "<a>1 &lt; 2 &amp; 3</a>");
    }

    #[test]
    fn attribute_round_trip() {
        let src = r#"<a id="1" q="x &amp; y"><b/></a>"#;
        let events = parse(src).unwrap();
        assert_eq!(to_xml(&events).unwrap(), src);
    }

    #[test]
    fn pretty_print_shape() {
        let events = parse("<a><b>6</b><c><d/></c></a>").unwrap();
        let pretty = to_pretty_xml(&events).unwrap();
        assert_eq!(pretty, "<a>\n  <b>6</b>\n  <c>\n    <d/>\n  </c>\n</a>");
    }

    #[test]
    fn pretty_then_reparse_is_identity() {
        let src = "<a><b>6</b><c><d/><e>hi</e></c></a>";
        let events = parse(src).unwrap();
        let pretty = to_pretty_xml(&events).unwrap();
        let reparsed = parse(&pretty).unwrap();
        assert_eq!(reparsed, events);
    }
}
