//! Owned, reusable batches of interned events, for handing a parsed
//! stream across threads.
//!
//! A [`crate::SymEvent`] borrows the parser's scratch buffers, so it
//! cannot outlive the emit callback — fine for the single-threaded
//! hot path, useless for broadcasting one event stream to K bank
//! shards on other threads. An [`EventBatch`] materializes a run of
//! events into flat arenas it owns: one fixed-size op record per
//! event, one `String` arena for text and attribute values, one flat
//! attribute list. Batches are built once by the producer, replayed
//! any number of times by consumers, and **reused**: [`EventBatch::clear`]
//! keeps every arena's capacity, so a bounded ring of batches performs
//! zero allocations per event in steady state (proven by
//! `tests/alloc_steady_state.rs`).
//!
//! Replay reconstructs borrowed [`SymEvent`]s: text payloads borrow
//! the batch's arena directly (no copy), attribute slices are rebuilt
//! in a consumer-local [`AttrBuf`] scratch (capacity reused across
//! events).

use crate::span::Span;
use crate::symbols::{AttrBuf, Sym, SymEvent};

/// Default batch cut on event count: producers publish a batch once it
/// holds this many events. Sized so one batch amortizes the dispatch
/// boundary (one virtual call per ~1024 events instead of per event)
/// while staying small enough to live in cache.
pub const BATCH_EVENTS: usize = 1024;

/// Default batch cut on payload bytes (text + attribute values): the
/// companion knob to [`BATCH_EVENTS`] for text-heavy streams, so one
/// giant text node cannot grow a batch arena without bound.
pub const BATCH_BYTES: usize = 64 * 1024;

/// One event's fixed-size record. Payload fields index the batch
/// arenas; unused fields are zero.
#[derive(Debug, Clone, Copy)]
struct BatchOp {
    kind: OpKind,
    name: Sym,
    /// Text ops: byte range `[a, b)` into the text arena.
    /// Start-element ops: attribute range `[a, b)` into the attr list.
    a: u32,
    b: u32,
    span: Span,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpKind {
    StartDocument,
    EndDocument,
    Start,
    End,
    Text,
}

/// One attribute of a batched start element: interned name plus its
/// value's byte range in the text arena.
#[derive(Debug, Clone, Copy)]
struct BatchAttr {
    name: Sym,
    a: u32,
    b: u32,
}

/// A reusable, owned run of interned events (see the module docs).
///
/// # Reuse and invalidation
///
/// A batch is a value type over *copied* payloads: once
/// [`EventBatch::push`] returns, the batch is self-contained — it stays
/// valid across further parser feeds, resets, and thread sends, unlike
/// the borrowed [`SymEvent`]s it was built from. The intended lifecycle
/// is a loop of **fill → replay (any number of times) → [`EventBatch::clear`]**:
/// `clear` logically empties the batch but keeps every arena's
/// capacity, so a recycled batch performs zero allocations per event in
/// steady state. Pushing *without* clearing appends (batches
/// accumulate); replaying a cleared batch yields nothing. The one
/// invalidation rule: the [`Sym`]s inside a batch are only meaningful
/// against the symbol table of the parser that produced it, so a batch
/// must never outlive that table or cross to a consumer compiled
/// against a different one.
#[derive(Debug, Clone, Default)]
pub struct EventBatch {
    ops: Vec<BatchOp>,
    attrs: Vec<BatchAttr>,
    /// Payload arena: text contents and attribute values, concatenated.
    text: String,
}

impl EventBatch {
    /// An empty batch.
    pub fn new() -> EventBatch {
        EventBatch::default()
    }

    /// Logically empties the batch, retaining every arena's capacity.
    pub fn clear(&mut self) {
        self.ops.clear();
        self.attrs.clear();
        self.text.clear();
    }

    /// Number of batched events.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when no events are batched.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Total payload bytes held (text plus attribute values) — the
    /// batch-size knob producers cut batches on.
    pub fn payload_bytes(&self) -> usize {
        self.text.len()
    }

    /// Appends one event, copying its borrowed payloads into the
    /// batch's arenas. Allocation-free once the arenas are warm.
    pub fn push(&mut self, ev: &SymEvent<'_>, span: Span) {
        let op = match *ev {
            SymEvent::StartDocument => BatchOp {
                kind: OpKind::StartDocument,
                name: Sym::UNKNOWN,
                a: 0,
                b: 0,
                span,
            },
            SymEvent::EndDocument => BatchOp {
                kind: OpKind::EndDocument,
                name: Sym::UNKNOWN,
                a: 0,
                b: 0,
                span,
            },
            SymEvent::StartElement { name, attributes } => {
                let a = self.attrs.len() as u32;
                for attr in attributes {
                    let va = self.text.len() as u32;
                    self.text.push_str(&attr.value);
                    self.attrs.push(BatchAttr {
                        name: attr.name,
                        a: va,
                        b: self.text.len() as u32,
                    });
                }
                BatchOp {
                    kind: OpKind::Start,
                    name,
                    a,
                    b: self.attrs.len() as u32,
                    span,
                }
            }
            SymEvent::EndElement { name } => BatchOp {
                kind: OpKind::End,
                name,
                a: 0,
                b: 0,
                span,
            },
            SymEvent::Text { content } => {
                let a = self.text.len() as u32;
                self.text.push_str(content);
                BatchOp {
                    kind: OpKind::Text,
                    name: Sym::UNKNOWN,
                    a,
                    b: self.text.len() as u32,
                    span,
                }
            }
        };
        self.ops.push(op);
    }

    /// Replays the batch, reconstructing each event as a borrowed
    /// [`SymEvent`] — text borrows the batch arena directly, attribute
    /// slices are rebuilt in the caller's `scratch` (consumer-local,
    /// capacity reused). Allocation-free in steady state.
    pub fn replay<F: for<'a> FnMut(SymEvent<'a>, Span)>(&self, scratch: &mut AttrBuf, mut f: F) {
        for op in &self.ops {
            match op.kind {
                OpKind::StartDocument => f(SymEvent::StartDocument, op.span),
                OpKind::EndDocument => f(SymEvent::EndDocument, op.span),
                OpKind::Start => {
                    scratch.clear();
                    for attr in &self.attrs[op.a as usize..op.b as usize] {
                        scratch
                            .push_name(attr.name)
                            .push_str(&self.text[attr.a as usize..attr.b as usize]);
                    }
                    f(
                        SymEvent::StartElement {
                            name: op.name,
                            attributes: scratch.as_slice(),
                        },
                        op.span,
                    );
                }
                OpKind::End => f(SymEvent::EndElement { name: op.name }, op.span),
                OpKind::Text => f(
                    SymEvent::Text {
                        content: &self.text[op.a as usize..op.b as usize],
                    },
                    op.span,
                ),
            }
        }
    }

    /// Index of the first `StartDocument` at or after `from`, if any —
    /// how a decided consumer skips the rest of one document's events
    /// without replaying them (document boundaries are the only places
    /// a decided filter bank can wake up).
    pub fn find_start_document(&self, from: usize) -> Option<usize> {
        self.ops[from..]
            .iter()
            .position(|op| op.kind == OpKind::StartDocument)
            .map(|i| from + i)
    }

    /// [`EventBatch::replay`] from event index `from`, with per-event
    /// flow control: `f` returns `true` to keep going, `false` to stop
    /// after the current event. Returns the index of the first event
    /// *not* replayed (`len()` when the batch ran dry), so a consumer
    /// that short-circuits mid-batch (a filter bank going fully
    /// decided) can later resume — typically at the next
    /// [`EventBatch::find_start_document`] — without re-entering
    /// per-event dispatch in between.
    pub fn replay_control<F: for<'a> FnMut(SymEvent<'a>, Span) -> bool>(
        &self,
        from: usize,
        scratch: &mut AttrBuf,
        mut f: F,
    ) -> usize {
        for (i, op) in self.ops.iter().enumerate().skip(from) {
            let keep_going = match op.kind {
                OpKind::StartDocument => f(SymEvent::StartDocument, op.span),
                OpKind::EndDocument => f(SymEvent::EndDocument, op.span),
                OpKind::Start => {
                    scratch.clear();
                    for attr in &self.attrs[op.a as usize..op.b as usize] {
                        scratch
                            .push_name(attr.name)
                            .push_str(&self.text[attr.a as usize..attr.b as usize]);
                    }
                    f(
                        SymEvent::StartElement {
                            name: op.name,
                            attributes: scratch.as_slice(),
                        },
                        op.span,
                    )
                }
                OpKind::End => f(SymEvent::EndElement { name: op.name }, op.span),
                OpKind::Text => f(
                    SymEvent::Text {
                        content: &self.text[op.a as usize..op.b as usize],
                    },
                    op.span,
                ),
            };
            if !keep_going {
                return i + 1;
            }
        }
        self.ops.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::Symbols;

    /// Round-trips a parsed document through a batch and checks the
    /// replayed events equal the direct emission.
    #[test]
    fn batch_replay_round_trips_events_and_spans() {
        let xml = r#"<a id="1" x="&amp;"><b>hi &amp; bye</b><c/>t</a>"#;
        let symbols = std::sync::Arc::new(Symbols::new());
        let mut parser = crate::StreamingParser::with_symbols(std::sync::Arc::clone(&symbols));
        let mut direct: Vec<(crate::Event, Span)> = Vec::new();
        let mut batch = EventBatch::new();
        parser
            .feed_interned(xml, &mut |ev, s| {
                direct.push((ev.to_owned(&symbols), s));
                batch.push(&ev, s);
            })
            .unwrap();
        parser
            .finish_interned(&mut |ev, s| {
                direct.push((ev.to_owned(&symbols), s));
                batch.push(&ev, s);
            })
            .unwrap();
        assert_eq!(batch.len(), direct.len());
        // Replay twice: batches are multi-consumer.
        for _ in 0..2 {
            let mut scratch = AttrBuf::new();
            let mut replayed = Vec::new();
            batch.replay(&mut scratch, |ev, s| {
                replayed.push((ev.to_owned(&symbols), s))
            });
            assert_eq!(replayed, direct);
        }
        // Clearing keeps capacity and empties the batch.
        let cap = batch.text.capacity();
        batch.clear();
        assert!(batch.is_empty());
        assert_eq!(batch.payload_bytes(), 0);
        assert_eq!(batch.text.capacity(), cap);
    }
}
