//! QName symbol interning: the zero-copy event hot path's currency.
//!
//! Per-event `String` allocation and string comparison dominate the
//! wall-clock of the streaming filters, even though the paper prices
//! memory in bits (§3.1.4): every `startElement(n)` used to allocate an
//! owned name and every frontier record compared it byte-by-byte. A
//! [`Symbols`] table maps each distinct element/attribute name to a
//! dense `u32` [`Sym`] once, so the parser can stamp events with
//! integer names ([`SymEvent`]) and compiled queries can resolve their
//! node tests to integers at compile time — turning the per-event,
//! per-record node-test check into a single integer compare.
//!
//! # Invariants
//!
//! * **Ids are stable for the lifetime of the table**: `intern(n)`
//!   returns the same [`Sym`] for the same name forever, and
//!   [`Symbols::resolve`] inverts it forever.
//! * **Ids are never recycled**: the table only grows; no operation
//!   removes a name or reassigns its id. A table shared between a
//!   parser, a compiled query bank, and any number of sessions
//!   therefore never invalidates anyone's cached [`Sym`]s.
//! * **Equal ids ⇔ equal names, within one table.** Syms from
//!   *different* tables are meaningless to compare; every consumer
//!   (filter, bank, engine) pins the `Arc<Symbols>` it was compiled
//!   against and converts incoming string-named events through that
//!   same table.
//! * [`Sym::UNKNOWN`] is never returned by [`Symbols::intern`]: it is
//!   the reserved "name absent from this table" code produced by
//!   [`Symbols::lookup_or_unknown`], and compares unequal to every
//!   interned sym (so a document name no query mentions simply fails
//!   every named node test, without growing the table).
//!
//! The table is internally synchronized (`RwLock`); interning an
//! already-known name takes a read lock only, so concurrent sessions
//! sharing one table do not serialize on the hot path.
//!
//! Because ids are never recycled, the table's footprint grows with
//! every *distinct* name ever interned. Long-lived consumers that
//! stream adversarial name cardinality should resolve document names
//! read-only (`StreamingParser::lookup_only`, [`Symbols::lookup_or_unknown`])
//! so only compiled query vocabulary ever lands in the table — the
//! engine's reader path does exactly this.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::RwLock;

/// The multiply-xor hash used by the interning map (the widely-used
/// "Fx" construction): names are short and looked up once per event on
/// the hot path, where SipHash's per-byte cost dominates the whole
/// conversion. Not DoS-hardened — the table holds XML names from
/// documents the caller already chose to parse.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Consume 8-byte words, then the tail, folding each with the
        // rotate-xor-multiply step.
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            let word = u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
            self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
        }
        // Fold the tail as one little-endian word. Short names (≤ 8
        // bytes — nearly every XML name) take exactly one fold, and the
        // 4..=7 case reads two overlapping u32s instead of looping per
        // byte (the overlap ORs identical bits, so the value equals the
        // byte-at-a-time fold).
        let rem = chunks.remainder();
        let tail = match rem.len() {
            0 => 0u64,
            4..=7 => {
                let head = u32::from_le_bytes(rem[..4].try_into().expect("4 bytes")) as u64;
                let end = u32::from_le_bytes(rem[rem.len() - 4..].try_into().expect("4 bytes"));
                head | ((end as u64) << (8 * (rem.len() - 4)))
            }
            _ => {
                let mut t = 0u64;
                for (i, &b) in rem.iter().enumerate() {
                    t |= (b as u64) << (8 * i);
                }
                t
            }
        };
        self.hash = (self.hash.rotate_left(5) ^ tail).wrapping_mul(FX_SEED);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

type FxMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// An interned name: a dense integer id issued by a [`Symbols`] table.
///
/// Compare syms only against syms from the same table (see the module
/// invariants). `Sym`s order by interning order, which is meaningless
/// but stable — handy for dense per-sym side tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(pub(crate) u32);

impl Sym {
    /// The reserved "not in this table" code (see
    /// [`Symbols::lookup_or_unknown`]). Never issued by
    /// [`Symbols::intern`]; unequal to every interned sym.
    pub const UNKNOWN: Sym = Sym(u32::MAX);

    /// The raw id, for dense side tables indexed by sym.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Default)]
struct Inner {
    map: FxMap<String, Sym>,
    names: Vec<String>,
}

/// A grow-only, internally-synchronized name-interning table (see the
/// module docs for the id-stability invariants).
///
/// Share one table per engine/bank via `Arc<Symbols>`: the parser
/// interns document names into it, compiled queries resolve their node
/// tests against it, and equal strings meet as equal integers on the
/// hot path.
#[derive(Debug, Default)]
pub struct Symbols {
    inner: RwLock<Inner>,
}

impl Symbols {
    /// An empty table.
    pub fn new() -> Symbols {
        Symbols::default()
    }

    /// Returns the sym for `name`, interning it on first sight.
    ///
    /// Known names take a read lock only. Ids are issued densely in
    /// interning order and never recycled.
    pub fn intern(&self, name: &str) -> Sym {
        if let Some(&s) = self.inner.read().expect("symbols lock").map.get(name) {
            return s;
        }
        let mut inner = self.inner.write().expect("symbols lock");
        if let Some(&s) = inner.map.get(name) {
            return s; // raced with another writer
        }
        let id = inner.names.len() as u32;
        assert!(id < u32::MAX - 1, "symbol table overflow");
        let s = Sym(id);
        inner.names.push(name.to_string());
        inner.map.insert(name.to_string(), s);
        s
    }

    /// The sym for `name`, if it was ever interned.
    pub fn lookup(&self, name: &str) -> Option<Sym> {
        self.inner
            .read()
            .expect("symbols lock")
            .map
            .get(name)
            .copied()
    }

    /// The sym for `name`, or [`Sym::UNKNOWN`] when the table has never
    /// seen it. This is the read-only conversion used when feeding
    /// string-named events to compiled filters: an unknown name cannot
    /// equal any compiled node test, so the sentinel behaves exactly
    /// like a fresh sym without growing the table.
    pub fn lookup_or_unknown(&self, name: &str) -> Sym {
        self.lookup(name).unwrap_or(Sym::UNKNOWN)
    }

    /// The name behind `sym` (a clone; resolution is for diagnostics
    /// and the owned-event conversion layer, not the hot path).
    ///
    /// Panics on [`Sym::UNKNOWN`] or a sym from another table.
    pub fn resolve(&self, sym: Sym) -> String {
        self.inner.read().expect("symbols lock").names[sym.index()].clone()
    }

    /// Appends the name behind `sym` to `out` without allocating a
    /// fresh `String`.
    pub fn resolve_into(&self, sym: Sym, out: &mut String) {
        out.push_str(&self.inner.read().expect("symbols lock").names[sym.index()]);
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.inner.read().expect("symbols lock").names.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Captures the table's current contents as a frozen
    /// [`SymbolsSnapshot`]: an immutable copy whose lookups take **no
    /// lock at all**, for fan-out across worker threads. Because ids
    /// are stable and never recycled, every sym the snapshot resolves
    /// stays valid against the live table forever; names interned
    /// *after* the freeze are simply absent from the snapshot (they
    /// resolve to [`Sym::UNKNOWN`]), exactly as if a lookup-only
    /// consumer had raced ahead of the interning. Re-freeze after
    /// growing the table behind snapshot readers — see
    /// [`SymbolsSnapshot::is_current`].
    pub fn freeze(&self) -> SymbolsSnapshot {
        let inner = self.inner.read().expect("symbols lock");
        SymbolsSnapshot {
            map: inner.map.clone(),
            names: inner.names.clone(),
        }
    }
}

/// A frozen, read-only view of a [`Symbols`] table at one instant
/// (produced by [`Symbols::freeze`]), shareable via `Arc` across any
/// number of worker threads with **lock-free** lookups.
///
/// # Invariants
///
/// * Every `(name, sym)` pair in the snapshot is permanently valid
///   against the source table: ids are never recycled, so a snapshot
///   can never return a sym the live table disagrees with.
/// * A snapshot never sees names interned after the freeze — they
///   resolve to [`Sym::UNKNOWN`], the same collapse a lookup-only
///   parser applies to out-of-vocabulary document names. A consumer
///   whose compiled vocabulary grows (a dissemination server accepting
///   a new subscription) must re-freeze, exactly where it already
///   invalidates its [`SymCache`] memo.
/// * Freezing is O(table size) and happens at churn boundaries, never
///   on the per-event hot path.
#[derive(Debug, Clone, Default)]
pub struct SymbolsSnapshot {
    map: FxMap<String, Sym>,
    names: Vec<String>,
}

impl SymbolsSnapshot {
    /// The sym for `name`, if the source table had interned it at
    /// freeze time. Lock-free.
    pub fn lookup(&self, name: &str) -> Option<Sym> {
        self.map.get(name).copied()
    }

    /// The sym for `name`, or [`Sym::UNKNOWN`] when the snapshot does
    /// not contain it — the read-only conversion worker threads use.
    /// Lock-free.
    pub fn lookup_or_unknown(&self, name: &str) -> Sym {
        self.lookup(name).unwrap_or(Sym::UNKNOWN)
    }

    /// The name behind `sym`, borrowed from the snapshot (no clone, no
    /// lock). `None` for [`Sym::UNKNOWN`] or a sym issued after the
    /// freeze.
    pub fn resolve(&self, sym: Sym) -> Option<&str> {
        self.names.get(sym.index()).map(String::as_str)
    }

    /// Number of names the snapshot holds.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when the snapshot holds no names.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// True when `table` has interned nothing since this snapshot was
    /// frozen (ids are dense and never recycled, so equal lengths mean
    /// equal contents). The cheap staleness probe for consumers that
    /// re-freeze at churn boundaries.
    pub fn is_current(&self, table: &Symbols) -> bool {
        self.names.len() == table.len()
    }
}

/// A small 2-way set-associative, lock-free memo for [`Symbols`]
/// lookups, owned by a single consumer (a filter bank's owned-event
/// conversion layer). XML documents draw names from a tiny vocabulary,
/// so almost every per-event lookup hits the cache and costs a short
/// hash plus one or two string compares — no table lock at all. Misses
/// fall through to the shared table and fill the set's colder way
/// (reusing its `String` capacity).
///
/// Two ways per set matter: real vocabularies routinely put two hot
/// names in one hash bucket (an element and the attribute it always
/// carries, say), and a direct-mapped memo would then *miss on every
/// single lookup* as the pair evicts each other — paying the table's
/// read lock per event. With two ways and move-to-front promotion the
/// alternating pair simply occupies both ways of its set.
///
/// The cache memoizes *lookup* results, including "unknown". A memoed
/// [`Sym::UNKNOWN`] can go stale when another table user (a parser, a
/// later-built bank) interns that name afterwards — harmlessly: the
/// consumer's own compiled names were all interned before its first
/// lookup, so a name that ever memoizes as unknown is outside its
/// compiled vocabulary, where `UNKNOWN` and a real (never-compared)
/// sym behave identically.
///
/// **Multi-worker caveat.** The harmlessness argument is *per
/// consumer*: it assumes the consumer's own vocabulary never grows
/// behind its memo. In a pool of workers sharing one table, a
/// subscribe handled by worker A interns names that worker B's memo
/// may already hold as `UNKNOWN` from B's earlier documents — and B's
/// vocabulary *did* just grow, so the staleness is no longer harmless
/// for B. Every worker must therefore invalidate its **own** memo
/// (and re-freeze its own [`SymbolsSnapshot`], if it parses against
/// one) when it applies the churn command — invalidating only the
/// worker that performed the interning is a correctness bug. The
/// sharded server does this by broadcasting churn to every worker,
/// each of which refreshes its own session's memo; the regression is
/// pinned by `tests/concurrency_stress.rs`.
#[derive(Debug, Clone, Default)]
pub struct SymCache {
    slots: Vec<CacheSlot>,
}

/// Number of 2-way sets; the memo holds twice this many entries.
const SYM_CACHE_SETS: usize = 128;

/// Longest name memoized inline. Longer names (rare in real vocabularies)
/// bypass the memo and pay the shared-table lookup each time.
const SYM_CACHE_NAME_MAX: usize = 22;

/// One memo entry. The name bytes live inline so a probe is a length
/// check plus a short `memcmp` — no pointer chase — and a fresh cache
/// materializes without a single per-name allocation.
#[derive(Debug, Clone, Copy)]
struct CacheSlot {
    sym: Sym,
    /// Name length in bytes; `0` marks an empty slot (empty names
    /// never enter the memo).
    len: u8,
    name: [u8; SYM_CACHE_NAME_MAX],
}

impl CacheSlot {
    const EMPTY: CacheSlot = CacheSlot {
        sym: Sym::UNKNOWN,
        len: 0,
        name: [0; SYM_CACHE_NAME_MAX],
    };

    fn filled(nb: &[u8], sym: Sym) -> CacheSlot {
        let mut slot = CacheSlot::EMPTY;
        slot.name[..nb.len()].copy_from_slice(nb);
        slot.len = nb.len() as u8;
        slot.sym = sym;
        slot
    }

    /// Zero-pads a probe key once so every way comparison is a
    /// fixed-size array equality (unrolled word compares, no
    /// variable-length `memcmp` per way). Slot padding bytes are
    /// always zero ([`CacheSlot::filled`] starts from `EMPTY`), so
    /// padded equality coincides with prefix equality.
    fn pad_key(nb: &[u8]) -> [u8; SYM_CACHE_NAME_MAX] {
        let mut key = [0u8; SYM_CACHE_NAME_MAX];
        key[..nb.len()].copy_from_slice(nb);
        key
    }

    #[inline]
    fn matches(&self, len: usize, key: &[u8; SYM_CACHE_NAME_MAX]) -> bool {
        self.len as usize == len && self.name == *key
    }
}

/// The raw Fx hash of a byte string (the [`FxHasher`] fold, without
/// the `Hash`-trait framing).
fn fx_hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(bytes);
    h.finish()
}

// NOTE: slots materialize on first use (`Default` is an empty vec), so
// `mem::take`-style swaps of a consumer's cache cost nothing.
impl SymCache {
    /// An empty cache.
    pub fn new() -> SymCache {
        SymCache::default()
    }

    /// Index of the first (hotter) way of `name`'s set.
    fn set_index(name: &str) -> usize {
        ((fx_hash_bytes(name.as_bytes()) as usize) & (SYM_CACHE_SETS - 1)) * 2
    }

    /// [`Symbols::lookup_or_unknown`] through the memo.
    pub fn lookup(&mut self, symbols: &Symbols, name: &str) -> Sym {
        let nb = name.as_bytes();
        if nb.is_empty() || nb.len() > SYM_CACHE_NAME_MAX {
            return symbols.lookup_or_unknown(name);
        }
        if self.slots.is_empty() {
            self.slots.resize(SYM_CACHE_SETS * 2, CacheSlot::EMPTY);
        }
        let idx = SymCache::set_index(name);
        let key = CacheSlot::pad_key(nb);
        if self.slots[idx].matches(nb.len(), &key) {
            return self.slots[idx].sym;
        }
        if self.slots[idx + 1].matches(nb.len(), &key) {
            self.slots.swap(idx, idx + 1);
            return self.slots[idx].sym;
        }
        let sym = symbols.lookup_or_unknown(name);
        // Fill the colder way, then promote it to the front.
        self.slots[idx + 1] = CacheSlot::filled(nb, sym);
        self.slots.swap(idx, idx + 1);
        sym
    }

    /// [`Symbols::lookup_or_unknown`] through the memo, resolving
    /// misses against a frozen [`SymbolsSnapshot`] instead of the live
    /// table: the fully lock-free worker-thread form (hits touch only
    /// the memo, misses only the immutable snapshot).
    pub fn lookup_frozen(&mut self, snapshot: &SymbolsSnapshot, name: &str) -> Sym {
        let nb = name.as_bytes();
        if nb.is_empty() || nb.len() > SYM_CACHE_NAME_MAX {
            return snapshot.lookup_or_unknown(name);
        }
        if self.slots.is_empty() {
            self.slots.resize(SYM_CACHE_SETS * 2, CacheSlot::EMPTY);
        }
        let idx = SymCache::set_index(name);
        let key = CacheSlot::pad_key(nb);
        if self.slots[idx].matches(nb.len(), &key) {
            return self.slots[idx].sym;
        }
        if self.slots[idx + 1].matches(nb.len(), &key) {
            self.slots.swap(idx, idx + 1);
            return self.slots[idx].sym;
        }
        let sym = snapshot.lookup_or_unknown(name);
        self.slots[idx + 1] = CacheSlot::filled(nb, sym);
        self.slots.swap(idx, idx + 1);
        sym
    }

    /// [`SymCache::lookup`], optionally interning on a miss (with the
    /// memo slot refreshed so the stale "unknown" verdict is replaced):
    /// the one resolution primitive both parser modes share.
    pub fn lookup_or_intern(&mut self, symbols: &Symbols, name: &str, intern: bool) -> Sym {
        let sym = self.lookup(symbols, name);
        if sym != Sym::UNKNOWN || !intern {
            return sym;
        }
        let interned = symbols.intern(name);
        self.insert(name, interned);
        interned
    }

    /// Forgets every memoized verdict (slot storage is kept).
    /// Required after the shared table gains names *behind* a lookup-only
    /// consumer — e.g. a dissemination server compiling a freshly
    /// subscribed query — since a stale memoized [`Sym::UNKNOWN`] would
    /// otherwise hide the now-interned name from that consumer.
    pub fn clear(&mut self) {
        self.slots.fill(CacheSlot::EMPTY);
    }

    /// Overwrites the memo entry for `name` (used after interning a
    /// name the cache had memoized as unknown), leaving it in the hot
    /// way of its set.
    pub fn insert(&mut self, name: &str, sym: Sym) {
        let nb = name.as_bytes();
        if nb.is_empty() || nb.len() > SYM_CACHE_NAME_MAX {
            return;
        }
        if self.slots.is_empty() {
            self.slots.resize(SYM_CACHE_SETS * 2, CacheSlot::EMPTY);
        }
        let idx = SymCache::set_index(name);
        let key = CacheSlot::pad_key(nb);
        if self.slots[idx].matches(nb.len(), &key) {
            self.slots[idx].sym = sym;
            return;
        }
        // Hit in the cold way updates in place; a true miss evicts it.
        // Either way the entry is promoted to the front.
        self.slots[idx + 1] = CacheSlot::filled(nb, sym);
        self.slots.swap(idx, idx + 1);
    }
}

/// An attribute of an interned start-element event: interned name,
/// entity-decoded value. The value `String` is owned by a reusable
/// scratch buffer ([`AttrBuf`]), so steady-state parsing reuses its
/// capacity instead of allocating per event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymAttr {
    /// The interned attribute name (no `@` sigil).
    pub name: Sym,
    /// The attribute value, entity-decoded.
    pub value: String,
}

/// A SAX event with interned names and borrowed payloads: the zero-copy
/// sibling of the owned [`crate::Event`].
///
/// Produced by [`crate::StreamingParser::feed_interned`] (names interned
/// into the parser's table, attribute/text payloads borrowed from its
/// reusable scratch buffers) and consumed natively by the `fx-core`
/// filters, whose compiled node tests are syms from the same table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SymEvent<'a> {
    /// `startDocument()`.
    StartDocument,
    /// `endDocument()`.
    EndDocument,
    /// `startElement(n)` with its attributes.
    StartElement {
        /// The interned element name.
        name: Sym,
        /// The attributes, in document order.
        attributes: &'a [SymAttr],
    },
    /// `endElement(n)`.
    EndElement {
        /// The interned element name.
        name: Sym,
    },
    /// `text(α)`.
    Text {
        /// The entity-decoded character content.
        content: &'a str,
    },
}

impl SymEvent<'_> {
    /// Converts to an owned [`crate::Event`], resolving names through
    /// `symbols` (the table the syms were issued by).
    pub fn to_owned(&self, symbols: &Symbols) -> crate::Event {
        match *self {
            SymEvent::StartDocument => crate::Event::StartDocument,
            SymEvent::EndDocument => crate::Event::EndDocument,
            SymEvent::StartElement { name, attributes } => crate::Event::StartElement {
                name: symbols.resolve(name),
                attributes: attributes
                    .iter()
                    .map(|a| crate::Attribute {
                        name: symbols.resolve(a.name),
                        value: a.value.clone(),
                    })
                    .collect(),
            },
            SymEvent::EndElement { name } => crate::Event::EndElement {
                name: symbols.resolve(name),
            },
            SymEvent::Text { content } => crate::Event::Text {
                content: content.to_string(),
            },
        }
    }
}

/// A reusable attribute buffer: holds `SymAttr` slots whose value
/// `String`s keep their capacity across [`AttrBuf::clear`], so filling
/// it allocates nothing in steady state.
#[derive(Debug, Clone, Default)]
pub struct AttrBuf {
    items: Vec<SymAttr>,
    /// Attribute name strings, parallel to `items` and likewise pooled
    /// — filled by [`AttrBuf::push_named`] so duplicate detection can
    /// compare strings even when several unknown names share
    /// [`Sym::UNKNOWN`]. Slots filled via [`AttrBuf::push_name`] leave
    /// their name string empty.
    names: Vec<String>,
    len: usize,
}

impl AttrBuf {
    /// An empty buffer.
    pub fn new() -> AttrBuf {
        AttrBuf::default()
    }

    /// Logically empties the buffer, retaining every slot's capacity.
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// The filled attributes.
    pub fn as_slice(&self) -> &[SymAttr] {
        &self.items[..self.len]
    }

    /// Number of filled attributes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no attributes are filled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when a filled attribute already carries `name`.
    pub fn contains_name(&self, name: Sym) -> bool {
        self.as_slice().iter().any(|a| a.name == name)
    }

    /// Opens the next slot under `name` and returns its (cleared) value
    /// buffer for the caller to fill. Reuses a retired slot's `String`
    /// when one is available.
    pub fn push_name(&mut self, name: Sym) -> &mut String {
        if self.len == self.items.len() {
            self.items.push(SymAttr {
                name,
                value: String::new(),
            });
            self.names.push(String::new());
        } else {
            self.items[self.len].name = name;
            self.items[self.len].value.clear();
            self.names[self.len].clear();
        }
        self.len += 1;
        &mut self.items[self.len - 1].value
    }

    /// [`AttrBuf::push_name`], additionally recording the attribute's
    /// name string (reusing the slot's capacity) so
    /// [`AttrBuf::has_name_str`] can detect duplicates by text — the
    /// only sound check when unknown names collapse to
    /// [`Sym::UNKNOWN`].
    pub fn push_named(&mut self, sym: Sym, name: &str) -> &mut String {
        self.push_name(sym); // opens the slot and clears its name string
        self.names[self.len - 1].push_str(name);
        &mut self.items[self.len - 1].value
    }

    /// True when a slot filled via [`AttrBuf::push_named`] already
    /// carries the name string `name`.
    pub fn has_name_str(&self, name: &str) -> bool {
        self.names[..self.len].iter().any(|n| n == name)
    }

    /// Fills the buffer from owned [`crate::Attribute`]s, converting
    /// names through `symbols` *without* interning (unknown names become
    /// [`Sym::UNKNOWN`]), and returns the filled slice. This is the
    /// owned-event → interned-event conversion used by filters and
    /// banks when fed pre-materialized [`crate::Event`]s.
    pub fn fill_from<'s>(
        &'s mut self,
        symbols: &Symbols,
        attributes: &[crate::Attribute],
    ) -> &'s [SymAttr] {
        self.clear();
        for a in attributes {
            self.push_name(symbols.lookup_or_unknown(&a.name))
                .push_str(&a.value);
        }
        self.as_slice()
    }

    /// [`AttrBuf::fill_from`] with name lookups memoized through a
    /// [`SymCache`] — the lock-free hot form.
    pub fn fill_from_cached<'s>(
        &'s mut self,
        cache: &mut SymCache,
        symbols: &Symbols,
        attributes: &[crate::Attribute],
    ) -> &'s [SymAttr] {
        self.clear();
        for a in attributes {
            self.push_name(cache.lookup(symbols, &a.name))
                .push_str(&a.value);
        }
        self.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let t = Symbols::new();
        let a = t.intern("a");
        let b = t.intern("b");
        assert_eq!(t.intern("a"), a);
        assert_ne!(a, b);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(t.len(), 2);
        assert_eq!(t.resolve(a), "a");
        assert_eq!(t.resolve(b), "b");
    }

    #[test]
    fn lookup_does_not_grow_the_table() {
        let t = Symbols::new();
        t.intern("known");
        assert_eq!(t.lookup("known"), Some(Sym(0)));
        assert_eq!(t.lookup("unknown"), None);
        assert_eq!(t.lookup_or_unknown("unknown"), Sym::UNKNOWN);
        assert_eq!(t.len(), 1, "lookup must not intern");
        assert_ne!(t.lookup_or_unknown("known"), Sym::UNKNOWN);
    }

    #[test]
    fn attr_buf_reuses_slots() {
        let t = Symbols::new();
        let mut buf = AttrBuf::new();
        let a = t.intern("a");
        let b = t.intern("b");
        buf.push_name(a).push_str("one");
        buf.push_name(b).push_str("two");
        assert_eq!(buf.len(), 2);
        assert!(buf.contains_name(a) && buf.contains_name(b));
        let cap = buf.items[0].value.capacity();
        buf.clear();
        assert!(buf.is_empty());
        buf.push_name(b).push_str("re");
        assert_eq!(buf.as_slice()[0].name, b);
        assert_eq!(buf.as_slice()[0].value, "re");
        assert_eq!(buf.items[0].value.capacity(), cap, "capacity retained");
    }

    #[test]
    fn sym_event_round_trips_to_owned() {
        let t = Symbols::new();
        let name = t.intern("item");
        let attr = t.intern("id");
        let mut buf = AttrBuf::new();
        buf.push_name(attr).push('7');
        let ev = SymEvent::StartElement {
            name,
            attributes: buf.as_slice(),
        };
        assert_eq!(
            ev.to_owned(&t),
            crate::Event::start_with_attrs("item", vec![crate::Attribute::new("id", "7")])
        );
        assert_eq!(
            SymEvent::Text { content: "x" }.to_owned(&t),
            crate::Event::text("x")
        );
    }

    #[test]
    fn concurrent_interning_agrees() {
        use std::sync::Arc;
        let t = Arc::new(Symbols::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    (0..100)
                        .map(|i| t.intern(&format!("n{i}")))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let results: Vec<Vec<Sym>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for r in &results[1..] {
            assert_eq!(r, &results[0]);
        }
        assert_eq!(t.len(), 100);
    }
}
