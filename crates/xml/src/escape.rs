//! XML character escaping and entity decoding.

use std::borrow::Cow;

/// Escapes `&`, `<`, `>` for text content.
pub fn escape_text(s: &str) -> Cow<'_, str> {
    escape_with(s, false)
}

/// Escapes `&`, `<`, `>`, `"`, `'` for attribute values.
pub fn escape_attr(s: &str) -> Cow<'_, str> {
    escape_with(s, true)
}

fn escape_with(s: &str, quotes: bool) -> Cow<'_, str> {
    let needs = s
        .bytes()
        .any(|b| matches!(b, b'&' | b'<' | b'>') || (quotes && matches!(b, b'"' | b'\'')));
    if !needs {
        return Cow::Borrowed(s);
    }
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' if quotes => out.push_str("&quot;"),
            '\'' if quotes => out.push_str("&apos;"),
            other => out.push(other),
        }
    }
    Cow::Owned(out)
}

/// An error produced while decoding an entity reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntityError {
    /// The offending reference text (without the surrounding `&`/`;`).
    pub reference: String,
}

impl std::fmt::Display for EntityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown or malformed entity reference `&{};`",
            self.reference
        )
    }
}

impl std::error::Error for EntityError {}

/// Decodes the five predefined entities plus decimal/hex character
/// references. Unknown references are an error.
pub fn decode_entities(s: &str) -> Result<Cow<'_, str>, EntityError> {
    if !s.contains('&') {
        return Ok(Cow::Borrowed(s));
    }
    let mut out = String::with_capacity(s.len());
    decode_append(s, &mut out)?;
    Ok(Cow::Owned(out))
}

/// [`decode_entities`], appending into a caller-supplied buffer: the
/// allocation-free form the streaming parser's reused scratch buffers
/// are fed through (no `Cow`, no intermediate `String` even when the
/// input contains references).
pub fn decode_entities_into(s: &str, out: &mut String) -> Result<(), EntityError> {
    if !s.contains('&') {
        out.push_str(s);
        return Ok(());
    }
    decode_append(s, out)
}

/// The XML 1.0 `Char` production: characters a numeric character
/// reference may denote. Excludes NUL and the other C0 controls
/// (except tab/LF/CR), surrogates (unreachable as `char` anyway), and
/// the non-characters U+FFFE/U+FFFF.
fn is_xml_char(c: char) -> bool {
    matches!(c,
        '\u{9}' | '\u{A}' | '\u{D}'
        | '\u{20}'..='\u{D7FF}'
        | '\u{E000}'..='\u{FFFD}'
        | '\u{10000}'..='\u{10FFFF}')
}

fn decode_append(s: &str, out: &mut String) -> Result<(), EntityError> {
    let mut rest = s;
    while let Some(pos) = rest.find('&') {
        out.push_str(&rest[..pos]);
        rest = &rest[pos + 1..];
        let end = rest.find(';').ok_or_else(|| EntityError {
            reference: rest.to_string(),
        })?;
        let name = &rest[..end];
        match name {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ => {
                let cp = if let Some(hex) =
                    name.strip_prefix("#x").or_else(|| name.strip_prefix("#X"))
                {
                    u32::from_str_radix(hex, 16).ok()
                } else if let Some(dec) = name.strip_prefix('#') {
                    dec.parse::<u32>().ok()
                } else {
                    None
                };
                // `char::from_u32` rejects surrogates and > 0x10FFFF;
                // the `Char` filter additionally rejects NUL, stray C0
                // controls, and U+FFFE/U+FFFF — all fatal in XML.
                let c = cp
                    .and_then(char::from_u32)
                    .filter(|&c| is_xml_char(c))
                    .ok_or_else(|| EntityError {
                        reference: name.to_string(),
                    })?;
                out.push(c);
            }
        }
        rest = &rest[end + 1..];
    }
    out.push_str(rest);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_text_passthrough_when_clean() {
        assert!(matches!(escape_text("hello world"), Cow::Borrowed(_)));
    }

    #[test]
    fn escape_text_escapes_specials() {
        assert_eq!(escape_text("a<b&c>d"), "a&lt;b&amp;c&gt;d");
    }

    #[test]
    fn escape_attr_escapes_quotes() {
        assert_eq!(
            escape_attr(r#"he said "hi"'s"#),
            "he said &quot;hi&quot;&apos;s"
        );
    }

    #[test]
    fn decode_predefined_entities() {
        assert_eq!(
            decode_entities("a&lt;b&amp;c&gt;d&quot;&apos;").unwrap(),
            "a<b&c>d\"'"
        );
    }

    #[test]
    fn decode_numeric_references() {
        assert_eq!(decode_entities("&#65;&#x42;&#x63;").unwrap(), "ABc");
    }

    #[test]
    fn decode_unknown_entity_is_error() {
        assert!(decode_entities("&bogus;").is_err());
        assert!(decode_entities("&unterminated").is_err());
        assert!(decode_entities("&#xZZ;").is_err());
    }

    #[test]
    fn decode_rejects_non_xml_chars() {
        // Out-of-range and surrogate references are malformed …
        assert!(decode_entities("&#x110000;").is_err());
        assert!(decode_entities("&#xD800;").is_err());
        assert!(decode_entities("&#55296;").is_err());
        // … and so are characters outside the XML `Char` production:
        // NUL, stray C0 controls, and the FFFE/FFFF non-characters.
        assert!(decode_entities("&#0;").is_err());
        assert!(decode_entities("&#x1F;").is_err());
        assert!(decode_entities("&#xFFFE;").is_err());
        assert!(decode_entities("&#xFFFF;").is_err());
        // Tab, LF, CR, and the plane boundaries stay valid.
        assert_eq!(decode_entities("&#x9;&#xA;&#xD;").unwrap(), "\t\n\r");
        assert_eq!(decode_entities("&#xD7FF;").unwrap(), "\u{d7ff}");
        assert_eq!(decode_entities("&#xE000;").unwrap(), "\u{e000}");
        assert_eq!(decode_entities("&#x10FFFF;").unwrap(), "\u{10ffff}");
    }

    #[test]
    fn round_trip_text() {
        let original = "x < y && y > \"z\"";
        let escaped = escape_attr(original);
        assert_eq!(decode_entities(&escaped).unwrap(), original);
    }
}
