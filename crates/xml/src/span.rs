//! Source byte spans: the provenance half of full-fledged evaluation.
//!
//! A boolean verdict needs no pointer back into the document, but a
//! *selected* node does: dissemination subscribers want to cut the
//! matched fragment out of the stream, and diagnostics want to say
//! *where* a match sits. [`Span`] is a half-open byte range
//! `[start, end)` into the original document stream, stamped on every
//! event by the streaming parser (chunk-boundary correct: offsets count
//! source bytes, not chunk-local positions) and by the batch parser.
//!
//! Spans cost nothing to carry — two `u64`s per in-flight event — and
//! never require buffering document content: they are offsets, not
//! copies, so the paper's memory guarantees are unaffected.

use std::fmt;

/// A half-open byte range `[start, end)` into the source document.
///
/// For a `StartElement` event the span covers the start tag
/// (`<name …>`); for an `EndElement` the end tag (or, for a
/// self-closing `<name/>`, the whole tag — both events then share one
/// span); for `Text` the raw (pre-entity-decoding) character region.
/// `StartDocument` is the zero-width span at offset 0 and
/// `EndDocument` the zero-width span at the end of the stream.
///
/// Events constructed in memory rather than parsed (e.g. pushed by hand
/// into an engine session) carry [`Span::EMPTY`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Span {
    /// Byte offset of the first byte of the region.
    pub start: u64,
    /// Byte offset one past the last byte of the region.
    pub end: u64,
}

impl Span {
    /// The zero-width span at offset 0 — the stamp for events with no
    /// source provenance (hand-constructed, or replayed without spans).
    pub const EMPTY: Span = Span { start: 0, end: 0 };

    /// A span from `start` to `end` (half-open, in bytes).
    pub fn new(start: u64, end: u64) -> Span {
        Span { start, end }
    }

    /// The zero-width span at `offset`.
    pub fn point(offset: u64) -> Span {
        Span {
            start: offset,
            end: offset,
        }
    }

    /// Length of the region, in bytes.
    pub fn len(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }

    /// True when the span covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }

    /// The smallest span covering both `self` and `other` — how an
    /// element's full extent is assembled from its start- and end-tag
    /// spans.
    pub fn cover(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Slices `source` to this span's byte range (for documents that
    /// are available in memory; streaming consumers seek instead).
    /// Returns `None` when the span is out of bounds or does not fall
    /// on UTF-8 boundaries.
    pub fn slice<'a>(&self, source: &'a str) -> Option<&'a str> {
        let (s, e) = (
            usize::try_from(self.start).ok()?,
            usize::try_from(self.end).ok()?,
        );
        source.get(s..e)
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        let s = Span::new(3, 9);
        assert_eq!(s.len(), 6);
        assert!(!s.is_empty());
        assert!(Span::point(4).is_empty());
        assert_eq!(Span::EMPTY, Span::default());
        assert_eq!(s.to_string(), "3..9");
    }

    #[test]
    fn cover_unions_ranges() {
        let a = Span::new(2, 5);
        let b = Span::new(10, 14);
        assert_eq!(a.cover(b), Span::new(2, 14));
        assert_eq!(b.cover(a), Span::new(2, 14));
    }

    #[test]
    fn slice_extracts_the_region() {
        let doc = "<a><b/></a>";
        assert_eq!(Span::new(3, 7).slice(doc), Some("<b/>"));
        assert_eq!(Span::new(0, 99).slice(doc), None);
    }
}
