//! Stream-segment utilities used by the communication-complexity reductions.
//!
//! The lower-bound proofs (§3.2, §4, §7) cut a document's event stream into
//! consecutive segments (`α`, `β`, `γ`, …) at positions defined relative to
//! specific events, and then splice segments from *different* documents back
//! together (`αT ◦ βT'`). This module provides those cut/splice operations at
//! event granularity, plus a [`Segmentation`] type that remembers the cut
//! points.

use crate::event::Event;

/// A partition of an event stream into `k` consecutive segments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segmentation {
    /// The underlying events.
    pub events: Vec<Event>,
    /// Cut points: `cuts[i]` is the index where segment `i+1` begins.
    /// Always sorted, each in `0..=events.len()`.
    pub cuts: Vec<usize>,
}

impl Segmentation {
    /// Creates a segmentation with the given cut points (indices into
    /// `events`). Cut points are sorted and deduplicated.
    pub fn new(events: Vec<Event>, mut cuts: Vec<usize>) -> Self {
        cuts.sort_unstable();
        cuts.dedup();
        assert!(
            cuts.iter().all(|&c| c <= events.len()),
            "cut point out of range"
        );
        Segmentation { events, cuts }
    }

    /// Number of segments (`cuts.len() + 1`).
    pub fn segment_count(&self) -> usize {
        self.cuts.len() + 1
    }

    /// Returns segment `i` as a slice.
    pub fn segment(&self, i: usize) -> &[Event] {
        let start = if i == 0 { 0 } else { self.cuts[i - 1] };
        let end = if i == self.cuts.len() {
            self.events.len()
        } else {
            self.cuts[i]
        };
        &self.events[start..end]
    }

    /// All segments in order.
    pub fn segments(&self) -> Vec<&[Event]> {
        (0..self.segment_count()).map(|i| self.segment(i)).collect()
    }
}

/// Concatenates stream segments (the paper's `α ◦ β` operation).
pub fn splice(segments: &[&[Event]]) -> Vec<Event> {
    let total = segments.iter().map(|s| s.len()).sum();
    let mut out = Vec::with_capacity(total);
    for s in segments {
        out.extend_from_slice(s);
    }
    out
}

/// Finds the index of the `n`-th (0-based) event satisfying `pred`.
pub fn find_nth(events: &[Event], n: usize, mut pred: impl FnMut(&Event) -> bool) -> Option<usize> {
    events
        .iter()
        .enumerate()
        .filter(|(_, e)| pred(e))
        .nth(n)
        .map(|(i, _)| i)
}

/// Index of the first `startElement(name)` event.
pub fn first_start(events: &[Event], name: &str) -> Option<usize> {
    find_nth(
        events,
        0,
        |e| matches!(e, Event::StartElement { name: n, .. } if n == name),
    )
}

/// Index of the first `endElement(name)` event.
pub fn first_end(events: &[Event], name: &str) -> Option<usize> {
    find_nth(
        events,
        0,
        |e| matches!(e, Event::EndElement { name: n } if n == name),
    )
}

/// Given the index of a `startElement`, returns the index of its matching
/// `endElement` (the event that closes the same element instance).
pub fn matching_end(events: &[Event], start: usize) -> Option<usize> {
    if !events.get(start)?.is_start() {
        return None;
    }
    let mut depth = 0usize;
    for (i, e) in events.iter().enumerate().skip(start) {
        match e {
            Event::StartElement { .. } => depth += 1,
            Event::EndElement { .. } => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Extracts the full event range of the element starting at `start`
/// (inclusive of both its start and end events).
pub fn element_range(events: &[Event], start: usize) -> Option<std::ops::RangeInclusive<usize>> {
    matching_end(events, start).map(|end| start..=end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::wellformed::is_well_formed;

    #[test]
    fn segmentation_round_trip() {
        let events = parse("<a><b>6</b><c/></a>").unwrap();
        let seg = Segmentation::new(events.clone(), vec![3, 6]);
        assert_eq!(seg.segment_count(), 3);
        let rejoined = splice(&seg.segments());
        assert_eq!(rejoined, events);
    }

    #[test]
    fn theorem_4_2_example_splice() {
        // αT = 〈a〉〈b〉6〈/b〉〈c〉〈f/〉 and βT = 〈e/〉〈/c〉〈/a〉 for T = {xb, xf}.
        let dt = parse("<a><b>6</b><c><f/><e/></c></a>").unwrap();
        // Cut right after 〈/f〉.
        let f_end = first_end(&dt, "f").unwrap();
        let alpha = &dt[..=f_end];
        let beta = &dt[f_end + 1..];
        let doc = splice(&[alpha, beta]);
        assert_eq!(doc, dt);
        assert!(is_well_formed(&doc));
    }

    #[test]
    fn cross_splice_duplicates_elements() {
        // D_{T,T'} from the paper: 〈a〉〈b〉6〈/b〉〈c〉〈f/〉〈f/〉〈/c〉〈/a〉.
        let d_t = parse("<a><b>6</b><c><f/><e/></c></a>").unwrap();
        let d_t2 = parse("<a><b>6</b><c><f/><e/></c></a>").unwrap();
        // αT ends after 〈/f〉 of the first doc; βT' begins at the *start* of
        // 〈f/〉 in the second doc — splicing yields two f's and no e.
        let cut_a = first_end(&d_t, "f").unwrap() + 1;
        let cut_b = first_start(&d_t2, "f").unwrap();
        let spliced = splice(&[&d_t[..cut_a], &d_t2[cut_b..]]);
        assert!(is_well_formed(&spliced));
        let fs = spliced
            .iter()
            .filter(|e| matches!(e, Event::StartElement { name, .. } if name == "f"))
            .count();
        assert_eq!(fs, 2);
        assert!(
            first_start(&spliced, "e").is_none() || first_start(&spliced, "e").unwrap() > cut_a
        );
    }

    #[test]
    fn matching_end_finds_balanced_close() {
        let events = parse("<a><b><b/></b><c/></a>").unwrap();
        let outer_b = first_start(&events, "b").unwrap();
        let end = matching_end(&events, outer_b).unwrap();
        assert_eq!(events[end], Event::end("b"));
        // It must be the *outer* b's end: inner <b/> contributes two events.
        assert_eq!(end, outer_b + 3);
    }

    #[test]
    fn element_range_covers_subtree() {
        let events = parse("<a><b><c/><d/></b></a>").unwrap();
        let b = first_start(&events, "b").unwrap();
        let range = element_range(&events, b).unwrap();
        let sub: Vec<_> = events[range].to_vec();
        assert_eq!(sub.first(), Some(&Event::start("b")));
        assert_eq!(sub.last(), Some(&Event::end("b")));
        assert_eq!(sub.len(), 6);
    }

    #[test]
    fn find_nth_counts_correctly() {
        let events = parse("<a><x/><x/><x/></a>").unwrap();
        let second = find_nth(
            &events,
            1,
            |e| matches!(e, Event::StartElement { name, .. } if name == "x"),
        )
        .unwrap();
        assert_eq!(events[second], Event::start("x"));
        assert_eq!(second, 4);
    }
}
