//! SWAR structural scanning: branch-light `memchr`-style searches that
//! walk the input eight bytes per iteration using plain `u64` arithmetic.
//!
//! The build is offline and dependency-free, so instead of platform
//! SIMD intrinsics (or the `memchr` crate) the scanners here use the
//! classic SWAR ("SIMD within a register") zero-byte trick:
//!
//! ```text
//! zeros(x) = (x - 0x0101…01) & !x & 0x8080…80
//! ```
//!
//! For a word `x`, `zeros(x)` has the high bit set in every lane whose
//! byte is zero — *exactly* for the lowest such lane, and possibly
//! (through borrow propagation) spuriously for higher lanes. Since we
//! only ever take the **first** match of a scan, words are loaded
//! little-endian (`u64::from_le_bytes`) so `trailing_zeros() >> 3` is
//! the in-word byte index of the first match on every architecture.
//!
//! XOR-ing a word against a "splatted" needle byte turns
//! needle-positions into zero bytes, so the same trick finds arbitrary
//! bytes; OR-ing the masks of several needles gives multi-needle
//! search with one pass over the haystack.
//!
//! All three frontends (`fx_xml`, `fx_html`, `fx_json`) share this
//! module: XML/HTML tag scanning uses [`memchr`]/[`memchr2`]/
//! [`memchr3`]/[`memchr4`] to find `<`, `>`, `&`, and quote
//! delimiters; JSON string scanning uses [`memchr2`] for `"` vs `\`.

/// One repetition of `0x01` per byte lane.
const LO: u64 = 0x0101_0101_0101_0101;
/// One repetition of `0x80` per byte lane.
const HI: u64 = 0x8080_8080_8080_8080;

/// Splats `b` into every byte lane of a `u64`.
#[inline(always)]
const fn splat(b: u8) -> u64 {
    (b as u64) * LO
}

/// High-bit mask of the zero byte lanes of `x`. Exact for the lowest
/// zero lane; lanes above it may be spuriously set (borrow), which is
/// fine because callers only consume the lowest set bit.
#[inline(always)]
const fn zero_lanes(x: u64) -> u64 {
    x.wrapping_sub(LO) & !x & HI
}

/// Loads 8 bytes little-endian starting at `i`. Caller guarantees
/// `i + 8 <= hay.len()`.
#[inline(always)]
fn load(hay: &[u8], i: usize) -> u64 {
    u64::from_le_bytes(hay[i..i + 8].try_into().unwrap())
}

/// Byte offset (0..8) of the lowest set high-bit lane in `mask`.
/// Caller guarantees `mask != 0`.
#[inline(always)]
fn first_lane(mask: u64) -> usize {
    (mask.trailing_zeros() >> 3) as usize
}

/// Exact per-lane zero mask: the high bit of each byte lane is set iff
/// that lane is zero — *every* lane, not just the lowest (the
/// carry-free formulation, one op more than [`zero_lanes`]). Used when
/// all matches in a word are consumed, e.g. structural-index building.
#[inline(always)]
const fn zero_lanes_exact(x: u64) -> u64 {
    const SEVENF: u64 = !HI; // 0x7f per lane
    !(((x & SEVENF).wrapping_add(SEVENF)) | x | SEVENF)
}

/// Appends the index of every occurrence of the five needle bytes in
/// `hay[from..]` to `out` (absolute indices into `hay`), in order: one
/// SWAR pass building a *structural index* the tokenizer then walks,
/// instead of re-scanning bytes per token. `hay` must be under 4 GiB
/// (indices are `u32`; the caller buffers at most one token).
pub fn positions5(hay: &[u8], from: usize, needles: [u8; 5], out: &mut Vec<u32>) {
    let [n1, n2, n3, n4, n5] = needles;
    let (s1, s2, s3, s4, s5) = (splat(n1), splat(n2), splat(n3), splat(n4), splat(n5));
    let mut i = from;
    while i + 8 <= hay.len() {
        let w = load(hay, i);
        let mut m = zero_lanes_exact(w ^ s1)
            | zero_lanes_exact(w ^ s2)
            | zero_lanes_exact(w ^ s3)
            | zero_lanes_exact(w ^ s4)
            | zero_lanes_exact(w ^ s5);
        while m != 0 {
            out.push((i + first_lane(m)) as u32);
            m &= m - 1;
        }
        i += 8;
    }
    while i < hay.len() {
        let b = hay[i];
        if b == n1 || b == n2 || b == n3 || b == n4 || b == n5 {
            out.push(i as u32);
        }
        i += 1;
    }
}

/// [`positions5`] specialized to the XML structural set
/// `< > " ' &`: `<` (0x3C) and `>` (0x3E) differ only in bit 1, and
/// `&` (0x26) and `'` (0x27) only in bit 0, so OR-ing that bit before
/// the compare tests each pair in one SWAR probe — three zero-lane
/// tests per word instead of five.
pub fn positions_xml(hay: &[u8], from: usize, out: &mut Vec<u32>) {
    /// The folded three-probe structural mask of one word.
    #[inline(always)]
    fn xml_mask(w: u64) -> u64 {
        const BIT0: u64 = LO; // 0x01 per lane
        const BIT1: u64 = 0x0202_0202_0202_0202;
        zero_lanes_exact((w | BIT1) ^ splat(b'>'))
            | zero_lanes_exact((w | BIT0) ^ splat(b'\''))
            | zero_lanes_exact(w ^ splat(b'"'))
    }
    let mut i = from;
    // Two words per iteration: the probe chains of the pair are
    // independent, so they overlap in the pipeline, and the loop
    // overhead halves.
    while i + 16 <= hay.len() {
        let mut m0 = xml_mask(load(hay, i));
        let mut m1 = xml_mask(load(hay, i + 8));
        while m0 != 0 {
            out.push((i + first_lane(m0)) as u32);
            m0 &= m0 - 1;
        }
        while m1 != 0 {
            out.push((i + 8 + first_lane(m1)) as u32);
            m1 &= m1 - 1;
        }
        i += 16;
    }
    if i + 8 <= hay.len() {
        let mut m = xml_mask(load(hay, i));
        while m != 0 {
            out.push((i + first_lane(m)) as u32);
            m &= m - 1;
        }
        i += 8;
    }
    while i < hay.len() {
        if matches!(hay[i], b'<' | b'>' | b'"' | b'\'' | b'&') {
            out.push(i as u32);
        }
        i += 1;
    }
}

/// Index of the first occurrence of `n1` in `hay`, if any.
#[inline]
pub fn memchr(n1: u8, hay: &[u8]) -> Option<usize> {
    let s1 = splat(n1);
    let mut i = 0;
    while i + 8 <= hay.len() {
        let w = load(hay, i);
        let m = zero_lanes(w ^ s1);
        if m != 0 {
            return Some(i + first_lane(m));
        }
        i += 8;
    }
    hay[i..].iter().position(|&b| b == n1).map(|p| i + p)
}

/// Index of the first occurrence of `n1` or `n2` in `hay`, if any.
#[inline]
pub fn memchr2(n1: u8, n2: u8, hay: &[u8]) -> Option<usize> {
    let (s1, s2) = (splat(n1), splat(n2));
    let mut i = 0;
    while i + 8 <= hay.len() {
        let w = load(hay, i);
        let m = zero_lanes(w ^ s1) | zero_lanes(w ^ s2);
        if m != 0 {
            return Some(i + first_lane(m));
        }
        i += 8;
    }
    hay[i..]
        .iter()
        .position(|&b| b == n1 || b == n2)
        .map(|p| i + p)
}

/// Index of the first occurrence of `n1`, `n2`, or `n3` in `hay`.
#[inline]
pub fn memchr3(n1: u8, n2: u8, n3: u8, hay: &[u8]) -> Option<usize> {
    let (s1, s2, s3) = (splat(n1), splat(n2), splat(n3));
    let mut i = 0;
    while i + 8 <= hay.len() {
        let w = load(hay, i);
        let m = zero_lanes(w ^ s1) | zero_lanes(w ^ s2) | zero_lanes(w ^ s3);
        if m != 0 {
            return Some(i + first_lane(m));
        }
        i += 8;
    }
    hay[i..]
        .iter()
        .position(|&b| b == n1 || b == n2 || b == n3)
        .map(|p| i + p)
}

/// Index of the first occurrence of `n1`, `n2`, `n3`, or `n4` in `hay`.
#[inline]
pub fn memchr4(n1: u8, n2: u8, n3: u8, n4: u8, hay: &[u8]) -> Option<usize> {
    let (s1, s2, s3, s4) = (splat(n1), splat(n2), splat(n3), splat(n4));
    let mut i = 0;
    while i + 8 <= hay.len() {
        let w = load(hay, i);
        let m = zero_lanes(w ^ s1) | zero_lanes(w ^ s2) | zero_lanes(w ^ s3) | zero_lanes(w ^ s4);
        if m != 0 {
            return Some(i + first_lane(m));
        }
        i += 8;
    }
    hay[i..]
        .iter()
        .position(|&b| b == n1 || b == n2 || b == n3 || b == n4)
        .map(|p| i + p)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference implementation for differential checks.
    fn naive(needles: &[u8], hay: &[u8]) -> Option<usize> {
        hay.iter().position(|b| needles.contains(b))
    }

    #[test]
    fn finds_first_match_at_every_offset() {
        // Place the needle at every index of haystacks long enough to
        // exercise both the word loop and the scalar tail.
        for len in 0..40 {
            for at in 0..len {
                let mut hay = vec![b'a'; len];
                hay[at] = b'<';
                assert_eq!(memchr(b'<', &hay), Some(at), "len={len} at={at}");
            }
            let hay = vec![b'a'; len];
            assert_eq!(memchr(b'<', &hay), None, "len={len} absent");
        }
    }

    #[test]
    fn multi_needle_variants_agree_with_naive() {
        // A pseudo-random (deterministic) haystack over a small
        // alphabet so matches land in both word and tail regions.
        let mut hay = Vec::new();
        let mut state = 0x2545_f491_4f6c_dd1d_u64;
        for _ in 0..512 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            hay.push(b"ab<>&\"'x"[(state % 8) as usize]);
        }
        for start in [0, 1, 7, 8, 9, 63, 64, 65, 500] {
            let h = &hay[start..];
            assert_eq!(memchr(b'<', h), naive(b"<", h));
            assert_eq!(memchr2(b'"', b'\'', h), naive(b"\"'", h));
            assert_eq!(memchr3(b'<', b'>', b'&', h), naive(b"<>&", h));
            assert_eq!(memchr4(b'>', b'"', b'\'', b'<', h), naive(b">\"'<", h));
        }
    }

    #[test]
    fn high_bytes_do_not_confuse_the_scan() {
        // Multi-byte UTF-8 sequences (all lanes >= 0x80) must neither
        // match nor mask a later needle.
        let hay = "héllo wörld • <tag>".as_bytes();
        assert_eq!(memchr(b'<', hay), naive(b"<", hay));
        assert_eq!(memchr(0xE2, hay), hay.iter().position(|&b| b == 0xE2));
        // 0x80/0xFF edge lanes.
        let edges = [0x00, 0x80, 0xFF, 0x7F, b'<', 0x80, 0x00];
        assert_eq!(memchr(b'<', &edges), Some(4));
        assert_eq!(memchr(0x00, &edges), Some(0));
        assert_eq!(memchr(0xFF, &edges), Some(2));
    }

    #[test]
    fn positions5_matches_naive_at_every_alignment() {
        let mut hay = Vec::new();
        let mut state = 0x9e37_79b9_7f4a_7c15_u64;
        for _ in 0..300 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            hay.push(b"ab<>\"'&x\x80\xFF"[(state % 10) as usize]);
        }
        let needles = [b'<', b'>', b'"', b'\'', b'&'];
        for from in [0usize, 1, 7, 8, 9, 250, 295, 300] {
            let mut got = Vec::new();
            positions5(&hay, from, needles, &mut got);
            let want: Vec<u32> = (from..hay.len())
                .filter(|&i| needles.contains(&hay[i]))
                .map(|i| i as u32)
                .collect();
            assert_eq!(got, want, "from {from}");
        }
    }

    #[test]
    fn positions_xml_agrees_with_positions5() {
        let mut hay = Vec::new();
        let mut state = 0x0123_4567_89ab_cdef_u64;
        for _ in 0..300 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            // Alphabet biased toward the needles' bit-neighbors (0x3D,
            // 0x3F, 0x25, 0x24, 0x23) to catch folding mistakes.
            hay.push(b"<>\"'&=?%$#ab\x80\xFF"[(state % 14) as usize]);
        }
        for from in [0usize, 1, 7, 8, 9, 200, 295, 300] {
            let mut want = Vec::new();
            positions5(&hay, from, [b'<', b'>', b'"', b'\'', b'&'], &mut want);
            let mut got = Vec::new();
            positions_xml(&hay, from, &mut got);
            assert_eq!(got, want, "from {from}");
        }
    }

    #[test]
    fn empty_and_short_haystacks() {
        assert_eq!(memchr(b'<', b""), None);
        assert_eq!(memchr2(b'<', b'>', b""), None);
        assert_eq!(memchr(b'<', b"<"), Some(0));
        assert_eq!(memchr4(b'a', b'b', b'c', b'd', b"xyzd"), Some(3));
    }
}
