//! A streaming XML parser producing SAX events.
//!
//! The parser is a single pass over the input string. It supports the subset
//! of XML needed by the paper's data model (§3.1.1): elements, attributes,
//! text (with entity and CDATA decoding), comments, processing instructions,
//! and a DOCTYPE prolog (the latter three are skipped). Namespaces are not
//! interpreted — qualified names are kept verbatim, matching the paper's flat
//! name universe `N`.

use crate::escape::decode_entities;
use crate::event::{Attribute, Event};
use crate::span::Span;
use std::fmt;

/// Options controlling parsing behavior.
#[derive(Debug, Clone, Copy)]
pub struct ParseOptions {
    /// If false (the default), text nodes consisting entirely of whitespace
    /// are dropped. Documents in the paper never contain ignorable
    /// whitespace; dropping it makes pretty-printed fixtures equivalent to
    /// their compact forms.
    pub keep_whitespace_text: bool,
    /// If true (the default), adjacent text runs (e.g. text split by a
    /// comment or CDATA section) are merged into a single `text` event.
    pub coalesce_text: bool,
}

impl Default for ParseOptions {
    fn default() -> Self {
        ParseOptions {
            keep_whitespace_text: false,
            coalesce_text: true,
        }
    }
}

/// A parse error with 1-based line/column position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the problem.
    pub message: String,
    /// 1-based line of the error.
    pub line: usize,
    /// 1-based column of the error.
    pub column: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "XML parse error at {}:{}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses an XML document into a SAX event sequence, including the
/// surrounding `StartDocument`/`EndDocument` events.
pub fn parse(input: &str) -> Result<Vec<Event>, ParseError> {
    parse_with(input, ParseOptions::default())
}

/// [`parse`] with explicit [`ParseOptions`].
pub fn parse_with(input: &str, options: ParseOptions) -> Result<Vec<Event>, ParseError> {
    let mut p = Parser::new(input, options);
    p.run()?;
    Ok(p.events)
}

/// [`parse`], with each event's source byte [`Span`]: tag spans for
/// element events, raw character regions for text (covering any comment
/// or CDATA boundary the run was coalesced across), and zero-width
/// spans for the document framing events.
pub fn parse_spanned(input: &str) -> Result<Vec<(Event, Span)>, ParseError> {
    parse_spanned_with(input, ParseOptions::default())
}

/// [`parse_spanned`] with explicit [`ParseOptions`].
pub fn parse_spanned_with(
    input: &str,
    options: ParseOptions,
) -> Result<Vec<(Event, Span)>, ParseError> {
    let mut p = Parser::new(input, options);
    p.run()?;
    Ok(p.events.into_iter().zip(p.spans).collect())
}

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
    options: ParseOptions,
    events: Vec<Event>,
    /// One span per event, parallel to `events`.
    spans: Vec<Span>,
    stack: Vec<String>,
    pending_text: String,
    /// Source region the pending text was decoded from (covers comment
    /// and CDATA boundaries when runs are coalesced).
    pending_text_span: Option<Span>,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str, options: ParseOptions) -> Self {
        Parser {
            input,
            bytes: input.as_bytes(),
            pos: 0,
            options,
            events: Vec::new(),
            spans: Vec::new(),
            stack: Vec::new(),
            pending_text: String::new(),
            pending_text_span: None,
        }
    }

    fn emit(&mut self, event: Event, span: Span) {
        self.events.push(event);
        self.spans.push(span);
    }

    fn note_text_region(&mut self, start: usize, end: usize) {
        let region = Span::new(start as u64, end as u64);
        self.pending_text_span = Some(match self.pending_text_span {
            Some(s) => s.cover(region),
            None => region,
        });
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        let consumed = &self.input[..self.pos.min(self.input.len())];
        let line = consumed.bytes().filter(|&b| b == b'\n').count() + 1;
        let column = consumed.len() - consumed.rfind('\n').map(|i| i + 1).unwrap_or(0) + 1;
        ParseError {
            message: message.into(),
            line,
            column,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s)
    }

    fn bump(&mut self, n: usize) {
        self.pos += n;
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn flush_text(&mut self) -> Result<(), ParseError> {
        let span = self.pending_text_span.take().unwrap_or_default();
        if self.pending_text.is_empty() {
            return Ok(());
        }
        let text = std::mem::take(&mut self.pending_text);
        let keep = self.options.keep_whitespace_text || !text.chars().all(char::is_whitespace);
        if keep {
            if self.stack.is_empty() {
                return Err(self.err("text content outside the root element"));
            }
            self.emit(Event::Text { content: text }, span);
        }
        Ok(())
    }

    fn run(&mut self) -> Result<(), ParseError> {
        self.emit(Event::StartDocument, Span::point(0));
        // Prolog: XML declaration, comments, PIs, DOCTYPE.
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                self.skip_pi()?;
            } else if self.starts_with("<!--") {
                self.skip_comment()?;
            } else if self.starts_with("<!DOCTYPE") {
                self.skip_doctype()?;
            } else {
                break;
            }
        }
        if self.peek() != Some(b'<') {
            return Err(self.err("expected root element"));
        }
        self.parse_content()?;
        // Epilog: trailing comments / PIs / whitespace only.
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                self.skip_comment()?;
            } else if self.starts_with("<?") {
                self.skip_pi()?;
            } else {
                break;
            }
        }
        if self.pos != self.input.len() {
            return Err(self.err("trailing content after root element"));
        }
        self.emit(Event::EndDocument, Span::point(self.input.len() as u64));
        Ok(())
    }

    /// Parses the root element and everything nested in it.
    fn parse_content(&mut self) -> Result<(), ParseError> {
        let mut seen_root = false;
        loop {
            match self.peek() {
                None => {
                    if !self.stack.is_empty() {
                        return Err(self.err(format!(
                            "unexpected end of input; unclosed element `{}`",
                            self.stack.last().unwrap()
                        )));
                    }
                    return Err(self.err("empty document"));
                }
                Some(b'<') => {
                    if self.starts_with("<!--") {
                        self.skip_comment()?;
                    } else if self.starts_with("<![CDATA[") {
                        self.parse_cdata()?;
                    } else if self.starts_with("<?") {
                        self.skip_pi()?;
                    } else if self.starts_with("</") {
                        self.flush_text()?;
                        self.parse_end_tag()?;
                        if self.stack.is_empty() {
                            return Ok(());
                        }
                    } else {
                        self.flush_text()?;
                        if self.stack.is_empty() && seen_root {
                            return Err(self.err("multiple root elements"));
                        }
                        seen_root = true;
                        let self_closing = self.parse_start_tag()?;
                        if self_closing && self.stack.is_empty() {
                            return Ok(());
                        }
                    }
                }
                Some(_) => self.parse_text()?,
            }
        }
    }

    fn parse_text(&mut self) -> Result<(), ParseError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b'<' {
                break;
            }
            self.pos += 1;
        }
        let raw = &self.input[start..self.pos];
        let decoded = decode_entities(raw).map_err(|e| self.err(e.to_string()))?;
        if !self.options.coalesce_text && !self.pending_text.is_empty() {
            self.flush_text()?;
        }
        self.pending_text.push_str(&decoded);
        self.note_text_region(start, self.pos);
        Ok(())
    }

    fn parse_cdata(&mut self) -> Result<(), ParseError> {
        let tag_start = self.pos;
        self.bump("<![CDATA[".len());
        let rest = &self.input[self.pos..];
        let end = rest
            .find("]]>")
            .ok_or_else(|| self.err("unterminated CDATA section"))?;
        let content = rest[..end].to_string();
        if !self.options.coalesce_text && !self.pending_text.is_empty() {
            self.flush_text()?;
        }
        self.pending_text.push_str(&content);
        self.bump(end + 3);
        self.note_text_region(tag_start, self.pos);
        Ok(())
    }

    fn skip_comment(&mut self) -> Result<(), ParseError> {
        self.bump("<!--".len());
        let rest = &self.input[self.pos..];
        let end = rest
            .find("-->")
            .ok_or_else(|| self.err("unterminated comment"))?;
        self.bump(end + 3);
        Ok(())
    }

    fn skip_pi(&mut self) -> Result<(), ParseError> {
        self.bump("<?".len());
        let rest = &self.input[self.pos..];
        let end = rest
            .find("?>")
            .ok_or_else(|| self.err("unterminated processing instruction"))?;
        self.bump(end + 2);
        Ok(())
    }

    fn skip_doctype(&mut self) -> Result<(), ParseError> {
        // Skip to the matching `>`, tolerating a bracketed internal subset.
        self.bump("<!DOCTYPE".len());
        let mut depth = 0usize;
        while let Some(b) = self.peek() {
            self.pos += 1;
            match b {
                b'[' => depth += 1,
                b']' => depth = depth.saturating_sub(1),
                b'>' if depth == 0 => return Ok(()),
                _ => {}
            }
        }
        Err(self.err("unterminated DOCTYPE"))
    }

    fn parse_name(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            let ok =
                b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':') || b >= 0x80;
            if !ok {
                break;
            }
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        let first = self.bytes[start];
        if first.is_ascii_digit() || first == b'-' || first == b'.' {
            return Err(self.err("names may not start with a digit, `-`, or `.`"));
        }
        Ok(self.input[start..self.pos].to_string())
    }

    /// Parses `<name attr="v" ...>` or `<name ... />`. Returns whether the
    /// tag was self-closing.
    fn parse_start_tag(&mut self) -> Result<bool, ParseError> {
        let tag_start = self.pos as u64;
        self.bump(1); // consume '<'
        let name = self.parse_name()?;
        let mut attributes = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') => {
                    self.bump(1);
                    let span = Span::new(tag_start, self.pos as u64);
                    self.emit(
                        Event::StartElement {
                            name: name.clone(),
                            attributes,
                        },
                        span,
                    );
                    self.stack.push(name);
                    return Ok(false);
                }
                Some(b'/') => {
                    if !self.starts_with("/>") {
                        return Err(self.err("expected `/>`"));
                    }
                    self.bump(2);
                    // Both events of a self-closing tag share its span.
                    let span = Span::new(tag_start, self.pos as u64);
                    self.emit(
                        Event::StartElement {
                            name: name.clone(),
                            attributes,
                        },
                        span,
                    );
                    self.emit(Event::EndElement { name }, span);
                    return Ok(true);
                }
                Some(_) => {
                    let attr_name = self.parse_name()?;
                    self.skip_ws();
                    if self.peek() != Some(b'=') {
                        return Err(self.err(format!("expected `=` after attribute `{attr_name}`")));
                    }
                    self.bump(1);
                    self.skip_ws();
                    let quote = match self.peek() {
                        Some(q @ (b'"' | b'\'')) => q,
                        _ => return Err(self.err("expected quoted attribute value")),
                    };
                    self.bump(1);
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == quote {
                            break;
                        }
                        if b == b'<' {
                            return Err(self.err("`<` is not allowed in attribute values"));
                        }
                        self.pos += 1;
                    }
                    if self.peek() != Some(quote) {
                        return Err(self.err("unterminated attribute value"));
                    }
                    let raw = &self.input[start..self.pos];
                    self.bump(1);
                    let value = decode_entities(raw)
                        .map_err(|e| self.err(e.to_string()))?
                        .into_owned();
                    if attributes.iter().any(|a: &Attribute| a.name == attr_name) {
                        return Err(self.err(format!("duplicate attribute `{attr_name}`")));
                    }
                    attributes.push(Attribute {
                        name: attr_name,
                        value,
                    });
                }
                None => return Err(self.err("unterminated start tag")),
            }
        }
    }

    fn parse_end_tag(&mut self) -> Result<(), ParseError> {
        let tag_start = self.pos as u64;
        self.bump(2); // consume '</'
        let name = self.parse_name()?;
        self.skip_ws();
        if self.peek() != Some(b'>') {
            return Err(self.err("expected `>` in end tag"));
        }
        self.bump(1);
        let span = Span::new(tag_start, self.pos as u64);
        match self.stack.pop() {
            Some(open) if open == name => {
                self.emit(Event::EndElement { name }, span);
                Ok(())
            }
            Some(open) => Err(self.err(format!(
                "mismatched end tag `</{name}>`; expected `</{open}>`"
            ))),
            None => Err(self.err(format!("end tag `</{name}>` without matching start tag"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::notation;

    fn names(events: &[Event]) -> Vec<String> {
        events.iter().map(|e| e.notation()).collect()
    }

    #[test]
    fn parses_paper_document_d() {
        // Document D from the proof of Theorem 4.2.
        let events = parse("<a><c><e/><f/></c><b>6</b></a>").unwrap();
        assert_eq!(
            notation(&events),
            "\u{27e8}$\u{27e9}\u{27e8}a\u{27e9}\u{27e8}c\u{27e9}\u{27e8}e\u{27e9}\u{27e8}/e\u{27e9}\u{27e8}f\u{27e9}\u{27e8}/f\u{27e9}\u{27e8}/c\u{27e9}\u{27e8}b\u{27e9}6\u{27e8}/b\u{27e9}\u{27e8}/a\u{27e9}\u{27e8}/$\u{27e9}"
        );
    }

    #[test]
    fn drops_whitespace_only_text_by_default() {
        let events = parse("<a>\n  <b/>\n</a>").unwrap();
        assert!(!events.iter().any(|e| matches!(e, Event::Text { .. })));
    }

    #[test]
    fn keeps_whitespace_when_asked() {
        let events = parse_with(
            "<a> <b/></a>",
            ParseOptions {
                keep_whitespace_text: true,
                coalesce_text: true,
            },
        )
        .unwrap();
        assert!(events
            .iter()
            .any(|e| matches!(e, Event::Text { content } if content == " ")));
    }

    #[test]
    fn parses_attributes() {
        let events = parse(r#"<a id="1" name='x &amp; y'/>"#).unwrap();
        match &events[1] {
            Event::StartElement { name, attributes } => {
                assert_eq!(name, "a");
                assert_eq!(attributes.len(), 2);
                assert_eq!(attributes[0], Attribute::new("id", "1"));
                assert_eq!(attributes[1], Attribute::new("name", "x & y"));
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn rejects_duplicate_attributes() {
        assert!(parse(r#"<a x="1" x="2"/>"#).is_err());
    }

    #[test]
    fn decodes_entities_in_text() {
        let events = parse("<a>1 &lt; 2 &amp;&amp; 3 &gt; 2</a>").unwrap();
        assert!(events
            .iter()
            .any(|e| matches!(e, Event::Text { content } if content == "1 < 2 && 3 > 2")));
    }

    #[test]
    fn cdata_becomes_text() {
        let events = parse("<a><![CDATA[x < y & z]]></a>").unwrap();
        assert!(events
            .iter()
            .any(|e| matches!(e, Event::Text { content } if content == "x < y & z")));
    }

    #[test]
    fn coalesces_text_across_comments() {
        let events = parse("<a>he<!-- comment -->llo</a>").unwrap();
        let texts: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                Event::Text { content } => Some(content.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(texts, vec!["hello"]);
    }

    #[test]
    fn skips_prolog_and_doctype() {
        let doc = "<?xml version=\"1.0\"?><!DOCTYPE a [<!ELEMENT a ANY>]><!-- hi --><a/>";
        let events = parse(doc).unwrap();
        assert_eq!(names(&events).len(), 4); // <$> <a> </a> </$>
    }

    #[test]
    fn rejects_mismatched_tags() {
        let err = parse("<a><b></a></b>").unwrap_err();
        assert!(err.message.contains("mismatched"), "{err}");
    }

    #[test]
    fn rejects_unclosed_root() {
        assert!(parse("<a><b></b>").is_err());
    }

    #[test]
    fn rejects_multiple_roots() {
        assert!(parse("<a/><b/>").is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("<a/>junk").is_err());
    }

    #[test]
    fn rejects_text_outside_root() {
        assert!(parse("junk<a/>").is_err());
    }

    #[test]
    fn error_positions_are_one_based() {
        let err = parse("<a>\n<b x=1/></a>").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.column > 1);
    }

    #[test]
    fn nested_empty_element_shorthand() {
        // `<n/>` is shorthand for `<n></n>` (§3.1.4).
        let a = parse("<a><n/></a>").unwrap();
        let b = parse("<a><n></n></a>").unwrap();
        assert_eq!(a, b);
    }
}
