//! # fx-xml
//!
//! The XML substrate of the `frontier-xpath` workspace: the SAX event model
//! of §3.1.4 of *Bar-Yossef, Fontoura, Josifovski — On the Memory
//! Requirements of XPath Evaluation over XML Streams* (PODS 2004 / JCSS
//! 2007), a streaming XML parser producing those events, a writer, a
//! well-formedness checker, and the stream-splitting utilities used by the
//! paper's communication-complexity reductions.
//!
//! ```
//! use fx_xml::{parse, to_xml, is_well_formed};
//!
//! let events = parse("<a><b>6</b></a>").unwrap();
//! assert!(is_well_formed(&events));
//! assert_eq!(to_xml(&events).unwrap(), "<a><b>6</b></a>");
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod escape;
pub mod event;
pub mod iter;
pub mod parser;
pub mod reader;
pub mod scan;
pub mod source;
pub mod span;
pub mod split;
pub mod symbols;
pub mod wellformed;
pub mod writer;

pub use batch::{EventBatch, BATCH_BYTES, BATCH_EVENTS};
pub use escape::{decode_entities, decode_entities_into, escape_attr, escape_text};
pub use event::{drive, notation, Attribute, Event, EventCollector, EventRef, SaxHandler};
pub use iter::{EventIter, SpannedEvents};
pub use parser::{parse, parse_spanned, parse_spanned_with, parse_with, ParseError, ParseOptions};
pub use reader::{parse_reader, StreamingParser};
pub use source::{drive_byte_chunks, drive_utf8_chunks, EventSource, Utf8Carry};
pub use span::Span;
pub use split::{
    element_range, find_nth, first_end, first_start, matching_end, splice, Segmentation,
};
pub use symbols::{AttrBuf, Sym, SymAttr, SymCache, SymEvent, Symbols, SymbolsSnapshot};
pub use wellformed::{check, is_well_formed, stream_depth, Violation};
pub use writer::{to_pretty_xml, to_xml, WriteError};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Strategy: random small element trees rendered to events.
    fn arb_tree(depth: u32) -> impl Strategy<Value = Vec<Event>> {
        let name = prop::sample::select(vec!["a", "b", "c", "d", "e"]);
        let text = "[ -~]{1,12}".prop_filter("non-ws", |s: &String| !s.trim().is_empty());
        let leaf = (name.clone(), prop::option::of(text)).prop_map(|(n, t)| {
            let mut v = vec![Event::start(n)];
            if let Some(t) = t {
                v.push(Event::text(t));
            }
            v.push(Event::end(n));
            v
        });
        leaf.prop_recursive(depth, 64, 4, move |inner| {
            (
                prop::sample::select(vec!["r", "s", "t"]),
                prop::collection::vec(inner, 1..4),
            )
                .prop_map(|(n, kids)| {
                    let mut v = vec![Event::start(n)];
                    for k in kids {
                        v.extend(k);
                    }
                    v.push(Event::end(n));
                    v
                })
        })
    }

    proptest! {
        #[test]
        fn write_parse_round_trip(body in arb_tree(3)) {
            let mut events = vec![Event::StartDocument];
            events.extend(body);
            events.push(Event::EndDocument);
            prop_assert!(is_well_formed(&events));
            let xml = to_xml(&events).unwrap();
            let reparsed = parse_with(
                &xml,
                ParseOptions { keep_whitespace_text: true, coalesce_text: true },
            ).unwrap();
            prop_assert_eq!(reparsed, events);
        }

        #[test]
        fn pretty_parse_preserves_structure(body in arb_tree(3)) {
            let mut events = vec![Event::StartDocument];
            events.extend(body);
            events.push(Event::EndDocument);
            let pretty = to_pretty_xml(&events).unwrap();
            // Whitespace-insensitive parse must recover the same element
            // structure (text may gain surrounding whitespace in pretty form,
            // so compare element events only).
            let reparsed = parse(&pretty).unwrap();
            let elems = |evs: &[Event]| evs.iter().filter(|e| e.is_start() || e.is_end())
                .cloned().collect::<Vec<_>>();
            prop_assert_eq!(elems(&reparsed), elems(&events));
        }

        #[test]
        fn escape_round_trip(s in "[ -~]{0,40}") {
            let esc = escape_attr(&s).into_owned();
            prop_assert_eq!(decode_entities(&esc).unwrap(), s);
        }

        #[test]
        fn segmentation_splice_identity(body in arb_tree(2), cut1 in 0usize..20, cut2 in 0usize..20) {
            let mut events = vec![Event::StartDocument];
            events.extend(body);
            events.push(Event::EndDocument);
            let n = events.len();
            let seg = Segmentation::new(events.clone(), vec![cut1.min(n), cut2.min(n)]);
            prop_assert_eq!(splice(&seg.segments()), events);
        }
    }
}
