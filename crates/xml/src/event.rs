//! The SAX event model of Section 3.1.4 of the paper.
//!
//! A streaming algorithm receives an XML document as a sequence of five kinds
//! of events: `startDocument()` (written `〈$〉`), `endDocument()` (`〈/$〉`),
//! `startElement(n)` (`〈n〉`), `endElement(n)` (`〈/n〉`) and `text(α)`.
//!
//! Attributes are carried on [`Event::StartElement`]; the paper treats the
//! attribute axis as a special case of the child axis (§3.1.2), and downstream
//! consumers expand attributes into child-like sub-events when needed.

use std::fmt;

/// An attribute of an element start event: a `(name, value)` pair.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Attribute {
    /// The attribute name (without any `@` sigil).
    pub name: String,
    /// The attribute value, already entity-decoded.
    pub value: String,
}

impl Attribute {
    /// Creates an attribute from anything string-like.
    pub fn new(name: impl Into<String>, value: impl Into<String>) -> Self {
        Attribute {
            name: name.into(),
            value: value.into(),
        }
    }
}

/// A single SAX event.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Event {
    /// `startDocument()`, denoted `〈$〉` in the paper.
    StartDocument,
    /// `endDocument()`, denoted `〈/$〉`.
    EndDocument,
    /// `startElement(n)`, denoted `〈n〉`. Carries the attributes of the tag.
    StartElement {
        /// The element name `n ∈ N`.
        name: String,
        /// The attributes appearing on the start tag, in document order.
        attributes: Vec<Attribute>,
    },
    /// `endElement(n)`, denoted `〈/n〉`.
    EndElement {
        /// The element name; must match the corresponding start event.
        name: String,
    },
    /// `text(α)`, a text node with content `α ∈ S`.
    Text {
        /// The (entity-decoded) character content.
        content: String,
    },
}

impl Event {
    /// Shorthand constructor for a start-element event without attributes.
    pub fn start(name: impl Into<String>) -> Self {
        Event::StartElement {
            name: name.into(),
            attributes: Vec::new(),
        }
    }

    /// Shorthand constructor for a start-element event with attributes.
    pub fn start_with_attrs(name: impl Into<String>, attributes: Vec<Attribute>) -> Self {
        Event::StartElement {
            name: name.into(),
            attributes,
        }
    }

    /// Shorthand constructor for an end-element event.
    pub fn end(name: impl Into<String>) -> Self {
        Event::EndElement { name: name.into() }
    }

    /// Shorthand constructor for a text event.
    pub fn text(content: impl Into<String>) -> Self {
        Event::Text {
            content: content.into(),
        }
    }

    /// Returns the element name if this is a start- or end-element event.
    pub fn element_name(&self) -> Option<&str> {
        match self {
            Event::StartElement { name, .. } | Event::EndElement { name } => Some(name),
            _ => None,
        }
    }

    /// True for [`Event::StartElement`].
    pub fn is_start(&self) -> bool {
        matches!(self, Event::StartElement { .. })
    }

    /// True for [`Event::EndElement`].
    pub fn is_end(&self) -> bool {
        matches!(self, Event::EndElement { .. })
    }

    /// The paper's angle-bracket notation for a single event (`〈a〉`, `〈/a〉`,
    /// `〈$〉`, `〈/$〉`, or the raw text).
    pub fn notation(&self) -> String {
        match self {
            Event::StartDocument => "\u{27e8}$\u{27e9}".to_string(),
            Event::EndDocument => "\u{27e8}/$\u{27e9}".to_string(),
            Event::StartElement { name, attributes } => {
                if attributes.is_empty() {
                    format!("\u{27e8}{name}\u{27e9}")
                } else {
                    let attrs: Vec<String> = attributes
                        .iter()
                        .map(|a| format!("{}={:?}", a.name, a.value))
                        .collect();
                    format!("\u{27e8}{name} {}\u{27e9}", attrs.join(" "))
                }
            }
            Event::EndElement { name } => format!("\u{27e8}/{name}\u{27e9}"),
            Event::Text { content } => content.clone(),
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.notation())
    }
}

/// Renders an event sequence in the paper's notation, e.g.
/// `〈a〉〈b〉6〈/b〉〈/a〉`.
pub fn notation(events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&e.notation());
    }
    out
}

/// A borrowed SAX event: the zero-copy view of an [`Event`], with name
/// and payload `&str` slices pointing into whatever buffer produced
/// them (an owned event, a parser scratch buffer, a document string).
///
/// Use it to hand events to consumers without materializing owned
/// `String`s — `fx-core`'s `StreamFilter::process_ref` accepts it
/// directly. [`Event::as_ref`] borrows an owned event;
/// [`EventRef::to_owned`] materializes one back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventRef<'a> {
    /// `startDocument()`.
    StartDocument,
    /// `endDocument()`.
    EndDocument,
    /// `startElement(n)` with its attributes.
    StartElement {
        /// The element name.
        name: &'a str,
        /// The attributes, in document order.
        attributes: &'a [Attribute],
    },
    /// `endElement(n)`.
    EndElement {
        /// The element name.
        name: &'a str,
    },
    /// `text(α)`.
    Text {
        /// The entity-decoded character content.
        content: &'a str,
    },
}

impl EventRef<'_> {
    /// Materializes an owned [`Event`] (allocating; the conversion the
    /// borrowed representation exists to avoid on hot paths).
    pub fn to_owned(&self) -> Event {
        match *self {
            EventRef::StartDocument => Event::StartDocument,
            EventRef::EndDocument => Event::EndDocument,
            EventRef::StartElement { name, attributes } => Event::StartElement {
                name: name.to_string(),
                attributes: attributes.to_vec(),
            },
            EventRef::EndElement { name } => Event::end(name),
            EventRef::Text { content } => Event::text(content),
        }
    }
}

impl Event {
    /// Borrows this event as a zero-copy [`EventRef`].
    pub fn as_ref(&self) -> EventRef<'_> {
        match self {
            Event::StartDocument => EventRef::StartDocument,
            Event::EndDocument => EventRef::EndDocument,
            Event::StartElement { name, attributes } => EventRef::StartElement { name, attributes },
            Event::EndElement { name } => EventRef::EndElement { name },
            Event::Text { content } => EventRef::Text { content },
        }
    }
}

/// A push-style consumer of SAX events (the event-handler interface of §8.1).
///
/// All methods have empty default bodies so implementors only override the
/// events they care about.
pub trait SaxHandler {
    /// Called once before any other event.
    fn start_document(&mut self) {}
    /// Called once after all other events.
    fn end_document(&mut self) {}
    /// Called at each element start tag.
    fn start_element(&mut self, _name: &str, _attributes: &[Attribute]) {}
    /// Called at each element end tag.
    fn end_element(&mut self, _name: &str) {}
    /// Called for each text node.
    fn text(&mut self, _content: &str) {}
}

/// Drives a [`SaxHandler`] with a pre-materialized event sequence.
pub fn drive<H: SaxHandler>(events: &[Event], handler: &mut H) {
    for e in events {
        match e {
            Event::StartDocument => handler.start_document(),
            Event::EndDocument => handler.end_document(),
            Event::StartElement { name, attributes } => handler.start_element(name, attributes),
            Event::EndElement { name } => handler.end_element(name),
            Event::Text { content } => handler.text(content),
        }
    }
}

/// A [`SaxHandler`] that records the events it receives. Useful in tests and
/// for adapting push-style producers to pull-style consumers.
#[derive(Debug, Default, Clone)]
pub struct EventCollector {
    /// The recorded events, in arrival order.
    pub events: Vec<Event>,
}

impl SaxHandler for EventCollector {
    fn start_document(&mut self) {
        self.events.push(Event::StartDocument);
    }
    fn end_document(&mut self) {
        self.events.push(Event::EndDocument);
    }
    fn start_element(&mut self, name: &str, attributes: &[Attribute]) {
        self.events.push(Event::StartElement {
            name: name.to_string(),
            attributes: attributes.to_vec(),
        });
    }
    fn end_element(&mut self, name: &str) {
        self.events.push(Event::end(name));
    }
    fn text(&mut self, content: &str) {
        self.events.push(Event::text(content));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn notation_matches_paper_style() {
        let events = vec![
            Event::StartDocument,
            Event::start("a"),
            Event::start("b"),
            Event::text("6"),
            Event::end("b"),
            Event::end("a"),
            Event::EndDocument,
        ];
        assert_eq!(
            notation(&events),
            "\u{27e8}$\u{27e9}\u{27e8}a\u{27e9}\u{27e8}b\u{27e9}6\u{27e8}/b\u{27e9}\u{27e8}/a\u{27e9}\u{27e8}/$\u{27e9}"
        );
    }

    #[test]
    fn element_name_accessor() {
        assert_eq!(Event::start("x").element_name(), Some("x"));
        assert_eq!(Event::end("x").element_name(), Some("x"));
        assert_eq!(Event::text("x").element_name(), None);
        assert_eq!(Event::StartDocument.element_name(), None);
    }

    #[test]
    fn drive_round_trips_through_collector() {
        let events = vec![
            Event::StartDocument,
            Event::start_with_attrs("a", vec![Attribute::new("k", "v")]),
            Event::text("hi"),
            Event::end("a"),
            Event::EndDocument,
        ];
        let mut c = EventCollector::default();
        drive(&events, &mut c);
        assert_eq!(c.events, events);
    }

    #[test]
    fn start_is_start_end_is_end() {
        assert!(Event::start("a").is_start());
        assert!(!Event::start("a").is_end());
        assert!(Event::end("a").is_end());
        assert!(!Event::text("t").is_start());
    }

    #[test]
    fn attribute_notation_renders_pairs() {
        let e = Event::start_with_attrs("a", vec![Attribute::new("id", "1")]);
        assert_eq!(e.notation(), "\u{27e8}a id=\"1\"\u{27e9}");
    }
}
