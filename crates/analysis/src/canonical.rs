//! Canonical documents (§6.4): for every redundancy-free query `Q`, a
//! document `D_c` that (a) matches `Q` via the *canonical matching*
//! `φ_c(u) = SHADOW(u)` (Lemma 6.11), and (b) admits **no other** matching
//! (Lemma 6.15). All three lower-bound constructions build on `D_c`.
//!
//! The construction follows Fig. 8: node tests become names (wildcards get
//! an auxiliary name), descendant-axis nodes are pushed `h+1` artificial
//! nodes deeper (where `h` is the longest wildcard chain), and shadow nodes
//! receive text values that belong "uniquely" to their truth sets.
//!
//! This module also canonicalizes **queries** themselves: the
//! [`canonical_steps`]/[`canonical_key`] forms normalize away semantics-
//! preserving surface variation (commutative-predicate ordering, duplicate
//! conjuncts, flipped constant comparisons, and the `.//`-vs-`//`
//! descendant-axis spellings), so two syntactically different but
//! equivalent queries render identically. The shared-prefix multi-query
//! index (`fx_core::IndexedBank`) keys its trie on these forms: equal
//! canonical steps land on the same trie path.

use crate::automorphism::dominated_leaves;
use crate::fragment::FragmentViolation;
use crate::truthset::{flip, sample_distinct_member, sample_non_prefix, Shape, TruthSet};
use fx_dom::{Document, NodeId, NodeKind};
use fx_xpath::value::format_number;
use fx_xpath::{Axis, Expr, NodeTest, Query, QueryNodeId, Value};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A canonical document together with its shadow map and metadata.
#[derive(Debug, Clone)]
pub struct CanonicalDocument {
    /// The document `D_c`.
    pub doc: Document,
    /// `SHADOW: Q → D_c` (injective).
    pub shadow: HashMap<QueryNodeId, NodeId>,
    /// The artificial nodes (the chains inserted below descendant axes).
    pub artificial: HashSet<NodeId>,
    /// The auxiliary name used for artificial nodes and wildcard shadows.
    pub aux_name: String,
    /// `h`: the longest wildcard chain of the query.
    pub wildcard_chain: usize,
    /// The unique values assigned to shadow nodes (absent when the node
    /// needs no value).
    pub values: HashMap<QueryNodeId, String>,
}

impl CanonicalDocument {
    /// The inverse shadow map: which query node (if any) a document node
    /// shadows.
    pub fn shadow_inverse(&self) -> HashMap<NodeId, QueryNodeId> {
        self.shadow.iter().map(|(&u, &x)| (x, u)).collect()
    }

    /// The canonical matching `φ_c` (Lemma 6.11) in `fx-eval` form.
    pub fn canonical_matching(&self) -> fx_eval::Matching {
        self.shadow.clone()
    }
}

/// Returns a name from `N` that does not occur as a node test in `Q`
/// (the `getAuxiliaryName` of Fig. 8).
pub fn auxiliary_name(q: &Query) -> String {
    let used: HashSet<&str> = q
        .all_nodes()
        .filter_map(|u| match q.ntest(u) {
            Some(NodeTest::Name(n)) => Some(n.as_str()),
            _ => None,
        })
        .collect();
    if !used.contains("Z") {
        return "Z".to_string();
    }
    (0..)
        .map(|i| format!("Z{i}"))
        .find(|n| !used.contains(n.as_str()))
        .expect("names are unbounded")
}

/// Builds the canonical document of a redundancy-free query (Fig. 8).
/// Fails with a sunflower/prefix-sunflower violation when no unique value
/// exists for some node — exactly the condition under which the query is
/// not strongly subsumption-free (Def. 5.18).
pub fn canonical_document(q: &Query) -> Result<CanonicalDocument, FragmentViolation> {
    build(q, true)
}

/// The "structurally canonical" variant (§6.4.1): same tree, no text
/// values. Used for structural-matching arguments (Lemma 6.9's proof).
pub fn structurally_canonical_document(q: &Query) -> CanonicalDocument {
    build(q, false).expect("structural construction cannot fail")
}

fn build(q: &Query, with_values: bool) -> Result<CanonicalDocument, FragmentViolation> {
    let aux = auxiliary_name(q);
    let h = q.longest_wildcard_chain();
    let values = if with_values {
        unique_values(q)?
    } else {
        HashMap::new()
    };

    let mut doc = Document::empty();
    let mut shadow = HashMap::new();
    let mut artificial = HashSet::new();
    shadow.insert(q.root(), doc.root());

    let mut stack: Vec<(QueryNodeId, NodeId)> = vec![(q.root(), doc.root())];
    // Depth-first construction in the query's child order (mirrors the
    // recursion of processNode in Fig. 8).
    while let Some((u, parent_doc)) = stack.pop() {
        for child in q.children(u).to_vec() {
            let mut attach = parent_doc;
            if q.axis(child) == Some(Axis::Descendant) {
                for _ in 0..=h {
                    attach = doc.push_node(attach, NodeKind::Element, aux.clone(), "");
                    artificial.insert(attach);
                }
            }
            let name = match q.ntest(child) {
                Some(NodeTest::Name(n)) => n.clone(),
                Some(NodeTest::Wildcard) => aux.clone(),
                None => unreachable!("children have node tests"),
            };
            let node = if q.axis(child) == Some(Axis::Attribute) {
                let content = values.get(&child).cloned().unwrap_or_default();
                doc.push_node(attach, NodeKind::Attribute, name, content)
            } else {
                let elem = doc.push_node(attach, NodeKind::Element, name, "");
                if let Some(v) = values.get(&child) {
                    doc.push_node(elem, NodeKind::Text, "", v.clone());
                }
                elem
            };
            shadow.insert(child, node);
            stack.push((child, node));
        }
    }
    Ok(CanonicalDocument {
        doc,
        shadow,
        artificial,
        aux_name: aux,
        wildcard_chain: h,
        values,
    })
}

/// Computes `getUniqueValue` for every node that needs one (Fig. 8 line
/// 10, refined per §6.4.1): a leaf `u` receives `α ∈ TRUTH(u)` outside the
/// dominated leaves' truth sets; an internal `u` with a non-empty dominated
/// leaf set receives `α` that is not a prefix of any dominated value.
/// Unrestricted leaves with nothing to distinguish stay empty (matching
/// the paper's example documents, e.g. `〈e/〉`).
pub fn unique_values(q: &Query) -> Result<HashMap<QueryNodeId, String>, FragmentViolation> {
    let mut out = HashMap::new();
    for u in q.all_nodes() {
        if u == q.root() {
            continue;
        }
        let leaves = dominated_leaves(q, u);
        let avoid: Vec<TruthSet> = leaves
            .iter()
            .map(|&v| TruthSet::of(q, v))
            .collect::<Result<_, _>>()
            .map_err(FragmentViolation::from)?;
        if q.is_leaf(u) {
            let target = TruthSet::of(q, u).map_err(FragmentViolation::from)?;
            if avoid.is_empty() && target.shape == Shape::All {
                continue; // unrestricted, nothing to distinguish: 〈u/〉
            }
            let alpha = sample_distinct_member(&target, &avoid, u.0 as u64)
                .ok_or(FragmentViolation::SunflowerFails(u))?;
            out.insert(u, alpha);
        } else if !avoid.is_empty() {
            let alpha = sample_non_prefix(&avoid, u.0 as u64)
                .ok_or(FragmentViolation::PrefixSunflowerFails(u))?;
            out.insert(u, alpha);
        }
    }
    Ok(out)
}

/// Verifies the strong subsumption-freeness of `Q` (Def. 5.18) by
/// attempting the unique-value assignment: success witnesses both the
/// sunflower and prefix sunflower properties.
pub fn strongly_subsumption_free(q: &Query) -> Vec<FragmentViolation> {
    match unique_values(q) {
        Ok(_) => Vec::new(),
        Err(v) => vec![v],
    }
}

// ---------------------------------------------------------------------------
// Canonical query forms: the normalization behind the shared-prefix index.
// ---------------------------------------------------------------------------

/// One step of a query's canonical succession chain (root → `OUT(Q)`).
///
/// Two steps compare equal iff they are semantically interchangeable as
/// trie keys: same axis, same node test, and the same canonical predicate
/// rendering (conjuncts sorted and deduplicated, descendant axes spelled
/// uniformly, constant comparisons orientation-normalized).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CanonicalStep {
    /// `AXIS(u)` of the chain node.
    pub axis: Axis,
    /// `NTEST(u)` of the chain node.
    pub ntest: NodeTest,
    /// Canonical rendering of `PREDICATE(u)`, `None` for predicate-free
    /// steps (the ones a prefix trie may share across queries).
    pub predicate: Option<String>,
}

impl fmt::Display for CanonicalStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let axis = match self.axis {
            Axis::Child => "/",
            Axis::Descendant => "//",
            Axis::Attribute => "/@",
        };
        write!(f, "{axis}{}", self.ntest)?;
        if let Some(p) = &self.predicate {
            write!(f, "[{p}]")?;
        }
        Ok(())
    }
}

/// The canonical succession chain of `q`: one [`CanonicalStep`] per node
/// on the root-to-`OUT(Q)` path, in order. This is the form the
/// multi-query prefix trie indexes: queries whose leading canonical steps
/// agree share those trie nodes (and thus share per-event work).
pub fn canonical_steps(q: &Query) -> Vec<CanonicalStep> {
    let mut steps = Vec::new();
    let mut cur = q.root();
    while let Some(next) = q.successor(cur) {
        steps.push(CanonicalStep {
            axis: q.axis(next).unwrap_or(Axis::Child),
            ntest: q.ntest(next).cloned().unwrap_or(NodeTest::Wildcard),
            predicate: q.predicate(next).map(|p| canonical_expr(q, p)),
        });
        cur = next;
    }
    steps
}

/// A canonical textual key for the whole query: the concatenation of its
/// canonical steps. Two queries with equal keys are semantically
/// equivalent modulo the normalizations this module performs (commutative
/// reordering and duplication of conjuncts, descendant-axis spelling,
/// constant-comparison orientation), so an indexed bank may evaluate them
/// once and fan the result out.
pub fn canonical_key(q: &Query) -> String {
    canonical_steps(q)
        .iter()
        .map(CanonicalStep::to_string)
        .collect()
}

/// A canonical textual key for the query's **residual** below a prefix of
/// `skip` chain steps: the concatenation of the canonical steps from
/// position `skip` onward. Two queries with equal residual keys have
/// semantically interchangeable remainders below their (possibly
/// different) shared prefixes — so an indexed bank may compile that
/// remainder **once** and share the compiled form across trie groups,
/// even groups that diverge from entirely different prefixes. With
/// `skip = 0` this is exactly [`canonical_key`].
pub fn canonical_residual_key(q: &Query, skip: usize) -> String {
    canonical_steps(q)
        .iter()
        .skip(skip)
        .map(CanonicalStep::to_string)
        .collect()
}

/// The number of leading canonical steps of `q` a shared-prefix trie may
/// own: maximal run of predicate-free non-attribute steps, shortened by
/// one when the step that follows it is attribute-axis (an attribute
/// resolves from its *parent's* start tag, so the parent step must stay
/// with the per-query residual).
pub fn sharable_prefix_len(q: &Query) -> usize {
    let steps = canonical_steps(q);
    sharable_prefix_of(&steps)
}

/// [`sharable_prefix_len`] over an already-computed canonical chain.
pub fn sharable_prefix_of(steps: &[CanonicalStep]) -> usize {
    let mut k = 0;
    while k < steps.len() && steps[k].predicate.is_none() && steps[k].axis != Axis::Attribute {
        k += 1;
    }
    if k < steps.len() && steps[k].axis == Axis::Attribute {
        k = k.saturating_sub(1);
    }
    k
}

/// Everything the shared-prefix index needs to place one query, derived
/// in a single chain walk: the canonical steps, the whole-query grouping
/// key, and the sharable-prefix length. The incremental subscribe path
/// of `fx_core::IndexedBank` computes this once per subscription instead
/// of re-deriving the chain for each quantity
/// ([`canonical_key`] + [`canonical_steps`] + [`sharable_prefix_of`]
/// walk it three times).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonicalForm {
    /// The canonical succession chain ([`canonical_steps`]).
    pub steps: Vec<CanonicalStep>,
    /// The whole-query grouping key ([`canonical_key`]): queries with
    /// equal keys are semantically interchangeable and may share one
    /// evaluation.
    pub key: String,
    /// The sharable-prefix length ([`sharable_prefix_of`]): how many
    /// leading steps a prefix trie may own.
    pub sharable: usize,
}

impl CanonicalForm {
    /// Derives the full canonical form of `q` in one pass.
    pub fn of(q: &Query) -> CanonicalForm {
        let steps = canonical_steps(q);
        let sharable = sharable_prefix_of(&steps);
        let key = steps.iter().map(CanonicalStep::to_string).collect();
        CanonicalForm {
            steps,
            key,
            sharable,
        }
    }

    /// The canonical key of the residual below a prefix of `skip` steps
    /// — [`canonical_residual_key`] without re-deriving the chain. With
    /// `skip = 0` this equals [`CanonicalForm::key`].
    pub fn residual_key(&self, skip: usize) -> String {
        self.steps[skip..]
            .iter()
            .map(CanonicalStep::to_string)
            .collect()
    }
}

/// The number of leading *sharable* canonical steps `a` and `b` have in
/// common — the depth at which the two queries would share a trie path.
pub fn shared_prefix_depth(a: &Query, b: &Query) -> usize {
    let sa = canonical_steps(a);
    let sb = canonical_steps(b);
    let limit = sharable_prefix_of(&sa).min(sharable_prefix_of(&sb));
    sa.iter()
        .zip(sb.iter())
        .take(limit)
        .take_while(|(x, y)| x == y)
        .count()
}

/// Canonical rendering of a predicate expression. Not necessarily valid
/// XPath surface syntax — it is an unambiguous *key*: compound operands
/// are parenthesized, conjunctions and disjunctions are sorted and
/// deduplicated, relative descendant steps are spelled `//` exactly like
/// top-level ones, and `const op path` comparisons are flipped to
/// `path op' const`.
fn canonical_expr(q: &Query, e: &Expr) -> String {
    let conjuncts = e.conjuncts();
    if conjuncts.len() > 1 {
        let mut parts: Vec<String> = conjuncts.iter().map(|c| canonical_expr(q, c)).collect();
        parts.sort();
        parts.dedup();
        if parts.len() == 1 {
            return parts.pop().expect("non-empty");
        }
        return parts.join(" and ");
    }
    match e {
        Expr::Const(v) => canonical_value(v),
        Expr::Var(v) => canonical_rel_path(q, *v),
        Expr::Comp(op, a, b) => {
            // Orientation normalization: `5 < b` and `b > 5` are the same
            // atomic predicate; render the path side first.
            let (op, a, b) =
                if matches!(a.as_ref(), Expr::Const(_)) && !matches!(b.as_ref(), Expr::Const(_)) {
                    (flip(*op), b, a)
                } else {
                    (*op, a, b)
                };
            format!(
                "{} {op} {}",
                canonical_operand(q, a),
                canonical_operand(q, b)
            )
        }
        Expr::Arith(op, a, b) => format!(
            "({} {op} {})",
            canonical_operand(q, a),
            canonical_operand(q, b)
        ),
        Expr::Neg(a) => format!("(-{})", canonical_operand(q, a)),
        Expr::Or(..) => {
            let mut parts: Vec<String> =
                disjuncts(e).iter().map(|d| canonical_expr(q, d)).collect();
            parts.sort();
            parts.dedup();
            if parts.len() == 1 {
                parts.pop().expect("non-empty")
            } else {
                format!("({})", parts.join(" or "))
            }
        }
        Expr::Not(a) => format!("not({})", canonical_expr(q, a)),
        Expr::Call(f, args) => {
            let rendered: Vec<String> = args.iter().map(|a| canonical_expr(q, a)).collect();
            format!("{}({})", f.name(), rendered.join(", "))
        }
        Expr::And(..) => unreachable!("handled by the conjuncts branch"),
    }
}

/// Operands of comparisons/arithmetic: parenthesize anything compound so
/// the key stays unambiguous without precedence rules.
fn canonical_operand(q: &Query, e: &Expr) -> String {
    match e {
        Expr::Const(_) | Expr::Var(_) | Expr::Call(..) | Expr::Arith(..) | Expr::Neg(..) => {
            canonical_expr(q, e)
        }
        other => format!("({})", canonical_expr(q, other)),
    }
}

fn canonical_value(v: &Value) -> String {
    match v {
        Value::Number(n) => format_number(*n),
        Value::Str(s) => format!("{s:?}"),
        Value::Bool(b) => format!("{b}()"),
    }
}

/// The relative succession chain rooted at predicate child `first`, with
/// every descendant step spelled `//` — the normalization that makes the
/// predicate spelling `.//e` and a top-level `//e` step render alike.
fn canonical_rel_path(q: &Query, first: QueryNodeId) -> String {
    let mut out = String::new();
    let mut cur = first;
    let mut is_first = true;
    loop {
        let axis = match (q.axis(cur).unwrap_or(Axis::Child), is_first) {
            (Axis::Child, true) => "",
            (Axis::Child, false) => "/",
            (Axis::Descendant, _) => "//",
            (Axis::Attribute, true) => "@",
            (Axis::Attribute, false) => "/@",
        };
        out.push_str(axis);
        out.push_str(
            &q.ntest(cur)
                .cloned()
                .unwrap_or(NodeTest::Wildcard)
                .to_string(),
        );
        if let Some(p) = q.predicate(cur) {
            out.push('[');
            out.push_str(&canonical_expr(q, p));
            out.push(']');
        }
        is_first = false;
        match q.successor(cur) {
            Some(next) => cur = next,
            None => break,
        }
    }
    out
}

/// Top-level disjuncts of an `or` tree (the dual of [`Expr::conjuncts`]).
fn disjuncts(e: &Expr) -> Vec<&Expr> {
    match e {
        Expr::Or(a, b) => {
            let mut out = disjuncts(a);
            out.extend(disjuncts(b));
            out
        }
        other => vec![other],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fx_eval::{count_matchings, document_matches, verify_matching, MatchMode};
    use fx_xpath::parse_query;

    #[test]
    fn paper_canonical_document_for_fig3_query() {
        // §7.1 example: Q = /a[c[.//e and f] and b > 5] has canonical
        // document 〈a〉〈c〉〈Z〉〈e/〉〈/Z〉〈f/〉〈/c〉〈b〉6〈/b〉〈/a〉.
        let q = parse_query("/a[c[.//e and f] and b > 5]").unwrap();
        let cd = canonical_document(&q).unwrap();
        assert_eq!(cd.wildcard_chain, 0);
        assert_eq!(cd.aux_name, "Z");
        let xml = cd.doc.to_xml();
        // The b value may differ from the paper's 6, but the structure and
        // the "in (5,∞)" property must hold.
        assert!(xml.starts_with("<a><c><Z><e/></Z><f/></c><b>"), "{xml}");
        let b = q.predicate_children(q.successor(q.root()).unwrap())[1];
        let val = cd.values.get(&b).unwrap();
        assert!(val.parse::<f64>().unwrap() > 5.0);
    }

    #[test]
    fn canonical_document_matches_query() {
        // Lemma 6.11 across the paper's queries.
        for src in [
            "/a[c[.//e and f] and b > 5]",
            "//a[b and c]",
            "/a/b",
            "//d[f and a[b and c]]",
            "/a[b > 5]",
            "/a/*/b",
            "//a//b[c]//d",
            "/a[b = \"x\" and c]",
        ] {
            let q = parse_query(src).unwrap();
            let cd = canonical_document(&q).unwrap();
            assert!(document_matches(&q, &cd.doc).unwrap(), "{src}");
            assert!(
                verify_matching(&q, &cd.doc, &cd.canonical_matching(), MatchMode::Full).unwrap(),
                "canonical matching invalid for {src}"
            );
        }
    }

    #[test]
    fn canonical_matching_is_unique() {
        // Lemma 6.15 across redundancy-free queries (including ones with
        // structural subsumption, where the values do the disambiguation).
        for src in [
            "/a[c[.//e and f] and b > 5]",
            "//a[b and c]",
            "/a/b",
            "/a[*/b > 5 and c/b//d > 12 and .//d < 30]",
            "//d[f and a[b and c]]",
        ] {
            let q = parse_query(src).unwrap();
            let cd = canonical_document(&q).unwrap();
            assert_eq!(count_matchings(&q, &cd.doc, 10).unwrap(), 1, "{src}");
        }
    }

    #[test]
    fn canonical_example_from_6_4_1() {
        // Q = /a[*/b > 5 and c/b//d > 12 and .//d < 30] (Fig. 9).
        let q = parse_query("/a[*/b > 5 and c/b//d > 12 and .//d < 30]").unwrap();
        let cd = canonical_document(&q).unwrap();
        assert_eq!(cd.wildcard_chain, 1);
        let a = q.successor(q.root()).unwrap();
        let pc = q.predicate_children(a);
        let star = pc[0];
        let b1 = q.successor(star).unwrap();
        let c = pc[1];
        let b2 = q.successor(c).unwrap();
        let d1 = q.successor(b2).unwrap();
        let d2 = pc[2];
        // The wildcard's shadow carries the auxiliary name.
        assert_eq!(cd.doc.name(cd.shadow[&star]), "Z");
        // b1's value ∈ (5,∞); d1's ∈ (12,∞) \ (-∞,30) i.e. ≥ 30;
        // d2's ∈ (-∞,30).
        let vb1: f64 = cd.values[&b1].parse().unwrap();
        assert!(vb1 > 5.0);
        let vd1: f64 = cd.values[&d1].parse().unwrap();
        assert!(vd1 >= 30.0, "must lie in (12,inf) \\ (-inf,30)");
        let vd2: f64 = cd.values[&d2].parse().unwrap();
        assert!(vd2 < 30.0);
        // b2 is internal and dominates b1: it gets a non-numeric prefix
        // value ("hello" in the paper).
        let vb2 = &cd.values[&b2];
        assert!(vb2.parse::<f64>().is_err());
        // Descendant-axis nodes sit below h+1 = 2 artificial nodes.
        let d1_shadow = cd.shadow[&d1];
        let parent = cd.doc.parent(d1_shadow).unwrap();
        let grand = cd.doc.parent(parent).unwrap();
        assert!(cd.artificial.contains(&parent));
        assert!(cd.artificial.contains(&grand));
        assert_eq!(cd.doc.name(parent), "Z");
        // The whole thing matches uniquely.
        assert_eq!(count_matchings(&q, &cd.doc, 10).unwrap(), 1);
    }

    #[test]
    fn proposition_6_16_no_descendant_shadow_matches() {
        // No descendant of SHADOW(u) has a matching with u.
        let q = parse_query("//d[f and a[b and c]]").unwrap();
        let cd = canonical_document(&q).unwrap();
        let mut matcher = fx_eval::Matcher::new(&q, &cd.doc, MatchMode::Full);
        for u in q.all_nodes() {
            if u == q.root() {
                continue;
            }
            let su = cd.shadow[&u];
            for y in cd.doc.descendants(su).skip(1) {
                assert!(
                    !matcher.can_match(u, y).unwrap(),
                    "descendant {y} of shadow of {u} matches it"
                );
            }
        }
    }

    #[test]
    fn ends_with_query_is_not_strongly_subsumption_free() {
        // §5.5's counterexample: /a[b[c = "A"] and ends-with(b, "B")].
        let q = parse_query("/a[b[c = \"A\"] and ends-with(b, \"B\")]").unwrap();
        let violations = strongly_subsumption_free(&q);
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, FragmentViolation::PrefixSunflowerFails(_))),
            "{violations:?}"
        );
    }

    #[test]
    fn subset_predicates_fail_sunflower() {
        // /a[b > 5 and b > 6]: the b>5 node subsumes nothing? ψ(b>6 node)
        // = b>5 node: both named b, same structure → each structurally
        // subsumes the other. TRUTH(b>6) ⊂ TRUTH(b>5) so the b>5 leaf has
        // no value outside TRUTH(b>6)… wait: b>5's witness must avoid
        // TRUTH(b>6): e.g. 5.5 works. But b>6's witness must avoid
        // TRUTH(b>5) — impossible. Sunflower fails (the paper's canonical
        // "redundant" query).
        let q = parse_query("/a[b > 5 and b > 6]").unwrap();
        let violations = strongly_subsumption_free(&q);
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, FragmentViolation::SunflowerFails(_))),
            "{violations:?}"
        );
    }

    #[test]
    fn structurally_canonical_has_no_text() {
        let q = parse_query("/a[c[.//e and f] and b > 5]").unwrap();
        let cd = structurally_canonical_document(&q);
        assert!(cd
            .doc
            .all_nodes()
            .all(|n| cd.doc.kind(n) != fx_dom::NodeKind::Text));
        assert_eq!(cd.doc.to_xml(), "<a><c><Z><e/></Z><f/></c><b/></a>");
    }

    #[test]
    fn aux_name_avoids_query_names() {
        let q = parse_query("/Z/Z0[Z1]").unwrap();
        assert_eq!(auxiliary_name(&q), "Z2");
    }

    #[test]
    fn attribute_nodes_become_attributes() {
        let q = parse_query("/a[@id = 7]/b").unwrap();
        let cd = canonical_document(&q).unwrap();
        let a = q.successor(q.root()).unwrap();
        let id = q.predicate_children(a)[0];
        assert_eq!(cd.doc.kind(cd.shadow[&id]), fx_dom::NodeKind::Attribute);
        assert!(document_matches(&q, &cd.doc).unwrap());
    }

    // -- canonical query forms (the shared-prefix index's trie keys) -----

    fn key(src: &str) -> String {
        canonical_key(&parse_query(src).unwrap())
    }

    #[test]
    fn commutative_predicates_reorder_to_one_form() {
        // Conjunction is commutative: both spellings must land on the
        // same trie path.
        assert_eq!(key("/a[b and c]/d"), key("/a[c and b]/d"));
        assert_eq!(
            key("//item[price > 300 and shipping]/name"),
            key("//item[shipping and price > 300]/name")
        );
        // Nested predicates normalize recursively.
        assert_eq!(key("/a[b[e and f] and c]"), key("/a[c and b[f and e]]"));
        // Duplicate conjuncts collapse (existential semantics).
        assert_eq!(key("/a[b and b]"), key("/a[b]"));
        // Different predicates stay different.
        assert_ne!(key("/a[b and c]"), key("/a[b and d]"));
        assert_ne!(key("/a[b > 5]"), key("/a[b > 6]"));
    }

    #[test]
    fn descendant_axes_normalize_across_spellings() {
        // The predicate spelling `.//e` and a top-level `//e` step both
        // denote the descendant axis; the canonical form spells both
        // `//`, so a predicate subchain and a top-level chain with the
        // same semantics render alike.
        let pred = parse_query("/a[.//e]").unwrap();
        let steps = canonical_steps(&pred);
        assert_eq!(steps.len(), 1);
        assert_eq!(steps[0].predicate.as_deref(), Some("//e"));
        let top = parse_query("//e").unwrap();
        assert_eq!(canonical_key(&top), "//e");
        // And the chain steps themselves are spelling-independent keys:
        // parsing and re-rendering is idempotent.
        for src in ["//a//b[c]//d", "/a[.//e and f]/b", "/a/*/b"] {
            let q = parse_query(src).unwrap();
            let rendered = fx_xpath::to_xpath(&q);
            assert_eq!(
                canonical_key(&q),
                canonical_key(&parse_query(&rendered).unwrap()),
                "{src}"
            );
        }
    }

    #[test]
    fn flipped_constant_comparisons_normalize() {
        assert_eq!(key("/a[5 < b]"), key("/a[b > 5]"));
        assert_eq!(key("/a[7 >= b]"), key("/a[b <= 7]"));
        assert_eq!(key("/a[3 = b]"), key("/a[b = 3]"));
        assert_ne!(key("/a[b > 5]"), key("/a[b < 5]"));
    }

    #[test]
    fn sharable_prefix_respects_predicates_and_attributes() {
        // Predicate-free leading steps are sharable…
        assert_eq!(sharable_prefix_len(&parse_query("/a/b/c").unwrap()), 3);
        assert_eq!(sharable_prefix_len(&parse_query("/a/b[c]/d").unwrap()), 1);
        assert_eq!(sharable_prefix_len(&parse_query("/a/b/c[x]/d").unwrap()), 2);
        // …a predicate on the first step shares nothing…
        assert_eq!(sharable_prefix_len(&parse_query("/a[x]/b").unwrap()), 0);
        // …and an attribute step pins its parent to the residual (the
        // attribute resolves from the parent's start tag).
        assert_eq!(sharable_prefix_len(&parse_query("/a/b/@id").unwrap()), 1);
        assert_eq!(sharable_prefix_len(&parse_query("/a/@id").unwrap()), 0);
    }

    #[test]
    fn residual_keys_dedupe_across_prefixes() {
        // Canonically-equal remainders below *different* prefixes render
        // to one key — the shared-residual pool's dedup criterion.
        let a = parse_query("/hub/asia/item[price > 5]/name").unwrap();
        let b = parse_query("/hub/europe/item[5 < price]/name").unwrap();
        let ka = canonical_residual_key(&a, sharable_prefix_len(&a));
        let kb = canonical_residual_key(&b, sharable_prefix_len(&b));
        assert_eq!(ka, kb, "{ka} vs {kb}");
        assert_eq!(ka, "/item[price > 5]/name");
        // Different remainders stay apart even under equal prefixes.
        let c = parse_query("/hub/asia/item[price > 6]/name").unwrap();
        assert_ne!(ka, canonical_residual_key(&c, sharable_prefix_len(&c)));
        // skip = 0 degenerates to the full canonical key, so a
        // document-rooted remainder can share with a trie remainder.
        let root = parse_query("//t[u]").unwrap();
        assert_eq!(canonical_residual_key(&root, 0), canonical_key(&root));
        let nested = parse_query("/hub//t[u]").unwrap();
        assert_eq!(
            canonical_residual_key(&nested, sharable_prefix_len(&nested)),
            canonical_residual_key(&root, 0)
        );
        // Past-the-end skips are empty, not a panic.
        assert_eq!(canonical_residual_key(&root, 99), "");
    }

    #[test]
    fn shared_prefix_depth_between_family_members() {
        let a = parse_query("/site/regions/asia/item[price > 5]").unwrap();
        let b = parse_query("/site/regions/asia/item[shipping]").unwrap();
        let c = parse_query("/site/regions/europe/item").unwrap();
        assert_eq!(shared_prefix_depth(&a, &b), 3);
        assert_eq!(shared_prefix_depth(&a, &c), 2);
        assert_eq!(shared_prefix_depth(&a, &parse_query("//x").unwrap()), 0);
    }
}
