//! Canonical documents (§6.4): for every redundancy-free query `Q`, a
//! document `D_c` that (a) matches `Q` via the *canonical matching*
//! `φ_c(u) = SHADOW(u)` (Lemma 6.11), and (b) admits **no other** matching
//! (Lemma 6.15). All three lower-bound constructions build on `D_c`.
//!
//! The construction follows Fig. 8: node tests become names (wildcards get
//! an auxiliary name), descendant-axis nodes are pushed `h+1` artificial
//! nodes deeper (where `h` is the longest wildcard chain), and shadow nodes
//! receive text values that belong "uniquely" to their truth sets.

use crate::automorphism::dominated_leaves;
use crate::fragment::FragmentViolation;
use crate::truthset::{sample_distinct_member, sample_non_prefix, Shape, TruthSet};
use fx_dom::{Document, NodeId, NodeKind};
use fx_xpath::{Axis, NodeTest, Query, QueryNodeId};
use std::collections::{HashMap, HashSet};

/// A canonical document together with its shadow map and metadata.
#[derive(Debug, Clone)]
pub struct CanonicalDocument {
    /// The document `D_c`.
    pub doc: Document,
    /// `SHADOW: Q → D_c` (injective).
    pub shadow: HashMap<QueryNodeId, NodeId>,
    /// The artificial nodes (the chains inserted below descendant axes).
    pub artificial: HashSet<NodeId>,
    /// The auxiliary name used for artificial nodes and wildcard shadows.
    pub aux_name: String,
    /// `h`: the longest wildcard chain of the query.
    pub wildcard_chain: usize,
    /// The unique values assigned to shadow nodes (absent when the node
    /// needs no value).
    pub values: HashMap<QueryNodeId, String>,
}

impl CanonicalDocument {
    /// The inverse shadow map: which query node (if any) a document node
    /// shadows.
    pub fn shadow_inverse(&self) -> HashMap<NodeId, QueryNodeId> {
        self.shadow.iter().map(|(&u, &x)| (x, u)).collect()
    }

    /// The canonical matching `φ_c` (Lemma 6.11) in `fx-eval` form.
    pub fn canonical_matching(&self) -> fx_eval::Matching {
        self.shadow.clone()
    }
}

/// Returns a name from `N` that does not occur as a node test in `Q`
/// (the `getAuxiliaryName` of Fig. 8).
pub fn auxiliary_name(q: &Query) -> String {
    let used: HashSet<&str> = q
        .all_nodes()
        .filter_map(|u| match q.ntest(u) {
            Some(NodeTest::Name(n)) => Some(n.as_str()),
            _ => None,
        })
        .collect();
    if !used.contains("Z") {
        return "Z".to_string();
    }
    (0..)
        .map(|i| format!("Z{i}"))
        .find(|n| !used.contains(n.as_str()))
        .expect("names are unbounded")
}

/// Builds the canonical document of a redundancy-free query (Fig. 8).
/// Fails with a sunflower/prefix-sunflower violation when no unique value
/// exists for some node — exactly the condition under which the query is
/// not strongly subsumption-free (Def. 5.18).
pub fn canonical_document(q: &Query) -> Result<CanonicalDocument, FragmentViolation> {
    build(q, true)
}

/// The "structurally canonical" variant (§6.4.1): same tree, no text
/// values. Used for structural-matching arguments (Lemma 6.9's proof).
pub fn structurally_canonical_document(q: &Query) -> CanonicalDocument {
    build(q, false).expect("structural construction cannot fail")
}

fn build(q: &Query, with_values: bool) -> Result<CanonicalDocument, FragmentViolation> {
    let aux = auxiliary_name(q);
    let h = q.longest_wildcard_chain();
    let values = if with_values {
        unique_values(q)?
    } else {
        HashMap::new()
    };

    let mut doc = Document::empty();
    let mut shadow = HashMap::new();
    let mut artificial = HashSet::new();
    shadow.insert(q.root(), doc.root());

    let mut stack: Vec<(QueryNodeId, NodeId)> = vec![(q.root(), doc.root())];
    // Depth-first construction in the query's child order (mirrors the
    // recursion of processNode in Fig. 8).
    while let Some((u, parent_doc)) = stack.pop() {
        for child in q.children(u).to_vec() {
            let mut attach = parent_doc;
            if q.axis(child) == Some(Axis::Descendant) {
                for _ in 0..=h {
                    attach = doc.push_node(attach, NodeKind::Element, aux.clone(), "");
                    artificial.insert(attach);
                }
            }
            let name = match q.ntest(child) {
                Some(NodeTest::Name(n)) => n.clone(),
                Some(NodeTest::Wildcard) => aux.clone(),
                None => unreachable!("children have node tests"),
            };
            let node = if q.axis(child) == Some(Axis::Attribute) {
                let content = values.get(&child).cloned().unwrap_or_default();
                doc.push_node(attach, NodeKind::Attribute, name, content)
            } else {
                let elem = doc.push_node(attach, NodeKind::Element, name, "");
                if let Some(v) = values.get(&child) {
                    doc.push_node(elem, NodeKind::Text, "", v.clone());
                }
                elem
            };
            shadow.insert(child, node);
            stack.push((child, node));
        }
    }
    Ok(CanonicalDocument {
        doc,
        shadow,
        artificial,
        aux_name: aux,
        wildcard_chain: h,
        values,
    })
}

/// Computes `getUniqueValue` for every node that needs one (Fig. 8 line
/// 10, refined per §6.4.1): a leaf `u` receives `α ∈ TRUTH(u)` outside the
/// dominated leaves' truth sets; an internal `u` with a non-empty dominated
/// leaf set receives `α` that is not a prefix of any dominated value.
/// Unrestricted leaves with nothing to distinguish stay empty (matching
/// the paper's example documents, e.g. `〈e/〉`).
pub fn unique_values(q: &Query) -> Result<HashMap<QueryNodeId, String>, FragmentViolation> {
    let mut out = HashMap::new();
    for u in q.all_nodes() {
        if u == q.root() {
            continue;
        }
        let leaves = dominated_leaves(q, u);
        let avoid: Vec<TruthSet> = leaves
            .iter()
            .map(|&v| TruthSet::of(q, v))
            .collect::<Result<_, _>>()
            .map_err(FragmentViolation::from)?;
        if q.is_leaf(u) {
            let target = TruthSet::of(q, u).map_err(FragmentViolation::from)?;
            if avoid.is_empty() && target.shape == Shape::All {
                continue; // unrestricted, nothing to distinguish: 〈u/〉
            }
            let alpha = sample_distinct_member(&target, &avoid, u.0 as u64)
                .ok_or(FragmentViolation::SunflowerFails(u))?;
            out.insert(u, alpha);
        } else if !avoid.is_empty() {
            let alpha = sample_non_prefix(&avoid, u.0 as u64)
                .ok_or(FragmentViolation::PrefixSunflowerFails(u))?;
            out.insert(u, alpha);
        }
    }
    Ok(out)
}

/// Verifies the strong subsumption-freeness of `Q` (Def. 5.18) by
/// attempting the unique-value assignment: success witnesses both the
/// sunflower and prefix sunflower properties.
pub fn strongly_subsumption_free(q: &Query) -> Vec<FragmentViolation> {
    match unique_values(q) {
        Ok(_) => Vec::new(),
        Err(v) => vec![v],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fx_eval::{count_matchings, document_matches, verify_matching, MatchMode};
    use fx_xpath::parse_query;

    #[test]
    fn paper_canonical_document_for_fig3_query() {
        // §7.1 example: Q = /a[c[.//e and f] and b > 5] has canonical
        // document 〈a〉〈c〉〈Z〉〈e/〉〈/Z〉〈f/〉〈/c〉〈b〉6〈/b〉〈/a〉.
        let q = parse_query("/a[c[.//e and f] and b > 5]").unwrap();
        let cd = canonical_document(&q).unwrap();
        assert_eq!(cd.wildcard_chain, 0);
        assert_eq!(cd.aux_name, "Z");
        let xml = cd.doc.to_xml();
        // The b value may differ from the paper's 6, but the structure and
        // the "in (5,∞)" property must hold.
        assert!(xml.starts_with("<a><c><Z><e/></Z><f/></c><b>"), "{xml}");
        let b = q.predicate_children(q.successor(q.root()).unwrap())[1];
        let val = cd.values.get(&b).unwrap();
        assert!(val.parse::<f64>().unwrap() > 5.0);
    }

    #[test]
    fn canonical_document_matches_query() {
        // Lemma 6.11 across the paper's queries.
        for src in [
            "/a[c[.//e and f] and b > 5]",
            "//a[b and c]",
            "/a/b",
            "//d[f and a[b and c]]",
            "/a[b > 5]",
            "/a/*/b",
            "//a//b[c]//d",
            "/a[b = \"x\" and c]",
        ] {
            let q = parse_query(src).unwrap();
            let cd = canonical_document(&q).unwrap();
            assert!(document_matches(&q, &cd.doc).unwrap(), "{src}");
            assert!(
                verify_matching(&q, &cd.doc, &cd.canonical_matching(), MatchMode::Full).unwrap(),
                "canonical matching invalid for {src}"
            );
        }
    }

    #[test]
    fn canonical_matching_is_unique() {
        // Lemma 6.15 across redundancy-free queries (including ones with
        // structural subsumption, where the values do the disambiguation).
        for src in [
            "/a[c[.//e and f] and b > 5]",
            "//a[b and c]",
            "/a/b",
            "/a[*/b > 5 and c/b//d > 12 and .//d < 30]",
            "//d[f and a[b and c]]",
        ] {
            let q = parse_query(src).unwrap();
            let cd = canonical_document(&q).unwrap();
            assert_eq!(count_matchings(&q, &cd.doc, 10).unwrap(), 1, "{src}");
        }
    }

    #[test]
    fn canonical_example_from_6_4_1() {
        // Q = /a[*/b > 5 and c/b//d > 12 and .//d < 30] (Fig. 9).
        let q = parse_query("/a[*/b > 5 and c/b//d > 12 and .//d < 30]").unwrap();
        let cd = canonical_document(&q).unwrap();
        assert_eq!(cd.wildcard_chain, 1);
        let a = q.successor(q.root()).unwrap();
        let pc = q.predicate_children(a);
        let star = pc[0];
        let b1 = q.successor(star).unwrap();
        let c = pc[1];
        let b2 = q.successor(c).unwrap();
        let d1 = q.successor(b2).unwrap();
        let d2 = pc[2];
        // The wildcard's shadow carries the auxiliary name.
        assert_eq!(cd.doc.name(cd.shadow[&star]), "Z");
        // b1's value ∈ (5,∞); d1's ∈ (12,∞) \ (-∞,30) i.e. ≥ 30;
        // d2's ∈ (-∞,30).
        let vb1: f64 = cd.values[&b1].parse().unwrap();
        assert!(vb1 > 5.0);
        let vd1: f64 = cd.values[&d1].parse().unwrap();
        assert!(vd1 >= 30.0, "must lie in (12,inf) \\ (-inf,30)");
        let vd2: f64 = cd.values[&d2].parse().unwrap();
        assert!(vd2 < 30.0);
        // b2 is internal and dominates b1: it gets a non-numeric prefix
        // value ("hello" in the paper).
        let vb2 = &cd.values[&b2];
        assert!(vb2.parse::<f64>().is_err());
        // Descendant-axis nodes sit below h+1 = 2 artificial nodes.
        let d1_shadow = cd.shadow[&d1];
        let parent = cd.doc.parent(d1_shadow).unwrap();
        let grand = cd.doc.parent(parent).unwrap();
        assert!(cd.artificial.contains(&parent));
        assert!(cd.artificial.contains(&grand));
        assert_eq!(cd.doc.name(parent), "Z");
        // The whole thing matches uniquely.
        assert_eq!(count_matchings(&q, &cd.doc, 10).unwrap(), 1);
    }

    #[test]
    fn proposition_6_16_no_descendant_shadow_matches() {
        // No descendant of SHADOW(u) has a matching with u.
        let q = parse_query("//d[f and a[b and c]]").unwrap();
        let cd = canonical_document(&q).unwrap();
        let mut matcher = fx_eval::Matcher::new(&q, &cd.doc, MatchMode::Full);
        for u in q.all_nodes() {
            if u == q.root() {
                continue;
            }
            let su = cd.shadow[&u];
            for y in cd.doc.descendants(su).skip(1) {
                assert!(
                    !matcher.can_match(u, y).unwrap(),
                    "descendant {y} of shadow of {u} matches it"
                );
            }
        }
    }

    #[test]
    fn ends_with_query_is_not_strongly_subsumption_free() {
        // §5.5's counterexample: /a[b[c = "A"] and ends-with(b, "B")].
        let q = parse_query("/a[b[c = \"A\"] and ends-with(b, \"B\")]").unwrap();
        let violations = strongly_subsumption_free(&q);
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, FragmentViolation::PrefixSunflowerFails(_))),
            "{violations:?}"
        );
    }

    #[test]
    fn subset_predicates_fail_sunflower() {
        // /a[b > 5 and b > 6]: the b>5 node subsumes nothing? ψ(b>6 node)
        // = b>5 node: both named b, same structure → each structurally
        // subsumes the other. TRUTH(b>6) ⊂ TRUTH(b>5) so the b>5 leaf has
        // no value outside TRUTH(b>6)… wait: b>5's witness must avoid
        // TRUTH(b>6): e.g. 5.5 works. But b>6's witness must avoid
        // TRUTH(b>5) — impossible. Sunflower fails (the paper's canonical
        // "redundant" query).
        let q = parse_query("/a[b > 5 and b > 6]").unwrap();
        let violations = strongly_subsumption_free(&q);
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, FragmentViolation::SunflowerFails(_))),
            "{violations:?}"
        );
    }

    #[test]
    fn structurally_canonical_has_no_text() {
        let q = parse_query("/a[c[.//e and f] and b > 5]").unwrap();
        let cd = structurally_canonical_document(&q);
        assert!(cd
            .doc
            .all_nodes()
            .all(|n| cd.doc.kind(n) != fx_dom::NodeKind::Text));
        assert_eq!(cd.doc.to_xml(), "<a><c><Z><e/></Z><f/></c><b/></a>");
    }

    #[test]
    fn aux_name_avoids_query_names() {
        let q = parse_query("/Z/Z0[Z1]").unwrap();
        assert_eq!(auxiliary_name(&q), "Z2");
    }

    #[test]
    fn attribute_nodes_become_attributes() {
        let q = parse_query("/a[@id = 7]/b").unwrap();
        let cd = canonical_document(&q).unwrap();
        let a = q.successor(q.root()).unwrap();
        let id = q.predicate_children(a)[0];
        assert_eq!(cd.doc.kind(cd.shadow[&id]), fx_dom::NodeKind::Attribute);
        assert!(document_matches(&q, &cd.doc).unwrap());
    }
}
