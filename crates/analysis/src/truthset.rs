//! Symbolic truth sets (Definition 5.6) with the two sampling operations
//! the canonical-document construction needs (§6.4.1):
//!
//! 1. `getUniqueValue` for a **leaf** `u`: a value `α ∈ TRUTH(u)` outside
//!    `TRUTH(v)` for every dominated leaf `v ∈ L_u` — exists iff the
//!    sunflower property (Def. 5.16) holds at `u`;
//! 2. `getUniqueValue` for an **internal** `u`: a value `α` that is not a
//!    *prefix* of any value in `⋃_{v∈L_u} TRUTH(v)` — exists iff the prefix
//!    sunflower property (Def. 5.17) holds at `u`.
//!
//! Membership is always decided exactly (by substituting into the atomic
//! predicate). Prefix-extendability is decided symbolically for the
//! recognized predicate shapes and conservatively (`Unknown`) otherwise.

use fx_eval::truth::{constraining_predicate, TruthError};
use fx_xpath::value::{format_number, Value};
use fx_xpath::{ops, CompOp, Expr, Func, Query, QueryNodeId};

/// A truth set, carrying both a symbolic shape (when recognized) and the
/// exact membership oracle.
#[derive(Debug, Clone)]
pub struct TruthSet {
    /// The variable node the predicate constrains (None = unconstrained).
    pub source: Option<(QueryNodeId, Expr)>,
    /// The recognized shape, for symbolic reasoning.
    pub shape: Shape,
}

/// Recognized predicate shapes.
#[derive(Debug, Clone, PartialEq)]
pub enum Shape {
    /// `TRUTH = S` (no constraint).
    All,
    /// `{x : num(x) op c}`.
    NumCmp(CompOp, f64),
    /// `{x : x op "s"}` as strings (`=` / `!=`).
    StrEq(bool, String),
    /// `starts-with(x, p)`.
    StartsWith(String),
    /// `ends-with(x, s)`.
    EndsWith(String),
    /// `contains(x, s)`.
    Contains(String),
    /// `matches(x, re)` with the raw pattern.
    Matches(String),
    /// Anything else: membership oracle only.
    Opaque,
}

/// Three-valued answer for symbolic questions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tri {
    /// Definitely yes.
    Yes,
    /// Definitely no.
    No,
    /// Cannot be determined symbolically.
    Unknown,
}

impl TruthSet {
    /// Builds the truth set of node `u` (Def. 5.6).
    pub fn of(q: &Query, u: QueryNodeId) -> Result<TruthSet, TruthError> {
        match constraining_predicate(q, u)? {
            None => Ok(TruthSet {
                source: None,
                shape: Shape::All,
            }),
            Some((var, pred)) => {
                let shape = recognize(&pred, var);
                Ok(TruthSet {
                    source: Some((var, pred)),
                    shape,
                })
            }
        }
    }

    /// Exact membership: `value ∈ TRUTH`.
    pub fn contains(&self, value: &str) -> bool {
        match &self.source {
            None => true,
            Some((var, pred)) => ops::eval_with_binding(pred, *var, value).unwrap_or(false),
        }
    }

    /// Is `alpha` a prefix of some member of the set? (`PREFIX(TRUTH)`
    /// membership, Def. 5.17.) `Unknown` for opaque shapes.
    pub fn extends_to_member(&self, alpha: &str) -> Tri {
        match &self.shape {
            Shape::All => Tri::Yes,
            Shape::EndsWith(_) | Shape::Contains(_) => Tri::Yes, // α ◦ s ∈ T
            Shape::StrEq(true, s) => {
                if s.starts_with(alpha) {
                    Tri::Yes
                } else {
                    Tri::No
                }
            }
            Shape::StrEq(false, _) => Tri::Yes, // α ◦ junk ≠ s for long junk
            Shape::StartsWith(p) => {
                // Members are p ◦ anything: α extends to one iff α ≤ p or
                // p ≤ α.
                if p.starts_with(alpha) || alpha.starts_with(p.as_str()) {
                    Tri::Yes
                } else {
                    Tri::No
                }
            }
            Shape::NumCmp(op, c) => num_prefix_extendable(alpha, *op, *c),
            Shape::Matches(_) | Shape::Opaque => {
                // Check a few canonical extensions; any hit is a Yes, and
                // absence is Unknown (conservative).
                let probes = ["", "0", "1", "a", "z", "99999", "aaaa"];
                for p in probes {
                    let cand = format!("{alpha}{p}");
                    if self.contains(&cand) {
                        return Tri::Yes;
                    }
                }
                Tri::Unknown
            }
        }
    }

    /// Candidate values to try when sampling a member (derived from the
    /// shape's constants).
    fn member_candidates(&self) -> Vec<String> {
        match &self.shape {
            Shape::All | Shape::Opaque => vec!["v".into(), "1".into(), "".into()],
            Shape::NumCmp(op, c) => {
                let mut v = vec![
                    *c,
                    c + 1.0,
                    c - 1.0,
                    c + 0.5,
                    c - 0.5,
                    c * 2.0,
                    0.0,
                    c + 1000.0,
                    c - 1000.0,
                ];
                if matches!(op, CompOp::Ne) {
                    v.push(c + 7.0);
                }
                v.into_iter().map(format_number).collect()
            }
            Shape::StrEq(_, s) => vec![s.clone(), format!("{s}x"), format!("x{s}"), "q".into()],
            Shape::StartsWith(p) => vec![p.clone(), format!("{p}x"), format!("{p}qq")],
            Shape::EndsWith(s) => vec![s.clone(), format!("x{s}"), format!("qq{s}")],
            Shape::Contains(s) => vec![s.clone(), format!("x{s}x")],
            Shape::Matches(_) => vec![],
        }
    }
}

fn num_prefix_extendable(alpha: &str, op: CompOp, c: f64) -> Tri {
    // Members of {x : num(x) op c} are strings parsing to suitable numbers.
    // If alpha cannot be extended to any parseable f64, the answer is No.
    let t = alpha.trim_start();
    let numeric_prefix = t.is_empty()
        || t.chars().enumerate().all(|(i, ch)| {
            ch.is_ascii_digit()
                || ch == '.'
                || ((ch == '-' || ch == '+') && i == 0)
                || matches!(ch, 'e' | 'E' | 'i' | 'n' | 'f' | 'a' | 'N' | 'I')
        });
    if !numeric_prefix {
        return Tri::No;
    }
    // Digit-only prefixes extend to arbitrarily large/precise numbers, so
    // any non-equality comparison is satisfiable; for = c it depends on c's
    // rendering. Be precise where easy, conservative otherwise.
    match op {
        CompOp::Eq => {
            let s = format_number(c);
            if s.starts_with(alpha.trim()) || alpha.trim().is_empty() {
                Tri::Yes
            } else {
                // Could still extend via exotic spellings ("6.0", "06").
                Tri::Unknown
            }
        }
        _ => Tri::Yes,
    }
}

/// Recognizes the symbolic shape of an atomic univariate predicate over
/// `var`.
fn recognize(pred: &Expr, var: QueryNodeId) -> Shape {
    match pred {
        Expr::Comp(op, a, b) => match (a.as_ref(), b.as_ref()) {
            (Expr::Var(v), Expr::Const(c)) if *v == var => num_or_str(*op, c),
            (Expr::Const(c), Expr::Var(v)) if *v == var => num_or_str(flip(*op), c),
            (Expr::Var(v), Expr::Neg(inner)) if *v == var => {
                if let Expr::Const(Value::Number(n)) = inner.as_ref() {
                    Shape::NumCmp(*op, -n)
                } else {
                    Shape::Opaque
                }
            }
            _ => Shape::Opaque,
        },
        Expr::Call(f, args) => match (f, args.as_slice()) {
            (Func::StartsWith, [Expr::Var(v), Expr::Const(Value::Str(s))]) if *v == var => {
                Shape::StartsWith(s.clone())
            }
            (Func::EndsWith, [Expr::Var(v), Expr::Const(Value::Str(s))]) if *v == var => {
                Shape::EndsWith(s.clone())
            }
            (Func::Contains, [Expr::Var(v), Expr::Const(Value::Str(s))]) if *v == var => {
                Shape::Contains(s.clone())
            }
            (Func::Matches, [Expr::Var(v), Expr::Const(Value::Str(s))]) if *v == var => {
                Shape::Matches(s.clone())
            }
            _ => Shape::Opaque,
        },
        _ => Shape::Opaque,
    }
}

fn num_or_str(op: CompOp, c: &Value) -> Shape {
    match c {
        Value::Number(n) => Shape::NumCmp(op, *n),
        Value::Str(s) => {
            if op.is_ordering() {
                // Ordering comparisons are numeric; a string constant still
                // yields a numeric comparison after conversion.
                let n = fx_xpath::value::parse_number(s);
                if n.is_nan() {
                    Shape::Opaque
                } else {
                    Shape::NumCmp(op, n)
                }
            } else {
                match op {
                    CompOp::Eq => Shape::StrEq(true, s.clone()),
                    CompOp::Ne => Shape::StrEq(false, s.clone()),
                    _ => Shape::Opaque,
                }
            }
        }
        Value::Bool(_) => Shape::Opaque,
    }
}

/// Mirrors a comparison across its operands: `a op b` ⟺ `b flip(op) a`.
/// Shared with the canonical-query renderer, which uses it to orient
/// `const op path` comparisons path-first.
pub(crate) fn flip(op: CompOp) -> CompOp {
    match op {
        CompOp::Eq => CompOp::Eq,
        CompOp::Ne => CompOp::Ne,
        CompOp::Lt => CompOp::Gt,
        CompOp::Le => CompOp::Ge,
        CompOp::Gt => CompOp::Lt,
        CompOp::Ge => CompOp::Le,
    }
}

/// Samples a value in `target` that is in none of `avoid` — the
/// `getUniqueValue` of Fig. 8 for leaf nodes, and simultaneously a witness
/// for the sunflower property (Def. 5.16). `salt` diversifies generated
/// candidates (distinct nodes get distinct fallbacks).
pub fn sample_distinct_member(target: &TruthSet, avoid: &[TruthSet], salt: u64) -> Option<String> {
    let mut candidates = target.member_candidates();
    // Generic fallbacks unlikely to collide with constants.
    candidates.push(format!("uq{salt}"));
    candidates.push(format!("uq{salt}qq"));
    candidates.push(format!("{}", 7001 + salt * 13));
    candidates.push(format!("-{}", 9001 + salt * 17));
    candidates.push(format!("0.{}", 100 + salt));
    // Also probe near every numeric constant of the avoid sets (boundary
    // values often separate overlapping intervals).
    for av in avoid {
        if let Shape::NumCmp(_, c) = av.shape {
            for delta in [-2.0, -1.0, -0.5, 0.5, 1.0, 2.0] {
                candidates.push(format_number(c + delta));
            }
        }
        if let Shape::StrEq(true, s) = &av.shape {
            candidates.push(format!("{s}zz"));
        }
    }
    candidates
        .into_iter()
        .find(|cand| target.contains(cand) && avoid.iter().all(|av| !av.contains(cand)))
}

/// Samples a value that is **not a prefix** of any member of any `avoid`
/// set — the `getUniqueValue` of Fig. 8 for internal nodes, and a witness
/// for the prefix sunflower property (Def. 5.17). Returns `None` when no
/// candidate can be *proved* safe (conservative).
pub fn sample_non_prefix(avoid: &[TruthSet], salt: u64) -> Option<String> {
    // Letters break numeric parses; 'q'/'z' rarely occur in constants. Try
    // several in case a string constant contains one of them.
    let candidates = [
        format!("zq{salt}zq"),
        format!("qz{salt}xw"),
        format!("wy{salt}yw"),
        format!("kj{salt}jk"),
    ];
    candidates
        .into_iter()
        .find(|cand| avoid.iter().all(|av| av.extends_to_member(cand) == Tri::No))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fx_xpath::parse_query;

    fn truth_of(qs: &str, pick: impl Fn(&Query) -> QueryNodeId) -> TruthSet {
        let q = parse_query(qs).unwrap();
        let u = pick(&q);
        TruthSet::of(&q, u).unwrap()
    }

    fn first_pred_child(q: &Query) -> QueryNodeId {
        let a = q.successor(q.root()).unwrap();
        q.predicate_children(a)[0]
    }

    #[test]
    fn recognizes_numeric_comparison() {
        let t = truth_of("/a[b > 5]", first_pred_child);
        assert_eq!(t.shape, Shape::NumCmp(CompOp::Gt, 5.0));
        assert!(t.contains("6"));
        assert!(!t.contains("5"));
    }

    #[test]
    fn recognizes_flipped_comparison() {
        let t = truth_of("/a[5 < b]", first_pred_child);
        assert_eq!(t.shape, Shape::NumCmp(CompOp::Gt, 5.0));
    }

    #[test]
    fn recognizes_string_shapes() {
        let t = truth_of("/a[b = \"A\"]", first_pred_child);
        assert_eq!(t.shape, Shape::StrEq(true, "A".into()));
        let t = truth_of("/a[starts-with(b, \"pre\")]", first_pred_child);
        assert_eq!(t.shape, Shape::StartsWith("pre".into()));
        let t = truth_of("/a[ends-with(b, \"B\")]", first_pred_child);
        assert_eq!(t.shape, Shape::EndsWith("B".into()));
    }

    #[test]
    fn prefix_extendability() {
        // Every string is a prefix of a member of ends-with sets — the
        // §5.5 strong-subsumption-freeness counterexample.
        let t = truth_of("/a[ends-with(b, \"B\")]", first_pred_child);
        assert_eq!(t.extends_to_member("anything"), Tri::Yes);
        // "hello" cannot extend to a number > 12.
        let t = truth_of("/a[b > 12]", first_pred_child);
        assert_eq!(t.extends_to_member("hello"), Tri::No);
        assert_eq!(t.extends_to_member("1"), Tri::Yes);
        // starts-with("pre"): "pr" extends, "xx" does not.
        let t = truth_of("/a[starts-with(b, \"pre\")]", first_pred_child);
        assert_eq!(t.extends_to_member("pr"), Tri::Yes);
        assert_eq!(t.extends_to_member("press"), Tri::Yes);
        assert_eq!(t.extends_to_member("xx"), Tri::No);
    }

    #[test]
    fn sample_distinct_separates_intervals() {
        // TRUTH(u) = (12,∞), avoid = (-∞,30): the witness must be ≥ 30.
        let target = truth_of("/a[b > 12]", first_pred_child);
        let avoid = truth_of("/a[b < 30]", first_pred_child);
        let w = sample_distinct_member(&target, std::slice::from_ref(&avoid), 0).unwrap();
        assert!(target.contains(&w));
        assert!(!avoid.contains(&w));
    }

    #[test]
    fn sample_distinct_fails_when_subset() {
        // TRUTH(u) = (5,∞) ⊆ (4,∞): no witness exists.
        let target = truth_of("/a[b > 5]", first_pred_child);
        let avoid = truth_of("/a[b > 4]", first_pred_child);
        assert!(sample_distinct_member(&target, &[avoid], 0).is_none());
    }

    #[test]
    fn sunflower_example_from_paper() {
        // §5.5: ^A.*B$ vs AB vs A.+B — none subsumes the others singly,
        // but the first is covered by the union. Check that a witness for
        // "in ^A.*B$ but not in AB-contains" does not exist, while
        // "in contains-AB but not in ^A.*B$" does (e.g. "xABx").
        let q =
            parse_query("/a[matches(b,\"^A.*B$\") and matches(b,\"AB\") and matches(b,\"A.+B\")]")
                .unwrap();
        let a = q.successor(q.root()).unwrap();
        let pc = q.predicate_children(a);
        let t1 = TruthSet::of(&q, pc[0]).unwrap();
        let t2 = TruthSet::of(&q, pc[1]).unwrap();
        assert!(t1.contains("AxB") && t1.contains("AB"));
        assert!(t2.contains("xABx") && !t1.contains("xABx"));
        let w = sample_distinct_member(&t2, std::slice::from_ref(&t1), 3);
        if let Some(w) = &w {
            assert!(t2.contains(w) && !t1.contains(w));
        }
    }

    #[test]
    fn non_prefix_sampling() {
        let gt12 = truth_of("/a[b > 12]", first_pred_child);
        let lt30 = truth_of("/a[b < 30]", first_pred_child);
        let alpha = sample_non_prefix(&[gt12.clone(), lt30.clone()], 1).unwrap();
        assert_eq!(gt12.extends_to_member(&alpha), Tri::No);
        assert_eq!(lt30.extends_to_member(&alpha), Tri::No);
        // With an ends-with set in the mix, no safe value exists.
        let ew = truth_of("/a[ends-with(b, \"B\")]", first_pred_child);
        assert!(sample_non_prefix(&[ew], 2).is_none());
    }

    #[test]
    fn unconstrained_set_is_all() {
        let t = truth_of("/a[b]/c", |q| q.output_node());
        assert_eq!(t.shape, Shape::All);
        assert!(t.contains("anything"));
        assert_eq!(t.extends_to_member("x"), Tri::Yes);
    }
}
