//! Redundancy elimination — the minimization the paper's §5 motivates:
//! "queries should not have redundant parts that can be eliminated without
//! changing the semantics". A predicate subtree `v` is redundant when some
//! other node `u` *subsumes* it (Def. 5.12): every document node matching
//! `u` also matches `v`, so the existential constraint `v` imposes is
//! implied and can be dropped.
//!
//! Subsumption is certified soundly (never dropping a non-redundant part)
//! by a *sibling-local* implication check: a sibling `u` of `v` whose
//! subtree embeds into `v`'s requirements with compatible axes, covering
//! node tests, and included truth sets — any document witness for `u` is
//! then a witness for `v`. The paper's example `/a[b > 5 and b > 6]`
//! minimizes to `/a[b > 6]`, and `/a[b and .//b]` to `/a[b]`.

use crate::truthset::{Shape, Tri, TruthSet};
use fx_xpath::{CompOp, Expr, Query, QueryNodeId};
use std::collections::{HashMap, HashSet};

/// Does `TRUTH(a) ⊆ TRUTH(b)` hold, decided symbolically? `Unknown` is
/// treated as "no" by the eliminator (sound: it never drops then).
pub fn truth_implies(a: &TruthSet, b: &TruthSet) -> Tri {
    use Shape::*;
    match (&a.shape, &b.shape) {
        (_, All) => Tri::Yes,
        (All, _) => Tri::No, // b ≠ All here; S ⊄ proper subsets
        (StrEq(true, s), _) => {
            // A singleton: membership is decidable exactly.
            if b.contains(s) {
                Tri::Yes
            } else {
                Tri::No
            }
        }
        (NumCmp(op1, c1), NumCmp(op2, c2)) => num_cmp_implies(*op1, *c1, *op2, *c2),
        (StartsWith(p1), StartsWith(p2)) => {
            if p1.starts_with(p2.as_str()) {
                Tri::Yes
            } else {
                Tri::No
            }
        }
        (EndsWith(s1), EndsWith(s2)) => {
            if s1.ends_with(s2.as_str()) {
                Tri::Yes
            } else {
                Tri::No
            }
        }
        (Contains(s1), Contains(s2)) => {
            if s1.contains(s2.as_str()) {
                Tri::Yes
            } else {
                Tri::No
            }
        }
        (StartsWith(p), Contains(s)) | (EndsWith(p), Contains(s)) => {
            if p.contains(s.as_str()) {
                Tri::Yes
            } else {
                Tri::Unknown
            }
        }
        _ => Tri::Unknown,
    }
}

/// Interval containment for `{x : num(x) op c}` sets. NaN never satisfies
/// a comparison, so the sets live on the extended reals.
fn num_cmp_implies(op1: CompOp, c1: f64, op2: CompOp, c2: f64) -> Tri {
    use CompOp::*;
    let yes = match (op1, op2) {
        (Eq, _) => ops_accepts(op2, c1, c2),
        (Gt, Gt) => c1 >= c2,
        (Gt, Ge) => c1 >= c2,
        (Ge, Gt) => c1 > c2,
        (Ge, Ge) => c1 >= c2,
        (Lt, Lt) => c1 <= c2,
        (Lt, Le) => c1 <= c2,
        (Le, Lt) => c1 < c2,
        (Le, Le) => c1 <= c2,
        (Gt, Ne) | (Ge, Ne) => c1 > c2 || (op1 == Gt && c1 >= c2),
        (Lt, Ne) | (Le, Ne) => c1 < c2 || (op1 == Lt && c1 <= c2),
        _ => return Tri::Unknown,
    };
    if yes {
        Tri::Yes
    } else {
        Tri::No
    }
}

fn ops_accepts(op: CompOp, value: f64, c: f64) -> bool {
    use CompOp::*;
    match op {
        Eq => value == c,
        Ne => value != c,
        Lt => value < c,
        Le => value <= c,
        Gt => value > c,
        Ge => value >= c,
    }
}

/// One redundancy found: predicate child `redundant` (with its subtree) is
/// subsumed by its sibling `witness`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Redundancy {
    /// The predicate child whose subtree can be dropped.
    pub redundant: QueryNodeId,
    /// The sibling certifying the subsumption.
    pub witness: QueryNodeId,
}

/// Finds one droppable predicate child: a non-successor child `v` of some
/// node `p` such that a *sibling* `u` (predicate child or successor)
/// implies it — any document witness for `u` is also a witness for `v`.
/// Sibling-local implication is inherently sound: it never references
/// parts of the query that dropping `v` could perturb.
pub fn find_redundancy(q: &Query) -> Option<Redundancy> {
    for p in q.all_nodes() {
        let kids = q.children(p);
        for &v in kids {
            if Some(v) == q.successor(p) {
                continue; // the output path is never dropped
            }
            for &u in kids {
                if u != v && implies_subtree(q, v, u, true) {
                    return Some(Redundancy {
                        redundant: v,
                        witness: u,
                    });
                }
            }
        }
    }
    None
}

/// Does a document witness for `u` (relative to the common parent) always
/// constitute a witness for `v`? Checks node-test coverage, axis coverage
/// (`top` pair: a child is also a descendant; nested pairs: any chain
/// below `u` stays below the witness), truth-set inclusion, and recursive
/// coverage of `v`'s children inside `u`'s subtree.
fn implies_subtree(q: &Query, v: QueryNodeId, u: QueryNodeId, top: bool) -> bool {
    use fx_xpath::Axis;
    // Node test: v must accept whatever u requires.
    match (q.ntest(v), q.ntest(u)) {
        (Some(tv), Some(tu)) => {
            let ok = tv.is_wildcard() || tv == tu;
            if !ok {
                return false;
            }
        }
        _ => return false,
    }
    // Axis coverage at the top pair (same anchor): a child-axis witness
    // also witnesses a descendant-axis constraint, never vice versa.
    if top {
        let ok = matches!(
            (q.axis(v), q.axis(u)),
            (Some(Axis::Descendant), Some(Axis::Child | Axis::Descendant))
                | (Some(Axis::Child), Some(Axis::Child))
                | (Some(Axis::Attribute), Some(Axis::Attribute))
        );
        if !ok {
            return false;
        }
    }
    // Truth inclusion: TRUTH(u) ⊆ TRUTH(v).
    let (Ok(tv), Ok(tu)) = (TruthSet::of(q, v), TruthSet::of(q, u)) else {
        return false;
    };
    if truth_implies(&tu, &tv) != Tri::Yes {
        return false;
    }
    // Children of v must be covered inside Q_u.
    for &c in q.children(v) {
        let covered = match q.axis(c) {
            Some(Axis::Child) => q
                .children(u)
                .iter()
                .any(|&t| q.axis(t) == Some(Axis::Child) && implies_subtree(q, c, t, false)),
            Some(Axis::Attribute) => q
                .children(u)
                .iter()
                .any(|&t| q.axis(t) == Some(Axis::Attribute) && implies_subtree(q, c, t, false)),
            Some(Axis::Descendant) => q
                .preorder(u)
                .into_iter()
                .filter(|&t| t != u)
                .any(|t| q.axis(t) != Some(Axis::Attribute) && implies_subtree(q, c, t, false)),
            None => false,
        };
        if !covered {
            return false;
        }
    }
    true
}

/// Removes one redundant predicate child and rebuilds the query. Returns
/// `None` when nothing is redundant.
pub fn eliminate_one(q: &Query) -> Option<Query> {
    let red = find_redundancy(q)?;
    let dropped: HashSet<QueryNodeId> = q.preorder(red.redundant).into_iter().collect();
    Some(rebuild_without(q, &dropped))
}

/// Iterates [`eliminate_one`] to a fixpoint — the minimized query.
pub fn minimize(q: &Query) -> Query {
    let mut cur = q.clone();
    while let Some(next) = eliminate_one(&cur) {
        cur = next;
    }
    cur
}

/// Rebuilds `q` without the nodes in `dropped`, remapping predicate
/// variables and pruning conjuncts that referenced dropped children.
fn rebuild_without(q: &Query, dropped: &HashSet<QueryNodeId>) -> Query {
    let mut out = Query::new();
    let mut map: HashMap<QueryNodeId, QueryNodeId> = HashMap::new();
    map.insert(q.root(), out.root());
    for old in q.all_nodes().skip(1) {
        if dropped.contains(&old) {
            continue;
        }
        let parent = q.parent(old).expect("non-root");
        let new_parent = map[&parent];
        let new = out.add_node(
            new_parent,
            q.axis(old).expect("non-root"),
            q.ntest(old).expect("non-root").clone(),
        );
        map.insert(old, new);
        if q.successor(parent) == Some(old) {
            out.set_successor(new_parent, new);
        }
    }
    for old in q.all_nodes() {
        if dropped.contains(&old) {
            continue;
        }
        if let Some(pred) = q.predicate(old) {
            let kept: Vec<Expr> = pred
                .conjuncts()
                .into_iter()
                .filter(|c| c.vars().iter().all(|v| !dropped.contains(v)))
                .map(|c| remap_expr(c, &map))
                .collect();
            if let Some(joined) = kept.into_iter().reduce(Expr::and) {
                out.set_predicate(map[&old], joined);
            }
        }
    }
    debug_assert!(out.validate().is_ok());
    out
}

fn remap_expr(e: &Expr, map: &HashMap<QueryNodeId, QueryNodeId>) -> Expr {
    match e {
        Expr::Const(v) => Expr::Const(v.clone()),
        Expr::Var(v) => Expr::Var(map[v]),
        Expr::Comp(op, a, b) => Expr::Comp(
            *op,
            Box::new(remap_expr(a, map)),
            Box::new(remap_expr(b, map)),
        ),
        Expr::Arith(op, a, b) => Expr::Arith(
            *op,
            Box::new(remap_expr(a, map)),
            Box::new(remap_expr(b, map)),
        ),
        Expr::Neg(a) => Expr::Neg(Box::new(remap_expr(a, map))),
        Expr::And(a, b) => Expr::and(remap_expr(a, map), remap_expr(b, map)),
        Expr::Or(a, b) => Expr::Or(Box::new(remap_expr(a, map)), Box::new(remap_expr(b, map))),
        Expr::Not(a) => Expr::Not(Box::new(remap_expr(a, map))),
        Expr::Call(f, args) => Expr::Call(*f, args.iter().map(|a| remap_expr(a, map)).collect()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fx_xpath::{parse_query, to_xpath};

    fn minimized(src: &str) -> String {
        to_xpath(&minimize(&parse_query(src).unwrap()))
    }

    #[test]
    fn paper_redundant_interval_example() {
        // §5: "/a[b > 5 and b > 6] is not redundancy-free, because the
        // atomic predicate b > 5 is redundant."
        assert_eq!(minimized("/a[b > 5 and b > 6]"), "/a[b > 6]");
    }

    #[test]
    fn paper_subsumption_example() {
        // §5.5: in /a[b and .//b] the left b subsumes the right one.
        assert_eq!(minimized("/a[b and .//b]"), "/a[b]");
    }

    #[test]
    fn non_redundant_queries_are_fixed_points() {
        for src in [
            "/a[b and c]",
            "//a[b and c]",
            "/a[c[.//e and f] and b > 5]",
            "/a[b = 5 and .//b = 3]", // values differ: not redundant
            "/a[b > 5]/b",            // output b vs predicate b: values differ
        ] {
            assert_eq!(minimized(src), src, "{src}");
        }
    }

    #[test]
    fn subtree_subsumption() {
        // .//b[c] is implied by a child b[c].
        assert_eq!(minimized("/a[b[c] and .//b[c]]"), "/a[b[c]]");
        // …but not by a child b without the c.
        assert_eq!(minimized("/a[b and .//b[c]]"), "/a[b and .//b[c]]");
    }

    #[test]
    fn chains_collapse_stepwise() {
        // b>4, b>5, b>6: two rounds of elimination.
        assert_eq!(minimized("/a[b > 4 and b > 5 and b > 6]"), "/a[b > 6]");
    }

    #[test]
    fn string_shapes() {
        assert_eq!(
            minimized("/a[contains(b, \"xy\") and contains(b, \"x\")]"),
            "/a[contains(b, \"xy\")]"
        );
        assert_eq!(
            minimized("/a[starts-with(b, \"pre\") and starts-with(b, \"prefix\")]"),
            "/a[starts-with(b, \"prefix\")]"
        );
        // Disjoint constraints stay.
        assert_eq!(
            minimized("/a[b = \"x\" and b = \"y\"]"),
            "/a[b = \"x\" and b = \"y\"]"
        );
    }

    #[test]
    fn minimization_can_restore_redundancy_freeness() {
        let q = parse_query("/a[b > 5 and b > 6]").unwrap();
        assert!(!crate::redundancy_free(&q).is_empty());
        let min = minimize(&q);
        assert!(
            crate::redundancy_free(&min).is_empty(),
            "{}",
            to_xpath(&min)
        );
    }

    #[test]
    fn truth_implication_table() {
        let q = parse_query("/a[b > 6 and c > 5 and d = \"x\" and e < 3]").unwrap();
        let a = q.successor(q.root()).unwrap();
        let pc = q.predicate_children(a);
        let t_gt6 = TruthSet::of(&q, pc[0]).unwrap();
        let t_gt5 = TruthSet::of(&q, pc[1]).unwrap();
        let t_eqx = TruthSet::of(&q, pc[2]).unwrap();
        let t_lt3 = TruthSet::of(&q, pc[3]).unwrap();
        assert_eq!(truth_implies(&t_gt6, &t_gt5), Tri::Yes);
        assert_eq!(truth_implies(&t_gt5, &t_gt6), Tri::No);
        assert_eq!(truth_implies(&t_eqx, &t_gt5), Tri::No); // "x" is NaN
                                                            // Cross-direction intervals are not provably included; the
                                                            // eliminator only acts on Yes, so Unknown/No are both safe.
        assert_ne!(truth_implies(&t_lt3, &t_gt5), Tri::Yes);
        assert_eq!(truth_implies(&t_gt5, &t_gt5), Tri::Yes);
    }

    /// Differential: minimization never changes BOOLEVAL.
    #[test]
    fn minimization_preserves_semantics() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let sources = [
            "/a[b and .//b]",
            "/a[b > 5 and b > 6]",
            "/a[b[c] and .//b[c]]",
            "/a[b > 4 and b > 5 and c]",
            "/a[contains(b, \"xy\") and contains(b, \"x\") and c]",
            "//a[b and .//b and c]",
        ];
        let mut rng = SmallRng::seed_from_u64(0x313);
        for src in sources {
            let q = parse_query(src).unwrap();
            let min = minimize(&q);
            for _ in 0..60 {
                let cfg = RandomDocCfg;
                let d = random_doc(&mut rng, &cfg);
                let before = fx_eval::bool_eval(&q, &d).unwrap();
                let after = fx_eval::bool_eval(&min, &d).unwrap();
                assert_eq!(
                    before,
                    after,
                    "{src} → {} on {}",
                    to_xpath(&min),
                    d.to_xml()
                );
            }
        }
    }

    // Local mini doc generator (fx-analysis cannot depend on fx-workloads).
    #[derive(Default)]
    struct RandomDocCfg;
    fn random_doc(rng: &mut impl rand::Rng, _cfg: &RandomDocCfg) -> fx_dom::Document {
        fn grow(
            rng: &mut impl rand::Rng,
            doc: &mut fx_dom::Document,
            at: fx_dom::NodeId,
            depth: usize,
        ) {
            if depth >= 5 {
                return;
            }
            let n = rng.gen_range(0..4);
            for _ in 0..n {
                let names = ["a", "b", "c", "e", "f", "x"];
                let name = names[rng.gen_range(0..names.len())];
                let child = doc.push_node(at, fx_dom::NodeKind::Element, name, "");
                if rng.gen_bool(0.4) {
                    let vals = ["3", "5", "6", "7", "x", "xy", "pre", "prefix"];
                    let v = vals[rng.gen_range(0..vals.len())];
                    doc.push_node(child, fx_dom::NodeKind::Text, "", v);
                }
                grow(rng, doc, child, depth + 1);
            }
        }
        let mut doc = fx_dom::Document::empty();
        let root = doc.push_node(fx_dom::NodeId::ROOT, fx_dom::NodeKind::Element, "a", "");
        grow(rng, &mut doc, root, 1);
        doc
    }
}
