//! Structural query automorphisms (Definition 6.8) and structural
//! subsumption via Lemma 6.9: `u` structurally subsumes `v` iff some
//! structural query automorphism maps `v` to `u`.

use fx_xpath::{Axis, NodeTest, Query, QueryNodeId};
use std::collections::HashMap;

/// A structural query automorphism as an explicit mapping.
pub type Automorphism = HashMap<QueryNodeId, QueryNodeId>;

/// Constraint-satisfaction engine for automorphism existence. Mirrors the
/// matching machinery in `fx-eval` but maps the query into itself.
pub struct AutomorphismFinder<'a> {
    q: &'a Query,
    memo: HashMap<(QueryNodeId, QueryNodeId), bool>,
}

impl<'a> AutomorphismFinder<'a> {
    /// Creates a finder for `q`.
    pub fn new(q: &'a Query) -> Self {
        AutomorphismFinder {
            q,
            memo: HashMap::new(),
        }
    }

    /// Can the subtree rooted at `w` be mapped onto targets under `t` with
    /// `ψ(w) = t`, respecting node tests and (for the subtree-internal
    /// steps) axes?
    fn embeds(&mut self, w: QueryNodeId, t: QueryNodeId) -> bool {
        if let Some(&hit) = self.memo.get(&(w, t)) {
            return hit;
        }
        self.memo.insert((w, t), false);
        let ok = self.check(w, t);
        self.memo.insert((w, t), ok);
        ok
    }

    fn check(&mut self, w: QueryNodeId, t: QueryNodeId) -> bool {
        // Node test preservation: a non-wildcard test must be preserved
        // exactly. A wildcard node may map to any node.
        if let Some(NodeTest::Name(n)) = self.q.ntest(w) {
            if self.q.ntest(t) != Some(&NodeTest::Name(n.clone())) {
                return false;
            }
        }
        // Targets must not be the query root unless w is (roots have no
        // axis/node test, so only root maps to root).
        if (t == self.q.root()) != (w == self.q.root()) {
            return false;
        }
        for c in self.q.children(w).to_vec() {
            if !self.child_has_target(c, t) {
                return false;
            }
        }
        true
    }

    /// Does child `c` (of the source) have a valid target below `t`?
    fn child_has_target(&mut self, c: QueryNodeId, t: QueryNodeId) -> bool {
        match self.q.axis(c).expect("children have axes") {
            Axis::Child => {
                // ψ(c) must be a child of ψ(parent) with a child axis.
                self.q
                    .children(t)
                    .to_vec()
                    .into_iter()
                    .any(|tc| self.q.axis(tc) == Some(Axis::Child) && self.embeds(c, tc))
            }
            Axis::Attribute => self
                .q
                .children(t)
                .to_vec()
                .into_iter()
                .any(|tc| self.q.axis(tc) == Some(Axis::Attribute) && self.embeds(c, tc)),
            Axis::Descendant => {
                // ψ(c) must be a (proper) descendant of ψ(parent) with axis
                // in {child, descendant}.
                self.descendant_targets(t).into_iter().any(|tc| {
                    matches!(self.q.axis(tc), Some(Axis::Child | Axis::Descendant))
                        && self.embeds(c, tc)
                })
            }
        }
    }

    fn descendant_targets(&self, t: QueryNodeId) -> Vec<QueryNodeId> {
        self.q.preorder(t).into_iter().filter(|&n| n != t).collect()
    }

    /// Does a structural query automorphism with `ψ(v) = u` exist?
    /// (Lemma 6.9: iff `u` structurally subsumes `v`.)
    pub fn exists_mapping(&mut self, v: QueryNodeId, u: QueryNodeId) -> bool {
        self.constrained(self.q.root(), self.q.root(), v, u)
    }

    /// Automorphism of the whole query with the constraint ψ(v) = u, where
    /// the search walks the path from the root to v.
    fn constrained(
        &mut self,
        w: QueryNodeId,
        t: QueryNodeId,
        v: QueryNodeId,
        u: QueryNodeId,
    ) -> bool {
        if w == v {
            return t == u && self.embeds(w, t);
        }
        // Local checks at w → t.
        if let Some(NodeTest::Name(n)) = self.q.ntest(w) {
            if self.q.ntest(t) != Some(&NodeTest::Name(n.clone())) {
                return false;
            }
        }
        if (t == self.q.root()) != (w == self.q.root()) {
            return false;
        }
        let path = self.q.path(v);
        let Some(pos) = path.iter().position(|&n| n == w) else {
            return false;
        };
        let next = path[pos + 1];
        for c in self.q.children(w).to_vec() {
            let ok = if c == next {
                self.child_target_constrained(c, t, v, u)
            } else {
                self.child_has_target(c, t)
            };
            if !ok {
                return false;
            }
        }
        true
    }

    fn child_target_constrained(
        &mut self,
        c: QueryNodeId,
        t: QueryNodeId,
        v: QueryNodeId,
        u: QueryNodeId,
    ) -> bool {
        let candidates: Vec<QueryNodeId> = match self.q.axis(c).expect("children have axes") {
            Axis::Child => self
                .q
                .children(t)
                .iter()
                .copied()
                .filter(|&tc| self.q.axis(tc) == Some(Axis::Child))
                .collect(),
            Axis::Attribute => self
                .q
                .children(t)
                .iter()
                .copied()
                .filter(|&tc| self.q.axis(tc) == Some(Axis::Attribute))
                .collect(),
            Axis::Descendant => self
                .descendant_targets(t)
                .into_iter()
                .filter(|&tc| matches!(self.q.axis(tc), Some(Axis::Child | Axis::Descendant)))
                .collect(),
        };
        candidates
            .into_iter()
            .any(|tc| self.constrained(c, tc, v, u))
    }
}

/// The structural domination set `SDOM(u)` (Def. 5.15), *excluding* `u`
/// itself: all nodes `v ≠ u` that `u` structurally subsumes.
pub fn structural_domination_set(q: &Query, u: QueryNodeId) -> Vec<QueryNodeId> {
    let mut finder = AutomorphismFinder::new(q);
    q.all_nodes()
        .filter(|&v| v != u && finder.exists_mapping(v, u))
        .collect()
}

/// The leaves of `SDOM(u)` — the set `L_u` of Definitions 5.16/5.17.
pub fn dominated_leaves(q: &Query, u: QueryNodeId) -> Vec<QueryNodeId> {
    structural_domination_set(q, u)
        .into_iter()
        .filter(|&v| q.is_leaf(v))
        .collect()
}

/// True when some *non-trivial* structural automorphism pair exists, i.e.
/// some node structurally subsumes another.
pub fn has_structural_subsumption(q: &Query) -> bool {
    q.all_nodes()
        .any(|u| !structural_domination_set(q, u).is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fx_xpath::parse_query;

    fn q(s: &str) -> Query {
        parse_query(s).unwrap()
    }

    #[test]
    fn paper_example_b_and_descendant_b() {
        // §6.3 example: in /a[b and .//b], a non-trivial automorphism maps
        // both b's onto the left (child-axis) b. So the child b subsumes
        // the descendant b, not vice versa.
        let query = q("/a[b and .//b]");
        let a = query.successor(query.root()).unwrap();
        let b_child = query.predicate_children(a)[0];
        let b_desc = query.predicate_children(a)[1];
        assert_eq!(query.axis(b_child), Some(Axis::Child));
        assert_eq!(query.axis(b_desc), Some(Axis::Descendant));
        let dom_child = structural_domination_set(&query, b_child);
        assert_eq!(dom_child, vec![b_desc]);
        let dom_desc = structural_domination_set(&query, b_desc);
        assert!(dom_desc.is_empty());
    }

    #[test]
    fn canonical_example_subsumptions() {
        // §6.4.1: in /a[*/b > 5 and c/b//d > 12 and .//d < 30], the second
        // b structurally subsumes the first b (a leaf), and the first d
        // structurally subsumes the second d (a leaf).
        let query = q("/a[*/b > 5 and c/b//d > 12 and .//d < 30]");
        let a = query.successor(query.root()).unwrap();
        let pc = query.predicate_children(a);
        let star = pc[0];
        let b1 = query.successor(star).unwrap();
        let c = pc[1];
        let b2 = query.successor(c).unwrap();
        let d1 = query.successor(b2).unwrap();
        let d2 = pc[2];
        assert_eq!(structural_domination_set(&query, b2), vec![b1]);
        assert_eq!(structural_domination_set(&query, d1), vec![d2]);
        assert!(structural_domination_set(&query, b1).is_empty());
        assert!(structural_domination_set(&query, d2).is_empty());
        assert_eq!(dominated_leaves(&query, b2), vec![b1]);
        assert_eq!(dominated_leaves(&query, d1), vec![d2]);
    }

    #[test]
    fn no_subsumption_in_distinct_names() {
        let query = q("/a[b and c]");
        assert!(!has_structural_subsumption(&query));
    }

    #[test]
    fn identical_siblings_subsume_each_other() {
        // /a[b = 5 and .//b = 3]: structurally the child b subsumes the
        // descendant b (§5.5 example).
        let query = q("/a[b = 5 and .//b = 3]");
        let a = query.successor(query.root()).unwrap();
        let b1 = query.predicate_children(a)[0];
        let b2 = query.predicate_children(a)[1];
        assert!(AutomorphismFinder::new(&query).exists_mapping(b2, b1));
        assert!(!AutomorphismFinder::new(&query).exists_mapping(b1, b2));
    }

    #[test]
    fn wildcard_can_absorb_names() {
        // Q' = /a[c[.//* and f] and b > 5] from §4.1: the f node maps onto
        // the wildcard? No — the wildcard (descendant axis) can absorb f:
        // ψ(f) can be... f has child axis, target must have child axis.
        // The wildcard has a descendant axis, so f cannot map onto it; but
        // the *wildcard* node maps onto f (wildcard passes any test).
        let query = q("/a[c[.//* and f] and b > 5]");
        let a = query.successor(query.root()).unwrap();
        let c = query.predicate_children(a)[0];
        let star = query.predicate_children(c)[0];
        let f = query.predicate_children(c)[1];
        // f structurally subsumes the wildcard node (any doc node matching
        // f also matches *).
        assert!(AutomorphismFinder::new(&query).exists_mapping(star, f));
        assert!(structural_domination_set(&query, f).contains(&star));
    }

    #[test]
    fn depth_monotonicity_of_automorphisms() {
        // Proposition 6.10: DEPTH(v) ≥ DEPTH(ψ(v)) for v ↦ u mappings we
        // find. Spot-check: in /a[b and .//b], both b's have equal depth.
        let query = q("//x[.//y[z] and y[z]]");
        let x = query.successor(query.root()).unwrap();
        let y_desc = query.predicate_children(x)[0];
        let y_child = query.predicate_children(x)[1];
        // The child-axis y subsumes the descendant-axis y.
        assert!(AutomorphismFinder::new(&query).exists_mapping(y_desc, y_child));
        assert!(query.depth(y_desc) <= query.depth(y_child));
    }

    #[test]
    fn subtree_structure_must_embed() {
        // y[z] does not subsume a bare .//y (the bare y lacks a z child —
        // wait, subsumption means every match of y[z]'s *target*…).
        // u subsumes v iff ψ(v) = u exists. For ψ(v)=u with v = y[z],
        // the whole subtree of v must embed at u = bare y: z needs a
        // child-axis target under bare y — none. So bare-y does not
        // structurally subsume y[z]… mapping ψ(v)=u requires embedding
        // Q_v at u.
        let query = q("//x[.//y[z] and .//y]");
        let x = query.successor(query.root()).unwrap();
        let y_with_z = query.predicate_children(x)[0];
        let y_bare = query.predicate_children(x)[1];
        // ψ(y_with_z) = y_bare impossible (z has no target).
        assert!(!AutomorphismFinder::new(&query).exists_mapping(y_with_z, y_bare));
        // ψ(y_bare) = y_with_z is fine (bare .//y embeds anywhere named y).
        assert!(AutomorphismFinder::new(&query).exists_mapping(y_bare, y_with_z));
    }
}
