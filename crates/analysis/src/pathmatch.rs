//! Path matchings (Definition 8.2) and the derived quantities of §8.6:
//! path recursion depth (Def. 8.3), text width (Def. 8.4), and path
//! consistency (Defs. 8.5–8.6). These parameterize the complexity theorem
//! (Thm. 8.8) for the streaming filter.

use fx_dom::{Document, NodeId, NodeKind};
use fx_xpath::{Axis, NodeTest, Query, QueryNodeId};
use std::collections::{HashMap, HashSet};

/// For every document node, the set of query nodes it *path matches*
/// (Def. 8.2): there is a root/axis/node-test-respecting map from
/// `PATH(u)` to `PATH(x)`.
pub fn path_match_sets(q: &Query, d: &Document) -> HashMap<NodeId, HashSet<QueryNodeId>> {
    let mut sets: HashMap<NodeId, HashSet<QueryNodeId>> = HashMap::new();
    let mut anc: HashMap<NodeId, HashSet<QueryNodeId>> = HashMap::new();
    sets.insert(d.root(), HashSet::from([q.root()]));
    anc.insert(d.root(), HashSet::from([q.root()]));
    // Document order guarantees parents precede children in `all_nodes`.
    for x in d.all_nodes().skip(1) {
        if d.kind(x) == NodeKind::Text {
            continue;
        }
        let parent = d.parent(x).expect("non-root");
        if d.kind(parent) == NodeKind::Text {
            continue;
        }
        let p_set = sets.get(&parent).cloned().unwrap_or_default();
        let p_anc = anc.get(&parent).cloned().unwrap_or_default();
        let mut s = HashSet::new();
        for u in q.all_nodes().skip(1) {
            if !q.ntest(u).expect("non-root").passes(d.name(x)) {
                continue;
            }
            let qparent = q.parent(u).expect("non-root");
            let ok = match q.axis(u).expect("non-root") {
                Axis::Child => d.kind(x) == NodeKind::Element && p_set.contains(&qparent),
                Axis::Attribute => d.kind(x) == NodeKind::Attribute && p_set.contains(&qparent),
                Axis::Descendant => d.kind(x) == NodeKind::Element && p_anc.contains(&qparent),
            };
            if ok {
                s.insert(u);
            }
        }
        let mut a = p_anc;
        a.extend(s.iter().copied());
        anc.insert(x, a);
        sets.insert(x, s);
    }
    sets
}

/// Does `x` path match `u`?
pub fn path_matches(q: &Query, d: &Document, u: QueryNodeId, x: NodeId) -> bool {
    path_match_sets(q, d)
        .get(&x)
        .is_some_and(|s| s.contains(&u))
}

/// The path recursion depth of `D` w.r.t. `Q` (Def. 8.3): the longest
/// chain of nested document nodes that all path match the *same* query
/// node.
pub fn path_recursion_depth(q: &Query, d: &Document) -> usize {
    let sets = path_match_sets(q, d);
    let mut best = 0usize;
    for (&x, s) in &sets {
        for &u in s {
            if u == q.root() {
                continue;
            }
            let depth = 1 + d
                .ancestors(x)
                .filter(|z| sets.get(z).is_some_and(|zs| zs.contains(&u)))
                .count();
            best = best.max(depth);
        }
    }
    best
}

/// The recursion depth of `D` w.r.t. a query node `v` (§4.2): the longest
/// chain of nested nodes that all *match* `v` (full matchings, not just
/// path matchings). Uses the reference matcher.
pub fn recursion_depth_wrt(
    q: &Query,
    d: &Document,
    v: QueryNodeId,
) -> Result<usize, fx_eval::TruthError> {
    let mut matcher = fx_eval::Matcher::new(q, d, fx_eval::MatchMode::Full);
    // A node x "matches v" relative to the root context when some matching
    // of D with Q maps v to x; approximate per the paper's §4.2 usage with
    // subtree matchings of v at x, guarded by a path match to v.
    let sets = path_match_sets(q, d);
    let mut matching_nodes: Vec<NodeId> = Vec::new();
    for x in d.all_nodes() {
        if sets.get(&x).is_some_and(|s| s.contains(&v)) && matcher.can_match(v, x)? {
            matching_nodes.push(x);
        }
    }
    let set: HashSet<NodeId> = matching_nodes.iter().copied().collect();
    let mut best = 0usize;
    for &x in &matching_nodes {
        let depth = 1 + d.ancestors(x).filter(|z| set.contains(z)).count();
        best = best.max(depth);
    }
    Ok(best)
}

/// The text width of `D` w.r.t. `Q` (Def. 8.4): the longest string value
/// over document nodes that path match some *leaf* of `Q`.
pub fn text_width(q: &Query, d: &Document) -> usize {
    let sets = path_match_sets(q, d);
    let leaves: HashSet<QueryNodeId> = q.all_nodes().filter(|&u| q.is_leaf(u)).collect();
    sets.iter()
        .filter(|(_, s)| s.iter().any(|u| leaves.contains(u)))
        .map(|(&x, _)| d.strval(x).chars().count())
        .max()
        .unwrap_or(0)
}

// ---------------------------------------------------------------------------
// Path consistency
// ---------------------------------------------------------------------------

/// One step of a root-to-node query path.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Step {
    axis: Axis,
    test: NodeTest,
}

fn steps_to(q: &Query, u: QueryNodeId) -> Vec<Step> {
    q.path(u)
        .into_iter()
        .skip(1) // drop the root
        .map(|n| Step {
            axis: q.axis(n).expect("non-root"),
            test: q.ntest(n).expect("non-root").clone(),
        })
        .collect()
}

fn tests_compatible(a: &NodeTest, b: &NodeTest) -> bool {
    match (a, b) {
        (NodeTest::Wildcard, _) | (_, NodeTest::Wildcard) => true,
        (NodeTest::Name(x), NodeTest::Name(y)) => x == y,
    }
}

fn is_attr(axis: Axis) -> bool {
    axis == Axis::Attribute
}

/// Definition 8.5: are `u` and `v` path consistent — is there a document
/// and a node `x` that path matches both? Decided exactly by a reachability
/// search over joint pattern states.
pub fn path_consistent(q: &Query, u: QueryNodeId, v: QueryNodeId) -> bool {
    let p = steps_to(q, u);
    let r = steps_to(q, v);
    if p.is_empty() || r.is_empty() {
        // The query root is path-matched only by the document root, which
        // path matches nothing else.
        return p.is_empty() && r.is_empty();
    }
    // State: (i, fresh_i, j, fresh_j): `i` steps of p consumed; `fresh`
    // records whether the last consumed step sits at the most recent
    // document level.
    let mut seen = HashSet::new();
    let mut stack = vec![(0usize, true, 0usize, true)];
    while let Some(state) = stack.pop() {
        if !seen.insert(state) {
            continue;
        }
        let (i, fi, j, fj) = state;
        // Try all advance combinations for the next generated level.
        for (ap, aq) in [(true, true), (true, false), (false, true), (false, false)] {
            // Validity of advancing p.
            if ap {
                if i >= p.len() {
                    continue;
                }
                let needs_fresh = p[i].axis == Axis::Child || p[i].axis == Axis::Attribute;
                if needs_fresh && !fi {
                    continue;
                }
            }
            if aq {
                if j >= r.len() {
                    continue;
                }
                let needs_fresh = r[j].axis == Axis::Child || r[j].axis == Axis::Attribute;
                if needs_fresh && !fj {
                    continue;
                }
            }
            if !ap && !aq {
                // A filler level: only useful when both next steps are
                // descendant-axis (otherwise the stale pattern dies).
                let p_survives = i >= p.len() || p[i].axis == Axis::Descendant;
                let q_survives = j >= r.len() || r[j].axis == Axis::Descendant;
                if !(p_survives && q_survives) {
                    continue;
                }
                stack.push((i, false, j, false));
                continue;
            }
            // Name/kind compatibility on the generated node.
            if ap && aq {
                if !tests_compatible(&p[i].test, &r[j].test) {
                    continue;
                }
                if is_attr(p[i].axis) != is_attr(r[j].axis) {
                    continue;
                }
            }
            let node_is_attr = (ap && is_attr(p[i].axis)) || (aq && is_attr(r[j].axis));
            let ni = if ap { i + 1 } else { i };
            let nj = if aq { j + 1 } else { j };
            // Simultaneous completion at this node = path consistency.
            if ni == p.len() && nj == r.len() && ap && aq {
                return true;
            }
            // A pattern that completes early can never end at the final
            // node; an attribute node is a leaf so nothing can continue
            // below it.
            if ni == p.len() || nj == r.len() || node_is_attr {
                continue;
            }
            // A stale pattern whose next step needs child/attribute axis
            // is dead.
            let p_alive = ap || p[ni].axis == Axis::Descendant;
            let q_alive = aq || r[nj].axis == Axis::Descendant;
            if !(p_alive && q_alive) {
                continue;
            }
            stack.push((ni, ap, nj, aq));
        }
    }
    false
}

/// Definition 8.6: no two distinct (non-root) nodes are path consistent.
pub fn path_consistency_free(q: &Query) -> bool {
    let nodes: Vec<QueryNodeId> = q.all_nodes().skip(1).collect();
    for (k, &u) in nodes.iter().enumerate() {
        for &v in &nodes[k + 1..] {
            if path_consistent(q, u, v) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use fx_dom::Document;
    use fx_xpath::parse_query;

    fn q(s: &str) -> Query {
        parse_query(s).unwrap()
    }

    fn d(s: &str) -> Document {
        Document::from_xml(s).unwrap()
    }

    #[test]
    fn paper_path_recursion_example() {
        // §8.6: Q = //a[b], D = <a><a/></a> has path recursion depth 2
        // (both a's path match), but recursion depth 0 (neither matches).
        let query = q("//a[b]");
        let doc = d("<a><a></a></a>");
        assert_eq!(path_recursion_depth(&query, &doc), 2);
        let a_node = query.successor(query.root()).unwrap();
        assert_eq!(recursion_depth_wrt(&query, &doc, a_node).unwrap(), 0);
    }

    #[test]
    fn recursion_depth_with_matches() {
        let query = q("//a[b and c]");
        let a_node = query.successor(query.root()).unwrap();
        // Two nested matching a's.
        let doc = d("<a><b/><c/><a><b/><c/></a></a>");
        assert_eq!(recursion_depth_wrt(&query, &doc, a_node).unwrap(), 2);
        assert_eq!(path_recursion_depth(&query, &doc), 2);
    }

    #[test]
    fn paper_text_width_example() {
        // §8.6: Q = /a[b], D = <a>dear<b>sir</b>or<b>madam</b></a> has
        // text width 5 ("madam").
        let query = q("/a[b]");
        let doc = d("<a>dear<b>sir</b>or<b>madam</b></a>");
        assert_eq!(text_width(&query, &doc), 5);
    }

    #[test]
    fn paper_path_consistency_example() {
        // §8.6: in /a[.//b/c and b//c], the two c nodes are path
        // consistent.
        let query = q("/a[.//b/c and b//c]");
        let a = query.successor(query.root()).unwrap();
        let b1 = query.predicate_children(a)[0];
        let c1 = query.successor(b1).unwrap();
        let b2 = query.predicate_children(a)[1];
        let c2 = query.successor(b2).unwrap();
        assert!(path_consistent(&query, c1, c2));
        assert!(!path_consistency_free(&query));
    }

    #[test]
    fn distinct_names_are_consistency_free() {
        assert!(path_consistency_free(&q("/a[b and c]")));
        assert!(path_consistency_free(&q("/a[c[e and f] and b > 5]")));
    }

    #[test]
    fn same_name_siblings_are_consistent() {
        let query = q("/a[b = 5 and b = 3]");
        assert!(!path_consistency_free(&query));
    }

    #[test]
    fn wildcards_make_consistency() {
        let query = q("/a[* and b]");
        // The wildcard node and b are path consistent (a b child matches
        // both).
        assert!(!path_consistency_free(&query));
    }

    #[test]
    fn descendant_vs_child_same_name() {
        let query = q("/a[b and .//b]");
        assert!(!path_consistency_free(&query));
    }

    #[test]
    fn path_matching_respects_axes() {
        let query = q("/a/b");
        let doc = d("<a><x><b/></x><b/></a>");
        let b_q = query.output_node();
        let a_d = doc.children(doc.root())[0];
        let x = doc.children(a_d)[0];
        let deep_b = doc.children(x)[0];
        let shallow_b = doc.children(a_d)[1];
        assert!(!path_matches(&query, &doc, b_q, deep_b));
        assert!(path_matches(&query, &doc, b_q, shallow_b));
    }

    #[test]
    fn attribute_paths() {
        let query = q("/a[@id and b]");
        let a = query.successor(query.root()).unwrap();
        let id = query.predicate_children(a)[0];
        let b = query.predicate_children(a)[1];
        // @id and b are not path consistent (attribute vs element kinds).
        assert!(!path_consistent(&query, id, b));
        let doc = d(r#"<a id="1"><b/></a>"#);
        let a_d = doc.children(doc.root())[0];
        let id_d = doc.children(a_d)[0];
        assert!(path_matches(&query, &doc, id, id_d));
    }

    #[test]
    fn filler_levels_allow_gap_alignment() {
        // /r[.//a/x and .//b] — a/x vs b: never consistent (names differ
        // at the end). But .//a/x's x and a second .//x are consistent via
        // a filler: root … <a><x/></a>.
        let query = q("/r[.//a/x and .//x]");
        let r = query.successor(query.root()).unwrap();
        let a = query.predicate_children(r)[0];
        let x1 = query.successor(a).unwrap();
        let x2 = query.predicate_children(r)[1];
        assert!(path_consistent(&query, x1, x2));
    }
}
