//! The query frontier size `FS(Q)` (Definition 4.1) — the quantity the
//! paper's first lower bound (Theorems 4.2 / 7.1) is stated in.

use fx_xpath::{Query, QueryNodeId};

/// The frontier at `u` (Def. 4.1): `u` together with its super-siblings —
/// the siblings of `u` and of each of its ancestors.
pub fn frontier(q: &Query, u: QueryNodeId) -> Vec<QueryNodeId> {
    let mut f = vec![u];
    let mut cur = u;
    while let Some(parent) = q.parent(cur) {
        for &sib in q.children(parent) {
            if sib != cur {
                f.push(sib);
            }
        }
        cur = parent;
    }
    f
}

/// The frontier size `FS(Q)`: the size of the largest frontier over all
/// nodes of `Q`.
pub fn frontier_size(q: &Query) -> usize {
    q.all_nodes()
        .map(|u| frontier(q, u).len())
        .max()
        .unwrap_or(0)
}

/// The node realizing the largest frontier (ties broken by id order).
pub fn widest_frontier_node(q: &Query) -> QueryNodeId {
    q.all_nodes()
        .max_by_key(|&u| (frontier(q, u).len(), std::cmp::Reverse(u.0)))
        .expect("queries always contain the root")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fx_xpath::parse_query;

    #[test]
    fn fig3_frontier() {
        // Fig. 3: Q = /a[c[.//e and f] and b > 5], the frontier at e is
        // {e, f, b} and FS(Q) = 3.
        let q = parse_query("/a[c[.//e and f] and b > 5]").unwrap();
        let a = q.successor(q.root()).unwrap();
        let c = q.predicate_children(a)[0];
        let e = q.predicate_children(c)[0];
        let f = frontier(&q, e);
        assert_eq!(f.len(), 3);
        assert_eq!(frontier_size(&q), 3);
        assert_eq!(widest_frontier_node(&q), e);
    }

    #[test]
    fn linear_paths_have_frontier_one() {
        // Along /a/b/c every node's frontier is just itself.
        let q = parse_query("/a/b/c").unwrap();
        assert_eq!(frontier_size(&q), 1);
    }

    #[test]
    fn star_queries_scale_linearly() {
        // /a[b1 and b2 and … and bk] has FS = k at each leaf... plus the
        // successor-free structure: frontier at b1 = {b1,…,bk}.
        let q = parse_query("/a[b and c and d and e]").unwrap();
        assert_eq!(frontier_size(&q), 4);
    }

    #[test]
    fn balanced_trees_are_logarithmic_in_size() {
        // A complete binary query of depth 3: FS = fan-out × depth-ish,
        // much smaller than |Q|.
        let q = parse_query("/r[a[c[g and h] and d] and b[e and f]]").unwrap();
        // |Q| = 1 + 9 = 10; frontier at g: {g, h, d, b} = 4.
        assert_eq!(q.len(), 10);
        assert_eq!(frontier_size(&q), 4);
    }

    #[test]
    fn frontier_includes_successor_siblings() {
        // In Fig. 2 (/a[c[.//e and f] and b > 5]/b), the frontier at e
        // includes the successor b as well: {e, f, b-pred, b-succ}.
        let q = parse_query("/a[c[.//e and f] and b > 5]/b").unwrap();
        assert_eq!(frontier_size(&q), 4);
    }
}
