//! # fx-analysis
//!
//! The query-analysis machinery of the paper: the Redundancy-free XPath
//! fragment (§5), structural query automorphisms and subsumption (§6.3),
//! symbolic truth sets with the sunflower/prefix-sunflower witnesses
//! (§5.5), the query frontier size (Def. 4.1), canonical documents (§6.4),
//! and the path-matching quantities of §8.6.
//!
//! ```
//! use fx_xpath::parse_query;
//! use fx_analysis::{frontier_size, redundancy_free, canonical_document};
//!
//! let q = parse_query("/a[c[.//e and f] and b > 5]").unwrap();
//! assert_eq!(frontier_size(&q), 3);               // Fig. 3
//! assert!(redundancy_free(&q).is_empty());        // the fragment check
//! let cd = canonical_document(&q).unwrap();       // Fig. 8
//! assert!(cd.doc.to_xml().starts_with("<a><c><Z><e/></Z><f/></c><b>"));
//! ```

#![warn(missing_docs)]

pub mod automorphism;
pub mod canonical;
pub mod fragment;
pub mod frontier;
pub mod minimize;
pub mod pathmatch;
pub mod truthset;

pub use automorphism::{dominated_leaves, structural_domination_set, AutomorphismFinder};
pub use canonical::{
    auxiliary_name, canonical_document, canonical_key, canonical_residual_key, canonical_steps,
    sharable_prefix_len, sharable_prefix_of, shared_prefix_depth, strongly_subsumption_free,
    structurally_canonical_document, unique_values, CanonicalDocument, CanonicalForm,
    CanonicalStep,
};
pub use fragment::{
    closure_free, conjunctive, depth_theorem_node, leaf_only_value_restricted,
    recursive_xpath_node, star_restricted, univariate, FragmentViolation,
};
pub use frontier::{frontier, frontier_size, widest_frontier_node};
pub use minimize::{eliminate_one, find_redundancy, minimize, truth_implies, Redundancy};
pub use pathmatch::{
    path_consistency_free, path_consistent, path_match_sets, path_matches, path_recursion_depth,
    recursion_depth_wrt, text_width,
};
pub use truthset::{sample_distinct_member, sample_non_prefix, Shape, Tri, TruthSet};

use fx_xpath::Query;

/// The aggregate Redundancy-free XPath check (Definition 5.1): a query is
/// redundancy-free iff it is (1) star-restricted, (2) conjunctive,
/// (3) univariate, (4) leaf-only-value-restricted, and (5) strongly
/// subsumption-free. Returns all violations found (empty = redundancy
/// free).
pub fn redundancy_free(q: &Query) -> Vec<FragmentViolation> {
    let mut v = Vec::new();
    v.extend(fragment::star_restricted(q));
    v.extend(fragment::conjunctive(q));
    v.extend(fragment::univariate(q));
    // The later checks presume the earlier ones.
    if v.is_empty() {
        v.extend(fragment::leaf_only_value_restricted(q));
    }
    if v.is_empty() {
        v.extend(canonical::strongly_subsumption_free(q));
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use fx_xpath::parse_query;

    #[test]
    fn paper_queries_are_redundancy_free() {
        for src in [
            "/a[c[.//e and f] and b > 5]",
            "//a[b and c]",
            "/a/b",
            "//d[f and a[b and c]]",
            "/a[*/b > 5 and c/b//d > 12 and .//d < 30]",
            "/a[b/c > 5 and d]",
            "/a[b[c > 5]]",
        ] {
            let q = parse_query(src).unwrap();
            assert!(
                redundancy_free(&q).is_empty(),
                "{src}: {:?}",
                redundancy_free(&q)
            );
        }
    }

    #[test]
    fn paper_counterexamples_are_rejected() {
        // Each with its §5 reason.
        let cases = [
            ("/a[b > 5 and b > 6]", "redundant predicate (sunflower)"),
            ("/a/*", "star restriction (leaf wildcard)"),
            ("//*", "star restriction (descendant wildcard)"),
            ("/a[b or c]", "disjunction"),
            ("/a[not(b)]", "negation"),
            ("/a[b > c]", "multivariate"),
            ("/a[b[c] > 5]", "value-restricted internal node"),
            (
                "/a[b[c = \"A\"] and ends-with(b, \"B\")]",
                "prefix sunflower",
            ),
            ("/r[a//*]", "star restriction (wildcard below descendant)"),
            // The Fig. 2 query *with* the output step: the predicate's
            // `b > 5` leaf and the output `b` mutually structurally
            // subsume, and TRUTH(output b) = S covers everything, so the
            // sunflower property fails — the canonical matching would not
            // be unique (both b nodes could map to <b>6</b>). The
            // lower-bound sections consistently use the query *without*
            // the trailing /b.
            (
                "/a[c[.//e and f] and b > 5]/b",
                "sunflower via output/predicate twins",
            ),
        ];
        for (src, why) in cases {
            let q = parse_query(src).unwrap();
            assert!(
                !redundancy_free(&q).is_empty(),
                "{src} should be rejected ({why})"
            );
        }
    }

    #[test]
    fn wildcard_query_from_4_1_is_rejected() {
        // Q' = /a[c[.//* and f] and b > 5]: .//* violates star restriction,
        // which is how the fragment sidesteps the FS(Q') counterexample.
        let q = parse_query("/a[c[.//* and f] and b > 5]").unwrap();
        assert!(!redundancy_free(&q).is_empty());
    }
}
