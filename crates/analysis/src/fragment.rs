//! The restriction checks defining Redundancy-free XPath (Definition 5.1):
//! star-restricted (5.2), conjunctive (5.4), univariate (5.5), and
//! leaf-only-value-restricted (5.7). Strong subsumption-freeness (5.18) is
//! in [`crate::automorphism`]; the aggregate check is
//! [`crate::redundancy_free`].

use fx_eval::truth::{constraining_predicate, is_atomic, TruthError};
use fx_xpath::{Axis, Expr, NodeTest, Query, QueryNodeId};

/// A reason a query falls outside a fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FragmentViolation {
    /// A wildcard node is a leaf (Def. 5.2 (1)).
    WildcardLeaf(QueryNodeId),
    /// A wildcard node has a descendant axis (Def. 5.2 (2)).
    WildcardDescendantAxis(QueryNodeId),
    /// A wildcard node has a child with a descendant axis (Def. 5.2 (3)).
    WildcardChildDescendantAxis(QueryNodeId),
    /// A predicate contains `or`/`not` or otherwise fails to be a
    /// conjunction of atomic predicates (Def. 5.4).
    NotConjunctive(QueryNodeId),
    /// An atomic predicate references more than one variable (Def. 5.5).
    NotUnivariate(QueryNodeId),
    /// An internal node is value-restricted (Def. 5.7).
    InternalValueRestricted(QueryNodeId),
    /// The sunflower property fails at a leaf (Def. 5.16) — no witness
    /// value in `TRUTH(u)` outside the dominated leaves' truth sets.
    SunflowerFails(QueryNodeId),
    /// The prefix sunflower property fails at an internal node (Def. 5.17).
    PrefixSunflowerFails(QueryNodeId),
    /// Truth sets could not be analyzed.
    Truth(String),
}

impl std::fmt::Display for FragmentViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        use FragmentViolation::*;
        match self {
            WildcardLeaf(u) => write!(f, "wildcard node {u} is a leaf"),
            WildcardDescendantAxis(u) => write!(f, "wildcard node {u} has a descendant axis"),
            WildcardChildDescendantAxis(u) => {
                write!(f, "wildcard node {u} has a child with a descendant axis")
            }
            NotConjunctive(u) => write!(
                f,
                "predicate of {u} is not a conjunction of atomic predicates"
            ),
            NotUnivariate(u) => write!(f, "an atomic predicate of {u} has more than one variable"),
            InternalValueRestricted(u) => write!(f, "internal node {u} is value-restricted"),
            SunflowerFails(u) => write!(f, "sunflower property fails at leaf {u}"),
            PrefixSunflowerFails(u) => {
                write!(f, "prefix sunflower property fails at internal node {u}")
            }
            Truth(m) => write!(f, "truth-set analysis failed: {m}"),
        }
    }
}

impl From<TruthError> for FragmentViolation {
    fn from(e: TruthError) -> Self {
        FragmentViolation::Truth(e.to_string())
    }
}

/// Definition 5.2: no wildcard node is a leaf, has a descendant axis, or
/// has a child with a descendant axis. (Path expressions like `a/*`,
/// `a//*/b`, and `a/*//b` are disallowed.)
pub fn star_restricted(q: &Query) -> Vec<FragmentViolation> {
    let mut out = Vec::new();
    for u in q.all_nodes() {
        if !matches!(q.ntest(u), Some(NodeTest::Wildcard)) {
            continue;
        }
        if q.is_leaf(u) {
            out.push(FragmentViolation::WildcardLeaf(u));
        }
        if q.axis(u) == Some(Axis::Descendant) {
            out.push(FragmentViolation::WildcardDescendantAxis(u));
        }
        if q.children(u)
            .iter()
            .any(|&c| q.axis(c) == Some(Axis::Descendant))
        {
            out.push(FragmentViolation::WildcardChildDescendantAxis(u));
        }
    }
    out
}

/// Definition 5.4: every predicate is an atomic predicate or a conjunction
/// of atomic predicates.
pub fn conjunctive(q: &Query) -> Vec<FragmentViolation> {
    let mut out = Vec::new();
    for u in q.all_nodes() {
        if let Some(pred) = q.predicate(u) {
            if !pred.conjuncts().iter().all(|c| is_atomic(c)) {
                out.push(FragmentViolation::NotConjunctive(u));
            }
        }
    }
    out
}

/// Definition 5.5: every atomic predicate has at most one variable. (Only
/// meaningful for conjunctive queries; non-conjunctive predicates are
/// reported by [`conjunctive`].)
pub fn univariate(q: &Query) -> Vec<FragmentViolation> {
    let mut out = Vec::new();
    for u in q.all_nodes() {
        if let Some(pred) = q.predicate(u) {
            for c in pred.conjuncts() {
                if is_atomic(c) && c.vars().len() > 1 {
                    out.push(FragmentViolation::NotUnivariate(u));
                    break;
                }
            }
        }
    }
    out
}

/// Definition 5.7: no internal node is value-restricted.
pub fn leaf_only_value_restricted(q: &Query) -> Vec<FragmentViolation> {
    let mut out = Vec::new();
    for u in q.all_nodes() {
        if q.is_leaf(u) {
            continue;
        }
        match constraining_predicate(q, u) {
            Ok(Some(_)) => out.push(FragmentViolation::InternalValueRestricted(u)),
            Ok(None) => {}
            Err(e) => out.push(e.into()),
        }
    }
    out
}

/// True if the query never uses the descendant axis (Def. 8.7).
pub fn closure_free(q: &Query) -> bool {
    q.all_nodes().all(|u| q.axis(u) != Some(Axis::Descendant))
}

/// §7.2.1 Recursive XPath: returns the distinguished node `v` — a node
/// such that (1) `v` or one of its ancestors has a descendant axis, and
/// (2) `v` has at least two children with a child axis — if one exists.
pub fn recursive_xpath_node(q: &Query) -> Option<QueryNodeId> {
    q.all_nodes().find(|&v| {
        let under_descendant = q
            .path(v)
            .iter()
            .any(|&n| q.axis(n) == Some(Axis::Descendant));
        let child_children = q
            .children(v)
            .iter()
            .filter(|&&c| q.axis(c) == Some(Axis::Child))
            .count();
        under_descendant && child_children >= 2
    })
}

/// Theorem 7.14 eligibility: a node `u` with a child axis such that neither
/// `u` nor its parent has a wildcard node test. Returns such a `u`. The
/// parent must be a proper (non-root) query node: the construction inserts
/// auxiliary paths between `φ(PARENT(u))` and `φ(u)`, which requires
/// `φ(PARENT(u))` to be an element.
pub fn depth_theorem_node(q: &Query) -> Option<QueryNodeId> {
    q.all_nodes().find(|&u| {
        q.axis(u) == Some(Axis::Child)
            && matches!(q.ntest(u), Some(NodeTest::Name(_)))
            && q.parent(u)
                .is_some_and(|p| p != q.root() && matches!(q.ntest(p), Some(NodeTest::Name(_))))
    })
}

/// Collects the variables of each atomic predicate of `u` along with the
/// conjunct expression (helper shared by analyses).
pub fn atomic_conjuncts(q: &Query, u: QueryNodeId) -> Vec<(Expr, Vec<QueryNodeId>)> {
    q.predicate(u)
        .map(|p| {
            p.conjuncts()
                .into_iter()
                .map(|c| (c.clone(), c.vars()))
                .collect()
        })
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fx_xpath::parse_query;

    fn q(s: &str) -> Query {
        parse_query(s).unwrap()
    }

    #[test]
    fn star_restriction_examples() {
        // Paper: a/*, a//*/b, a/*//b are disallowed.
        assert!(!star_restricted(&q("/a/*")).is_empty());
        assert!(!star_restricted(&q("/a//*/b")).is_empty());
        assert!(!star_restricted(&q("/a/*//b")).is_empty());
        // a/*/b is fine.
        assert!(star_restricted(&q("/a/*/b")).is_empty());
        assert!(star_restricted(&q("/a[*/b > 5]")).is_empty());
        // The problematic mix from §5: [a//*].
        assert!(!star_restricted(&q("/r[a//*]")).is_empty());
    }

    #[test]
    fn conjunctive_examples() {
        assert!(conjunctive(&q("/a[b > 5 and c + 1 = 7]")).is_empty());
        assert!(!conjunctive(&q("/a[b or c]")).is_empty());
        assert!(!conjunctive(&q("/a[not(b)]")).is_empty());
        // Boolean nested under arithmetic: 1 - (a > 5) (§5.2 example).
        assert!(!conjunctive(&q("/a[1 - (b > 5) = 0]")).is_empty());
    }

    #[test]
    fn univariate_examples() {
        // §5.3: "b > 5" univariate; "c + d = 7" is not.
        assert!(univariate(&q("/a[b > 5]")).is_empty());
        assert!(!univariate(&q("/a[b > 5 and c + d = 7]")).is_empty());
        // [a//b] is univariate: only a is a variable (b is a successor).
        assert!(univariate(&q("/r[a//b]")).is_empty());
    }

    #[test]
    fn leaf_only_value_restricted_examples() {
        // §5.4: /a[b[c] > 5] is not LOVR; /a[b[c > 5]] is.
        assert!(!leaf_only_value_restricted(&q("/a[b[c] > 5]")).is_empty());
        assert!(leaf_only_value_restricted(&q("/a[b[c > 5]]")).is_empty());
        assert!(leaf_only_value_restricted(&q("/a[b > 5]")).is_empty());
    }

    #[test]
    fn closure_free_examples() {
        assert!(closure_free(&q("/a/b[c]")));
        assert!(!closure_free(&q("//a")));
        assert!(!closure_free(&q("/a[.//b]")));
    }

    #[test]
    fn recursive_xpath_detection() {
        // //a[b and c]: v = a.
        let query = q("//a[b and c]");
        let v = recursive_xpath_node(&query).unwrap();
        assert_eq!(query.ntest(v), Some(&NodeTest::Name("a".into())));
        // //d[f and a[b and c]]: both d and a qualify; some node returned.
        assert!(recursive_xpath_node(&q("//d[f and a[b and c]]")).is_some());
        // //a and //a//b do not qualify (the paper's remark).
        assert!(recursive_xpath_node(&q("//a")).is_none());
        assert!(recursive_xpath_node(&q("//a//b")).is_none());
        // /a[b and c] has no descendant axis on the path.
        assert!(recursive_xpath_node(&q("/a[b and c]")).is_none());
    }

    #[test]
    fn depth_theorem_detection() {
        // /a/b qualifies at b (parent a is named).
        assert!(depth_theorem_node(&q("/a/b")).is_some());
        // //a, */a, a/* do not (the §7.3 remark); //a//b neither.
        assert!(depth_theorem_node(&q("//a")).is_none());
        assert!(depth_theorem_node(&q("/*/a")).is_none());
        assert!(depth_theorem_node(&q("//a//b")).is_none());
        // //a/b qualifies at b.
        assert!(depth_theorem_node(&q("//a/b")).is_some());
        // /a alone does not: the construction needs an element above φ(u),
        // and /a can be decided with O(1) bits regardless of depth.
        assert!(depth_theorem_node(&q("/a")).is_none());
    }
}
