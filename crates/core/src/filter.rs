//! The streaming XPath filtering algorithm of Section 8.
//!
//! The algorithm gradually constructs a matching of the document with the
//! query on a *frontier* of the query (§8.1). When a `startElement` event
//! arrives for a document node `x`, every frontier record `u` for which `x`
//! is a *candidate match* spawns records for `u`'s children; when the
//! matching `endElement` arrives, those child records decide whether `x`
//! turned into a *real match* for `u`. The document matches the query iff
//! the query root's children are all matched at `endDocument`.
//!
//! The implementation follows the pseudocode of Figs. 20–21, with two
//! corrections documented in `DESIGN.md`:
//!
//! 1. *match-flag clobbering*: Fig. 21 line 28 sets `urec.matched := m`,
//!    which under recursion lets a failed outer candidate erase an inner
//!    candidate's success; we accumulate `matched ∨= m`;
//! 2. *buffer-offset overwrite*: Fig. 20 line 8 stores a single
//!    `strValueStart` per record, which nested candidacies of a
//!    descendant-axis leaf overwrite; we keep a stack of offsets.
//!
//! Neither changes the space complexity (Thm 8.8): the offset stack depth
//! is bounded by the path recursion depth `r`, which the theorem already
//! charges per record.

use crate::reporter::{Frame, Match, MatchSink, Reporter};
use crate::space::SpaceStats;
use fx_eval::truth::{constraining_predicate, TruthError};
use fx_xml::{
    AttrBuf, Event, EventBatch, EventRef, SaxHandler, Span, Sym, SymAttr, SymCache, SymEvent,
    Symbols,
};
use fx_xpath::{Axis, Expr, NodeTest, Query, QueryNodeId};
use std::fmt;
use std::sync::Arc;

/// Why a query cannot be handled by the streaming filter. The algorithm
/// supports every leaf-only-value-restricted univariate conjunctive query
/// (§8 intro).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnsupportedQuery {
    /// A predicate is not a conjunction of atomic predicates.
    NotConjunctive(QueryNodeId),
    /// An atomic predicate has more than one variable.
    NotUnivariate(QueryNodeId),
    /// An internal node is value-restricted.
    NotLeafOnlyValueRestricted(QueryNodeId),
    /// Position reporting was requested but the output node is reached
    /// via an attribute axis (attributes carry no element ordinal).
    AttributeOutput,
}

impl fmt::Display for UnsupportedQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnsupportedQuery::NotConjunctive(u) => {
                write!(f, "predicate of {u} is not conjunctive")
            }
            UnsupportedQuery::NotUnivariate(u) => {
                write!(f, "predicate of {u} is not univariate")
            }
            UnsupportedQuery::NotLeafOnlyValueRestricted(u) => {
                write!(f, "internal node {u} is value-restricted")
            }
            UnsupportedQuery::AttributeOutput => {
                write!(
                    f,
                    "position reporting does not support attribute output nodes"
                )
            }
        }
    }
}

impl std::error::Error for UnsupportedQuery {}

/// A compiled query node: the per-node data the event handlers consult.
#[derive(Debug, Clone)]
struct CNode {
    axis: Axis,
    ntest: NodeTest,
    /// The node test resolved against the compiled query's [`Symbols`]
    /// table: `None` for a wildcard, otherwise the interned name. The
    /// per-event node-test check is a single integer compare against
    /// this — never a string compare.
    sym: Option<Sym>,
    children: Vec<u32>,
    /// For leaves: the constraining atomic predicate and its variable, or
    /// `None` when `TRUTH(u) = S` (any candidate is a real match).
    leaf_predicate: Option<(Expr, QueryNodeId)>,
    is_leaf: bool,
}

impl CNode {
    /// Whether an element or attribute named `name` passes this node's
    /// test. [`Sym::UNKNOWN`] (a name the table never interned) fails
    /// every named test and passes every wildcard, exactly like a fresh
    /// name would.
    #[inline]
    fn passes(&self, name: Sym) -> bool {
        match self.sym {
            None => true,
            Some(s) => s == name,
        }
    }
}

/// Resolves a node test against a symbol table (`None` = wildcard).
fn intern_ntest(symbols: &Symbols, ntest: &NodeTest) -> Option<Sym> {
    match ntest {
        NodeTest::Wildcard => None,
        NodeTest::Name(n) => Some(symbols.intern(n)),
    }
}

/// The compiled form of a query accepted by the filter.
#[derive(Debug, Clone)]
pub struct CompiledQuery {
    nodes: Vec<CNode>,
    parents: Vec<u32>,
    root_children: Vec<u32>,
    /// The succession chain from the root to `OUT(Q)` (excluding the
    /// root). `out_path[m-1]` is the output node.
    pub(crate) out_path: Vec<u32>,
    /// For each node: its 1-based index on the output path, if any.
    pub(crate) path_index: Vec<Option<u16>>,
    /// For each 1-based output-path index: whether that step has a
    /// child axis (precomputed so spawning a filter from shared compiled
    /// state allocates nothing).
    pub(crate) out_axes_child: Vec<bool>,
    size: usize,
    source: String,
    /// The symbol table the node tests were resolved against. Events
    /// must reach the filter as syms from this same table (the owned
    /// [`Event`] entry points convert through it automatically).
    symbols: Arc<Symbols>,
}

impl CompiledQuery {
    /// Compiles `q` against a fresh private [`Symbols`] table,
    /// verifying it lies in the supported fragment. To share one table
    /// across a bank (so one event conversion serves every query), use
    /// [`CompiledQuery::compile_with`].
    pub fn compile(q: &Query) -> Result<CompiledQuery, UnsupportedQuery> {
        CompiledQuery::compile_with(q, Arc::new(Symbols::new()))
    }

    /// Compiles `q`, interning its node tests into `symbols`.
    pub fn compile_with(
        q: &Query,
        symbols: Arc<Symbols>,
    ) -> Result<CompiledQuery, UnsupportedQuery> {
        // Fragment checks (§8: leaf-only-value-restricted univariate
        // conjunctive).
        for u in q.all_nodes() {
            if let Some(p) = q.predicate(u) {
                for c in p.conjuncts() {
                    if !fx_eval::is_atomic(c) {
                        return Err(UnsupportedQuery::NotConjunctive(u));
                    }
                    if c.vars().len() > 1 {
                        return Err(UnsupportedQuery::NotUnivariate(u));
                    }
                }
            }
        }
        let mut nodes = Vec::with_capacity(q.len());
        for u in q.all_nodes() {
            let leaf_predicate = match constraining_predicate(q, u) {
                Ok(p) => p.map(|(var, e)| (e, var)),
                Err(TruthError::NotUnivariate { node }) => {
                    return Err(UnsupportedQuery::NotUnivariate(node))
                }
                Err(TruthError::NotAtomic { node }) => {
                    return Err(UnsupportedQuery::NotConjunctive(node))
                }
                Err(TruthError::Eval(_)) => None,
            };
            let is_leaf = q.is_leaf(u);
            if !is_leaf && leaf_predicate.is_some() {
                return Err(UnsupportedQuery::NotLeafOnlyValueRestricted(u));
            }
            let ntest = q.ntest(u).cloned().unwrap_or(NodeTest::Wildcard);
            nodes.push(CNode {
                axis: q.axis(u).unwrap_or(Axis::Child),
                sym: intern_ntest(&symbols, &ntest),
                ntest,
                children: q.children(u).iter().map(|c| c.0).collect(),
                leaf_predicate: if is_leaf { leaf_predicate } else { None },
                is_leaf,
            });
        }
        let root_children = nodes[0].children.clone();
        let parents = q
            .all_nodes()
            .map(|u| q.parent(u).unwrap_or(q.root()).0)
            .collect();
        let mut out_path = Vec::new();
        let mut path_index = vec![None; q.len()];
        let mut cur = q.root();
        while let Some(next) = q.successor(cur) {
            out_path.push(next.0);
            path_index[next.index()] = Some(out_path.len() as u16);
            cur = next;
        }
        let out_axes_child = out_path
            .iter()
            .map(|&n| nodes[n as usize].axis != Axis::Descendant)
            .collect();
        Ok(CompiledQuery {
            nodes,
            parents,
            root_children,
            out_path,
            path_index,
            out_axes_child,
            size: q.len(),
            source: fx_xpath::to_xpath(q),
            symbols,
        })
    }

    /// The symbol table this query's node tests are resolved against.
    pub fn symbols(&self) -> &Arc<Symbols> {
        &self.symbols
    }

    /// Re-resolves the node tests against `symbols` (a no-op when it is
    /// already this query's table). Banks call this to unify queries
    /// compiled against different private tables onto one shared table,
    /// so a single per-event conversion serves the whole bank.
    pub fn bind(&mut self, symbols: &Arc<Symbols>) {
        if Arc::ptr_eq(&self.symbols, symbols) {
            return;
        }
        for n in &mut self.nodes {
            n.sym = intern_ntest(symbols, &n.ntest);
        }
        self.symbols = Arc::clone(symbols);
    }

    /// The query size `|Q|`.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The XPath text the query was compiled from.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The `(node-test sym, axis)` pairs of the query root's children —
    /// the records a fresh filter starts with. The indexed bank derives
    /// *dormancy triggers* from these: until some event selects one of
    /// them, a residual instance provably holds no state beyond its
    /// initial records and need not exist at all.
    pub(crate) fn root_child_specs(&self) -> impl Iterator<Item = (Option<Sym>, Axis)> + '_ {
        self.root_children
            .iter()
            .map(|&c| (self.nodes[c as usize].sym, self.nodes[c as usize].axis))
    }

    /// Whether the query can run in *reporting* (selection) mode:
    /// position reporting requires an element output node, since
    /// attributes carry no element ordinal.
    pub fn reporting_supported(&self) -> Result<(), UnsupportedQuery> {
        if self
            .out_path
            .iter()
            .any(|&n| self.nodes[n as usize].axis == Axis::Attribute)
        {
            return Err(UnsupportedQuery::AttributeOutput);
        }
        Ok(())
    }
}

/// One row of the frontier table (§8.2), extended with the offset stack.
#[derive(Debug, Clone)]
pub struct FrontierRecord {
    /// The query node this record tracks (`ref`).
    pub node: u32,
    /// Has a real match been found (`matched`)?
    pub matched: bool,
    /// The document level at which a child-axis candidate must appear;
    /// for descendant-axis records, the insertion level (candidates may be
    /// deeper).
    pub level: usize,
    /// Buffer offsets of the string values of currently-open candidacies
    /// (leaf records only). Innermost last.
    pub str_starts: Vec<usize>,
}

/// The streaming filter: feed it SAX events through
/// [`StreamFilter::process`] (or [`StreamFilter::process_spanned`], to
/// stamp reported matches with source byte spans) and read the verdict
/// at `endDocument`.
#[derive(Debug, Clone)]
pub struct StreamFilter {
    /// The compiled query, behind an [`Arc`] so many filters (e.g. the
    /// residual instances the indexed bank spawns per activation) share
    /// one compilation: constructing a filter from an existing handle is
    /// a reference-count bump, never a recompilation or deep clone.
    query: Arc<CompiledQuery>,
    /// All mutable per-document state, split from `query` so the event
    /// handlers borrow the compiled query and the state disjointly —
    /// no per-event `Arc` traffic, no cloning of compiled nodes.
    st: FilterState,
    /// Reused attribute buffer for the owned-event conversion layer.
    attr_scratch: AttrBuf,
    /// Lock-free name-lookup memo for the owned-event conversion layer.
    name_cache: SymCache,
}

/// The mutable half of a [`StreamFilter`]: the frontier table and every
/// per-document accumulator, plus the reused per-event scratch buffers
/// that keep the handlers allocation-free in steady state.
#[derive(Debug, Clone)]
struct FilterState {
    frontier: Vec<FrontierRecord>,
    buffer: String,
    buffer_refs: usize,
    current_level: usize,
    stats: SpaceStats,
    result: Option<bool>,
    /// Full-evaluation extension: present in reporting mode only.
    reporter: Option<Reporter>,
    /// Ordinal of the next element start (reporting mode).
    element_ordinal: u64,
    /// Old `matched` values of child-axis records removed at candidacy
    /// start, so reporting mode can restore them at reinsertion (keyed by
    /// (node, level), stack discipline).
    removed_matched: Vec<(u32, usize, bool)>,
    /// Bumped whenever some record's `matched` flag turns true; lets the
    /// multi-query bank re-run the (recursive) early-decision check only
    /// when it could possibly have changed.
    match_progress: u64,
    /// Reused per-event scratch: indices of child-axis records leaving
    /// the table at a `startElement`.
    scratch_remove: Vec<usize>,
    /// Reused per-event scratch: records spawned at a `startElement`.
    scratch_insert: Vec<FrontierRecord>,
    /// Reused per-event scratch: distinct parents folded at an
    /// `endElement`.
    scratch_parents: Vec<u32>,
    /// Reused per-event scratch: `(parent, all_matched, pred_matched)`
    /// fold results of an `endElement`.
    scratch_groups: Vec<(u32, bool, bool)>,
    /// The arguments of the last delivered `SpaceStats::observe` call:
    /// `(rows, stack entries, buffer bytes, level)`. A snapshot whose
    /// components are all ≤ these is dominated (the bits formula is
    /// monotone in every argument), so it cannot move any maximum and
    /// is skipped — most events of a steady stream don't re-enter the
    /// observation arithmetic at all.
    observe_snap: (usize, usize, usize, usize),
}

impl StreamFilter {
    /// Creates a filter for a supported query.
    pub fn new(q: &Query) -> Result<StreamFilter, UnsupportedQuery> {
        Ok(StreamFilter::from_compiled(CompiledQuery::compile(q)?))
    }

    /// Creates a filter from an already-compiled query (cheap; used by the
    /// multi-query engine to share compilation).
    pub fn from_compiled(query: CompiledQuery) -> StreamFilter {
        StreamFilter::from_shared(Arc::new(query))
    }

    /// Creates a filter from a *shared* compiled query: a reference-count
    /// bump plus empty per-document state — no recompilation, no deep
    /// clone, no per-step allocation. This is the indexed bank's
    /// activation hot path (one call per residual instance spawned).
    pub fn from_shared(query: Arc<CompiledQuery>) -> StreamFilter {
        let size = query.size();
        StreamFilter {
            query,
            st: FilterState {
                frontier: Vec::new(),
                buffer: String::new(),
                buffer_refs: 0,
                current_level: 0,
                stats: SpaceStats::new(size),
                result: None,
                reporter: None,
                element_ordinal: 0,
                removed_matched: Vec::new(),
                match_progress: 0,
                scratch_remove: Vec::new(),
                scratch_insert: Vec::new(),
                scratch_parents: Vec::new(),
                scratch_groups: Vec::new(),
                observe_snap: (0, 0, 0, 0),
            },
            attr_scratch: AttrBuf::new(),
            name_cache: SymCache::new(),
        }
    }

    /// Creates a filter in *reporting* mode: besides the boolean verdict,
    /// it reports the element ordinals (0-based `startElement` positions)
    /// of the nodes `FULLEVAL(Q, D)` selects. This is the full-evaluation
    /// extension the paper sketches in §1; it buffers unresolved candidate
    /// positions, the cost the paper's follow-up \[5\] proves unavoidable.
    pub fn new_reporting(q: &Query) -> Result<StreamFilter, UnsupportedQuery> {
        StreamFilter::from_compiled_reporting(CompiledQuery::compile(q)?)
    }

    /// Reporting-mode filter from an already-compiled query (cheap; used
    /// by the multi-query bank and the engine's selection mode).
    pub fn from_compiled_reporting(query: CompiledQuery) -> Result<StreamFilter, UnsupportedQuery> {
        StreamFilter::from_shared_reporting(Arc::new(query))
    }

    /// Reporting-mode filter from a *shared* compiled query — the
    /// selection-mode counterpart of [`StreamFilter::from_shared`].
    pub fn from_shared_reporting(
        query: Arc<CompiledQuery>,
    ) -> Result<StreamFilter, UnsupportedQuery> {
        query.reporting_supported()?;
        let mut f = StreamFilter::from_shared(query);
        f.st.reporter = Some(Reporter::default());
        Ok(f)
    }

    /// One-shot full evaluation: the ordinals of selected elements.
    pub fn run_reporting(q: &Query, events: &[Event]) -> Result<Vec<u64>, UnsupportedQuery> {
        let mut f = StreamFilter::new_reporting(q)?;
        f.process_all(events);
        Ok(f.matched_positions()
            .expect("endDocument delivers positions"))
    }

    /// In reporting mode, after `endDocument`: the sorted element
    /// ordinals selected by `FULLEVAL(Q, D)` that have **not** been
    /// drained through [`StreamFilter::drain_matches`].
    ///
    /// This is the legacy batch accessor, now a thin wrapper over the
    /// reporter's collecting outbox: when nothing drains matches
    /// incrementally (the `run_reporting` path) every confirmed position
    /// accumulates there and this returns the complete result set.
    pub fn matched_positions(&self) -> Option<Vec<u64>> {
        match (&self.st.reporter, self.st.result) {
            (Some(rep), Some(_)) => Some(rep.results()),
            _ => None,
        }
    }

    /// Drains every match confirmed since the last drain into `sink`,
    /// stamped with bank index `query`. The engine calls this after each
    /// event, so matches reach the consumer the moment the paper's
    /// frontier resolves their ancestor chains — not at `endDocument`.
    ///
    /// No-op in filtering (non-reporting) mode.
    pub fn drain_matches(&mut self, query: usize, sink: &mut dyn MatchSink) {
        if let Some(rep) = &mut self.st.reporter {
            for (ordinal, span) in rep.drain_outbox() {
                sink.on_match(Match {
                    query,
                    ordinal,
                    span,
                });
            }
        }
    }

    /// Peak number of simultaneously buffered *unresolved* candidate
    /// positions (reporting mode) — the \[5\] buffering cost. Matches whose
    /// ancestor chains already resolved are emitted immediately and never
    /// counted here.
    pub fn peak_pending_positions(&self) -> usize {
        self.st.reporter.as_ref().map_or(0, |r| r.max_pendings)
    }

    /// True when this filter reports positions (selection mode).
    pub fn is_reporting(&self) -> bool {
        self.st.reporter.is_some()
    }

    /// Feeds a slice of events.
    pub fn process_all(&mut self, events: &[Event]) {
        for e in events {
            self.process(e);
        }
    }

    /// Feeds a whole stream and returns the verdict — the same shape as
    /// the automata baselines' `run_stream`, so comparative tests can
    /// treat all engines uniformly.
    pub fn run_stream(&mut self, events: &[Event]) -> Option<bool> {
        self.process_all(events);
        self.result()
    }

    /// Feeds one event without span information (matches then carry
    /// [`Span::EMPTY`]). Sources that know byte offsets use
    /// [`StreamFilter::process_spanned`].
    pub fn process(&mut self, event: &Event) {
        self.process_spanned(event, Span::EMPTY);
    }

    /// Feeds one event together with its source byte span, so reporting
    /// mode can stamp each confirmed match with the element's full
    /// source range (start tag through end tag).
    ///
    /// This is the owned-event conversion layer: the name is resolved
    /// to a [`Sym`] through the compiled query's table (a read-only
    /// lookup) and dispatch proceeds on integers. Sources that already
    /// hold interned events (`fx_xml::StreamingParser::feed_interned`)
    /// should call [`StreamFilter::process_sym`] directly and skip the
    /// lookup.
    pub fn process_spanned(&mut self, event: &Event, span: Span) {
        self.process_ref(event.as_ref(), span);
    }

    /// [`StreamFilter::process_spanned`] over a borrowed
    /// [`EventRef`] — no owned `Event` needs to exist. Names are
    /// resolved through a per-filter lock-free [`SymCache`]; unknown
    /// names become [`Sym::UNKNOWN`] and fail every named node test.
    pub fn process_ref(&mut self, event: EventRef<'_>, span: Span) {
        match event {
            EventRef::StartDocument => self.process_sym(SymEvent::StartDocument, span),
            EventRef::EndDocument => self.process_sym(SymEvent::EndDocument, span),
            EventRef::StartElement { name, attributes } => {
                let sym = self.name_cache.lookup(self.query.symbols(), name);
                if attributes.is_empty() {
                    self.process_sym(
                        SymEvent::StartElement {
                            name: sym,
                            attributes: &[],
                        },
                        span,
                    );
                } else {
                    let mut scratch = std::mem::take(&mut self.attr_scratch);
                    let attrs = scratch.fill_from_cached(
                        &mut self.name_cache,
                        self.query.symbols(),
                        attributes,
                    );
                    self.process_sym(
                        SymEvent::StartElement {
                            name: sym,
                            attributes: attrs,
                        },
                        span,
                    );
                    self.attr_scratch = scratch;
                }
            }
            EventRef::EndElement { name } => {
                let sym = self.name_cache.lookup(self.query.symbols(), name);
                self.process_sym(SymEvent::EndElement { name: sym }, span);
            }
            EventRef::Text { content } => self.process_sym(SymEvent::Text { content }, span),
        }
    }

    /// Feeds one *interned* event: the allocation-free hot path. The
    /// event's syms must come from this filter's compiled table
    /// ([`CompiledQuery::symbols`]) — feed the same table to the parser
    /// (`StreamingParser::with_symbols`) and the names meet as equal
    /// integers.
    pub fn process_sym(&mut self, event: SymEvent<'_>, span: Span) {
        // Disjoint borrows: the compiled query is read, the state is
        // mutated — no per-event refcount traffic, no cloning.
        let q: &CompiledQuery = &self.query;
        let st = &mut self.st;
        match event {
            SymEvent::StartDocument => st.start_document(q),
            SymEvent::EndDocument => st.end_document(q),
            SymEvent::StartElement { name, attributes } => {
                st.start_element(q, name, attributes, span)
            }
            SymEvent::EndElement { name } => st.end_element(q, name, span),
            SymEvent::Text { content } => st.text(content),
        }
        st.stats.events += 1;
        // `buffer_refs` counts the open leaf candidacies, which is
        // exactly the total of per-record offset-stack entries.
        let snap = (
            st.frontier.len(),
            st.buffer_refs,
            st.buffer.len(),
            st.current_level,
        );
        let dominated = snap.0 <= st.observe_snap.0
            && snap.1 <= st.observe_snap.1
            && snap.2 <= st.observe_snap.2
            && snap.3 <= st.observe_snap.3;
        if !dominated {
            // The snapshot must be a tuple that was actually observed —
            // a pointwise max of several would dominate points whose
            // bits exceed every real observation.
            st.observe_snap = snap;
            st.stats.observe(snap.0, snap.1, snap.2, snap.3);
        }
    }

    /// Feeds a whole interned [`EventBatch`] in one call: the batch is
    /// replayed into [`StreamFilter::process_sym`] with the attribute
    /// `scratch` hoisted out of the per-event loop, so the filter sees
    /// exactly the per-event stream but pays the call boundary once per
    /// run. The batch's syms must come from the same table as the
    /// compiled query.
    pub fn process_batch(&mut self, batch: &EventBatch, scratch: &mut AttrBuf) {
        batch.replay(scratch, |ev, span| self.process_sym(ev, span));
    }

    /// [`StreamFilter::process_batch`] with confirmed matches drained
    /// **once per batch** instead of once per event. The reporter's
    /// outbox is a FIFO, so a single filter's match order is exactly
    /// that of the per-event drain — only the sink-call granularity is
    /// amortized. (The multi-filter bank keeps per-event draining to
    /// preserve cross-filter match interleaving.)
    pub fn process_batch_to(
        &mut self,
        batch: &EventBatch,
        scratch: &mut AttrBuf,
        query: usize,
        sink: &mut dyn MatchSink,
    ) {
        self.process_batch(batch, scratch);
        self.drain_matches(query, sink);
    }

    /// The verdict, available after `endDocument`.
    pub fn result(&self) -> Option<bool> {
        self.st.result
    }

    /// Early decision: `Some(verdict)` as soon as the verdict can no
    /// longer change, even mid-document.
    ///
    /// In filtering mode the `matched` flags of the query root's child
    /// records are monotone (a real match is never revoked), so once
    /// every root child is matched the document is accepted regardless
    /// of the remaining events; conversely, a child-axis root child the
    /// root element failed to select can never match, deciding the
    /// document rejected at its very first tag. The multi-query bank
    /// uses both to stop feeding decided filters — the XFilter-style
    /// hot-path win. Reporting mode never decides early (every candidate
    /// must still be examined), and an undecided filter reports `None`
    /// until `endDocument`.
    pub fn decided(&self) -> Option<bool> {
        if self.st.result.is_some() {
            return self.st.result;
        }
        if self.st.reporter.is_some() {
            return None;
        }
        if self
            .query
            .root_children
            .iter()
            .all(|&v| self.st.satisfied_at(&self.query, v, 0))
        {
            return Some(true);
        }
        // Early FALSE: a child-axis root child's only possible candidate
        // is the document root element. While we are inside the root
        // (`current_level > 0`), a level-0 child-axis record still present
        // and unmatched with no open candidacy means the root's start tag
        // did not select it — its node test failed — so it can never
        // match and the conjunction is dead. This is the dominant
        // dissemination case: most `/doc[...]`-shaped filters die on the
        // root tag of a non-matching document.
        if self.st.current_level > 0 {
            let impossible = self.st.frontier.iter().any(|r| {
                r.level == 0
                    && !r.matched
                    && r.str_starts.is_empty()
                    && self.query.nodes[r.node as usize].axis == Axis::Child
            });
            if impossible {
                return Some(false);
            }
        }
        None
    }

    /// Monotone counter of decision-relevant transitions within the
    /// current document: match flags turning true, plus the root
    /// element's start (which can kill child-axis filters early).
    /// [`StreamFilter::decided`] can only flip on such a transition, so
    /// callers polling it per event (the multi-query bank) re-check only
    /// when this value moved — keeping the polling off the hot path.
    pub fn match_progress(&self) -> u64 {
        self.st.match_progress
    }

    /// Fast-forwards a freshly-started filter to document level
    /// `level`, as if it had processed `level` enclosing start tags
    /// none of which selected any record. Sound exactly when that is
    /// true — the indexed bank's dormant activations guarantee it (the
    /// first *selecting* event is the one that wakes the instance), in
    /// which case the skipped events could only have moved the level,
    /// the ordinal counter (compensated via the bank's ordinal offset)
    /// and the space statistics (intentionally not charged: the state
    /// genuinely never existed). In reporting mode the missed ancestors
    /// get empty frames — correct, since none of them was a candidate.
    pub(crate) fn fast_forward(&mut self, level: usize) {
        self.st.current_level = level;
        if let Some(rep) = &mut self.st.reporter {
            for _ in 0..level {
                rep.open_element(Frame::default());
            }
        }
    }

    /// Resets the cumulative space/pending statistics to a fresh-filter
    /// state, so a *pooled* filter (the indexed bank recycles retired
    /// residual instances) reports exactly what a newly-spawned one
    /// would. Frontier state is reset by the next `StartDocument` as
    /// usual; only the monotone counters need explicit clearing.
    pub(crate) fn reset_metrics(&mut self) {
        self.st.stats = SpaceStats::new(self.query.size());
        self.st.observe_snap = (0, 0, 0, 0);
        if let Some(rep) = &mut self.st.reporter {
            rep.reset();
            rep.max_pendings = 0;
        }
    }

    /// The space statistics gathered so far.
    pub fn stats(&self) -> &SpaceStats {
        &self.st.stats
    }

    /// Peak logical memory, in bits — shorthand for `stats().max_bits`,
    /// mirroring the automata baselines' accessor of the same name.
    pub fn peak_memory_bits(&self) -> u64 {
        self.st.stats.max_bits
    }

    /// A snapshot of the frontier table (for tracing, cf. Fig. 22).
    pub fn frontier(&self) -> &[FrontierRecord] {
        &self.st.frontier
    }

    /// Renders a frontier record's node test (for traces).
    pub fn ntest_of(&self, node: u32) -> String {
        self.query.nodes[node as usize].ntest.to_string()
    }
}

/// The event handlers (Figs. 20–21), on the mutable half: each takes
/// the compiled query as a plain borrow, so reading node data and
/// mutating the frontier cost nothing beyond the work itself.
impl FilterState {
    /// See [`StreamFilter::decided`]: whether query node `u`, expected
    /// at frontier level `level`, is already guaranteed a real match.
    /// Either its record is matched, or `u` is mid-candidacy (child-axis
    /// records leave the table then) and every child is satisfied one
    /// level deeper — in which case the candidacy's close is guaranteed
    /// to fold `u` to matched, because matched flags are monotone in
    /// filtering mode.
    fn satisfied_at(&self, q: &CompiledQuery, u: u32, level: usize) -> bool {
        if self
            .frontier
            .iter()
            .any(|r| r.node == u && r.level == level && r.matched)
        {
            return true;
        }
        let n = &q.nodes[u as usize];
        if n.is_leaf || n.axis == Axis::Attribute {
            return false;
        }
        n.children
            .iter()
            .all(|&c| self.satisfied_at(q, c, level + 1))
    }

    fn start_document(&mut self, q: &CompiledQuery) {
        // The document root is, by definition, the unique candidate match
        // for ROOT(Q); its children enter the frontier at level 0.
        self.frontier.clear();
        self.buffer.clear();
        self.buffer_refs = 0;
        self.current_level = 0;
        self.result = None;
        self.element_ordinal = 0;
        self.removed_matched.clear();
        self.match_progress = 0;
        if let Some(rep) = &mut self.reporter {
            rep.reset();
        }
        for &v in &q.root_children {
            self.frontier.push(FrontierRecord {
                node: v,
                matched: false,
                level: 0,
                str_starts: Vec::new(),
            });
        }
    }

    fn start_element(&mut self, q: &CompiledQuery, name: Sym, attributes: &[SymAttr], span: Span) {
        let lvl = self.current_level;
        let reporting = self.reporter.is_some();
        let ordinal = self.element_ordinal;
        self.element_ordinal += 1;
        if lvl == 0 {
            // The root element's start is decision-relevant even when no
            // match flag moves: an unselected child-axis root child is
            // dead from here on (see `decided`).
            self.match_progress += 1;
        }
        let mut frame = if reporting {
            Some(Frame {
                ordinal,
                span_start: span.start,
                ..Frame::default()
            })
        } else {
            None
        };
        // One pass over the pre-existing records: select the frontier
        // records for which this element is a candidate match (Fig. 20
        // lines 1–4) and process each selection in place — leaves begin
        // buffering; internal nodes spawn child records (and child-axis
        // records temporarily leave the table, Fig. 20 lines 10–11).
        // Selection reads only the record under the cursor, so fusing
        // the passes changes nothing; removals and insertions are staged
        // in reused scratch buffers and applied after the scan, keeping
        // the original table order and the whole pass allocation-free.
        // In reporting mode, records on the output path stay candidates
        // even after a real match was found elsewhere: full evaluation
        // must examine *every* candidate, not stop at the first.
        debug_assert!(self.scratch_remove.is_empty() && self.scratch_insert.is_empty());
        for i in 0..self.frontier.len() {
            let rec = &self.frontier[i];
            let node = rec.node;
            // Cheapest rejections first: the node test (one integer
            // compare) and the level check throw out almost every
            // (record, event) pair before any further loads.
            let n = &q.nodes[node as usize];
            if !n.passes(name) {
                continue;
            }
            let level_ok = match n.axis {
                Axis::Descendant => lvl >= rec.level,
                Axis::Attribute => false, // resolve from start tags below
                _ => lvl == rec.level,
            };
            if !level_ok {
                continue;
            }
            if rec.matched && !(reporting && q.path_index[node as usize].is_some()) {
                continue;
            }
            if let Some(frame) = &mut frame {
                if let Some(idx) = q.path_index[node as usize] {
                    if !frame.candidates.contains(&idx) {
                        frame.candidates.push(idx);
                    }
                    if n.is_leaf && n.leaf_predicate.is_none() && idx as usize == q.out_path.len() {
                        frame.out_leaf_unrestricted = true;
                    }
                }
            }
            if n.is_leaf {
                if n.leaf_predicate.is_some() {
                    self.buffer_refs += 1;
                    self.frontier[i].str_starts.push(self.buffer.len());
                } else {
                    // TRUTH(u) = S: any candidate is a real match; decide
                    // now and skip buffering.
                    self.frontier[i].matched = true;
                    self.match_progress += 1;
                }
            } else {
                if n.axis == Axis::Child {
                    if reporting {
                        self.removed_matched
                            .push((node, lvl, self.frontier[i].matched));
                    }
                    self.scratch_remove.push(i);
                }
                for &v in &n.children {
                    let vn = &q.nodes[v as usize];
                    if vn.axis == Axis::Attribute {
                        // Attributes arrive with this very start tag:
                        // resolve immediately.
                        let matched = attributes.iter().any(|a| {
                            vn.passes(a.name)
                                && vn.children.is_empty()
                                && Self::value_in_truth(vn, &a.value)
                        });
                        if let Some(w) = attributes
                            .iter()
                            .find(|a| vn.passes(a.name))
                            .map(|a| a.value.chars().count())
                        {
                            self.stats.observe_text_width(w);
                        }
                        if matched {
                            self.match_progress += 1;
                        }
                        self.scratch_insert.push(FrontierRecord {
                            node: v,
                            matched,
                            level: lvl + 1,
                            str_starts: Vec::new(),
                        });
                    } else {
                        self.scratch_insert.push(FrontierRecord {
                            node: v,
                            matched: false,
                            level: lvl + 1,
                            str_starts: Vec::new(),
                        });
                    }
                }
            }
        }
        // Apply removals back-to-front so indices stay valid.
        while let Some(i) = self.scratch_remove.pop() {
            self.frontier.remove(i);
        }
        self.frontier.append(&mut self.scratch_insert);
        self.current_level = lvl + 1;
        if let (Some(rep), Some(frame)) = (&mut self.reporter, frame) {
            rep.open_element(frame);
        }
    }

    fn value_in_truth(node: &CNode, value: &str) -> bool {
        match &node.leaf_predicate {
            None => true,
            Some((expr, var)) => fx_xpath::eval_with_binding(expr, *var, value).unwrap_or(false),
        }
    }

    fn text(&mut self, content: &str) {
        if self.buffer_refs > 0 {
            self.buffer.push_str(content);
        }
    }

    fn end_element(&mut self, q: &CompiledQuery, name: Sym, span: Span) {
        // Saturate on malformed streams (the paper lets algorithms behave
        // arbitrarily on them, but we must not crash: the lower-bound
        // prober feeds crossed prefix/suffix pairs that may be malformed).
        self.current_level = self.current_level.saturating_sub(1);
        let lvl = self.current_level;

        // 1. Leaf records whose candidacy ends here: evaluate the buffered
        //    string value against TRUTH(u) (Fig. 21 lines 2–10).
        let reporting = self.reporter.is_some();
        let out_node = q.out_path.last().copied();
        let mut out_leaf_value: Option<bool> = None;
        for i in 0..self.frontier.len() {
            let node = self.frontier[i].node;
            let n = &q.nodes[node as usize];
            if !n.passes(name) {
                continue;
            }
            if !n.is_leaf || n.leaf_predicate.is_none() || n.axis == Axis::Attribute {
                continue;
            }
            let level_ok = match n.axis {
                Axis::Descendant => lvl >= self.frontier[i].level,
                _ => lvl == self.frontier[i].level,
            };
            if !level_ok || self.frontier[i].str_starts.is_empty() {
                continue;
            }
            let start = self.frontier[i]
                .str_starts
                .pop()
                .expect("checked non-empty");
            let value = &self.buffer[start..];
            self.stats.observe_text_width(value.chars().count());
            let needs_value = !self.frontier[i].matched || (reporting && Some(node) == out_node);
            if needs_value {
                let ok = Self::value_in_truth(n, value);
                self.frontier[i].matched |= ok;
                if ok {
                    self.match_progress += 1;
                }
                if reporting && Some(node) == out_node {
                    out_leaf_value = Some(ok);
                }
            }
            self.buffer_refs -= 1;
            if self.buffer_refs == 0 {
                self.buffer.clear();
            }
        }

        // 2. Child records of candidates ending at this element: group by
        //    parent, conjoin their matched flags, and fold into the parent
        //    record (Fig. 21 lines 11–29, with `matched ∨= m`).
        debug_assert!(self.scratch_parents.is_empty() && self.scratch_groups.is_empty());
        for rec in &self.frontier {
            if rec.level > lvl {
                let p = q.parents[rec.node as usize];
                if !self.scratch_parents.contains(&p) {
                    self.scratch_parents.push(p);
                }
            }
        }
        for pi in 0..self.scratch_parents.len() {
            let p = self.scratch_parents[pi];
            // The successor child does not participate in the *predicate*
            // conjunction (it is the output-path continuation).
            let successor =
                q.path_index[p as usize].and_then(|idx| q.out_path.get(idx as usize).copied());
            let mut all_matched = true;
            let mut pred_matched = true;
            let mut k = 0;
            while k < self.frontier.len() {
                let rec = &self.frontier[k];
                if rec.level > lvl && q.parents[rec.node as usize] == p {
                    all_matched &= rec.matched;
                    if Some(rec.node) != successor {
                        pred_matched &= rec.matched;
                    }
                    self.frontier.remove(k);
                } else {
                    k += 1;
                }
            }
            self.scratch_groups.push((p, all_matched, pred_matched));
            if all_matched {
                self.match_progress += 1;
            }
            let pn = &q.nodes[p as usize];
            if pn.axis == Axis::Descendant {
                // The record(s) for p are still in the table; accumulate
                // into every live candidacy (under parent recursion the
                // same element is a candidate for each of them).
                for rec in self.frontier.iter_mut().filter(|r| r.node == p) {
                    rec.matched |= all_matched;
                }
            } else {
                // Reinsert the temporarily-removed child-axis record. In
                // reporting mode a matched record may have been re-spawned
                // for a later candidate; restore its previous flag.
                let was_matched = if self.reporter.is_some() {
                    match self
                        .removed_matched
                        .iter()
                        .rposition(|&(n, l, _)| n == p && l == lvl)
                    {
                        Some(pos) => self.removed_matched.remove(pos).2,
                        None => false,
                    }
                } else {
                    false
                };
                self.frontier.push(FrontierRecord {
                    node: p,
                    matched: was_matched || all_matched,
                    level: lvl,
                    str_starts: Vec::new(),
                });
            }
        }
        self.scratch_parents.clear();
        if let Some(rep) = &mut self.reporter {
            rep.close_element(
                &self.scratch_groups,
                out_leaf_value,
                &q.out_path,
                &q.out_axes_child,
                span.end,
            );
        }
        self.scratch_groups.clear();
    }

    fn end_document(&mut self, q: &CompiledQuery) {
        // The document root is a real match for ROOT(Q) iff every child of
        // ROOT(Q) found a real match.
        let verdict = q
            .root_children
            .iter()
            .all(|&v| self.frontier.iter().any(|r| r.node == v && r.matched));
        self.result = Some(verdict);
    }
}

impl SaxHandler for StreamFilter {
    fn start_document(&mut self) {
        self.process_ref(EventRef::StartDocument, Span::EMPTY);
    }
    fn end_document(&mut self) {
        self.process_ref(EventRef::EndDocument, Span::EMPTY);
    }
    fn start_element(&mut self, name: &str, attributes: &[fx_xml::Attribute]) {
        self.process_ref(EventRef::StartElement { name, attributes }, Span::EMPTY);
    }
    fn end_element(&mut self, name: &str) {
        self.process_ref(EventRef::EndElement { name }, Span::EMPTY);
    }
    fn text(&mut self, content: &str) {
        self.process_ref(EventRef::Text { content }, Span::EMPTY);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fx_xpath::parse_query;

    fn filter(qs: &str, xml: &str) -> bool {
        let q = parse_query(qs).unwrap();
        let events = fx_xml::parse(xml).unwrap();
        StreamFilter::new(&q).unwrap().run_stream(&events).unwrap()
    }

    fn agree(qs: &str, xml: &str) {
        let q = parse_query(qs).unwrap();
        let d = fx_dom::Document::from_xml(xml).unwrap();
        let expected = fx_eval::bool_eval(&q, &d).unwrap();
        let events = fx_xml::parse(xml).unwrap();
        let got = StreamFilter::new(&q).unwrap().run_stream(&events).unwrap();
        assert_eq!(got, expected, "{qs} on {xml}");
    }

    #[test]
    fn paper_fig22_query_on_matching_document() {
        assert!(filter(
            "/a[c[.//e and f] and b]",
            "<a><c><d/><e/><f/></c><b/><c/></a>"
        ));
    }

    #[test]
    fn paper_theorem_queries() {
        agree(
            "/a[c[.//e and f] and b > 5]",
            "<a><c><e/><f/></c><b>6</b></a>",
        );
        agree(
            "/a[c[.//e and f] and b > 5]",
            "<a><b>6</b><c><f/><f/></c></a>",
        );
        agree("//a[b and c]", "<a><b/><a><b/><a/><c/></a></a>");
        agree("//a[b and c]", "<a><b/><a><a/><c/></a></a>");
        agree("/a/b", "<a><Z><Z/></Z><b/><Z><Z/></Z></a>");
        agree("/a/b", "<a><Z><Z/><b/><Z/></Z></a>");
    }

    #[test]
    fn recursion_does_not_clobber_inner_match() {
        // Erratum #1: the inner <a> matches; a later outer failure must
        // not reset the flag.
        agree("//a[b and c]", "<a><a><b/><c/></a></a>");
        assert!(filter("//a[b and c]", "<a><a><b/><c/></a></a>"));
        // And deeper stacks of failures around a success.
        assert!(filter("//a[b and c]", "<a><a><a><b/><c/></a></a><x/></a>"));
    }

    #[test]
    fn recursive_leaf_buffer_offsets() {
        // Erratum #2: Q = //a[.//e > 5] on <a><e>7<e>3</e></e></a> — the
        // outer e's value "73" passes even though the inner "3" fails.
        agree("//a[.//e > 5]", "<a><e>7<e>3</e></e></a>");
        assert!(filter("//a[.//e > 5]", "<a><e>7<e>3</e></e></a>"));
        // Inner passes, outer fails (outer strval "09" = 9 > 5 too, so use
        // the reference agreement to keep the oracle honest).
        agree("//a[.//e > 5]", "<a><e>0<e>9</e></e></a>");
        // Neither passes: outer strval "01" = 1, inner "1".
        assert!(!filter("//a[.//e > 5]", "<a><e>0<e>1</e></e></a>"));
        agree("//a[.//e > 5]", "<a><e>0<e>1</e></e></a>");
    }

    #[test]
    fn value_predicates() {
        agree("/a[b > 5]", "<a><b>3</b><b>7</b></a>");
        agree("/a[b > 5]", "<a><b>3</b><b>5</b></a>");
        agree("/a[b = \"xy\"]", "<a><b>x<c>y</c></b></a>");
        agree(
            "/a[contains(b, \"needle\")]",
            "<a><b>hay needle stack</b></a>",
        );
        agree("/a[contains(b, \"needle\")]", "<a><b>haystack</b></a>");
    }

    #[test]
    fn attribute_queries() {
        agree("/a[@id = 7]", r#"<a id="7"/>"#);
        agree("/a[@id = 7]", r#"<a id="8"/>"#);
        agree("/a/@id", r#"<a id="7"/>"#);
        agree("/a/@id", "<a/>");
        agree("/a[@id and b]", r#"<a id="1"><b/></a>"#);
        agree("//a[@k = \"v\"]", r#"<r><a k="x"/><a k="v"/></r>"#);
    }

    #[test]
    fn wildcards() {
        agree("/a/*/b", "<a><x><b/></x></a>");
        agree("/a/*/b", "<a><b/></a>");
        agree("/a[*/b > 5]", "<a><q><b>9</b></q></a>");
    }

    #[test]
    fn sibling_candidates_sequential() {
        agree("/a/b[c]", "<a><b><x/></b><b><c/></b></a>");
        agree("/a/b[c]", "<a><b><x/></b><b><y/></b></a>");
    }

    #[test]
    fn deep_documents() {
        // /a/b must not fire on deeper b's.
        let deep = format!("<a>{}<b/>{}</a>", "<Z>".repeat(30), "</Z>".repeat(30));
        agree("/a/b", &deep);
        let inside = format!(
            "<a>{}{}</a>",
            "<Z>".repeat(30),
            "<b/>".to_owned() + &"</Z>".repeat(30)
        );
        agree("/a/b", &inside);
    }

    #[test]
    fn frontier_stays_at_fs_for_fig22_query() {
        // FS(/a[c[.//e and f] and b]) = 3; the frontier table must never
        // exceed 3 rows (§8.4: "As the frontier size is 3 for this query,
        // there are at most 3 tuples in the system").
        let q = parse_query("/a[c[.//e and f] and b]").unwrap();
        let events = fx_xml::parse("<a><c><d/><e/><f/></c><b/><c/></a>").unwrap();
        let mut f = StreamFilter::new(&q).unwrap();
        f.process_all(&events);
        assert_eq!(f.result(), Some(true));
        assert!(f.stats().max_rows <= 3, "max rows = {}", f.stats().max_rows);
    }

    #[test]
    fn frontier_grows_with_recursion_depth() {
        // On documents of recursion depth r, the table holds Θ(r) rows.
        let q = parse_query("//a[b and c]").unwrap();
        let mut sizes = Vec::new();
        for r in [1usize, 4, 16] {
            let xml = format!("{}{}", "<a><b/>".repeat(r), "</a>".repeat(r));
            let events = fx_xml::parse(&xml).unwrap();
            let mut f = StreamFilter::new(&q).unwrap();
            f.process_all(&events);
            sizes.push(f.stats().max_rows);
        }
        assert!(sizes[1] > sizes[0]);
        assert!(sizes[2] > sizes[1]);
        assert!(sizes[2] >= 16, "{sizes:?}");
    }

    #[test]
    fn unsupported_queries_are_rejected() {
        for src in ["/a[b or c]", "/a[not(b)]", "/a[b > c]", "/a[b[c] > 5]"] {
            let q = parse_query(src).unwrap();
            assert!(StreamFilter::new(&q).is_err(), "{src}");
        }
    }

    #[test]
    fn empty_and_trivial_documents() {
        agree("/a", "<a/>");
        agree("/a", "<b/>");
        agree("//x", "<a><b><x/></b></a>");
        agree("//x", "<a><b/></a>");
    }

    #[test]
    fn text_outside_buffering_is_free() {
        let q = parse_query("/a[b]").unwrap();
        let xml = format!("<a><c>{}</c><b/></a>", "t".repeat(1000));
        let events = fx_xml::parse(&xml).unwrap();
        let mut f = StreamFilter::new(&q).unwrap();
        f.process_all(&events);
        assert_eq!(f.result(), Some(true));
        // No leaf record was buffering under <c> (b is unrestricted), so
        // the buffer stays empty.
        assert_eq!(f.stats().max_buffer_bytes, 0);
    }

    #[test]
    fn buffer_is_released_after_use() {
        let q = parse_query("/a[b > 5 and c]").unwrap();
        let xml = "<a><b>123456</b><c/></a>";
        let events = fx_xml::parse(xml).unwrap();
        let mut f = StreamFilter::new(&q).unwrap();
        for e in &events {
            f.process(e);
        }
        assert_eq!(f.result(), Some(true));
        assert_eq!(f.stats().max_buffer_bytes, 6);
        assert!(
            f.st.buffer.is_empty(),
            "buffer must be reset when refcount hits 0"
        );
    }

    #[test]
    fn repeated_runs_reset_state() {
        let q = parse_query("/a[b]").unwrap();
        let yes = fx_xml::parse("<a><b/></a>").unwrap();
        let no = fx_xml::parse("<a><c/></a>").unwrap();
        let mut f = StreamFilter::new(&q).unwrap();
        f.process_all(&yes);
        assert_eq!(f.result(), Some(true));
        f.process_all(&no);
        assert_eq!(f.result(), Some(false));
        f.process_all(&yes);
        assert_eq!(f.result(), Some(true));
    }
}
